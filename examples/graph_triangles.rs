//! Triangle counting via SpGEMM — graph analytics is the second motivating
//! application in the paper's introduction (GraphBLAS [12]).
//!
//! For an undirected graph with adjacency matrix `A`, the number of
//! triangles is `trace(A^3) / 6`; computing `A^2` (an SpGEMM) and then the
//! elementwise dot with `A` gives the same count with one multiplication.
//! The skewed degree distribution of social graphs is exactly the workload
//! spECK's load balancing targets.
//!
//! ```sh
//! cargo run --release --example graph_triangles
//! ```

use speck_repro::sparse::gen::rmat;
use speck_repro::sparse::transpose::transpose;
use speck_repro::sparse::{Coo, Csr};
use speck_repro::speck::SpeckSpgemm;

/// Symmetrises an R-MAT sample into a simple undirected graph (no self
/// loops, value 1 per edge).
fn symmetrise(g: &Csr<f64>) -> Csr<f64> {
    let gt = transpose(g);
    let mut coo: Coo<f64> = Coo::new(g.rows(), g.cols());
    for m in [g, &gt] {
        for (r, cols, _) in m.iter_rows() {
            for &c in cols {
                if c as usize != r {
                    coo.push(r as u32, c, 1.0);
                }
            }
        }
    }
    let mut sym = coo.to_csr();
    // Duplicate edges became 2.0; clamp back to 1.0.
    let ones: Vec<f64> = vec![1.0; sym.nnz()];
    sym = Csr::from_parts_unchecked(
        sym.rows(),
        sym.cols(),
        sym.row_ptr().to_vec(),
        sym.col_idx().to_vec(),
        ones,
    );
    sym
}

/// Counts triangles: sum over edges (i,j) of (A^2)_{ij}, divided by 6.
fn triangles(a: &Csr<f64>, a2: &Csr<f64>) -> u64 {
    let mut sum = 0.0;
    for (i, cols, _) in a.iter_rows() {
        let (c2, v2) = a2.row(i);
        // Merge-walk the two sorted rows.
        let (mut p, mut q) = (0usize, 0usize);
        while p < cols.len() && q < c2.len() {
            match cols[p].cmp(&c2[q]) {
                std::cmp::Ordering::Less => p += 1,
                std::cmp::Ordering::Greater => q += 1,
                std::cmp::Ordering::Equal => {
                    sum += v2[q];
                    p += 1;
                    q += 1;
                }
            }
        }
    }
    (sum / 6.0).round() as u64
}

fn main() {
    let graph = symmetrise(&rmat(12, 8, 0.57, 0.19, 0.19, 99));
    let degrees: Vec<usize> = (0..graph.rows()).map(|i| graph.row_nnz(i)).collect();
    let dmax = degrees.iter().max().copied().unwrap_or(0);
    println!(
        "graph: {} vertices, {} edges, max degree {dmax} (avg {:.1})",
        graph.rows(),
        graph.nnz() / 2,
        graph.avg_row_nnz()
    );

    let engine = SpeckSpgemm::default();
    let (a2, report) = engine.multiply(&graph, &graph);
    let t = triangles(&graph, &a2);
    println!(
        "A^2 computed in {:.1} us simulated ({:.2} GFLOPS), {} products",
        report.sim_time_s * 1e6,
        report.gflops(),
        report.products
    );
    println!(
        "load balancing engaged: symbolic={} numeric={} (degree skew demands it)",
        report.symbolic_used_lb, report.numeric_used_lb
    );
    println!("triangles: {t}");

    // Sanity: count again with the sequential reference.
    let ref_a2 = speck_repro::sparse::reference::spgemm_seq(&graph, &graph);
    assert_eq!(t, triangles(&graph, &ref_a2));
    println!("verified against the sequential reference ✓");
}
