//! Method shootout: run all eight SpGEMM methods on a matrix of your
//! choice and print the paper-style comparison row.
//!
//! ```sh
//! cargo run --release --example method_shootout -- [family] [size]
//! # family in {banded, mesh3d, graph, blocks, lp}; size scales the matrix
//! cargo run --release --example method_shootout -- path/to/matrix.mtx
//! ```

use speck_repro::baselines::all_methods;
use speck_repro::simt::{CostModel, DeviceConfig};
use speck_repro::sparse::gen::{banded, block_diagonal, poisson_3d, rectangular_lp, rmat};
use speck_repro::sparse::io::mm::read_matrix_market_file;
use speck_repro::sparse::reference::spgemm_seq;
use speck_repro::sparse::transpose::transpose;
use speck_repro::sparse::Csr;
use std::path::Path;

fn build(family: &str, size: usize) -> (Csr<f64>, Csr<f64>) {
    let square = |a: Csr<f64>| {
        let b = a.clone();
        (a, b)
    };
    match family {
        "banded" => square(banded(8_000 * size, 2, 1.0, 1)),
        "mesh3d" => square(poisson_3d(12 * size, 12 * size, 12, 0.01, 2)),
        "graph" => square(rmat(9 + size as u32, 8, 0.57, 0.19, 0.19, 3)),
        "blocks" => square(block_diagonal(8 * size, 64, 1.0, 4)),
        "lp" => {
            let a = rectangular_lp(500 * size, 16_000 * size, 40, 80, 5);
            let at = transpose(&a);
            (a, at)
        }
        other => panic!("unknown family '{other}' (banded|mesh3d|graph|blocks|lp)"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (a, b, label) = if let Some(first) = args.first() {
        if first.ends_with(".mtx") {
            let m: Csr<f64> =
                read_matrix_market_file(Path::new(first)).expect("failed to read .mtx");
            if m.rows() == m.cols() {
                (m.clone(), m, first.clone())
            } else {
                let t = transpose(&m);
                (m, t, format!("{first} (A*A^T)"))
            }
        } else {
            let size: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);
            let (a, b) = build(first, size);
            (a, b, format!("{first} x{size}"))
        }
    } else {
        let (a, b) = build("mesh3d", 2);
        (a, b, "mesh3d x2 (default)".to_string())
    };

    let products = a.products(&b);
    println!(
        "{label}: A {}x{} nnz {}, {} products",
        a.rows(),
        a.cols(),
        a.nnz(),
        products
    );
    let reference = spgemm_seq(&a, &b);
    println!("C: {} non-zeros\n", reference.nnz());

    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    println!(
        "{:<10} {:>11} {:>9} {:>10}  notes",
        "method", "time [us]", "GFLOPS", "mem [MiB]"
    );
    for method in all_methods() {
        let r = method.multiply(&dev, &cost, &a, &b);
        if let Some(mut c) = r.c.clone() {
            if !r.sorted_output {
                c.sort_rows();
            }
            assert!(
                c.approx_eq(&reference, 1e-9, 1e-12),
                "{} computed a wrong result",
                method.name()
            );
        }
        match r.failed {
            None => println!(
                "{:<10} {:>11.1} {:>9.2} {:>10.2}  {}",
                method.name(),
                r.sim_time_s * 1e6,
                2.0 * products as f64 / r.sim_time_s / 1e9,
                r.peak_mem_bytes as f64 / (1 << 20) as f64,
                if r.sorted_output {
                    ""
                } else {
                    "unsorted output!"
                }
            ),
            Some(why) => println!(
                "{:<10} {:>11} {:>9} {:>10}  FAILED: {why}",
                method.name(),
                "-",
                "-",
                "-"
            ),
        }
    }
}
