//! Quickstart: multiply two sparse matrices with spECK and inspect the
//! report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use speck_repro::sparse::gen::poisson_3d;
use speck_repro::sparse::reference::spgemm_seq;
use speck_repro::speck::SpeckSpgemm;

fn main() {
    // A 3D Poisson stencil on a 24^3 grid — 13 824 rows, 7-point stencil.
    let a = poisson_3d(24, 24, 24, 0.0, 42);
    println!(
        "A: {} x {} with {} non-zeros ({:.1} per row)",
        a.rows(),
        a.cols(),
        a.nnz(),
        a.avg_row_nnz()
    );

    // The engine bundles the simulated device (Titan V by default), the
    // cost model and the spECK configuration.
    let engine = SpeckSpgemm::default();
    let (c, report) = engine.multiply(&a, &a);

    println!(
        "C = A*A: {} non-zeros, {} intermediate products (compaction {:.1}x)",
        c.nnz(),
        report.products,
        report.products as f64 / c.nnz() as f64
    );
    println!(
        "simulated time: {:.1} us  ({:.2} GFLOPS at 2 ops/product)",
        report.sim_time_s * 1e6,
        report.gflops()
    );
    println!(
        "global load balancer: symbolic={}, numeric={} (demand ratios {:.1} / {:.1})",
        report.symbolic_used_lb,
        report.numeric_used_lb,
        report.symbolic_ratio,
        report.numeric_ratio
    );
    let (hash, dense, direct) = report.numeric_methods;
    println!("numeric blocks: {hash} hash, {dense} dense, {direct} direct");
    println!("\nstage breakdown:");
    for (name, st) in report.timeline.stages() {
        println!(
            "  {name:<14} {:>8.1} us  ({:>4.1}%)",
            st.seconds * 1e6,
            100.0 * report.timeline.share(name)
        );
    }

    // The simulator is functional: the result matches a sequential
    // reference SpGEMM exactly.
    let reference = spgemm_seq(&a, &a);
    assert!(c.approx_eq(&reference, 1e-10, 1e-12));
    println!("\nresult verified against the sequential reference ✓");
}
