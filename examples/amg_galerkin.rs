//! Algebraic-multigrid Galerkin products — one of the motivating SpGEMM
//! applications in the paper's introduction (Bell et al. [2]).
//!
//! A smoothed-aggregation AMG setup computes, per level: a tentative
//! prolongator `T` from aggregation, the smoothed prolongator
//! `P = (I - w D^-1 A) T` (an SpGEMM plus element-wise ops), and the
//! Galerkin coarse operator `A_c = R (A P)` with `R = P^T` (two more
//! SpGEMMs). This example builds the full hierarchy with spECK and
//! reports per-level cost.
//!
//! ```sh
//! cargo run --release --example amg_galerkin
//! ```

use speck_repro::sparse::gen::poisson_2d;
use speck_repro::sparse::ops::{add_scaled, diagonal, scale_rows};
use speck_repro::sparse::reference::spgemm_seq;
use speck_repro::sparse::transpose::transpose;
use speck_repro::sparse::{Coo, Csr};
use speck_repro::speck::SpeckSpgemm;

/// Piecewise-constant aggregation: groups of `agg` consecutive unknowns
/// share one coarse basis function.
fn aggregation(n: usize, agg: usize) -> Csr<f64> {
    let nc = n.div_ceil(agg);
    let mut p: Coo<f64> = Coo::new(n, nc);
    for i in 0..n {
        p.push(i as u32, (i / agg) as u32, 1.0);
    }
    p.to_csr()
}

fn main() {
    // Fine-grid operator: 2D Poisson on a 180x180 grid.
    let mut a = poisson_2d(180, 180, 0.0, 7);
    let engine = SpeckSpgemm::default();

    println!("level  unknowns      nnz    avg/row   galerkin sim time");
    println!("-------------------------------------------------------");
    let mut level = 0;
    let mut total = 0.0f64;
    while a.rows() > 500 {
        println!(
            "{level:>5}  {:>8}  {:>9}  {:>7.1}",
            a.rows(),
            a.nnz(),
            a.avg_row_nnz()
        );
        let tent = aggregation(a.rows(), 4);

        // Smoothed prolongator: P = (I - w D^-1 A) * T.
        let d = diagonal(&a);
        let dinv: Vec<f64> = d
            .iter()
            .map(|&x| if x != 0.0 { 1.0 / x } else { 0.0 })
            .collect();
        let smoother = add_scaled(
            1.0,
            &Csr::identity(a.rows()),
            -(2.0 / 3.0),
            &scale_rows(&a, &dinv),
        )
        .expect("shapes match");
        let (p, rep0) = engine.multiply(&smoother, &tent);
        let r = transpose(&p);

        // A_c = R * (A * P): two more spECK multiplications.
        let (ap, rep1) = engine.multiply(&a, &p);
        let (ac, rep2) = engine.multiply(&r, &ap);

        // Verify against the sequential reference.
        let expect = spgemm_seq(&r, &spgemm_seq(&a, &p));
        assert!(ac.approx_eq(&expect, 1e-9, 1e-12), "level {level} mismatch");
        assert!(p.approx_eq(&spgemm_seq(&smoother, &tent), 1e-9, 1e-12));

        let t = rep0.sim_time_s + rep1.sim_time_s + rep2.sim_time_s;
        total += t;
        println!("       -> coarse operator in {:.1} us simulated", t * 1e6);
        a = ac;
        level += 1;
    }
    println!(
        "{level:>5}  {:>8}  {:>9}  {:>7.1}   (coarsest)",
        a.rows(),
        a.nnz(),
        a.avg_row_nnz()
    );
    println!(
        "\nwhole Galerkin hierarchy: {:.1} us simulated SpGEMM time",
        total * 1e6
    );
}
