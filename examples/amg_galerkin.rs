//! Algebraic-multigrid Galerkin products — one of the motivating SpGEMM
//! applications in the paper's introduction (Bell et al. [2]).
//!
//! A smoothed-aggregation AMG setup computes, per level: a tentative
//! prolongator `T` from aggregation, the smoothed prolongator
//! `P = (I - w D^-1 A) T` (an SpGEMM plus element-wise ops), and the
//! Galerkin coarse operator `A_c = R (A P)` with `R = P^T` (two more
//! SpGEMMs). This example builds the full hierarchy with spECK, then
//! rebuilds it with perturbed fine-grid values — the patterns are
//! unchanged, so every multiply in the rebuild hits the engine's plan
//! cache and skips analysis and the symbolic pass, the exact scenario
//! (repeated setup over a fixed mesh) plan reuse exists for.
//!
//! ```sh
//! cargo run --release --example amg_galerkin
//! ```

use speck_repro::sparse::gen::poisson_2d;
use speck_repro::sparse::ops::{add_scaled, diagonal, scale_rows};
use speck_repro::sparse::reference::spgemm_seq;
use speck_repro::sparse::transpose::transpose;
use speck_repro::sparse::{Coo, Csr};
use speck_repro::speck::{diff_reports, diff_traces, SpeckSpgemm};

/// Piecewise-constant aggregation: groups of `agg` consecutive unknowns
/// share one coarse basis function.
fn aggregation(n: usize, agg: usize) -> Csr<f64> {
    let nc = n.div_ceil(agg);
    let mut p: Coo<f64> = Coo::new(n, nc);
    for i in 0..n {
        p.push(i as u32, (i / agg) as u32, 1.0);
    }
    p.to_csr()
}

/// Builds the whole Galerkin hierarchy from the fine operator down to
/// ≤500 unknowns. Returns (total simulated SpGEMM time, multiply count,
/// reused-plan count); prints per-level lines when `verbose`.
fn build_hierarchy(engine: &SpeckSpgemm, fine: &Csr<f64>, verbose: bool) -> (f64, usize, usize) {
    let mut a = fine.clone();
    let mut level = 0;
    let mut total = 0.0f64;
    let mut multiplies = 0usize;
    let mut reused = 0usize;
    while a.rows() > 500 {
        if verbose {
            println!(
                "{level:>5}  {:>8}  {:>9}  {:>7.1}",
                a.rows(),
                a.nnz(),
                a.avg_row_nnz()
            );
        }
        let tent = aggregation(a.rows(), 4);

        // Smoothed prolongator: P = (I - w D^-1 A) * T.
        let d = diagonal(&a);
        let dinv: Vec<f64> = d
            .iter()
            .map(|&x| if x != 0.0 { 1.0 / x } else { 0.0 })
            .collect();
        let smoother = add_scaled(
            1.0,
            &Csr::identity(a.rows()),
            -(2.0 / 3.0),
            &scale_rows(&a, &dinv),
        )
        .expect("shapes match");
        let (p, rep0) = engine.multiply(&smoother, &tent);
        let r = transpose(&p);

        // A_c = R * (A * P): two more spECK multiplications.
        let (ap, rep1) = engine.multiply(&a, &p);
        let (ac, rep2) = engine.multiply(&r, &ap);

        // Verify against the sequential reference.
        let expect = spgemm_seq(&r, &spgemm_seq(&a, &p));
        assert!(ac.approx_eq(&expect, 1e-9, 1e-12), "level {level} mismatch");
        assert!(p.approx_eq(&spgemm_seq(&smoother, &tent), 1e-9, 1e-12));

        let t = rep0.sim_time_s + rep1.sim_time_s + rep2.sim_time_s;
        total += t;
        multiplies += 3;
        reused += [&rep0, &rep1, &rep2]
            .iter()
            .filter(|r| r.reused_plan)
            .count();
        if verbose {
            println!("       -> coarse operator in {:.1} us simulated", t * 1e6);
        }
        a = ac;
        level += 1;
    }
    if verbose {
        println!(
            "{level:>5}  {:>8}  {:>9}  {:>7.1}   (coarsest)",
            a.rows(),
            a.nnz(),
            a.avg_row_nnz()
        );
    }
    (total, multiplies, reused)
}

fn main() {
    // Fine-grid operator: 2D Poisson on a 180x180 grid.
    let a = poisson_2d(180, 180, 0.0, 7);
    let engine = SpeckSpgemm::default();

    println!("level  unknowns      nnz    avg/row   galerkin sim time");
    println!("-------------------------------------------------------");
    let (cold, multiplies, cold_reused) = build_hierarchy(&engine, &a, true);
    assert_eq!(cold_reused, 0, "first build must be all cold");
    println!(
        "\nwhole Galerkin hierarchy: {:.1} us simulated SpGEMM time \
         ({multiplies} multiplies, all cold)",
        cold * 1e6
    );

    // Rebuild with perturbed fine-grid values (a solver re-assembling on
    // the same mesh). Every pattern in the hierarchy is a function of the
    // fine pattern alone — the smoother keeps the union pattern and spECK's
    // output pattern is symbolic-exact — so every multiply reuses its plan.
    let a2 = Csr::from_parts_unchecked(
        a.rows(),
        a.cols(),
        a.row_ptr().to_vec(),
        a.col_idx().to_vec(),
        a.vals()
            .iter()
            .enumerate()
            .map(|(i, &v)| v * (1.0 + (i % 13) as f64 * 1e-4))
            .collect(),
    );
    let (warm, warm_multiplies, warm_reused) = build_hierarchy(&engine, &a2, false);
    assert_eq!(
        warm_reused, warm_multiplies,
        "rebuild on the same mesh must reuse every plan"
    );
    println!(
        "rebuild with fresh values:  {:.1} us simulated ({warm_reused}/{warm_multiplies} \
         multiplies reused their plan)",
        warm * 1e6
    );
    println!(
        "plan reuse speedup: {:.2}x simulated (analysis + symbolic skipped)",
        cold / warm
    );

    // The engine's metrics registry saw both builds: the snapshot's
    // plan-cache counters quantify the reuse, and the stage counters show
    // the warm build launched no analysis or symbolic kernels.
    let snap = engine.metrics_snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    println!(
        "\nmetrics: {} multiplies, plan cache {} hits / {} misses, \
         {} analysis launches vs {} numeric launches",
        counter("engine/multiply_calls"),
        counter("plan_cache/hits"),
        counter("plan_cache/misses"),
        counter("sim/stage/analysis/launches"),
        counter("sim/stage/num. SpGEMM/launches"),
    );

    // Where does the cold/warm gap come from? Trace one representative
    // Galerkin product (fine-level A*A) cold and warm on a tracing engine
    // and diff the per-stage / per-bin cycle attribution: the cold columns
    // carry analysis + symbolic work, the warm columns only numeric + sort.
    let tracer = SpeckSpgemm::default().with_tracing(true);
    let (_, cold_rep) = tracer.multiply(&a, &a);
    let (_, warm_rep) = tracer.multiply(&a2, &a2);
    let cold_tr = cold_rep.trace.as_ref().expect("tracing engine");
    let warm_tr = warm_rep.trace.as_ref().expect("tracing engine");
    println!("\ncold vs warm trace for the fine-level product:");
    print!("{}", diff_traces(cold_tr, warm_tr).render_table());

    // The same cold/warm pair through the decision audit: the warm run
    // reuses its plan, so every symbolic-pass decision (gate, binning,
    // accumulator choice) disappears from the report — the diff shows
    // exactly which decisions plan reuse skipped and what their
    // reconciled regret was.
    let auditor = SpeckSpgemm::default().with_auditing(true);
    let (_, cold_au) = auditor.multiply(&a, &a);
    let (_, warm_au) = auditor.multiply(&a2, &a2);
    let cold_audit = cold_au.audit.as_ref().expect("auditing engine");
    let warm_audit = warm_au.audit.as_ref().expect("auditing engine");
    assert!(warm_au.reused_plan, "second multiply must be warm");
    println!("\ncold vs warm decision audit for the fine-level product:");
    print!("{}", diff_reports(cold_audit, warm_audit).render_table());
}
