//! Partitioned ("out of core") and multi-GPU multiplication — the paper's
//! §7 future work, implemented: multiply a matrix whose working set would
//! not fit one device by splitting A into row bands, and distribute the
//! bands across several simulated GPUs.
//!
//! ```sh
//! cargo run --release --example out_of_core
//! ```

use speck_repro::simt::{CostModel, DeviceConfig};
use speck_repro::sparse::gen::rmat;
use speck_repro::sparse::reference::spgemm_seq;
use speck_repro::speck::{multiply_multi_gpu, multiply_partitioned, SpeckConfig};

fn main() {
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    let cfg = SpeckConfig::default();
    let a = rmat(13, 8, 0.57, 0.19, 0.19, 2024);
    println!(
        "A: {} x {} with {} nnz, {} products",
        a.rows(),
        a.cols(),
        a.nnz(),
        a.products(&a)
    );

    println!(
        "\n{:>14} {:>7} {:>12} {:>12}",
        "budget", "bands", "time [us]", "peak [MiB]"
    );
    let full = a.size_bytes() * 64; // effectively unconstrained
    for budget in [full, a.size_bytes() * 4, a.size_bytes() * 2, a.size_bytes()] {
        let (c, report) = multiply_partitioned(&dev, &cost, &cfg, &a, &a, budget);
        println!(
            "{:>12}KiB {:>7} {:>12.1} {:>12.2}",
            budget / 1024,
            report.bands,
            report.sim_time_s * 1e6,
            report.peak_mem_bytes as f64 / (1 << 20) as f64
        );
        assert!(c.approx_eq(&spgemm_seq(&a, &a), 1e-9, 1e-12));
    }
    println!("\nsmaller budgets trade simulated time (B is re-read per band) for peak memory ✓");

    println!("\nmulti-GPU (B replicated, bands of A distributed by products):");
    println!("{:>8} {:>12} {:>9}", "devices", "time [us]", "speedup");
    for n in [1usize, 2, 4, 8] {
        let (c, r) = multiply_multi_gpu(&dev, &cost, &cfg, n, &a, &a);
        println!("{n:>8} {:>12.1} {:>8.2}x", r.sim_time_s * 1e6, r.speedup);
        assert!(c.approx_eq(&spgemm_seq(&a, &a), 1e-9, 1e-12));
    }
}
