//! Property tests of the full spECK pipeline on the deliberately small
//! `tiny` device (16 KiB scratchpad): its cramped capacities push random
//! inputs through every fallback path — tiny hash maps, frequent spills to
//! the global map, dense chunking with many iterations — and correctness
//! must survive all of them.

use proptest::prelude::*;
use speck_repro::simt::{CostModel, DeviceConfig};
use speck_repro::sparse::reference::spgemm_seq;
use speck_repro::sparse::{Coo, Csr};
use speck_repro::speck::{multiply, GlobalLbMode, SpeckConfig};

fn arb_square_csr(n: usize, max_nnz: usize) -> impl Strategy<Value = Csr<f64>> {
    proptest::collection::vec(
        (
            0..n as u32,
            0..n as u32,
            (-400i32..400).prop_map(|v| v as f64 / 8.0 + 0.0625),
        ),
        0..=max_nnz,
    )
    .prop_map(move |trips| {
        let mut coo: Coo<f64> = Coo::new(n, n);
        for (r, c, v) in trips {
            coo.push(r, c, v);
        }
        coo.to_csr()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tiny_device_default_config(a in arb_square_csr(64, 600)) {
        let dev = DeviceConfig::tiny();
        let cost = CostModel::default();
        let (c, report) = multiply(&dev, &cost, &SpeckConfig::default(), &a, &a);
        prop_assert!(c.approx_eq(&spgemm_seq(&a, &a), 1e-9, 1e-12));
        prop_assert!(report.sim_time_s.is_finite() && report.sim_time_s > 0.0);
    }

    #[test]
    fn tiny_device_hash_only_forces_spills(a in arb_square_csr(96, 900)) {
        // Dense disabled: wide rows must survive through the global map.
        let dev = DeviceConfig::tiny();
        let cost = CostModel::default();
        let (c, _) = multiply(&dev, &cost, &SpeckConfig::hash_only(), &a, &a);
        prop_assert!(c.approx_eq(&spgemm_seq(&a, &a), 1e-9, 1e-12));
    }

    #[test]
    fn tiny_device_always_binning(a in arb_square_csr(64, 500)) {
        let dev = DeviceConfig::tiny();
        let cost = CostModel::default();
        let cfg = SpeckConfig {
            global_lb: GlobalLbMode::AlwaysOn,
            ..SpeckConfig::default()
        };
        let (c, _) = multiply(&dev, &cost, &cfg, &a, &a);
        prop_assert!(c.approx_eq(&spgemm_seq(&a, &a), 1e-9, 1e-12));
    }

    #[test]
    fn tiny_device_rectangular(
        a in arb_square_csr(48, 300),
        b in arb_square_csr(48, 300),
    ) {
        let dev = DeviceConfig::tiny();
        let cost = CostModel::default();
        let (c, _) = multiply(&dev, &cost, &SpeckConfig::default(), &a, &b);
        prop_assert!(c.approx_eq(&spgemm_seq(&a, &b), 1e-9, 1e-12));
    }
}
