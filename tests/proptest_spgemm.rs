//! Property-based tests of the SpGEMM algorithms: on arbitrary matrices,
//! spECK and every baseline must agree with the dense oracle, and the
//! expected algebraic identities must hold.

use proptest::prelude::*;
use speck_repro::baselines::all_methods;
use speck_repro::simt::{CostModel, DeviceConfig};
use speck_repro::sparse::reference::{spgemm_cpu_parallel, spgemm_row_nnz, spgemm_seq};
use speck_repro::sparse::transpose::transpose;
use speck_repro::sparse::{Coo, Csr, DenseMatrix};
use speck_repro::speck::SpeckSpgemm;

fn arb_csr(rows: usize, cols: usize, max_nnz: usize) -> impl Strategy<Value = Csr<f64>> {
    proptest::collection::vec(
        (
            0..rows as u32,
            0..cols as u32,
            (-500i32..500).prop_map(|v| v as f64 / 16.0 + 0.03125),
        ),
        0..=max_nnz,
    )
    .prop_map(move |trips| {
        let mut coo: Coo<f64> = Coo::new(rows, cols);
        for (r, c, v) in trips {
            coo.push(r, c, v);
        }
        coo.to_csr()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reference_matches_dense_oracle(
        a in arb_csr(12, 10, 50),
        b in arb_csr(10, 14, 50),
    ) {
        let c = spgemm_seq(&a, &b);
        let oracle = DenseMatrix::from_csr(&a).matmul(&DenseMatrix::from_csr(&b));
        // Compare dense values (sparse may store explicit zeros from
        // cancellation; oracle drops nothing either way in dense form).
        let cd = DenseMatrix::from_csr(&c);
        for r in 0..a.rows() {
            for col in 0..b.cols() {
                prop_assert!((cd.get(r, col) - oracle.get(r, col)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn parallel_reference_matches_sequential(
        a in arb_csr(16, 12, 70),
        b in arb_csr(12, 16, 70),
    ) {
        let c1 = spgemm_seq(&a, &b);
        let c2 = spgemm_cpu_parallel(&a, &b);
        prop_assert!(c1.approx_eq(&c2, 1e-12, 1e-12));
    }

    #[test]
    fn speck_matches_reference_on_arbitrary_inputs(
        a in arb_csr(20, 16, 90),
        b in arb_csr(16, 20, 90),
    ) {
        let engine = SpeckSpgemm::default();
        let (c, _) = engine.multiply(&a, &b);
        prop_assert!(c.approx_eq(&spgemm_seq(&a, &b), 1e-9, 1e-12));
    }

    #[test]
    fn identity_is_two_sided_neutral(a in arb_csr(15, 15, 60)) {
        let i: Csr<f64> = Csr::identity(15);
        let engine = SpeckSpgemm::default();
        let (ai, _) = engine.multiply(&a, &i);
        let (ia, _) = engine.multiply(&i, &a);
        prop_assert!(ai.approx_eq(&a, 1e-12, 1e-14));
        prop_assert!(ia.approx_eq(&a, 1e-12, 1e-14));
    }

    #[test]
    fn transpose_of_product_matches_reversed_product(
        a in arb_csr(10, 8, 40),
        b in arb_csr(8, 12, 40),
    ) {
        // (A*B)^T == B^T * A^T, computed through spECK both ways.
        let engine = SpeckSpgemm::default();
        let (ab, _) = engine.multiply(&a, &b);
        let (btat, _) = engine.multiply(&transpose(&b), &transpose(&a));
        prop_assert!(transpose(&ab).approx_eq(&btat, 1e-9, 1e-12));
    }

    #[test]
    fn symbolic_counts_match_numeric_rows(
        a in arb_csr(18, 18, 80),
    ) {
        let counts = spgemm_row_nnz(&a, &a);
        let engine = SpeckSpgemm::default();
        let (c, _) = engine.multiply(&a, &a);
        for (i, &n) in counts.iter().enumerate() {
            prop_assert_eq!(c.row_nnz(i), n);
        }
    }
}

proptest! {
    // Fewer cases: runs all eight methods per input.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_methods_agree_on_arbitrary_inputs(a in arb_csr(14, 14, 60)) {
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let expect = spgemm_seq(&a, &a);
        for m in all_methods() {
            let r = m.multiply(&dev, &cost, &a, &a);
            prop_assert!(r.ok(), "{} failed", m.name());
            let mut c = r.c.unwrap();
            if !r.sorted_output {
                c.sort_rows();
            }
            prop_assert!(
                c.approx_eq(&expect, 1e-9, 1e-12),
                "{} wrong", m.name()
            );
        }
    }
}
