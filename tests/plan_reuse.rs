//! Plan reuse must be *algorithmically* transparent: a reused plan
//! returns bit-identical output and memory, its timeline holds only the
//! stages that actually ran (numeric + sorting), and each of those stages
//! costs exactly what it costs on the cold path.

use proptest::prelude::*;
use speck_repro::sparse::reference::spgemm_seq;
use speck_repro::sparse::{Coo, Csr};
use speck_repro::speck::pipeline::stage;
use speck_repro::speck::SpeckSpgemm;

fn arb_csr(rows: usize, cols: usize, max_nnz: usize) -> impl Strategy<Value = Csr<f64>> {
    proptest::collection::vec(
        (
            0..rows as u32,
            0..cols as u32,
            (-500i32..500).prop_map(|v| v as f64 / 16.0 + 0.03125),
        ),
        0..=max_nnz,
    )
    .prop_map(move |trips| {
        let mut coo: Coo<f64> = Coo::new(rows, cols);
        for (r, c, v) in trips {
            coo.push(r, c, v);
        }
        coo.to_csr()
    })
}

/// Same pattern as `m`, deterministically perturbed values.
fn perturb(m: &Csr<f64>, salt: u64) -> Csr<f64> {
    Csr::from_parts_unchecked(
        m.rows(),
        m.cols(),
        m.row_ptr().to_vec(),
        m.col_idx().to_vec(),
        m.vals()
            .iter()
            .enumerate()
            .map(|(i, &v)| v * (1.0 + ((i as u64 + salt) % 13) as f64 * 1e-3))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn warm_multiply_is_bit_identical_and_skips_setup(
        a in arb_csr(24, 20, 160),
        b in arb_csr(20, 28, 160),
    ) {
        let engine = SpeckSpgemm::default();
        let (c_cold, r_cold) = engine.multiply(&a, &b);
        let (c_warm, r_warm) = engine.multiply(&a, &b);
        prop_assert!(!r_cold.reused_plan);
        prop_assert!(r_warm.reused_plan);

        // Identical output bytes.
        prop_assert_eq!(c_warm.row_ptr(), c_cold.row_ptr());
        prop_assert_eq!(c_warm.col_idx(), c_cold.col_idx());
        for (x, y) in c_warm.vals().iter().zip(c_cold.vals()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }

        // Identical peak memory (plan structures stay device-resident),
        // no more simulated time than the cold call.
        prop_assert_eq!(r_warm.peak_mem_bytes, r_cold.peak_mem_bytes);
        prop_assert!(r_warm.sim_time_s <= r_cold.sim_time_s);

        // The warm timeline holds only the executed stages, and each one
        // is bit-identical to its cold counterpart.
        for (name, st) in r_warm.timeline.stages() {
            prop_assert!(
                name == stage::NUMERIC || name == stage::SORTING,
                "unexpected stage {} in a reused call", name
            );
            let cold_secs = r_cold
                .timeline
                .stages()
                .find(|(n, _)| *n == name)
                .map(|(_, s)| s.seconds)
                .unwrap();
            prop_assert_eq!(st.seconds.to_bits(), cold_secs.to_bits());
        }
    }

    #[test]
    fn warm_multiply_with_fresh_values_is_correct(
        a in arb_csr(20, 16, 120),
        b in arb_csr(16, 22, 120),
        salt in 0u64..1000,
    ) {
        let engine = SpeckSpgemm::default();
        let _ = engine.multiply(&a, &b);
        // Same patterns, fresh values: the plan is reused, the values are
        // not — output must match the sequential reference on the new
        // values.
        let a2 = perturb(&a, salt);
        let b2 = perturb(&b, salt.wrapping_add(1));
        let (c, r) = engine.multiply(&a2, &b2);
        prop_assert!(r.reused_plan);
        let expect = spgemm_seq(&a2, &b2);
        prop_assert!(c.approx_eq(&expect, 1e-10, 1e-12));
    }
}

#[test]
fn batch_agrees_with_sequential_multiplies() {
    let ms: Vec<Csr<f64>> = (0..6)
        .map(|s| {
            speck_repro::sparse::gen::uniform_random(150 + 10 * s, 150 + 10 * s, 2, 6, s as u64)
        })
        .collect();
    let solo = SpeckSpgemm::default();
    let batch = SpeckSpgemm::default();
    let pairs: Vec<(&Csr<f64>, &Csr<f64>)> = ms.iter().map(|m| (m, m)).collect();
    let outs = batch.multiply_batch(&pairs);
    assert_eq!(outs.len(), pairs.len());
    for ((c_b, r_b), m) in outs.iter().zip(&ms) {
        let (c_s, r_s) = solo.multiply(m, m);
        assert!(c_b.approx_eq(&c_s, 0.0, 0.0), "batch result differs");
        assert_eq!(r_b.sim_time_s.to_bits(), r_s.sim_time_s.to_bits());
        assert_eq!(r_b.peak_mem_bytes, r_s.peak_mem_bytes);
    }
    // Second batch over the same patterns: every multiply is warm.
    let outs2 = batch.multiply_batch(&pairs);
    for ((c2, r2), (c1, r1)) in outs2.iter().zip(&outs) {
        assert!(r2.reused_plan);
        assert!(c2.approx_eq(c1, 0.0, 0.0));
        assert!(r2.sim_time_s < r1.sim_time_s);
    }
}

#[test]
fn explicit_plan_api_round_trips_through_the_facade() {
    let a = speck_repro::sparse::gen::banded(900, 3, 1.0, 5);
    let engine = SpeckSpgemm::default();
    let plan = engine.plan(&a, &a);
    let (c, r) = engine.execute_plan(&plan, &a, &a);
    assert!(r.reused_plan);
    assert_eq!(plan.nnz_c(), c.nnz());
    let (c_cold, r_cold) = SpeckSpgemm::default()
        .with_plan_cache_capacity(0)
        .multiply(&a, &a);
    assert!(c.approx_eq(&c_cold, 0.0, 0.0));
    let total = plan.setup_sim_time_s() + r.sim_time_s;
    assert!((total - r_cold.sim_time_s).abs() <= 1e-12 * r_cold.sim_time_s);
}
