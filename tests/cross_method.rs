//! Cross-method agreement: every baseline computes the same matrix as the
//! sequential reference (and hence as every other method) on inputs from
//! each structural family.

use speck_repro::baselines::{all_methods, cusp_esc::CuspEsc, SpgemmMethod};
use speck_repro::simt::{CostModel, DeviceConfig};
use speck_repro::sparse::gen::{banded, block_diagonal, rectangular_lp, rmat, uniform_random};
use speck_repro::sparse::reference::spgemm_seq;
use speck_repro::sparse::transpose::transpose;
use speck_repro::sparse::Csr;

fn check_all(a: &Csr<f64>, b: &Csr<f64>, what: &str) {
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    let expect = spgemm_seq(a, b);
    for method in all_methods() {
        let r = method.multiply(&dev, &cost, a, b);
        assert!(r.ok(), "{what}: {} failed: {:?}", method.name(), r.failed);
        let mut c = r.c.unwrap();
        if !r.sorted_output {
            c.sort_rows();
        }
        assert!(
            c.approx_eq(&expect, 1e-9, 1e-12),
            "{what}: {} disagrees with the reference",
            method.name()
        );
        assert!(r.sim_time_s.is_finite() && r.sim_time_s > 0.0);
        assert!(r.peak_mem_bytes > 0, "{what}: {}", method.name());
    }
    // The extra ESC representative (not in the Table 3 lineup).
    let r = CuspEsc.multiply(&dev, &cost, a, b);
    assert!(r.ok());
    assert!(
        r.c.unwrap().approx_eq(&expect, 1e-9, 1e-12),
        "{what}: cusp-esc"
    );
}

#[test]
fn agree_on_banded() {
    let a = banded(1_500, 3, 0.9, 11);
    check_all(&a, &a, "banded");
}

#[test]
fn agree_on_uniform_random() {
    let a = uniform_random(800, 800, 1, 10, 12);
    check_all(&a, &a, "uniform");
}

#[test]
fn agree_on_powerlaw() {
    let a = rmat(9, 8, 0.57, 0.19, 0.19, 13);
    check_all(&a, &a, "rmat");
}

#[test]
fn agree_on_dense_blocks() {
    let a = block_diagonal(4, 80, 1.0, 14);
    check_all(&a, &a, "blockdiag");
}

#[test]
fn agree_on_rectangular() {
    let a = rectangular_lp(250, 6_000, 20, 40, 15);
    let at = transpose(&a);
    check_all(&a, &at, "lp");
}

#[test]
fn agree_on_empty_and_identity() {
    let e: Csr<f64> = Csr::empty(64, 64);
    check_all(&e, &e, "empty");
    let i: Csr<f64> = Csr::identity(512);
    check_all(&i, &i, "identity");
}

#[test]
fn memory_ordering_matches_paper_table_3() {
    // Relative peak-memory ranking over a mixed matrix (paper Table 3's
    // m/m_b row): speck lowest, cusparse close, then nsparse, then the
    // product-bound methods (rmerge < bhsparse < ac with 10x overalloc).
    let a = uniform_random(1_200, 1_200, 4, 12, 16);
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    let mem = |name: &str| {
        all_methods()
            .iter()
            .find(|m| m.name() == name)
            .map(|m| m.multiply(&dev, &cost, &a, &a).peak_mem_bytes)
            .unwrap()
    };
    let speck = mem("speck");
    assert!(
        mem("cusparse") < 2 * speck,
        "cusparse should be close to speck"
    );
    assert!(mem("nsparse") >= speck);
    assert!(mem("rmerge") > speck);
    assert!(mem("bhsparse") > mem("nsparse"));
    assert!(mem("ac") > mem("bhsparse"), "AC's 10x overallocation leads");
}

#[test]
fn speck_never_far_from_best_gpu_method() {
    // Paper §6.1: spECK's relative time vs the per-matrix best is 1.08x on
    // average over matrices with >15k products; on small matrices its
    // multi-pass overheads genuinely show. Allow 3.5x on any single matrix
    // of this mixed (partly small) mini-corpus.
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    let mats = [
        banded(4_000, 2, 1.0, 21),
        uniform_random(2_000, 2_000, 3, 9, 22),
        rmat(10, 8, 0.57, 0.19, 0.19, 23),
        block_diagonal(8, 64, 1.0, 24),
    ];
    for (i, a) in mats.iter().enumerate() {
        let mut best = f64::INFINITY;
        let mut speck = f64::INFINITY;
        for m in all_methods() {
            if m.name() == "mkl" {
                continue;
            }
            let r = m.multiply(&dev, &cost, a, a);
            if r.ok() {
                best = best.min(r.sim_time_s);
                if m.name() == "speck" {
                    speck = r.sim_time_s;
                }
            }
        }
        assert!(
            speck <= 3.5 * best,
            "matrix {i}: speck {speck} vs best {best}"
        );
    }
}
