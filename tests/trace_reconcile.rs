//! Property tests reconciling the execution trace with every other
//! observability surface: the [`Timeline`] a report carries, the engine's
//! metrics counters, and the simulator's own scheduler. A trace is only
//! trustworthy if it is an *exact* alternative view of the run — same
//! seconds bit-for-bit, same launch counts, same block schedule — so all
//! comparisons here are bitwise, not approximate.

use proptest::prelude::*;
use speck_repro::simt::KernelConfig;
use speck_repro::sparse::{Coo, Csr};
use speck_repro::speck::SpeckSpgemm;

fn arb_square_csr(n: usize, max_nnz: usize) -> impl Strategy<Value = Csr<f64>> {
    proptest::collection::vec(
        (
            0..n as u32,
            0..n as u32,
            (-200i32..200).prop_map(|v| v as f64 / 16.0 + 0.125),
        ),
        1..=max_nnz,
    )
    .prop_map(move |trips| {
        let mut coo: Coo<f64> = Coo::new(n, n);
        for (r, c, v) in trips {
            coo.push(r, c, v);
        }
        coo.to_csr()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Capture must not perturb the simulation, and the trace must fold
    /// back to the report's numbers exactly.
    #[test]
    fn trace_reconciles_with_timeline(a in arb_square_csr(48, 500)) {
        let plain = SpeckSpgemm::default().with_plan_cache_capacity(0);
        let traced = SpeckSpgemm::default()
            .with_plan_cache_capacity(0)
            .with_tracing(true);
        let (c0, r0) = plain.multiply(&a, &a);
        let (c1, r1) = traced.multiply(&a, &a);

        // Tracing is sim-neutral: identical result and identical time,
        // bit for bit.
        prop_assert!(c0.pattern_eq(&c1));
        prop_assert_eq!(r0.sim_time_s.to_bits(), r1.sim_time_s.to_bits());
        prop_assert!(r0.trace.is_none());

        let tr = r1.trace.as_ref().expect("tracing engine attaches a trace");
        prop_assert_eq!(tr.total_seconds().to_bits(), r1.sim_time_s.to_bits());

        // Per-stage seconds and launch counts match the Timeline exactly.
        let stage_s = tr.per_stage_seconds();
        let stage_n = tr.per_stage_launches();
        for (name, st) in r1.timeline.stages() {
            let s = stage_s.get(name).copied().unwrap_or(0.0);
            prop_assert_eq!(s.to_bits(), st.seconds.to_bits(), "stage {}", name);
        }
        // Kernel-record counts per stage match the metrics launch counters.
        let snap = traced.metrics_snapshot();
        for (name, n) in &stage_n {
            let key = format!("sim/stage/{name}/launches");
            let counted = snap.counters.get(&key).copied().unwrap_or(0);
            prop_assert_eq!(*n, counted, "stage {}", name);
        }
    }

    /// Per-kernel block traces must replay through the scheduler to the
    /// recorded makespan, and cover every block of the grid.
    #[test]
    fn block_events_refold_to_body_cycles(a in arb_square_csr(40, 400)) {
        let traced = SpeckSpgemm::default()
            .with_plan_cache_capacity(0)
            .with_tracing(true);
        let (_, rep) = traced.multiply(&a, &a);
        let tr = rep.trace.as_ref().expect("trace");
        let mut kernels = 0usize;
        for (_, k) in tr.kernels() {
            kernels += 1;
            let blocks = k.blocks.as_ref().expect("per-block capture enabled");
            prop_assert_eq!(blocks.events.len(), k.grid);
            prop_assert_eq!(blocks.body_cycles.to_bits(), k.body_cycles.to_bits());
            let cfg = KernelConfig::new(k.threads, k.scratch_bytes);
            let refold = blocks.refold_body_cycles(&traced.device, cfg);
            prop_assert_eq!(refold.to_bits(), k.body_cycles.to_bits());
            // Annotated rows stay within the output matrix.
            if let Some(ann) = &k.annotations {
                prop_assert_eq!(ann.len(), k.grid);
                for b in ann {
                    for &row in &b.rows {
                        prop_assert!((row as usize) < a.rows());
                    }
                }
            }
        }
        prop_assert!(kernels > 0);
    }

    /// The Chrome export is deterministic and lossless: two engines give
    /// byte-identical JSON, and parse -> re-export is the identity.
    #[test]
    fn chrome_export_is_deterministic_and_lossless(a in arb_square_csr(32, 300)) {
        let run = || {
            let engine = SpeckSpgemm::default()
                .with_plan_cache_capacity(0)
                .with_tracing(true);
            let (_, rep) = engine.multiply(&a, &a);
            rep.trace.expect("trace").chrome_trace_json()
        };
        let j1 = run();
        let j2 = run();
        prop_assert_eq!(&j1, &j2);
        let parsed = speck_repro::speck::ExecutionTrace::from_chrome_trace(&j1)
            .expect("exported trace parses");
        prop_assert_eq!(parsed.chrome_trace_json(), j1);
    }
}
