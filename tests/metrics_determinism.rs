//! The metrics determinism contract (see `speck_core::metrics`): the
//! canonical-JSON `MetricsSnapshot` — counters and histograms, the section
//! `ci.sh --metrics` gates exactly — must be byte-identical across
//! repeated runs of the same multiply sequence, on both the cold and the
//! warm (plan-reuse) path, regardless of host thread scheduling.

use proptest::prelude::*;
use speck_repro::sparse::{Coo, Csr};
use speck_repro::speck::SpeckSpgemm;

fn arb_csr(rows: usize, cols: usize, max_nnz: usize) -> impl Strategy<Value = Csr<f64>> {
    proptest::collection::vec(
        (
            0..rows as u32,
            0..cols as u32,
            (-500i32..500).prop_map(|v| v as f64 / 16.0 + 0.03125),
        ),
        0..=max_nnz,
    )
    .prop_map(move |trips| {
        let mut coo: Coo<f64> = Coo::new(rows, cols);
        for (r, c, v) in trips {
            coo.push(r, c, v);
        }
        coo.to_csr()
    })
}

/// One cold multiply then one warm (plan-reusing) multiply on a fresh
/// engine; returns the canonical snapshot JSON after each.
fn cold_then_warm(a: &Csr<f64>, b: &Csr<f64>) -> (String, String) {
    let engine = SpeckSpgemm::default();
    let (_, r1) = engine.multiply(a, b);
    assert!(!r1.reused_plan);
    let cold = engine.metrics_snapshot().canonical_json();
    let (_, r2) = engine.multiply(a, b);
    assert!(r2.reused_plan);
    let warm = engine.metrics_snapshot().canonical_json();
    (cold, warm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn canonical_snapshot_is_byte_identical_across_runs(
        a in arb_csr(14, 12, 60),
        b in arb_csr(12, 16, 60),
    ) {
        let (cold1, warm1) = cold_then_warm(&a, &b);
        let (cold2, warm2) = cold_then_warm(&a, &b);
        // Cold path: fresh engines running the same multiply must emit
        // byte-identical canonical snapshots.
        prop_assert_eq!(&cold1, &cold2);
        // Warm path: the plan-reuse execution is part of the contract too.
        prop_assert_eq!(&warm1, &warm2);
        // The warm snapshot extends the cold one (counters only grow), and
        // records the cache hit.
        prop_assert_ne!(&cold1, &warm1);
        prop_assert!(warm1.contains("\"plan_cache/hits\": 1"));
        prop_assert!(cold1.contains("\"plan_cache/hits\": 0"));
    }
}

#[test]
fn snapshot_roundtrips_and_matches_itself() {
    // End-to-end through the real pipeline: full JSON parses back to an
    // equal snapshot and the comparator reports zero drift against itself.
    use speck_repro::sparse::gen::uniform_random;
    use speck_repro::speck::metrics::{compare_snapshots, MetricsSnapshot};

    let a = uniform_random(300, 300, 2, 8, 5);
    let engine = SpeckSpgemm::default();
    let _ = engine.multiply(&a, &a);
    let _ = engine.multiply(&a, &a);
    let mut snap = engine.metrics_snapshot();
    snap.wall_tolerance = Some(0.5);
    let parsed = MetricsSnapshot::parse_json(&snap.full_json()).expect("parse own output");
    assert_eq!(parsed, snap);
    assert!(compare_snapshots(&snap, &parsed, 0.1).is_empty());
}

#[test]
fn batch_multiply_snapshot_is_deterministic() {
    // multiply_batch runs concurrently over the rayon pool — the
    // registry's atomics must still produce an order-independent, stable
    // canonical snapshot.
    use speck_repro::sparse::gen::{banded, uniform_random};

    let run = || {
        let ms = [
            uniform_random(200, 200, 2, 6, 11),
            banded(300, 3, 1.0, 12),
            uniform_random(150, 150, 2, 8, 13),
        ];
        let engine = SpeckSpgemm::default();
        let pairs: Vec<(&Csr<f64>, &Csr<f64>)> = ms.iter().map(|m| (m, m)).collect();
        let _ = engine.multiply_batch(&pairs);
        let _ = engine.multiply_batch(&pairs); // warm round
        engine.metrics_snapshot().canonical_json()
    };
    assert_eq!(run(), run());
}
