//! End-to-end integration: spECK against the sequential reference across
//! every generator family, both multiplication modes, both precisions and
//! all ablation configurations.

use speck_repro::sparse::gen::{
    banded, block_diagonal, common_matrices, poisson_2d, poisson_3d, rectangular_lp, rmat,
    uniform_random, with_hub_rows,
};
use speck_repro::sparse::reference::spgemm_seq;
use speck_repro::sparse::transpose::transpose;
use speck_repro::sparse::Csr;
use speck_repro::speck::{GlobalLbMode, SpeckConfig, SpeckSpgemm};

fn check(a: &Csr<f64>, b: &Csr<f64>, what: &str) {
    let engine = SpeckSpgemm::default();
    let (c, report) = engine.multiply(a, b);
    c.validate().unwrap_or_else(|e| panic!("{what}: {e}"));
    let expect = spgemm_seq(a, b);
    assert!(c.approx_eq(&expect, 1e-9, 1e-12), "{what}: wrong result");
    assert!(
        report.sim_time_s > 0.0 && report.sim_time_s.is_finite(),
        "{what}"
    );
    assert_eq!(report.products, a.products(b), "{what}: product count");
}

#[test]
fn banded_family() {
    for (i, &(n, hb, fill)) in [
        (500usize, 1usize, 1.0f64),
        (2_000, 4, 0.8),
        (6_000, 16, 0.6),
    ]
    .iter()
    .enumerate()
    {
        let a = banded(n, hb, fill, 900 + i as u64);
        check(&a, &a, &format!("banded {n}/{hb}"));
    }
}

#[test]
fn stencil_family() {
    let a = poisson_2d(50, 50, 0.01, 1);
    check(&a, &a, "poisson2d");
    let a = poisson_3d(14, 14, 14, 0.01, 2);
    check(&a, &a, "poisson3d");
}

#[test]
fn powerlaw_family() {
    for scale in [8u32, 10, 11] {
        let a = rmat(scale, 8, 0.57, 0.19, 0.19, scale as u64);
        check(&a, &a, &format!("rmat s{scale}"));
    }
}

#[test]
fn blockdiag_family() {
    let a = block_diagonal(8, 64, 1.0, 3);
    check(&a, &a, "blockdiag dense");
    let a = block_diagonal(4, 128, 0.5, 4);
    check(&a, &a, "blockdiag half");
}

#[test]
fn rectangular_times_transpose() {
    let a = rectangular_lp(400, 9_000, 30, 60, 5);
    let at = transpose(&a);
    check(&a, &at, "lp A*A^T");
    // And the transposed orientation too.
    check(&at, &a, "lp A^T*A");
}

#[test]
fn hub_rows_family() {
    let a = with_hub_rows(4_000, 1, 8, 1_500, 6);
    check(&a, &a, "hub rows");
}

#[test]
fn all_common_standins() {
    for cm in common_matrices() {
        let (a, b) = cm.pair();
        check(&a, &b, cm.name);
    }
}

#[test]
fn all_ablation_configs_on_a_mixed_matrix() {
    let a = rmat(10, 8, 0.57, 0.19, 0.19, 77);
    let expect = spgemm_seq(&a, &a);
    let configs = [
        SpeckConfig::default(),
        SpeckConfig::hash_only(),
        SpeckConfig::hash_dense(),
        SpeckConfig::fixed_local_lb(),
        SpeckConfig {
            global_lb: GlobalLbMode::AlwaysOn,
            ..SpeckConfig::default()
        },
        SpeckConfig {
            global_lb: GlobalLbMode::AlwaysOff,
            ..SpeckConfig::default()
        },
        SpeckConfig {
            block_merge: false,
            ..SpeckConfig::default()
        },
    ];
    for (i, cfg) in configs.into_iter().enumerate() {
        let engine = SpeckSpgemm::with_config(cfg);
        let (c, _) = engine.multiply(&a, &a);
        assert!(c.approx_eq(&expect, 1e-9, 1e-12), "config {i}");
    }
}

#[test]
fn f32_precision_end_to_end() {
    let a64 = uniform_random(600, 600, 2, 10, 8);
    let a: Csr<f32> = Csr::from_parts_unchecked(
        a64.rows(),
        a64.cols(),
        a64.row_ptr().to_vec(),
        a64.col_idx().to_vec(),
        a64.vals().iter().map(|&v| v as f32).collect(),
    );
    let engine = SpeckSpgemm::default();
    let (c, _) = engine.multiply(&a, &a);
    let expect64 = spgemm_seq(&a64, &a64);
    assert!(c.pattern_eq(&Csr::from_parts_unchecked(
        expect64.rows(),
        expect64.cols(),
        expect64.row_ptr().to_vec(),
        expect64.col_idx().to_vec(),
        expect64.vals().iter().map(|&v| v as f32).collect(),
    )));
}

#[test]
fn degenerate_inputs() {
    // Empty matrix.
    let a: Csr<f64> = Csr::empty(100, 100);
    check(&a, &a, "empty");
    // Identity.
    let i: Csr<f64> = Csr::identity(1000);
    check(&i, &i, "identity");
    // Single row, single column shapes.
    let a = uniform_random(1, 64, 8, 8, 1);
    let at = transpose(&a);
    check(&a, &at, "1xN * Nx1");
    // A matrix with empty rows interleaved.
    let mut coo = speck_repro::sparse::Coo::<f64>::new(64, 64);
    for i in (0..64u32).step_by(3) {
        coo.push(i, (i * 7) % 64, 1.5);
    }
    let a = coo.to_csr();
    check(&a, &a, "sparse with empty rows");
}
