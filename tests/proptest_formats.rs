//! Property-based tests on the sparse-matrix substrate: format
//! conversions, transposition and I/O must preserve the matrix exactly on
//! arbitrary inputs.

use proptest::prelude::*;
use speck_repro::sparse::io::{bin, mm};
use speck_repro::sparse::ops::{add, add_scaled, diagonal, scale};
use speck_repro::sparse::transpose::transpose;
use speck_repro::sparse::{Coo, Csr, DenseMatrix};

/// Strategy: an arbitrary small CSR matrix built through COO (duplicates
/// allowed and summed).
fn arb_csr(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr<f64>> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(rows, cols)| {
        proptest::collection::vec(
            (
                0..rows as u32,
                0..cols as u32,
                proptest::num::i32::ANY.prop_map(|v| ((v % 1000) + 1001) as f64 / 8.0), // strictly positive: duplicate sums never cancel to zero
            ),
            0..=max_nnz,
        )
        .prop_map(move |trips| {
            let mut coo: Coo<f64> = Coo::new(rows, cols);
            for (r, c, v) in trips {
                coo.push(r, c, v);
            }
            coo.to_csr()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_is_always_valid(m in arb_csr(24, 120)) {
        prop_assert!(m.validate().is_ok());
    }

    #[test]
    fn coo_roundtrip_is_identity(m in arb_csr(24, 120)) {
        let back = m.to_coo().to_csr();
        prop_assert!(m.approx_eq(&back, 0.0, 1e-12));
    }

    #[test]
    fn transpose_is_an_involution(m in arb_csr(24, 120)) {
        let tt = transpose(&transpose(&m));
        prop_assert!(m.approx_eq(&tt, 0.0, 0.0));
    }

    #[test]
    fn transpose_swaps_entries(m in arb_csr(16, 60)) {
        let t = transpose(&m);
        prop_assert_eq!(t.rows(), m.cols());
        prop_assert_eq!(t.cols(), m.rows());
        prop_assert_eq!(t.nnz(), m.nnz());
        let d = DenseMatrix::from_csr(&m);
        let dt = DenseMatrix::from_csr(&t);
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                prop_assert_eq!(d.get(r, c), dt.get(c, r));
            }
        }
    }

    #[test]
    fn matrix_market_roundtrip(m in arb_csr(20, 80)) {
        let mut buf = Vec::new();
        mm::write_matrix_market(&m, &mut buf).unwrap();
        let back: Csr<f64> = mm::read_matrix_market(buf.as_slice()).unwrap();
        prop_assert!(m.approx_eq(&back, 1e-14, 1e-300));
    }

    #[test]
    fn binary_roundtrip_is_exact(m in arb_csr(20, 80)) {
        let mut buf = Vec::new();
        bin::write_bin_csr(&m, &mut buf).unwrap();
        let back: Csr<f64> = bin::read_bin_csr(buf.as_slice()).unwrap();
        prop_assert!(m.approx_eq(&back, 0.0, 0.0));
    }

    #[test]
    fn dense_roundtrip_preserves_nonzeros(m in arb_csr(16, 60)) {
        let back = DenseMatrix::from_csr(&m).to_csr();
        // Exact zeros stored in m would be dropped, but the generator
        // never produces them, so the roundtrip is exact.
        prop_assert!(m.approx_eq(&back, 0.0, 0.0));
    }

    #[test]
    fn sort_rows_is_idempotent_and_canonical(m in arb_csr(20, 100)) {
        let mut once = m.clone();
        once.sort_rows();
        let mut twice = once.clone();
        twice.sort_rows();
        prop_assert!(once.approx_eq(&twice, 0.0, 0.0));
        prop_assert!(once.is_sorted());
    }

    #[test]
    fn add_is_commutative_and_matches_dense(
        pair in (1usize..16, 1usize..16).prop_flat_map(|(r, c)| {
            // Two matrices with the SAME shape.
            let gen = move |seed_off: u64| {
                proptest::collection::vec(
                    (0..r as u32, 0..c as u32, (1i32..100).prop_map(|v| v as f64 / 4.0)),
                    0..40,
                )
                .prop_map(move |trips| {
                    let _ = seed_off;
                    let mut coo: Coo<f64> = Coo::new(r, c);
                    for (rr, cc, v) in trips {
                        coo.push(rr, cc, v);
                    }
                    coo.to_csr()
                })
            };
            (gen(0), gen(1))
        }),
    ) {
        let (a, b) = pair;
        let ab = add(&a, &b).unwrap();
        let ba = add(&b, &a).unwrap();
        prop_assert!(ab.approx_eq(&ba, 1e-12, 1e-12));
        ab.validate().unwrap();
        let da = DenseMatrix::from_csr(&a);
        let db = DenseMatrix::from_csr(&b);
        let dc = DenseMatrix::from_csr(&ab);
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                prop_assert!((dc.get(r, c) - (da.get(r, c) + db.get(r, c))).abs() < 1e-9);
            }
        }
        // alpha*A + 0*A == scale(A, alpha).
        let s = add_scaled(2.5, &a, 0.0, &a).unwrap();
        prop_assert!(s.approx_eq(&scale(&a, 2.5), 1e-12, 1e-12));
        // Diagonal of A+B is the sum of diagonals.
        let d_ab = diagonal(&ab);
        let d_a = diagonal(&a);
        let d_b = diagonal(&b);
        for i in 0..d_ab.len() {
            prop_assert!((d_ab[i] - (d_a[i] + d_b[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn products_equals_reference_expansion(m in arb_csr(16, 60)) {
        // products() needs compatible shapes; pair the matrix with its
        // transpose, which is always multipliable.
        let t = transpose(&m);
        let mut count = 0u64;
        for (_, cols, _) in m.iter_rows() {
            for &k in cols {
                count += t.row_nnz(k as usize) as u64;
            }
        }
        prop_assert_eq!(m.products(&t), count);
    }
}
