//! Locks the allocation behaviour of the hot path: once an engine's
//! workspace pools are warm, repeated multiplications must allocate
//! substantially less than a fresh engine does, and the steady-state
//! allocation count must stay stable from call to call.
//!
//! This file holds exactly one test so the process-wide counting
//! allocator only ever sees the work under measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use speck_repro::sparse::gen::uniform_random;
use speck_repro::speck::SpeckSpgemm;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    f();
    ALLOC_CALLS.load(Ordering::SeqCst) - before
}

#[test]
fn warm_engine_allocates_less_and_stays_steady() {
    let a = uniform_random(600, 600, 2, 8, 42);

    // A fresh engine pays the full workspace cost every call.
    let fresh = count_allocs(|| {
        let engine = SpeckSpgemm::default();
        let _ = engine.multiply(&a, &a);
    });

    // Reused engine: warm the pools, then measure two steady-state calls.
    let engine = SpeckSpgemm::default();
    for _ in 0..3 {
        let _ = engine.multiply(&a, &a);
    }
    let steady1 = count_allocs(|| {
        let _ = engine.multiply(&a, &a);
    });
    let steady2 = count_allocs(|| {
        let _ = engine.multiply(&a, &a);
    });

    // Warm pools may never cost more than a cold start (beyond checkout
    // noise).
    assert!(
        steady1 <= fresh + fresh / 20,
        "steady-state multiply allocated {steady1} times vs {fresh} cold"
    );
    // Absolute lock on the hot path: this 600-row multiply currently sits
    // around 1.6k allocations. Reintroducing per-row output staging
    // (two vectors per row) or per-block accumulator construction would at
    // least double that, so a 2.5k ceiling catches such regressions while
    // leaving ample headroom for allocator noise.
    assert!(
        steady1 < 2_500,
        "steady-state multiply allocated {steady1} times — per-block/per-row allocations are back"
    );
    // And steady state must be steady: back-to-back warm calls may only
    // drift by pool-checkout ordering, not by per-block allocations.
    let (lo, hi) = (steady1.min(steady2), steady1.max(steady2));
    assert!(
        hi - lo <= lo / 5 + 64,
        "steady-state allocation count drifts: {steady1} then {steady2}"
    );
}
