//! Determinism: the simulator's results and timings must not depend on
//! host thread scheduling, and generators must be reproducible.

use speck_repro::baselines::all_methods;
use speck_repro::simt::{CostModel, DeviceConfig};
use speck_repro::sparse::gen::{rmat, uniform_random};
use speck_repro::speck::SpeckSpgemm;

#[test]
fn speck_times_and_results_are_bit_stable() {
    let a = rmat(9, 8, 0.57, 0.19, 0.19, 31);
    let engine = SpeckSpgemm::default();
    let (c1, r1) = engine.multiply(&a, &a);
    for _ in 0..3 {
        let (c2, r2) = engine.multiply(&a, &a);
        assert!(c1.approx_eq(&c2, 0.0, 0.0), "results must be identical");
        assert_eq!(
            r1.sim_time_s, r2.sim_time_s,
            "simulated time must be stable"
        );
        assert_eq!(r1.peak_mem_bytes, r2.peak_mem_bytes);
        assert_eq!(r1.numeric_methods, r2.numeric_methods);
    }
}

#[test]
fn every_method_is_deterministic() {
    let a = uniform_random(400, 400, 2, 8, 33);
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    for m in all_methods() {
        let r1 = m.multiply(&dev, &cost, &a, &a);
        let r2 = m.multiply(&dev, &cost, &a, &a);
        assert_eq!(r1.sim_time_s, r2.sim_time_s, "{}", m.name());
        assert_eq!(r1.peak_mem_bytes, r2.peak_mem_bytes, "{}", m.name());
        match (r1.c, r2.c) {
            (Some(c1), Some(c2)) => assert!(c1.approx_eq(&c2, 0.0, 0.0), "{}", m.name()),
            (None, None) => {}
            _ => panic!("{}: inconsistent failure", m.name()),
        }
    }
}

#[test]
fn generators_are_reproducible_across_calls() {
    let a1 = rmat(8, 8, 0.57, 0.19, 0.19, 5);
    let a2 = rmat(8, 8, 0.57, 0.19, 0.19, 5);
    assert!(a1.approx_eq(&a2, 0.0, 0.0));
    let b1 = uniform_random(100, 100, 1, 9, 6);
    let b2 = uniform_random(100, 100, 1, 9, 6);
    assert!(b1.approx_eq(&b2, 0.0, 0.0));
    // Different seeds give different matrices.
    let b3 = uniform_random(100, 100, 1, 9, 7);
    assert!(!b1.approx_eq(&b3, 0.0, 0.0));
}

#[test]
fn timeline_is_stable_across_runs() {
    let a = uniform_random(600, 600, 3, 7, 34);
    let engine = SpeckSpgemm::default();
    let (_, r1) = engine.multiply(&a, &a);
    let (_, r2) = engine.multiply(&a, &a);
    let s1: Vec<(String, f64)> = r1
        .timeline
        .stages()
        .map(|(n, s)| (n.to_string(), s.seconds))
        .collect();
    let s2: Vec<(String, f64)> = r2
        .timeline
        .stages()
        .map(|(n, s)| (n.to_string(), s.seconds))
        .collect();
    assert_eq!(s1, s2);
}
