//! Determinism: the simulator's results and timings must not depend on
//! host thread scheduling, and generators must be reproducible.

use speck_repro::baselines::all_methods;
use speck_repro::simt::{CostModel, DeviceConfig};
use speck_repro::sparse::gen::{rmat, uniform_random};
use speck_repro::speck::SpeckSpgemm;

#[test]
fn speck_times_and_results_are_bit_stable() {
    let a = rmat(9, 8, 0.57, 0.19, 0.19, 31);
    // Cold path: with the plan cache disabled, every call runs the full
    // pipeline and must be bit-stable.
    let cold = SpeckSpgemm::default().with_plan_cache_capacity(0);
    let (c1, r1) = cold.multiply(&a, &a);
    for _ in 0..3 {
        let (c2, r2) = cold.multiply(&a, &a);
        assert!(!r2.reused_plan);
        assert!(c1.approx_eq(&c2, 0.0, 0.0), "results must be identical");
        assert_eq!(
            r1.sim_time_s, r2.sim_time_s,
            "simulated time must be stable"
        );
        assert_eq!(r1.peak_mem_bytes, r2.peak_mem_bytes);
        assert_eq!(r1.numeric_methods, r2.numeric_methods);
    }
    // Warm path: a caching engine reuses the plan after the first call —
    // identical results and memory, stable (and lower) simulated time.
    let engine = SpeckSpgemm::default();
    let (d1, w1) = engine.multiply(&a, &a);
    assert!(!w1.reused_plan);
    assert_eq!(w1.sim_time_s, r1.sim_time_s, "cold call matches cold path");
    let (d2, w2) = engine.multiply(&a, &a);
    assert!(w2.reused_plan);
    assert!(d1.approx_eq(&d2, 0.0, 0.0));
    assert_eq!(w1.peak_mem_bytes, w2.peak_mem_bytes);
    assert!(w2.sim_time_s < w1.sim_time_s);
    for _ in 0..3 {
        let (d3, w3) = engine.multiply(&a, &a);
        assert!(w3.reused_plan);
        assert!(d2.approx_eq(&d3, 0.0, 0.0));
        assert_eq!(w2.sim_time_s, w3.sim_time_s, "warm calls are bit-stable");
        assert_eq!(w2.peak_mem_bytes, w3.peak_mem_bytes);
    }
}

#[test]
fn every_method_is_deterministic() {
    let a = uniform_random(400, 400, 2, 8, 33);
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    for m in all_methods() {
        let r1 = m.multiply(&dev, &cost, &a, &a);
        let r2 = m.multiply(&dev, &cost, &a, &a);
        assert_eq!(r1.sim_time_s, r2.sim_time_s, "{}", m.name());
        assert_eq!(r1.peak_mem_bytes, r2.peak_mem_bytes, "{}", m.name());
        match (r1.c, r2.c) {
            (Some(c1), Some(c2)) => assert!(c1.approx_eq(&c2, 0.0, 0.0), "{}", m.name()),
            (None, None) => {}
            _ => panic!("{}: inconsistent failure", m.name()),
        }
    }
}

#[test]
fn generators_are_reproducible_across_calls() {
    let a1 = rmat(8, 8, 0.57, 0.19, 0.19, 5);
    let a2 = rmat(8, 8, 0.57, 0.19, 0.19, 5);
    assert!(a1.approx_eq(&a2, 0.0, 0.0));
    let b1 = uniform_random(100, 100, 1, 9, 6);
    let b2 = uniform_random(100, 100, 1, 9, 6);
    assert!(b1.approx_eq(&b2, 0.0, 0.0));
    // Different seeds give different matrices.
    let b3 = uniform_random(100, 100, 1, 9, 7);
    assert!(!b1.approx_eq(&b3, 0.0, 0.0));
}

#[test]
fn timeline_is_stable_across_runs() {
    let a = uniform_random(600, 600, 3, 7, 34);
    let stages = |r: &speck_repro::speck::MultiplyReport| -> Vec<(String, f64)> {
        r.timeline
            .stages()
            .map(|(n, s)| (n.to_string(), s.seconds))
            .collect()
    };
    // Cold timelines are identical run to run.
    let cold = SpeckSpgemm::default().with_plan_cache_capacity(0);
    let (_, r1) = cold.multiply(&a, &a);
    let (_, r2) = cold.multiply(&a, &a);
    assert_eq!(stages(&r1), stages(&r2));
    // Warm timelines are identical run to run too — and are a strict
    // subset of the cold stages (numeric + sorting only).
    let engine = SpeckSpgemm::default();
    let _ = engine.multiply(&a, &a);
    let (_, w1) = engine.multiply(&a, &a);
    let (_, w2) = engine.multiply(&a, &a);
    assert!(w1.reused_plan && w2.reused_plan);
    assert_eq!(stages(&w1), stages(&w2));
    let cold_stages = stages(&r1);
    for (name, secs) in stages(&w1) {
        assert!(
            cold_stages.contains(&(name.clone(), secs)),
            "warm stage {name} must match its cold counterpart bit for bit"
        );
    }
}
