//! Workspace reuse must be invisible: an engine that has already pooled
//! buffers from earlier multiplications must return the same bytes and
//! charge the same simulated cost as a freshly built engine.
//!
//! Plan *reuse* is deliberately visible (it skips setup kernels), so the
//! neutrality checks here run with the plan cache disabled; the shared
//! plan cache gets its own assertion at the bottom and a full suite in
//! `tests/plan_reuse.rs`.

use proptest::prelude::*;
use speck_repro::sparse::{Coo, Csr};
use speck_repro::speck::SpeckSpgemm;

fn arb_csr(rows: usize, cols: usize, max_nnz: usize) -> impl Strategy<Value = Csr<f64>> {
    proptest::collection::vec(
        (
            0..rows as u32,
            0..cols as u32,
            (-500i32..500).prop_map(|v| v as f64 / 16.0 + 0.03125),
        ),
        0..=max_nnz,
    )
    .prop_map(move |trips| {
        let mut coo: Coo<f64> = Coo::new(rows, cols);
        for (r, c, v) in trips {
            coo.push(r, c, v);
        }
        coo.to_csr()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn reused_engine_is_byte_identical_to_fresh(
        a in arb_csr(24, 20, 160),
        b in arb_csr(20, 28, 160),
    ) {
        let reused = SpeckSpgemm::default().with_plan_cache_capacity(0);
        // Prime the pools so the second call runs entirely on recycled
        // buffers.
        let _ = reused.multiply(&a, &b);
        let (c_r, r_r) = reused.multiply(&a, &b);

        let fresh = SpeckSpgemm::default().with_plan_cache_capacity(0);
        let (c_f, r_f) = fresh.multiply(&a, &b);

        prop_assert_eq!(c_r.row_ptr(), c_f.row_ptr());
        prop_assert_eq!(c_r.col_idx(), c_f.col_idx());
        prop_assert_eq!(c_r.vals().len(), c_f.vals().len());
        for (x, y) in c_r.vals().iter().zip(c_f.vals()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        prop_assert_eq!(r_r.sim_time_s.to_bits(), r_f.sim_time_s.to_bits());
        prop_assert_eq!(r_r.peak_mem_bytes, r_f.peak_mem_bytes);
    }
}

#[test]
fn pools_survive_scalar_type_changes() {
    // One engine alternating f64 and f32 work keeps one pool per type;
    // neither interferes with the other's results or simulated cost.
    let engine = SpeckSpgemm::default().with_plan_cache_capacity(0);
    let a64 = speck_repro::sparse::gen::uniform_random(200, 200, 2, 8, 17);
    let a32: Csr<f32> = Csr::from_parts_unchecked(
        a64.rows(),
        a64.cols(),
        a64.row_ptr().to_vec(),
        a64.col_idx().to_vec(),
        a64.vals().iter().map(|&v| v as f32).collect(),
    );
    let (c64_first, r64_first) = engine.multiply(&a64, &a64);
    let (c32_first, r32_first) = engine.multiply(&a32, &a32);
    for _ in 0..2 {
        let (c64, r64) = engine.multiply(&a64, &a64);
        let (c32, r32) = engine.multiply(&a32, &a32);
        assert!(c64.approx_eq(&c64_first, 0.0, 0.0));
        assert!(c32.approx_eq(&c32_first, 0.0, 0.0));
        assert_eq!(r64.sim_time_s, r64_first.sim_time_s);
        assert_eq!(r32.sim_time_s, r32_first.sim_time_s);
        assert_eq!(r64.peak_mem_bytes, r64_first.peak_mem_bytes);
        assert_eq!(r32.peak_mem_bytes, r32_first.peak_mem_bytes);
    }
    assert!(
        engine.workspaces().total_idle() >= 2,
        "both pools populated"
    );
}

#[test]
fn cloned_engines_share_pools_and_plans() {
    let engine = SpeckSpgemm::default();
    let clone = engine.clone();
    let a = speck_repro::sparse::gen::rmat(8, 6, 0.57, 0.19, 0.19, 23);
    let (c1, r1) = engine.multiply(&a, &a);
    // The clone shares the plan cache: its first call on the same pattern
    // is already warm, with identical bytes and memory but less simulated
    // time (no setup stages).
    let (c2, r2) = clone.multiply(&a, &a);
    assert!(!r1.reused_plan);
    assert!(r2.reused_plan);
    assert!(c1.approx_eq(&c2, 0.0, 0.0));
    assert_eq!(r1.peak_mem_bytes, r2.peak_mem_bytes);
    assert!(r2.sim_time_s < r1.sim_time_s);
    let (hits, misses) = engine.plan_cache_stats();
    assert_eq!((hits, misses), (1, 1));
}
