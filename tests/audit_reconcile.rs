//! Property tests reconciling the decision audit with the pipeline it
//! describes. The audit is only trustworthy if (a) turning it on never
//! changes what the pipeline computes — same output, same simulated time
//! bit-for-bit — and (b) its own numbers are internally consistent: the
//! shadow-cost estimate of the *chosen* option is the identity shadow
//! cost of the measured execution, so it must equal the recorded measured
//! cycles bit-for-bit for every decision.

use proptest::prelude::*;
use speck_repro::sparse::{Coo, Csr};
use speck_repro::speck::{diff_reports, DecisionReport, SpeckSpgemm, Verdict};

fn arb_square_csr(n: usize, max_nnz: usize) -> impl Strategy<Value = Csr<f64>> {
    proptest::collection::vec(
        (
            0..n as u32,
            0..n as u32,
            (-200i32..200).prop_map(|v| v as f64 / 16.0 + 0.125),
        ),
        1..=max_nnz,
    )
    .prop_map(move |trips| {
        let mut coo: Coo<f64> = Coo::new(n, n);
        for (r, c, v) in trips {
            coo.push(r, c, v);
        }
        coo.to_csr()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Auditing must not perturb the simulation: audit-on and audit-off
    /// runs produce identical results and identical reports.
    #[test]
    fn audit_is_simulation_neutral(a in arb_square_csr(48, 500)) {
        let plain = SpeckSpgemm::default().with_plan_cache_capacity(0);
        let audited = SpeckSpgemm::default()
            .with_plan_cache_capacity(0)
            .with_auditing(true);
        let (c0, r0) = plain.multiply(&a, &a);
        let (c1, r1) = audited.multiply(&a, &a);

        prop_assert!(c0.pattern_eq(&c1));
        prop_assert!(c0.approx_eq(&c1, 0.0, 0.0));
        prop_assert_eq!(r0.sim_time_s.to_bits(), r1.sim_time_s.to_bits());
        prop_assert_eq!(r0.peak_mem_bytes, r1.peak_mem_bytes);
        prop_assert!(r0.audit.is_none());
        prop_assert!(r1.audit.is_some());
        // Auditing alone attaches no trace — the trace is tracing's.
        prop_assert!(r1.trace.is_none());
    }

    /// The chosen option's shadow cost is the identity cost of the
    /// measured execution: bit-equal to the measured cycles, for every
    /// decision of every kind. Mispredictions carry positive regret and
    /// everything reconciles to a sane verdict.
    #[test]
    fn chosen_shadow_cost_is_the_measured_cost(a in arb_square_csr(40, 400)) {
        let audited = SpeckSpgemm::default()
            .with_plan_cache_capacity(0)
            .with_auditing(true);
        let (_, rep) = audited.multiply(&a, &a);
        let audit = rep.audit.as_ref().expect("auditing engine attaches a report");
        prop_assert!(!audit.records.is_empty());
        for d in &audit.records {
            prop_assert_eq!(
                d.chosen_est_cycles.to_bits(),
                d.measured_cycles.to_bits(),
                "{}/{} {}", &d.stage, d.kind, &d.subject
            );
            prop_assert!(d.regret_cycles >= 0.0);
            match d.verdict {
                Verdict::Misprediction => prop_assert!(d.regret_cycles > 0.0),
                _ => prop_assert_eq!(d.regret_cycles, 0.0),
            }
            for alt in &d.alternatives {
                prop_assert!(alt.est_cycles.is_finite());
                prop_assert!(alt.est_cycles >= 0.0);
            }
        }
        // The summary folds exactly over the records.
        let t = audit.totals();
        prop_assert_eq!(t.decisions, audit.records.len());
        prop_assert_eq!(t.confirmed + t.mispredictions + t.ties, t.decisions);
    }

    /// The canonical JSON is byte-deterministic across engines, parses
    /// back to the same report, and a report diffed against itself is
    /// empty.
    #[test]
    fn canonical_json_is_deterministic_and_lossless(a in arb_square_csr(32, 300)) {
        let run = || {
            let engine = SpeckSpgemm::default()
                .with_plan_cache_capacity(0)
                .with_auditing(true);
            let (_, rep) = engine.multiply(&a, &a);
            rep.audit.expect("audit").canonical_json()
        };
        let j1 = run();
        let j2 = run();
        prop_assert_eq!(&j1, &j2);
        let parsed = DecisionReport::from_json(&j1).expect("exported audit parses");
        prop_assert_eq!(parsed.canonical_json(), j1.clone());
        let d = diff_reports(&parsed, &parsed);
        prop_assert!(d.cells.is_empty());
        prop_assert_eq!(d.regret_delta_cycles.to_bits(), 0.0f64.to_bits());
    }
}
