//! Device-memory accounting for the paper's peak-memory comparison
//! (Table 3's `m/m_b` row and Fig. 10).
//!
//! The paper measures every allocation made during the multiplication,
//! including the output matrix C. We mirror that: methods register each
//! logical device allocation/free; the tracker reports the peak.

/// Tracks simulated device-memory usage.
#[derive(Clone, Debug, Default)]
pub struct MemTracker {
    current: usize,
    peak: usize,
    allocations: usize,
}

impl MemTracker {
    /// A tracker with nothing allocated.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an allocation of `bytes`; returns the same value so call
    /// sites can keep a handle for the matching [`MemTracker::free`].
    pub fn alloc(&mut self, bytes: usize) -> usize {
        self.current += bytes;
        self.peak = self.peak.max(self.current);
        self.allocations += 1;
        bytes
    }

    /// Registers a free of `bytes`.
    pub fn free(&mut self, bytes: usize) {
        assert!(
            bytes <= self.current,
            "MemTracker: freeing more than allocated"
        );
        self.current -= bytes;
    }

    /// Bytes currently allocated.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Peak bytes ever allocated.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Number of allocation calls (each costs launch-like overhead; the
    /// pipeline charges `alloc_overhead_cycles` per call).
    pub fn allocations(&self) -> usize {
        self.allocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water() {
        let mut t = MemTracker::new();
        t.alloc(100);
        t.alloc(50);
        t.free(100);
        t.alloc(20);
        assert_eq!(t.current(), 70);
        assert_eq!(t.peak(), 150);
        assert_eq!(t.allocations(), 3);
    }

    #[test]
    #[should_panic(expected = "freeing more")]
    fn overfree_panics() {
        let mut t = MemTracker::new();
        t.alloc(10);
        t.free(11);
    }

    #[test]
    fn fresh_tracker_is_zero() {
        let t = MemTracker::new();
        assert_eq!(t.current(), 0);
        assert_eq!(t.peak(), 0);
    }
}
