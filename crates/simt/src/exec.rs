//! Kernel launch: runs every block functionally (rayon across host cores)
//! and schedules the recorded block costs onto SM slots to produce a
//! deterministic simulated kernel time.

use crate::block::BlockCtx;
use crate::cost::{BlockCost, CostModel};
use crate::device::DeviceConfig;
use crate::kernel::KernelConfig;
use crate::trace::{self, BlockEvent, BlockPlacement, KernelBlockTrace};
use rayon::prelude::*;
use std::borrow::Cow;
use std::sync::Arc;

/// Outcome of one simulated kernel launch.
#[derive(Clone, Debug)]
pub struct KernelReport {
    /// Kernel name (for stage attribution). Static for the fixed kernels,
    /// owned only for per-config formatted names.
    pub name: Cow<'static, str>,
    /// Number of blocks launched.
    pub grid: usize,
    /// Launch shape.
    pub cfg: KernelConfig,
    /// Resident blocks per SM at this shape.
    pub blocks_per_sm: usize,
    /// Aggregated event counters over all blocks.
    pub total_cost: BlockCost,
    /// Simulated execution time in cycles (including launch overhead).
    pub sim_cycles: f64,
    /// Simulated execution time in seconds.
    pub sim_time_s: f64,
    /// Per-block schedule trace, present only while a
    /// [`trace::CaptureGuard`] was alive at launch time. `Arc` so cloning
    /// reports (timelines do) never copies event vectors.
    pub trace: Option<Arc<KernelBlockTrace>>,
}

/// Schedules per-block `(compute, memory)` cycle costs onto the device and
/// returns the kernel makespan in cycles (excluding launch overhead).
///
/// Model: an SM's instruction-issue pipe and its share of the memory system
/// are *throughput* resources — every resident block's compute cycles queue
/// on the former and its memory cycles on the latter, and the two pipes
/// overlap. Occupancy (`blocks_per_sm`) governs *latency hiding*: a block's
/// serial critical path `max(compute, memory)` can only be overlapped with
/// the `bpsm - 1` co-resident blocks, so an SM additionally cannot finish
/// before `sum(serial_i) / bpsm` — with `bpsm = 1` execution degenerates to
/// fully serial (the paper's 96 KiB-scratchpad occupancy penalty). Blocks
/// are dealt greedily to the least-loaded SM (deterministic tie-break).
///
/// SM time = max(Σ compute, Σ memory, max serial, Σ serial / bpsm);
/// kernel time = max over SMs.
///
/// Block i goes to the SM with the smallest serial load so far, lowest
/// SM index on ties — implemented as a binary-heap selection, O(grid ·
/// log num_SMs) instead of the naive O(grid · num_SMs) scan, with the
/// identical (bit-exact) assignment: each SM appears in the heap exactly
/// once, so popping the minimum `(load, index)` reproduces the scan's
/// strict `<` lowest-index tie-break, and per-SM sums accumulate in the
/// same block order.
pub fn schedule_blocks(dev: &DeviceConfig, cfg: KernelConfig, blocks: &[(f64, f64)]) -> f64 {
    schedule_blocks_placed(dev, cfg, blocks, None)
}

/// [`schedule_blocks`] with optional per-block placement capture.
///
/// When `placements` is `Some`, one [`BlockPlacement`] per block is pushed
/// in grid order: the SM chosen by the greedy deal plus a resident-slot
/// assignment (the block lands on the slot of that SM that frees earliest,
/// lowest slot index on ties, and occupies it for its serial critical
/// path). Capture shares the *same* loop and accumulators as the untraced
/// path, so the returned makespan is bit-identical whether or not
/// placements are recorded.
pub fn schedule_blocks_placed(
    dev: &DeviceConfig,
    cfg: KernelConfig,
    blocks: &[(f64, f64)],
    mut placements: Option<&mut Vec<BlockPlacement>>,
) -> f64 {
    use std::cmp::{Ordering, Reverse};
    use std::collections::BinaryHeap;

    if blocks.is_empty() {
        return 0.0;
    }

    /// Heap key: serial load first (total order — loads are non-negative
    /// sums, so `total_cmp` agrees with `<`), SM index to break ties.
    #[derive(PartialEq)]
    struct SmLoad {
        load: f64,
        sm: usize,
    }
    impl Eq for SmLoad {}
    impl Ord for SmLoad {
        fn cmp(&self, o: &Self) -> Ordering {
            self.load.total_cmp(&o.load).then(self.sm.cmp(&o.sm))
        }
    }
    impl PartialOrd for SmLoad {
        fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
            Some(self.cmp(o))
        }
    }

    let bpsm_slots = dev.blocks_per_sm(cfg.threads, cfg.scratch_bytes);
    let bpsm = bpsm_slots as f64;
    let mut sm_compute = vec![0.0f64; dev.num_sms];
    let mut sm_memory = vec![0.0f64; dev.num_sms];
    let mut sm_serial = vec![0.0f64; dev.num_sms];
    let mut sm_max = vec![0.0f64; dev.num_sms];
    // Slot-clock end times, only allocated when placements are captured.
    let mut slot_end: Vec<f64> = if placements.is_some() {
        vec![0.0f64; dev.num_sms * bpsm_slots]
    } else {
        Vec::new()
    };
    let mut heap: BinaryHeap<Reverse<SmLoad>> = (0..dev.num_sms)
        .map(|sm| Reverse(SmLoad { load: 0.0, sm }))
        .collect();
    for &(c, m) in blocks {
        let Reverse(SmLoad { load, sm }) = heap.pop().expect("one entry per SM");
        let serial = c.max(m);
        sm_compute[sm] += c;
        sm_memory[sm] += m;
        sm_serial[sm] += serial;
        sm_max[sm] = sm_max[sm].max(serial);
        if let Some(out) = placements.as_deref_mut() {
            let base = sm * bpsm_slots;
            let mut best = 0usize;
            for s in 1..bpsm_slots {
                if slot_end[base + s] < slot_end[base + best] {
                    best = s;
                }
            }
            let start = slot_end[base + best];
            let end = start + serial;
            slot_end[base + best] = end;
            out.push(BlockPlacement {
                sm: sm as u32,
                slot: best as u32,
                start_cycles: start,
                end_cycles: end,
            });
        }
        heap.push(Reverse(SmLoad {
            load: load + serial,
            sm,
        }));
    }
    (0..dev.num_sms)
        .map(|i| {
            sm_compute[i]
                .max(sm_memory[i])
                .max(sm_max[i])
                .max(sm_serial[i] / bpsm)
        })
        .fold(0.0f64, f64::max)
}

/// Launches `grid` blocks of a kernel whose closure returns a per-block
/// value; returns the report plus all block results in block order.
pub fn launch_map<R, F>(
    dev: &DeviceConfig,
    cost: &CostModel,
    name: impl Into<Cow<'static, str>>,
    grid: usize,
    cfg: KernelConfig,
    f: F,
) -> (KernelReport, Vec<R>)
where
    R: Send,
    F: Fn(&mut BlockCtx) -> R + Sync,
{
    let name = name.into();
    assert!(
        cfg.threads <= dev.max_threads_per_block,
        "kernel {name}: {} threads exceed device limit {}",
        cfg.threads,
        dev.max_threads_per_block
    );
    assert!(
        cfg.scratch_bytes <= dev.scratch_max_per_block,
        "kernel {name}: {} B scratchpad exceed device limit {}",
        cfg.scratch_bytes,
        dev.scratch_max_per_block
    );

    // Per-block cycle splitting happens inside the parallel map; the
    // remaining serial work is a plain unzip of already-computed values.
    let results: Vec<(BlockCost, (f64, f64), R)> = (0..grid)
        .into_par_iter()
        .map(|block_id| {
            let mut ctx = BlockCtx::new(block_id, cfg, dev.transaction_bytes, dev.warp_size);
            let r = f(&mut ctx);
            let c = ctx.into_cost();
            let cycles = cost.split_cycles(&c);
            (c, cycles, r)
        })
        .collect();

    let mut costs = Vec::with_capacity(grid);
    let mut block_cycles = Vec::with_capacity(grid);
    let mut outputs = Vec::with_capacity(grid);
    for (c, cy, r) in results {
        costs.push(c);
        block_cycles.push(cy);
        outputs.push(r);
    }
    // Parallel fold/reduce of the aggregate counters: every field is an
    // integer sum, so the reduction is associative, and the chunk-ordered
    // combination keeps it deterministic.
    let total_cost = costs
        .par_iter()
        .map(|c| *c)
        .reduce(BlockCost::default, |a, b| a.merge(&b));

    // Capture is checked once per launch; when off the scheduler runs the
    // identical loop with no extra bookkeeping, so `sim_cycles` is
    // bit-identical either way.
    let mut placements = trace::capture_enabled().then(|| Vec::with_capacity(grid));
    let body = schedule_blocks_placed(dev, cfg, &block_cycles, placements.as_mut());
    let block_trace = placements.map(|pl| {
        let events = pl
            .iter()
            .zip(costs.iter())
            .zip(block_cycles.iter())
            .enumerate()
            .map(|(i, ((p, c), &(cc, mc)))| BlockEvent {
                grid_idx: i as u32,
                sm: p.sm,
                slot: p.slot,
                start_cycles: p.start_cycles,
                end_cycles: p.end_cycles,
                compute_cycles: cc,
                memory_cycles: mc,
                cost: *c,
            })
            .collect();
        Arc::new(KernelBlockTrace {
            events,
            body_cycles: body,
        })
    });
    let sim_cycles = body + dev.launch_overhead_cycles;
    let report = KernelReport {
        name,
        grid,
        cfg,
        blocks_per_sm: dev.blocks_per_sm(cfg.threads, cfg.scratch_bytes),
        total_cost,
        sim_cycles,
        sim_time_s: dev.cycles_to_seconds(sim_cycles),
        trace: block_trace,
    };
    (report, outputs)
}

impl KernelReport {
    /// Kernel body cycles, excluding the launch overhead.
    pub fn body_cycles(&self, dev: &DeviceConfig) -> f64 {
        (self.sim_cycles - dev.launch_overhead_cycles).max(0.0)
    }

    /// Bytes moved through the simulated memory system (sector-granular
    /// coalesced traffic plus scattered accesses and atomics).
    pub fn bytes_moved(&self, dev: &DeviceConfig) -> u64 {
        (self.total_cost.gmem_tx + self.total_cost.gmem_scatter + self.total_cost.gmem_atomics)
            * dev.transaction_bytes as u64
    }

    /// Achieved memory bandwidth in GB/s over the kernel body — for
    /// sanity-checking the cost model against hardware limits.
    pub fn achieved_bandwidth_gbps(&self, dev: &DeviceConfig) -> f64 {
        let t = dev.cycles_to_seconds(self.body_cycles(dev));
        if t <= 0.0 {
            0.0
        } else {
            self.bytes_moved(dev) as f64 / t / 1e9
        }
    }

    /// One-line human-readable summary. Format (pinned by a unit test so
    /// profiler output can rely on it):
    ///
    /// `<name>: grid <g> x <t>t/<s>B, <time> us, bw: <bw> GB/s, occ: <n> blocks/SM`
    pub fn summary(&self, dev: &DeviceConfig) -> String {
        format!(
            "{}: grid {} x {}t/{}B, {:.1} us, bw: {:.0} GB/s, occ: {} blocks/SM",
            self.name,
            self.grid,
            self.cfg.threads,
            self.cfg.scratch_bytes,
            self.sim_time_s * 1e6,
            self.achieved_bandwidth_gbps(dev),
            self.blocks_per_sm,
        )
    }
}

/// [`launch_map`] for kernels that only record cost.
pub fn launch<F>(
    dev: &DeviceConfig,
    cost: &CostModel,
    name: impl Into<Cow<'static, str>>,
    grid: usize,
    cfg: KernelConfig,
    f: F,
) -> KernelReport
where
    F: Fn(&mut BlockCtx) + Sync,
{
    launch_map(dev, cost, name, grid, cfg, |ctx| f(ctx)).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceConfig {
        DeviceConfig::tiny()
    }

    #[test]
    fn empty_grid_costs_only_launch_overhead() {
        let d = dev();
        let r = launch(
            &d,
            &CostModel::default(),
            "k",
            0,
            KernelConfig::new(32, 0),
            |_| {},
        );
        assert_eq!(r.sim_cycles, d.launch_overhead_cycles);
    }

    #[test]
    fn results_returned_in_block_order() {
        let d = dev();
        let (_, out) = launch_map(
            &d,
            &CostModel::default(),
            "k",
            100,
            KernelConfig::new(32, 0),
            |ctx| ctx.block_id() * 2,
        );
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn simulated_time_is_deterministic() {
        let d = dev();
        let run = || {
            launch(
                &d,
                &CostModel::default(),
                "k",
                64,
                KernelConfig::new(64, 0),
                |ctx| {
                    ctx.charge_rounds((ctx.block_id() as u64 % 7) * 10);
                    ctx.charge_gmem_tx(ctx.block_id() as u64);
                },
            )
            .sim_cycles
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn single_straggler_dominates() {
        // One block with 1000x the work of the rest bounds the makespan.
        let cycles_balanced = vec![(10.0, 5.0); 64];
        let mut cycles_straggler = cycles_balanced.clone();
        cycles_straggler[0] = (10_000.0, 5.0);
        let cfg = KernelConfig::new(32, 0);
        let d = dev();
        let a = schedule_blocks(&d, cfg, &cycles_balanced);
        let b = schedule_blocks(&d, cfg, &cycles_straggler);
        assert!(b >= 10_000.0);
        assert!(b > 10.0 * a);
    }

    #[test]
    fn low_occupancy_serialises_latency() {
        // The same blocks on a scratch-starved shape (1 resident block per
        // SM) cannot overlap compute with memory across blocks.
        let d = dev();
        let blocks = vec![(100.0, 100.0); 8]; // 2 per SM on `tiny`
        let small = KernelConfig::new(64, 1024); // several resident
        let large = KernelConfig::new(64, 32 * 1024); // scratch-bound: 1/SM
        let t_small = schedule_blocks(&d, small, &blocks);
        let t_large = schedule_blocks(&d, large, &blocks);
        // 2 blocks/SM: pipes overlap -> max(200, 200) = 200.
        assert!((t_small - 200.0).abs() < 1e-9, "t_small={t_small}");
        // 1 block/SM: serial -> 100+100 per block = 200... bounded below by
        // sum of serials: 2 blocks x 100 serial = 200 each SM; but totals
        // are also 200. Check monotonicity instead.
        assert!(t_large >= t_small);
    }

    #[test]
    fn throughput_pipes_accumulate() {
        // Compute cycles of co-resident blocks queue on the SM issue pipe.
        let d = dev();
        let cfg = KernelConfig::new(32, 0);
        let one = schedule_blocks(&d, cfg, &vec![(100.0, 1.0); d.num_sms]);
        let four = schedule_blocks(&d, cfg, &vec![(100.0, 1.0); 4 * d.num_sms]);
        assert!((one - 100.0).abs() < 1e-9);
        assert!((four - 400.0).abs() < 1e-9);
    }

    #[test]
    fn work_conservation_lower_bound() {
        // Makespan can never beat total compute work / SM count.
        let d = dev();
        let cfg = KernelConfig::new(32, 0);
        let blocks: Vec<(f64, f64)> = (0..500).map(|i| ((i % 13) as f64 + 1.0, 1.0)).collect();
        let total: f64 = blocks.iter().map(|b| b.0).sum();
        let t = schedule_blocks(&d, cfg, &blocks);
        assert!(t >= total / d.num_sms as f64 - 1e-9);
    }

    #[test]
    #[should_panic(expected = "exceed device limit")]
    fn oversized_block_rejected() {
        let d = dev();
        launch(
            &d,
            &CostModel::default(),
            "k",
            1,
            KernelConfig::new(4096, 0),
            |_| {},
        );
    }

    #[test]
    fn report_metrics_are_sane() {
        let d = DeviceConfig::titan_v();
        let r = launch(
            &d,
            &CostModel::default(),
            "bw",
            512,
            KernelConfig::new(256, 0),
            |ctx| {
                ctx.charge_gmem_stream(256, 100_000, 8);
            },
        );
        // Achieved bandwidth must not exceed the model's aggregate ceiling
        // (num_sms * tx_bytes / c_gmem_tx per cycle).
        let cost = CostModel::default();
        let ceiling = d.num_sms as f64 * d.transaction_bytes as f64 / cost.c_gmem_tx * d.clock_ghz;
        let bw = r.achieved_bandwidth_gbps(&d);
        assert!(
            bw > 0.0 && bw <= ceiling * 1.01,
            "bw {bw} vs ceiling {ceiling}"
        );
        assert!(r.body_cycles(&d) > 0.0);
        assert!(r.summary(&d).contains("bw:"));
    }

    #[test]
    fn schedule_empty_block_list_is_zero() {
        let d = dev();
        assert_eq!(schedule_blocks(&d, KernelConfig::new(32, 0), &[]), 0.0);
        // And with capture on: still zero, no placements recorded.
        let mut pl = Vec::new();
        let t = schedule_blocks_placed(&d, KernelConfig::new(32, 0), &[], Some(&mut pl));
        assert_eq!(t, 0.0);
        assert!(pl.is_empty());
    }

    #[test]
    fn schedule_single_block_is_its_serial_path() {
        let d = dev();
        let t = schedule_blocks(&d, KernelConfig::new(32, 0), &[(70.0, 120.0)]);
        assert_eq!(t, 120.0);
        let mut pl = Vec::new();
        schedule_blocks_placed(
            &d,
            KernelConfig::new(32, 0),
            &[(70.0, 120.0)],
            Some(&mut pl),
        );
        assert_eq!(pl.len(), 1);
        assert_eq!((pl[0].sm, pl[0].slot), (0, 0));
        assert_eq!((pl[0].start_cycles, pl[0].end_cycles), (0.0, 120.0));
    }

    #[test]
    fn schedule_grid_smaller_than_one_sm_fans_out() {
        // Fewer blocks than one SM's resident slots: the greedy deal still
        // spreads them one per SM, so the makespan is the worst serial path.
        let d = dev();
        let cfg = KernelConfig::new(32, 0);
        assert!(d.blocks_per_sm(32, 0) > 3);
        let blocks = [(10.0, 5.0), (20.0, 5.0), (30.0, 5.0)];
        let mut pl = Vec::new();
        let t = schedule_blocks_placed(&d, cfg, &blocks, Some(&mut pl));
        assert_eq!(t, 30.0);
        let sms: Vec<u32> = pl.iter().map(|p| p.sm).collect();
        assert_eq!(sms, vec![0, 1, 2]);
        assert!(pl.iter().all(|p| p.slot == 0 && p.start_cycles == 0.0));
    }

    #[test]
    fn schedule_single_slot_occupancy_serialises() {
        // blocks_per_sm == 1: a lone SM cannot overlap the serial critical
        // paths of its blocks, so mixed compute/memory blocks serialise.
        let mut d = dev();
        d.num_sms = 1;
        d.max_blocks_per_sm = 1;
        let cfg = KernelConfig::new(32, 0);
        assert_eq!(d.blocks_per_sm(cfg.threads, cfg.scratch_bytes), 1);
        let blocks = [(100.0, 0.0), (0.0, 100.0)];
        let t = schedule_blocks(&d, cfg, &blocks);
        assert_eq!(t, 200.0); // sum of serials, not max(sum c, sum m) = 100
        let mut two_slots = d.clone();
        two_slots.max_blocks_per_sm = 2;
        assert_eq!(schedule_blocks(&two_slots, cfg, &blocks), 100.0);
    }

    #[test]
    fn summary_format_is_pinned() {
        // The exact summary layout is part of the profiler's contract.
        let d = dev();
        let r = launch(
            &d,
            &CostModel::default(),
            "fmt",
            4,
            KernelConfig::new(64, 256),
            |ctx| ctx.charge_gmem_tx(100),
        );
        let s = r.summary(&d);
        assert_eq!(
            s,
            format!(
                "fmt: grid 4 x 64t/256B, {:.1} us, bw: {:.0} GB/s, occ: {} blocks/SM",
                r.sim_time_s * 1e6,
                r.achieved_bandwidth_gbps(&d),
                r.blocks_per_sm
            )
        );
        assert!(s.contains("bw: "));
        assert!(s.contains("occ: "));
        assert!(s.contains("blocks/SM"));
    }

    #[test]
    fn capture_records_one_event_per_block() {
        let d = dev();
        let run = || {
            launch(
                &d,
                &CostModel::default(),
                "traced",
                37,
                KernelConfig::new(64, 0),
                |ctx| {
                    ctx.charge_rounds((ctx.block_id() as u64 % 5) * 3 + 1);
                    ctx.charge_gmem_tx(ctx.block_id() as u64 * 2);
                },
            )
        };
        let untraced = run();
        assert!(untraced.trace.is_none());
        let traced = {
            let _g = crate::trace::CaptureGuard::new();
            run()
        };
        let tr = traced.trace.as_ref().expect("capture was on");
        assert_eq!(tr.events.len(), 37);
        // Capture must not perturb the simulated time.
        assert_eq!(traced.sim_cycles.to_bits(), untraced.sim_cycles.to_bits());
        assert_eq!(tr.body_cycles.to_bits(), untraced.body_cycles(&d).to_bits());
        // Events are in grid order with sane placements.
        let bpsm = d.blocks_per_sm(64, 0) as u32;
        for (i, e) in tr.events.iter().enumerate() {
            assert_eq!(e.grid_idx as usize, i);
            assert!((e.sm as usize) < d.num_sms);
            assert!(e.slot < bpsm);
            assert!(e.end_cycles >= e.start_cycles);
            assert_eq!(e.end_cycles - e.start_cycles, e.serial_cycles());
        }
        // Refolding the events through the scheduler reproduces the body
        // makespan bit-for-bit.
        let refold = tr.refold_body_cycles(&d, KernelConfig::new(64, 0));
        assert_eq!(refold.to_bits(), tr.body_cycles.to_bits());
    }

    #[test]
    fn total_cost_aggregates_blocks() {
        let d = dev();
        let r = launch(
            &d,
            &CostModel::default(),
            "k",
            10,
            KernelConfig::new(32, 0),
            |ctx| {
                ctx.charge_rounds(2);
                ctx.charge_smem(3);
            },
        );
        assert_eq!(r.total_cost.issue_rounds, 20);
        assert_eq!(r.total_cost.smem_ops, 30);
    }
}
