//! Kernel launch: runs every block functionally (rayon across host cores)
//! and schedules the recorded block costs onto SM slots to produce a
//! deterministic simulated kernel time.

use crate::block::BlockCtx;
use crate::cost::{BlockCost, CostModel};
use crate::device::DeviceConfig;
use crate::kernel::KernelConfig;
use rayon::prelude::*;
use std::borrow::Cow;

/// Outcome of one simulated kernel launch.
#[derive(Clone, Debug)]
pub struct KernelReport {
    /// Kernel name (for stage attribution). Static for the fixed kernels,
    /// owned only for per-config formatted names.
    pub name: Cow<'static, str>,
    /// Number of blocks launched.
    pub grid: usize,
    /// Launch shape.
    pub cfg: KernelConfig,
    /// Resident blocks per SM at this shape.
    pub blocks_per_sm: usize,
    /// Aggregated event counters over all blocks.
    pub total_cost: BlockCost,
    /// Simulated execution time in cycles (including launch overhead).
    pub sim_cycles: f64,
    /// Simulated execution time in seconds.
    pub sim_time_s: f64,
}

/// Schedules per-block `(compute, memory)` cycle costs onto the device and
/// returns the kernel makespan in cycles (excluding launch overhead).
///
/// Model: an SM's instruction-issue pipe and its share of the memory system
/// are *throughput* resources — every resident block's compute cycles queue
/// on the former and its memory cycles on the latter, and the two pipes
/// overlap. Occupancy (`blocks_per_sm`) governs *latency hiding*: a block's
/// serial critical path `max(compute, memory)` can only be overlapped with
/// the `bpsm - 1` co-resident blocks, so an SM additionally cannot finish
/// before `sum(serial_i) / bpsm` — with `bpsm = 1` execution degenerates to
/// fully serial (the paper's 96 KiB-scratchpad occupancy penalty). Blocks
/// are dealt greedily to the least-loaded SM (deterministic tie-break).
///
/// SM time = max(Σ compute, Σ memory, max serial, Σ serial / bpsm);
/// kernel time = max over SMs.
///
/// Block i goes to the SM with the smallest serial load so far, lowest
/// SM index on ties — implemented as a binary-heap selection, O(grid ·
/// log num_SMs) instead of the naive O(grid · num_SMs) scan, with the
/// identical (bit-exact) assignment: each SM appears in the heap exactly
/// once, so popping the minimum `(load, index)` reproduces the scan's
/// strict `<` lowest-index tie-break, and per-SM sums accumulate in the
/// same block order.
pub fn schedule_blocks(dev: &DeviceConfig, cfg: KernelConfig, blocks: &[(f64, f64)]) -> f64 {
    use std::cmp::{Ordering, Reverse};
    use std::collections::BinaryHeap;

    if blocks.is_empty() {
        return 0.0;
    }

    /// Heap key: serial load first (total order — loads are non-negative
    /// sums, so `total_cmp` agrees with `<`), SM index to break ties.
    #[derive(PartialEq)]
    struct SmLoad {
        load: f64,
        sm: usize,
    }
    impl Eq for SmLoad {}
    impl Ord for SmLoad {
        fn cmp(&self, o: &Self) -> Ordering {
            self.load.total_cmp(&o.load).then(self.sm.cmp(&o.sm))
        }
    }
    impl PartialOrd for SmLoad {
        fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
            Some(self.cmp(o))
        }
    }

    let bpsm = dev.blocks_per_sm(cfg.threads, cfg.scratch_bytes) as f64;
    let mut sm_compute = vec![0.0f64; dev.num_sms];
    let mut sm_memory = vec![0.0f64; dev.num_sms];
    let mut sm_serial = vec![0.0f64; dev.num_sms];
    let mut sm_max = vec![0.0f64; dev.num_sms];
    let mut heap: BinaryHeap<Reverse<SmLoad>> = (0..dev.num_sms)
        .map(|sm| Reverse(SmLoad { load: 0.0, sm }))
        .collect();
    for &(c, m) in blocks {
        let Reverse(SmLoad { load, sm }) = heap.pop().expect("one entry per SM");
        let serial = c.max(m);
        sm_compute[sm] += c;
        sm_memory[sm] += m;
        sm_serial[sm] += serial;
        sm_max[sm] = sm_max[sm].max(serial);
        heap.push(Reverse(SmLoad {
            load: load + serial,
            sm,
        }));
    }
    (0..dev.num_sms)
        .map(|i| {
            sm_compute[i]
                .max(sm_memory[i])
                .max(sm_max[i])
                .max(sm_serial[i] / bpsm)
        })
        .fold(0.0f64, f64::max)
}

/// Launches `grid` blocks of a kernel whose closure returns a per-block
/// value; returns the report plus all block results in block order.
pub fn launch_map<R, F>(
    dev: &DeviceConfig,
    cost: &CostModel,
    name: impl Into<Cow<'static, str>>,
    grid: usize,
    cfg: KernelConfig,
    f: F,
) -> (KernelReport, Vec<R>)
where
    R: Send,
    F: Fn(&mut BlockCtx) -> R + Sync,
{
    let name = name.into();
    assert!(
        cfg.threads <= dev.max_threads_per_block,
        "kernel {name}: {} threads exceed device limit {}",
        cfg.threads,
        dev.max_threads_per_block
    );
    assert!(
        cfg.scratch_bytes <= dev.scratch_max_per_block,
        "kernel {name}: {} B scratchpad exceed device limit {}",
        cfg.scratch_bytes,
        dev.scratch_max_per_block
    );

    // Per-block cycle splitting happens inside the parallel map; the
    // remaining serial work is a plain unzip of already-computed values.
    let results: Vec<(BlockCost, (f64, f64), R)> = (0..grid)
        .into_par_iter()
        .map(|block_id| {
            let mut ctx = BlockCtx::new(block_id, cfg, dev.transaction_bytes, dev.warp_size);
            let r = f(&mut ctx);
            let c = ctx.into_cost();
            let cycles = cost.split_cycles(&c);
            (c, cycles, r)
        })
        .collect();

    let mut costs = Vec::with_capacity(grid);
    let mut block_cycles = Vec::with_capacity(grid);
    let mut outputs = Vec::with_capacity(grid);
    for (c, cy, r) in results {
        costs.push(c);
        block_cycles.push(cy);
        outputs.push(r);
    }
    // Parallel fold/reduce of the aggregate counters: every field is an
    // integer sum, so the reduction is associative, and the chunk-ordered
    // combination keeps it deterministic.
    let total_cost = costs
        .par_iter()
        .map(|c| *c)
        .reduce(BlockCost::default, |a, b| a.merge(&b));

    let body = schedule_blocks(dev, cfg, &block_cycles);
    let sim_cycles = body + dev.launch_overhead_cycles;
    let report = KernelReport {
        name,
        grid,
        cfg,
        blocks_per_sm: dev.blocks_per_sm(cfg.threads, cfg.scratch_bytes),
        total_cost,
        sim_cycles,
        sim_time_s: dev.cycles_to_seconds(sim_cycles),
    };
    (report, outputs)
}

impl KernelReport {
    /// Kernel body cycles, excluding the launch overhead.
    pub fn body_cycles(&self, dev: &DeviceConfig) -> f64 {
        (self.sim_cycles - dev.launch_overhead_cycles).max(0.0)
    }

    /// Bytes moved through the simulated memory system (sector-granular
    /// coalesced traffic plus scattered accesses and atomics).
    pub fn bytes_moved(&self, dev: &DeviceConfig) -> u64 {
        (self.total_cost.gmem_tx + self.total_cost.gmem_scatter + self.total_cost.gmem_atomics)
            * dev.transaction_bytes as u64
    }

    /// Achieved memory bandwidth in GB/s over the kernel body — for
    /// sanity-checking the cost model against hardware limits.
    pub fn achieved_bandwidth_gbps(&self, dev: &DeviceConfig) -> f64 {
        let t = dev.cycles_to_seconds(self.body_cycles(dev));
        if t <= 0.0 {
            0.0
        } else {
            self.bytes_moved(dev) as f64 / t / 1e9
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self, dev: &DeviceConfig) -> String {
        format!(
            "{}: grid {} x {}t/{}B, {:.1} us, {:.0} GB/s, {} blocks/SM",
            self.name,
            self.grid,
            self.cfg.threads,
            self.cfg.scratch_bytes,
            self.sim_time_s * 1e6,
            self.achieved_bandwidth_gbps(dev),
            self.blocks_per_sm,
        )
    }
}

/// [`launch_map`] for kernels that only record cost.
pub fn launch<F>(
    dev: &DeviceConfig,
    cost: &CostModel,
    name: impl Into<Cow<'static, str>>,
    grid: usize,
    cfg: KernelConfig,
    f: F,
) -> KernelReport
where
    F: Fn(&mut BlockCtx) + Sync,
{
    launch_map(dev, cost, name, grid, cfg, |ctx| f(ctx)).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceConfig {
        DeviceConfig::tiny()
    }

    #[test]
    fn empty_grid_costs_only_launch_overhead() {
        let d = dev();
        let r = launch(
            &d,
            &CostModel::default(),
            "k",
            0,
            KernelConfig::new(32, 0),
            |_| {},
        );
        assert_eq!(r.sim_cycles, d.launch_overhead_cycles);
    }

    #[test]
    fn results_returned_in_block_order() {
        let d = dev();
        let (_, out) = launch_map(
            &d,
            &CostModel::default(),
            "k",
            100,
            KernelConfig::new(32, 0),
            |ctx| ctx.block_id() * 2,
        );
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn simulated_time_is_deterministic() {
        let d = dev();
        let run = || {
            launch(
                &d,
                &CostModel::default(),
                "k",
                64,
                KernelConfig::new(64, 0),
                |ctx| {
                    ctx.charge_rounds((ctx.block_id() as u64 % 7) * 10);
                    ctx.charge_gmem_tx(ctx.block_id() as u64);
                },
            )
            .sim_cycles
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn single_straggler_dominates() {
        // One block with 1000x the work of the rest bounds the makespan.
        let cycles_balanced = vec![(10.0, 5.0); 64];
        let mut cycles_straggler = cycles_balanced.clone();
        cycles_straggler[0] = (10_000.0, 5.0);
        let cfg = KernelConfig::new(32, 0);
        let d = dev();
        let a = schedule_blocks(&d, cfg, &cycles_balanced);
        let b = schedule_blocks(&d, cfg, &cycles_straggler);
        assert!(b >= 10_000.0);
        assert!(b > 10.0 * a);
    }

    #[test]
    fn low_occupancy_serialises_latency() {
        // The same blocks on a scratch-starved shape (1 resident block per
        // SM) cannot overlap compute with memory across blocks.
        let d = dev();
        let blocks = vec![(100.0, 100.0); 8]; // 2 per SM on `tiny`
        let small = KernelConfig::new(64, 1024); // several resident
        let large = KernelConfig::new(64, 32 * 1024); // scratch-bound: 1/SM
        let t_small = schedule_blocks(&d, small, &blocks);
        let t_large = schedule_blocks(&d, large, &blocks);
        // 2 blocks/SM: pipes overlap -> max(200, 200) = 200.
        assert!((t_small - 200.0).abs() < 1e-9, "t_small={t_small}");
        // 1 block/SM: serial -> 100+100 per block = 200... bounded below by
        // sum of serials: 2 blocks x 100 serial = 200 each SM; but totals
        // are also 200. Check monotonicity instead.
        assert!(t_large >= t_small);
    }

    #[test]
    fn throughput_pipes_accumulate() {
        // Compute cycles of co-resident blocks queue on the SM issue pipe.
        let d = dev();
        let cfg = KernelConfig::new(32, 0);
        let one = schedule_blocks(&d, cfg, &vec![(100.0, 1.0); d.num_sms]);
        let four = schedule_blocks(&d, cfg, &vec![(100.0, 1.0); 4 * d.num_sms]);
        assert!((one - 100.0).abs() < 1e-9);
        assert!((four - 400.0).abs() < 1e-9);
    }

    #[test]
    fn work_conservation_lower_bound() {
        // Makespan can never beat total compute work / SM count.
        let d = dev();
        let cfg = KernelConfig::new(32, 0);
        let blocks: Vec<(f64, f64)> = (0..500).map(|i| ((i % 13) as f64 + 1.0, 1.0)).collect();
        let total: f64 = blocks.iter().map(|b| b.0).sum();
        let t = schedule_blocks(&d, cfg, &blocks);
        assert!(t >= total / d.num_sms as f64 - 1e-9);
    }

    #[test]
    #[should_panic(expected = "exceed device limit")]
    fn oversized_block_rejected() {
        let d = dev();
        launch(
            &d,
            &CostModel::default(),
            "k",
            1,
            KernelConfig::new(4096, 0),
            |_| {},
        );
    }

    #[test]
    fn report_metrics_are_sane() {
        let d = DeviceConfig::titan_v();
        let r = launch(
            &d,
            &CostModel::default(),
            "bw",
            512,
            KernelConfig::new(256, 0),
            |ctx| {
                ctx.charge_gmem_stream(256, 100_000, 8);
            },
        );
        // Achieved bandwidth must not exceed the model's aggregate ceiling
        // (num_sms * tx_bytes / c_gmem_tx per cycle).
        let cost = CostModel::default();
        let ceiling = d.num_sms as f64 * d.transaction_bytes as f64 / cost.c_gmem_tx * d.clock_ghz;
        let bw = r.achieved_bandwidth_gbps(&d);
        assert!(
            bw > 0.0 && bw <= ceiling * 1.01,
            "bw {bw} vs ceiling {ceiling}"
        );
        assert!(r.body_cycles(&d) > 0.0);
        assert!(r.summary(&d).contains("bw:"));
    }

    #[test]
    fn total_cost_aggregates_blocks() {
        let d = dev();
        let r = launch(
            &d,
            &CostModel::default(),
            "k",
            10,
            KernelConfig::new(32, 0),
            |ctx| {
                ctx.charge_rounds(2);
                ctx.charge_smem(3);
            },
        );
        assert_eq!(r.total_cost.issue_rounds, 20);
        assert_eq!(r.total_cost.smem_ops, 30);
    }
}
