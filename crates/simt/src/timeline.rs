//! Stage-attributed timing, reproducing the paper's Fig. 11 breakdown
//! (analysis / symbolic load / symbolic SpGEMM / numeric load / numeric
//! SpGEMM / sorting).

use crate::cost::BlockCost;
use crate::exec::KernelReport;
use std::collections::BTreeMap;

/// Accumulated simulated time of one named pipeline stage.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StageTime {
    /// Total simulated seconds attributed to the stage.
    pub seconds: f64,
    /// Number of kernel launches in the stage.
    pub launches: usize,
    /// Event counters of the stage's launches, merged — the cost-model
    /// side of the Fig. 11 breakdown (fixed costs contribute nothing).
    pub cost: BlockCost,
}

/// Ordered collection of pipeline stages with simulated durations.
///
/// Stage names are `&'static str`: the pipeline's stage set is fixed at
/// compile time, so the timeline never allocates for keys.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    stages: BTreeMap<&'static str, StageTime>,
    order: Vec<&'static str>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    fn stage_mut(&mut self, stage: &'static str) -> &mut StageTime {
        if !self.stages.contains_key(stage) {
            self.order.push(stage);
            self.stages.insert(stage, StageTime::default());
        }
        self.stages.get_mut(stage).unwrap()
    }

    /// Attributes a kernel launch to a stage.
    pub fn add_kernel(&mut self, stage: &'static str, report: &KernelReport) {
        let s = self.stage_mut(stage);
        s.seconds += report.sim_time_s;
        s.launches += 1;
        s.cost = s.cost.merge(&report.total_cost);
    }

    /// Attributes a fixed duration (e.g. a device allocation) to a stage.
    pub fn add_fixed(&mut self, stage: &'static str, seconds: f64) {
        self.stage_mut(stage).seconds += seconds;
    }

    /// Total simulated seconds across all stages.
    pub fn total_seconds(&self) -> f64 {
        self.stages.values().map(|s| s.seconds).sum()
    }

    /// Stages in first-touch order with their durations.
    pub fn stages(&self) -> impl Iterator<Item = (&'static str, &StageTime)> {
        self.order
            .iter()
            .map(move |&name| (name, &self.stages[name]))
    }

    /// Duration share of one stage in `[0, 1]`; 0 for unknown stages.
    pub fn share(&self, stage: &str) -> f64 {
        let total = self.total_seconds();
        if total <= 0.0 {
            return 0.0;
        }
        self.stages.get(stage).map_or(0.0, |s| s.seconds / total)
    }

    /// Merges another timeline into this one (stage-wise sum).
    pub fn merge(&mut self, other: &Timeline) {
        for (name, st) in other.stages() {
            let s = self.stage_mut(name);
            s.seconds += st.seconds;
            s.launches += st.launches;
            s.cost = s.cost.merge(&st.cost);
        }
    }

    /// Event counters merged across every stage.
    pub fn total_cost(&self) -> BlockCost {
        self.stages
            .values()
            .fold(BlockCost::default(), |acc, s| acc.merge(&s.cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{launch, CostModel, DeviceConfig, KernelConfig};

    #[test]
    fn stages_accumulate_and_share_sums_to_one() {
        let d = DeviceConfig::tiny();
        let r = launch(
            &d,
            &CostModel::default(),
            "k",
            4,
            KernelConfig::new(32, 0),
            |ctx| {
                ctx.charge_rounds(100);
            },
        );
        let mut t = Timeline::new();
        t.add_kernel("analysis", &r);
        t.add_kernel("numeric", &r);
        t.add_kernel("numeric", &r);
        assert_eq!(t.stages().count(), 2);
        let sum: f64 = ["analysis", "numeric"].iter().map(|s| t.share(s)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(t.share("numeric") > t.share("analysis"));
        assert_eq!(t.stages.get("numeric").unwrap().launches, 2);
    }

    #[test]
    fn stage_cost_counters_accumulate() {
        let d = DeviceConfig::tiny();
        let r = launch(
            &d,
            &CostModel::default(),
            "k",
            3,
            KernelConfig::new(32, 0),
            |ctx| {
                ctx.charge_rounds(5);
                ctx.charge_smem(2);
            },
        );
        let mut t = Timeline::new();
        t.add_kernel("numeric", &r);
        t.add_kernel("numeric", &r);
        t.add_fixed("numeric", 1e-3); // fixed costs carry no counters
        let (_, st) = t.stages().next().unwrap();
        assert_eq!(st.cost.issue_rounds, 2 * r.total_cost.issue_rounds);
        assert_eq!(st.cost.smem_ops, 2 * r.total_cost.smem_ops);
        assert_eq!(t.total_cost(), st.cost);
        // Merging another timeline merges the counters too.
        let mut t2 = Timeline::new();
        t2.add_kernel("numeric", &r);
        t2.merge(&t);
        assert_eq!(t2.total_cost().issue_rounds, 3 * r.total_cost.issue_rounds);
    }

    #[test]
    fn fixed_costs_count() {
        let mut t = Timeline::new();
        t.add_fixed("alloc", 1e-3);
        t.add_fixed("alloc", 1e-3);
        assert!((t.total_seconds() - 2e-3).abs() < 1e-15);
    }

    #[test]
    fn empty_timeline_shares_are_zero() {
        let t = Timeline::new();
        assert_eq!(t.share("anything"), 0.0);
        assert_eq!(t.total_seconds(), 0.0);
    }

    #[test]
    fn order_is_first_touch() {
        let mut t = Timeline::new();
        t.add_fixed("b", 1.0);
        t.add_fixed("a", 1.0);
        t.add_fixed("b", 1.0);
        let names: Vec<_> = t.stages().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["b", "a"]);
    }

    #[test]
    fn merge_sums_stage_wise() {
        let mut a = Timeline::new();
        a.add_fixed("x", 1.0);
        let mut b = Timeline::new();
        b.add_fixed("x", 2.0);
        b.add_fixed("y", 3.0);
        a.merge(&b);
        assert!((a.total_seconds() - 6.0).abs() < 1e-12);
        assert!((a.share("y") - 0.5).abs() < 1e-12);
    }
}
