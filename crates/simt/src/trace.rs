//! Opt-in per-block execution tracing.
//!
//! The scheduler in [`crate::exec::schedule_blocks`] normally reduces the
//! per-block schedule to a single makespan. When capture is enabled (see
//! [`CaptureGuard`]), [`crate::exec::launch_map`] additionally keeps one
//! [`BlockEvent`] per scheduled block — which SM it was dealt to, which
//! resident slot it occupied, its start/end cycles on the slot clock, and
//! its full [`BlockCost`] breakdown — attached to the
//! [`crate::exec::KernelReport`] as a [`KernelBlockTrace`].
//!
//! # Capture switch
//!
//! Capture is a process-wide counter flipped by the RAII [`CaptureGuard`]
//! (nested guards compose: capture is on while at least one guard is
//! alive). The disabled path costs a single relaxed atomic load per kernel
//! launch and nothing per block, and capture **never** changes the
//! simulated cycle arithmetic — the traced and untraced scheduler share
//! one loop, so `sim_cycles` is bit-identical either way.
//!
//! # Determinism classes
//!
//! Every field recorded here is derived from the deterministic scheduler
//! deal and the functional block costs; traces are therefore byte-stable
//! across runs and rayon schedules. No wall-clock data is captured.

use crate::cost::BlockCost;
use std::sync::atomic::{AtomicUsize, Ordering};

static CAPTURE: AtomicUsize = AtomicUsize::new(0);

/// Returns true while at least one [`CaptureGuard`] is alive.
///
/// Checked once per [`crate::exec::launch_map`] call; the per-block hot
/// path never consults it.
pub fn capture_enabled() -> bool {
    CAPTURE.load(Ordering::Relaxed) > 0
}

/// RAII switch for per-block trace capture.
///
/// While a guard is alive every kernel launch in the process records a
/// [`KernelBlockTrace`] into its report. Guards nest (a counter, not a
/// flag), so concurrent traced sections compose instead of clobbering
/// each other.
#[derive(Debug)]
pub struct CaptureGuard(());

impl CaptureGuard {
    /// Enables capture until the guard is dropped.
    pub fn new() -> Self {
        CAPTURE.fetch_add(1, Ordering::Relaxed);
        CaptureGuard(())
    }
}

impl Default for CaptureGuard {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        CAPTURE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Placement of one block on the simulated device: which SM the greedy
/// deal chose, which resident slot stacked it, and the slot-clock
/// start/end cycles.
///
/// Start/end come from a slot-stacking visualization model: each SM
/// exposes `blocks_per_sm` resident slots, a block lands on the slot
/// that frees up earliest (lowest slot index on ties) and occupies it
/// for its serial critical path `max(compute, memory)`. This is the
/// timeline drawn in a trace viewer; the *modelled* SM time additionally
/// accounts for pipe throughput (see [`crate::exec::schedule_blocks`]),
/// so per-slot end times are a lower bound on the kernel makespan, not
/// the makespan itself.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockPlacement {
    /// SM index the block was dealt to.
    pub sm: u32,
    /// Resident-slot index within the SM (`0..blocks_per_sm`).
    pub slot: u32,
    /// Slot-clock cycle at which the block starts.
    pub start_cycles: f64,
    /// Slot-clock cycle at which the block ends (`start + serial`).
    pub end_cycles: f64,
}

/// One captured event per scheduled block.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockEvent {
    /// Grid index of the block (its `block_id`).
    pub grid_idx: u32,
    /// SM index the greedy deal assigned.
    pub sm: u32,
    /// Resident-slot index within the SM.
    pub slot: u32,
    /// Slot-clock start cycle (see [`BlockPlacement`]).
    pub start_cycles: f64,
    /// Slot-clock end cycle.
    pub end_cycles: f64,
    /// Compute-pipe cycles charged to this block.
    pub compute_cycles: f64,
    /// Memory-pipe cycles charged to this block.
    pub memory_cycles: f64,
    /// Full event-counter breakdown for the block.
    pub cost: BlockCost,
}

impl BlockEvent {
    /// Serial critical path of the block: `max(compute, memory)` — the
    /// cycles it occupies its resident slot.
    pub fn serial_cycles(&self) -> f64 {
        self.compute_cycles.max(self.memory_cycles)
    }
}

/// Per-block trace of one kernel launch, in grid order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KernelBlockTrace {
    /// One event per block, indexed by grid index.
    pub events: Vec<BlockEvent>,
    /// Kernel body makespan in cycles (excluding launch overhead) —
    /// exactly the value `schedule_blocks` returned for this launch.
    pub body_cycles: f64,
}

impl KernelBlockTrace {
    /// Refolds the recorded events through the scheduler and returns the
    /// recomputed body makespan. Because events are stored in grid order
    /// — the order the greedy deal consumed them — this reproduces
    /// [`KernelBlockTrace::body_cycles`] bit-for-bit; the reconciliation
    /// proptests pin that invariant.
    pub fn refold_body_cycles(
        &self,
        dev: &crate::device::DeviceConfig,
        cfg: crate::kernel::KernelConfig,
    ) -> f64 {
        let pairs: Vec<(f64, f64)> = self
            .events
            .iter()
            .map(|e| (e.compute_cycles, e.memory_cycles))
            .collect();
        crate::exec::schedule_blocks(dev, cfg, &pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_toggles_capture() {
        // Note: other tests may hold guards concurrently (tests run in
        // parallel), so only assert the relative effect of our guard.
        let before = CAPTURE.load(Ordering::Relaxed);
        {
            let _g = CaptureGuard::new();
            assert!(CAPTURE.load(Ordering::Relaxed) > before);
            assert!(capture_enabled());
            {
                let _g2 = CaptureGuard::new();
                assert!(CAPTURE.load(Ordering::Relaxed) > before + 1);
            }
            assert!(capture_enabled());
        }
        assert_eq!(CAPTURE.load(Ordering::Relaxed), before);
    }

    #[test]
    fn serial_is_max_of_pipes() {
        let e = BlockEvent {
            grid_idx: 0,
            sm: 0,
            slot: 0,
            start_cycles: 0.0,
            end_cycles: 7.0,
            compute_cycles: 3.0,
            memory_cycles: 7.0,
            cost: BlockCost::default(),
        };
        assert_eq!(e.serial_cycles(), 7.0);
    }
}
