//! Event counting and the cycle cost model.
//!
//! Kernels record *what they did* ([`BlockCost`]); the [`CostModel`]
//! converts events into cycles. Keeping the two separate makes the model
//! auditable: every constant is documented here, and the ablation benches
//! re-run experiments under perturbed constants to check conclusions are
//! not knife-edge artifacts of a single calibration.

/// Per-block event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BlockCost {
    /// Cooperative *warp*-rounds: one issue round of the whole block costs
    /// one unit per resident warp, so idle lanes in oversized groups are
    /// paid for — the effect paper Fig. 1/Fig. 13 is about. `BlockCtx`
    /// scales block-level rounds by the warp count automatically.
    pub issue_rounds: u64,
    /// Global-memory transactions at sector granularity (coalesced traffic).
    pub gmem_tx: u64,
    /// Scattered global accesses (one transaction each).
    pub gmem_scatter: u64,
    /// Global-memory atomic operations.
    pub gmem_atomics: u64,
    /// Scratchpad (shared-memory) accesses.
    pub smem_ops: u64,
    /// Scratchpad atomic operations.
    pub smem_atomics: u64,
    /// Extra linear-probing steps beyond the first hash slot.
    pub hash_probes: u64,
    /// Comparison/exchange steps spent sorting in scratchpad.
    pub sort_steps: u64,
    /// Block-wide barriers.
    pub syncs: u64,
    /// Elements spilled from a local to a global hash map (§4.3).
    pub spilled_elems: u64,
}

/// Stable names of the [`BlockCost`] counters, in field order — the
/// schema of every per-launch/per-stage counter export (metrics
/// registries, snapshots, regression baselines).
pub const COST_COUNTER_NAMES: [&str; 10] = [
    "issue_rounds",
    "gmem_tx",
    "gmem_scatter",
    "gmem_atomics",
    "smem_ops",
    "smem_atomics",
    "hash_probes",
    "sort_steps",
    "syncs",
    "spilled_elems",
];

impl BlockCost {
    /// The counters as `(name, value)` pairs in [`COST_COUNTER_NAMES`]
    /// order, for structured export without field-by-field plumbing.
    pub fn counters(&self) -> [(&'static str, u64); 10] {
        [
            ("issue_rounds", self.issue_rounds),
            ("gmem_tx", self.gmem_tx),
            ("gmem_scatter", self.gmem_scatter),
            ("gmem_atomics", self.gmem_atomics),
            ("smem_ops", self.smem_ops),
            ("smem_atomics", self.smem_atomics),
            ("hash_probes", self.hash_probes),
            ("sort_steps", self.sort_steps),
            ("syncs", self.syncs),
            ("spilled_elems", self.spilled_elems),
        ]
    }

    /// Sets one counter by its [`COST_COUNTER_NAMES`] name. Returns false
    /// (and changes nothing) for an unknown name — the inverse of
    /// [`BlockCost::counters`], used when reading costs back from an
    /// exported trace.
    pub fn set_counter(&mut self, name: &str, value: u64) -> bool {
        match name {
            "issue_rounds" => self.issue_rounds = value,
            "gmem_tx" => self.gmem_tx = value,
            "gmem_scatter" => self.gmem_scatter = value,
            "gmem_atomics" => self.gmem_atomics = value,
            "smem_ops" => self.smem_ops = value,
            "smem_atomics" => self.smem_atomics = value,
            "hash_probes" => self.hash_probes = value,
            "sort_steps" => self.sort_steps = value,
            "syncs" => self.syncs = value,
            "spilled_elems" => self.spilled_elems = value,
            _ => return false,
        }
        true
    }

    /// Element-wise sum of two cost records.
    pub fn merge(&self, o: &BlockCost) -> BlockCost {
        BlockCost {
            issue_rounds: self.issue_rounds + o.issue_rounds,
            gmem_tx: self.gmem_tx + o.gmem_tx,
            gmem_scatter: self.gmem_scatter + o.gmem_scatter,
            gmem_atomics: self.gmem_atomics + o.gmem_atomics,
            smem_ops: self.smem_ops + o.smem_ops,
            smem_atomics: self.smem_atomics + o.smem_atomics,
            hash_probes: self.hash_probes + o.hash_probes,
            sort_steps: self.sort_steps + o.sort_steps,
            syncs: self.syncs + o.syncs,
            spilled_elems: self.spilled_elems + o.spilled_elems,
        }
    }
}

/// Cycle weights for each event class.
///
/// Calibration rationale (per-event *throughput* costs for one block, not
/// latencies — latency hiding across resident blocks is captured by the
/// scheduler's occupancy division):
///
/// * `c_round` — SM-issue cost of one *warp*-round of a cooperative loop:
///   address math, load issue, bounds check and the accumulator call are
///   ~a dozen warp instructions at ~4 issue slots per cycle. This is the
///   constant that makes *idle lanes expensive*: a block whose groups are
///   16x too wide executes 16x the warp-rounds for the same data (paper
///   Fig. 1 / Fig. 13).
/// * `c_gmem_tx` — average memory-hierarchy throughput cost of one 32 B
///   sector per SM: 80 SMs x 32 B / 3 cycles at 1.2 GHz ~ 1 TB/s, between
///   the Titan V's 652 GB/s DRAM and its ~2 TB/s L2 (the simulator has no
///   cache model, so this constant prices a typical hit/miss mix).
/// * `c_gmem_scatter` — a scattered access moves a full sector for a few
///   useful bytes and is more likely to miss cache.
/// * scratchpad ops are an order of magnitude cheaper than global memory —
///   the premise of the paper's "stay in scratchpad" design.
/// * `c_spill` — moving one element into a global hash map: read + atomic +
///   write, the 40x cliff the paper reports for rows exceeding scratchpad.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Cycles per group issue round.
    pub c_round: f64,
    /// Cycles per coalesced global-memory sector transaction.
    pub c_gmem_tx: f64,
    /// Cycles per scattered global access.
    pub c_gmem_scatter: f64,
    /// Cycles per global atomic.
    pub c_gmem_atomic: f64,
    /// Cycles per scratchpad access.
    pub c_smem_op: f64,
    /// Cycles per scratchpad atomic.
    pub c_smem_atomic: f64,
    /// Cycles per extra hash probe.
    pub c_probe: f64,
    /// Cycles per sort comparison step.
    pub c_sort_step: f64,
    /// Cycles per block barrier.
    pub c_sync: f64,
    /// Cycles per element spilled to a global hash map.
    pub c_spill: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            c_round: 10.0,
            c_gmem_tx: 3.0,
            c_gmem_scatter: 4.0,
            c_gmem_atomic: 30.0,
            c_smem_op: 1.0,
            c_smem_atomic: 2.0,
            c_probe: 1.0,
            c_sort_step: 1.0,
            c_sync: 20.0,
            c_spill: 60.0,
        }
    }
}

impl CostModel {
    /// Splits a block's events into `(compute, memory)` pipe cycles.
    ///
    /// Barriers serialise the block and are charged to the compute side.
    pub fn split_cycles(&self, c: &BlockCost) -> (f64, f64) {
        let compute = c.issue_rounds as f64 * self.c_round
            + c.smem_ops as f64 * self.c_smem_op
            + c.smem_atomics as f64 * self.c_smem_atomic
            + c.hash_probes as f64 * self.c_probe
            + c.sort_steps as f64 * self.c_sort_step
            + c.syncs as f64 * self.c_sync;
        let memory = c.gmem_tx as f64 * self.c_gmem_tx
            + c.gmem_scatter as f64 * self.c_gmem_scatter
            + c.gmem_atomics as f64 * self.c_gmem_atomic
            + c.spilled_elems as f64 * self.c_spill;
        (compute, memory)
    }

    /// Total cycles for one block in isolation: the pipes overlap, so the
    /// block pays the maximum of its compute and memory sides.
    pub fn block_cycles(&self, c: &BlockCost) -> f64 {
        let (compute, memory) = self.split_cycles(c);
        compute.max(memory)
    }

    /// Shadow cost of a measured block under this model — the identity
    /// counterfactual. Decision-audit layers cost the *chosen* alternative
    /// of every decision through this entry point so that it is
    /// bit-for-bit the cycles the scheduler actually charged for the
    /// block (it is exactly [`CostModel::block_cycles`]).
    pub fn shadow_cycles(&self, c: &BlockCost) -> f64 {
        self.block_cycles(c)
    }

    /// Counterfactual cycles for a measured block whose `issue_rounds`
    /// are replaced by `rounds` — "what if the group size had packed the
    /// same work into a different number of issue rounds?". Every other
    /// counter (memory traffic, scratchpad ops, probes) is kept at its
    /// measured value. With `rounds == c.issue_rounds` this is the
    /// identity shadow cost.
    pub fn shadow_cycles_with_rounds(&self, c: &BlockCost, rounds: u64) -> f64 {
        let alt = BlockCost {
            issue_rounds: rounds,
            ..*c
        };
        self.block_cycles(&alt)
    }

    /// Counterfactual cycles for a measured block whose *compute* side is
    /// scaled by `factor` while the memory side keeps its measured cost —
    /// "what if the block had run with a different thread width?". A
    /// wider configuration spreads the same per-element work over more
    /// lanes (`factor < 1`), a narrower one serialises it (`factor > 1`);
    /// memory traffic is width-invariant. `factor == 1.0` is the identity
    /// shadow cost.
    pub fn shadow_cycles_compute_scaled(&self, c: &BlockCost, factor: f64) -> f64 {
        let (compute, memory) = self.split_cycles(c);
        (compute * factor).max(memory)
    }

    /// First-order per-product *compute* cost of each accumulation
    /// strategy under this model, for counterfactual method costing:
    /// a hash insert pays a probe plus a scratchpad CAS, a dense
    /// accumulation a plain scratchpad access, and direct referencing
    /// only the issue slot of its streaming copy. Decision audits scale a
    /// measured block's compute side by the ratio of these units to
    /// estimate a rejected accumulator's cost.
    pub fn acc_unit_costs(&self) -> AccUnitCosts {
        AccUnitCosts {
            hash: self.c_probe + self.c_smem_atomic,
            dense: self.c_smem_op,
            direct: 1.0,
        }
    }

    /// A copy of the model with every constant multiplied by the matching
    /// factor — used by the cost-model-sensitivity ablation bench.
    pub fn scaled(&self, compute_factor: f64, memory_factor: f64) -> CostModel {
        CostModel {
            c_round: self.c_round * compute_factor,
            c_smem_op: self.c_smem_op * compute_factor,
            c_smem_atomic: self.c_smem_atomic * compute_factor,
            c_probe: self.c_probe * compute_factor,
            c_sort_step: self.c_sort_step * compute_factor,
            c_sync: self.c_sync * compute_factor,
            c_gmem_tx: self.c_gmem_tx * memory_factor,
            c_gmem_scatter: self.c_gmem_scatter * memory_factor,
            c_gmem_atomic: self.c_gmem_atomic * memory_factor,
            c_spill: self.c_spill * memory_factor,
        }
    }
}

/// Per-product compute-cost units of the three accumulation strategies
/// (see [`CostModel::acc_unit_costs`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccUnitCosts {
    /// Scratchpad hash-map insert: probe + scratchpad atomic.
    pub hash: f64,
    /// Chunked dense accumulation: one scratchpad access.
    pub dense: f64,
    /// Direct referencing: bare issue slot of the streaming copy.
    pub direct: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cost_block_is_free() {
        let m = CostModel::default();
        assert_eq!(m.block_cycles(&BlockCost::default()), 0.0);
    }

    #[test]
    fn compute_and_memory_overlap() {
        let m = CostModel::default();
        let c = BlockCost {
            issue_rounds: 100,
            gmem_tx: 1,
            ..Default::default()
        };
        // Memory side is tiny; block pays the compute side only.
        assert_eq!(m.block_cycles(&c), 100.0 * m.c_round);

        let c2 = BlockCost {
            issue_rounds: 1,
            gmem_tx: 1000,
            ..Default::default()
        };
        assert_eq!(m.block_cycles(&c2), 1000.0 * m.c_gmem_tx);
    }

    #[test]
    fn split_separates_pipes_and_syncs_are_compute() {
        let m = CostModel::default();
        let c = BlockCost {
            issue_rounds: 10,
            gmem_tx: 7,
            syncs: 3,
            ..Default::default()
        };
        let (comp, mem) = m.split_cycles(&c);
        assert_eq!(comp, 10.0 * m.c_round + 3.0 * m.c_sync);
        assert_eq!(mem, 7.0 * m.c_gmem_tx);
    }

    #[test]
    fn scratchpad_is_cheaper_than_global() {
        let m = CostModel::default();
        // The design premise of the paper must hold in the model.
        assert!(m.c_smem_op < m.c_gmem_tx);
        assert!(m.c_smem_atomic < m.c_gmem_atomic);
        assert!(m.c_spill > m.c_gmem_tx);
    }

    #[test]
    fn merge_adds_fields() {
        let a = BlockCost {
            issue_rounds: 1,
            gmem_tx: 2,
            spilled_elems: 5,
            ..Default::default()
        };
        let b = BlockCost {
            issue_rounds: 10,
            syncs: 1,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.issue_rounds, 11);
        assert_eq!(m.gmem_tx, 2);
        assert_eq!(m.spilled_elems, 5);
        assert_eq!(m.syncs, 1);
    }

    #[test]
    fn scaled_model_scales_the_right_sides() {
        let m = CostModel::default();
        let s = m.scaled(2.0, 3.0);
        assert_eq!(s.c_round, 2.0 * m.c_round);
        assert_eq!(s.c_gmem_tx, 3.0 * m.c_gmem_tx);
    }

    #[test]
    fn identity_shadow_cost_is_block_cycles_bitwise() {
        let m = CostModel::default();
        let c = BlockCost {
            issue_rounds: 37,
            gmem_tx: 101,
            smem_ops: 5,
            hash_probes: 3,
            syncs: 2,
            ..Default::default()
        };
        assert_eq!(m.shadow_cycles(&c).to_bits(), m.block_cycles(&c).to_bits());
        assert_eq!(
            m.shadow_cycles_with_rounds(&c, c.issue_rounds).to_bits(),
            m.block_cycles(&c).to_bits()
        );
        assert_eq!(
            m.shadow_cycles_compute_scaled(&c, 1.0).to_bits(),
            m.block_cycles(&c).to_bits()
        );
    }

    #[test]
    fn counterfactual_rounds_move_only_the_compute_side() {
        let m = CostModel::default();
        let c = BlockCost {
            issue_rounds: 10,
            gmem_tx: 4,
            ..Default::default()
        };
        assert_eq!(m.shadow_cycles_with_rounds(&c, 20), 20.0 * m.c_round);
        // A memory-bound block stays memory-bound when rounds shrink.
        let mem = BlockCost {
            issue_rounds: 1,
            gmem_tx: 1000,
            ..Default::default()
        };
        assert_eq!(m.shadow_cycles_with_rounds(&mem, 0), 1000.0 * m.c_gmem_tx);
    }

    #[test]
    fn acc_units_rank_hash_dearest_and_stay_positive() {
        let u = CostModel::default().acc_unit_costs();
        assert!(u.hash > u.dense && u.hash > u.direct);
        assert!(u.hash > 0.0 && u.dense > 0.0 && u.direct > 0.0);
    }
}
