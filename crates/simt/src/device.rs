//! Device description: the hardware limits the paper's decisions key off.

/// Static description of a simulated GPU.
///
/// The defaults mirror the paper's test device (NVIDIA Titan V, §4.2/§6):
/// 48 KiB default scratchpad per block, up to 96 KiB opt-in dynamic
/// scratchpad (which halves occupancy), 1024-thread blocks, warp size 32.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Marketing name, used only in reports.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// SIMT width.
    pub warp_size: usize,
    /// Hardware cap on threads per block.
    pub max_threads_per_block: usize,
    /// Threads resident per SM.
    pub max_threads_per_sm: usize,
    /// Blocks resident per SM.
    pub max_blocks_per_sm: usize,
    /// Default (static) scratchpad limit per block, bytes.
    pub scratch_static_per_block: usize,
    /// Maximum opt-in (dynamic) scratchpad per block, bytes.
    pub scratch_max_per_block: usize,
    /// Scratchpad capacity per SM, bytes; bounds occupancy.
    pub scratch_per_sm: usize,
    /// Core clock in GHz; converts cycles to seconds.
    pub clock_ghz: f64,
    /// Fixed host-side cost of one kernel launch, in cycles.
    pub launch_overhead_cycles: f64,
    /// Fixed host-side cost of one device allocation, in cycles
    /// (cudaMalloc-style; the paper includes allocation in timings, §6).
    pub alloc_overhead_cycles: f64,
    /// Size of one global-memory transaction, bytes (the 32 B sector
    /// granularity of modern GPU DRAM systems).
    pub transaction_bytes: usize,
    /// Total device memory, bytes; methods whose peak allocation exceeds
    /// this fail the multiplication (the paper's "#inv." row, Table 3).
    pub memory_bytes: usize,
}

impl DeviceConfig {
    /// The paper's evaluation device.
    pub fn titan_v() -> Self {
        DeviceConfig {
            name: "SimTitanV",
            num_sms: 80,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            scratch_static_per_block: 48 * 1024,
            scratch_max_per_block: 96 * 1024,
            scratch_per_sm: 96 * 1024,
            clock_ghz: 1.2,
            // ~5 us launch, ~2.5 us allocation at 1.2 GHz.
            launch_overhead_cycles: 6_000.0,
            alloc_overhead_cycles: 3_000.0,
            transaction_bytes: 32,
            memory_bytes: 12 * 1024 * 1024 * 1024,
        }
    }

    /// A deliberately small device for tests: 4 SMs, 16 KiB scratchpad.
    pub fn tiny() -> Self {
        DeviceConfig {
            name: "SimTiny",
            num_sms: 4,
            warp_size: 32,
            max_threads_per_block: 256,
            max_threads_per_sm: 512,
            max_blocks_per_sm: 8,
            scratch_static_per_block: 16 * 1024,
            scratch_max_per_block: 32 * 1024,
            scratch_per_sm: 32 * 1024,
            clock_ghz: 1.0,
            launch_overhead_cycles: 1_000.0,
            alloc_overhead_cycles: 1_000.0,
            transaction_bytes: 32,
            memory_bytes: 256 * 1024 * 1024,
        }
    }

    /// Seconds represented by `cycles` on this device.
    #[inline]
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9)
    }

    /// Number of blocks of the given shape that can be resident on one SM,
    /// limited by thread count, block slots and scratchpad capacity.
    pub fn blocks_per_sm(&self, threads: usize, scratch_bytes: usize) -> usize {
        let by_threads = self.max_threads_per_sm / threads.max(1);
        let by_scratch = self
            .scratch_per_sm
            .checked_div(scratch_bytes)
            .unwrap_or(usize::MAX);
        self.max_blocks_per_sm
            .min(by_threads)
            .min(by_scratch)
            .max(1)
    }

    /// Maximum number of blocks concurrently resident on the whole device —
    /// the paper sizes its global hash-map fallback pool with this (§4.3).
    pub fn max_concurrent_blocks(&self, threads: usize, scratch_bytes: usize) -> usize {
        self.num_sms * self.blocks_per_sm(threads, scratch_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_v_matches_paper_limits() {
        let d = DeviceConfig::titan_v();
        assert_eq!(d.scratch_static_per_block, 48 * 1024);
        assert_eq!(d.scratch_max_per_block, 96 * 1024);
        assert_eq!(d.max_threads_per_block, 1024);
        assert_eq!(d.warp_size, 32);
    }

    #[test]
    fn occupancy_limited_by_threads() {
        let d = DeviceConfig::titan_v();
        assert_eq!(d.blocks_per_sm(1024, 0), 2);
        assert_eq!(d.blocks_per_sm(256, 0), 8);
        assert_eq!(d.blocks_per_sm(64, 0), 32); // block-slot cap
    }

    #[test]
    fn occupancy_limited_by_scratchpad() {
        let d = DeviceConfig::titan_v();
        // Paper: 96 KiB scratch with 1024 threads halves occupancy vs 48 KiB.
        assert_eq!(d.blocks_per_sm(1024, 48 * 1024), 2);
        assert_eq!(d.blocks_per_sm(1024, 96 * 1024), 1);
    }

    #[test]
    fn occupancy_never_zero() {
        let d = DeviceConfig::tiny();
        // Oversized request still schedules one block at a time.
        assert_eq!(d.blocks_per_sm(4096, 1 << 20), 1);
    }

    #[test]
    fn cycle_time_conversion() {
        let d = DeviceConfig::titan_v();
        let t = d.cycles_to_seconds(1.2e9);
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_blocks_scales_with_sms() {
        let d = DeviceConfig::titan_v();
        assert_eq!(d.max_concurrent_blocks(1024, 96 * 1024), 80);
        assert_eq!(d.max_concurrent_blocks(1024, 48 * 1024), 160);
    }
}
