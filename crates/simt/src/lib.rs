//! A deterministic SIMT execution simulator.
//!
//! The spECK paper runs on an NVIDIA Titan V; this workspace has no GPU, so
//! every SpGEMM method executes on this simulator instead. Kernels are Rust
//! closures invoked once per *thread block*; blocks run in parallel across
//! host cores (rayon). Each block records the events a GPU would have paid
//! for — group issue rounds, global-memory transactions (coalesced vs.
//! scattered), scratchpad operations and atomics, hash probes, sort steps —
//! into a [`cost::BlockCost`]. A calibrated [`cost::CostModel`] converts
//! events to cycles, and a list scheduler maps blocks onto SM slots
//! (occupancy-limited) to produce a simulated kernel time.
//!
//! The simulator is *functional*: kernels compute real results (validated
//! against a sequential reference), and *deterministic*: the same inputs
//! always produce the same simulated time, regardless of host thread count.
//!
//! ```
//! use speck_simt::{DeviceConfig, CostModel, KernelConfig, launch};
//!
//! let dev = DeviceConfig::titan_v();
//! let cost = CostModel::default();
//! let report = launch(&dev, &cost, "demo", 128, KernelConfig::new(256, 0), |ctx| {
//!     ctx.charge_gmem_stream(32, 1000, 8); // stream 1000 doubles, 32-wide
//! });
//! assert!(report.sim_time_s > 0.0);
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod cost;
pub mod device;
pub mod exec;
pub mod kernel;
pub mod memtrack;
pub mod scratchpad;
pub mod timeline;
pub mod trace;

pub use block::{simulate_group_rounds, BlockCtx};
pub use cost::{AccUnitCosts, BlockCost, CostModel, COST_COUNTER_NAMES};
pub use device::DeviceConfig;
pub use exec::{launch, launch_map, schedule_blocks, schedule_blocks_placed, KernelReport};
pub use kernel::KernelConfig;
pub use memtrack::MemTracker;
pub use scratchpad::Scratchpad;
pub use timeline::{StageTime, Timeline};
pub use trace::{capture_enabled, BlockEvent, BlockPlacement, CaptureGuard, KernelBlockTrace};
