//! Per-block execution context: the API a kernel closure uses to do work
//! and to record its cost.

use crate::cost::BlockCost;
use crate::kernel::KernelConfig;
use crate::scratchpad::Scratchpad;

/// Context handed to a kernel closure, one per thread block.
#[derive(Debug)]
pub struct BlockCtx {
    block_id: usize,
    cfg: KernelConfig,
    transaction_bytes: usize,
    warp_size: usize,
    /// Scratchpad arena of this block.
    pub scratch: Scratchpad,
    cost: BlockCost,
}

impl BlockCtx {
    /// Creates a context (called by the executor).
    pub(crate) fn new(
        block_id: usize,
        cfg: KernelConfig,
        transaction_bytes: usize,
        warp_size: usize,
    ) -> Self {
        Self {
            block_id,
            cfg,
            transaction_bytes,
            warp_size,
            scratch: Scratchpad::new(cfg.scratch_bytes),
            cost: BlockCost::default(),
        }
    }

    /// Index of this block in the grid.
    #[inline]
    pub fn block_id(&self) -> usize {
        self.block_id
    }

    /// Threads in this block.
    #[inline]
    pub fn threads(&self) -> usize {
        self.cfg.threads
    }

    /// SIMT width of the device.
    #[inline]
    pub fn warp_size(&self) -> usize {
        self.warp_size
    }

    /// Events recorded so far.
    pub fn cost(&self) -> &BlockCost {
        &self.cost
    }

    pub(crate) fn into_cost(self) -> BlockCost {
        self.cost
    }

    /// Warps resident in this block (rounded up).
    #[inline]
    pub fn warps(&self) -> u64 {
        (self.cfg.threads as u64).div_ceil(self.warp_size as u64)
    }

    // ---- low-level charges -------------------------------------------------

    /// Charges `n` cooperative block-level issue rounds. Every round issues
    /// one instruction bundle per resident warp, so the recorded unit is
    /// *warp*-rounds — oversized groups with idle lanes pay full price.
    #[inline]
    pub fn charge_rounds(&mut self, n: u64) {
        self.cost.issue_rounds += n * self.warps();
    }

    /// Charges `n` coalesced global transactions directly.
    #[inline]
    pub fn charge_gmem_tx(&mut self, n: u64) {
        self.cost.gmem_tx += n;
    }

    /// Charges `count` scattered global accesses (uncoalesced gathers).
    #[inline]
    pub fn charge_gmem_scatter(&mut self, count: u64) {
        self.cost.gmem_scatter += count;
    }

    /// Charges `n` global atomics.
    #[inline]
    pub fn charge_gmem_atomic(&mut self, n: u64) {
        self.cost.gmem_atomics += n;
    }

    /// Charges `n` scratchpad accesses.
    #[inline]
    pub fn charge_smem(&mut self, n: u64) {
        self.cost.smem_ops += n;
    }

    /// Charges `n` scratchpad atomics.
    #[inline]
    pub fn charge_smem_atomic(&mut self, n: u64) {
        self.cost.smem_atomics += n;
    }

    /// Charges `n` extra linear-probe steps.
    #[inline]
    pub fn charge_probes(&mut self, n: u64) {
        self.cost.hash_probes += n;
    }

    /// Charges `n` sorting comparison steps.
    #[inline]
    pub fn charge_sort_steps(&mut self, n: u64) {
        self.cost.sort_steps += n;
    }

    /// Charges one block-wide barrier.
    #[inline]
    pub fn charge_sync(&mut self) {
        self.cost.syncs += 1;
    }

    /// Charges `n` elements spilled to a global hash map.
    #[inline]
    pub fn charge_spill(&mut self, n: u64) {
        self.cost.spilled_elems += n;
    }

    // ---- composite helpers -------------------------------------------------

    /// Cost of a group of `g` threads streaming `len` consecutive elements
    /// of `elem_bytes` each from global memory: `ceil(len/g)` issue rounds;
    /// every round moves up to `g * elem_bytes` contiguous bytes =
    /// `ceil(g*elem_bytes/tx)` transactions (the coalescing model of paper
    /// Fig. 1). Returns the number of rounds.
    pub fn charge_gmem_stream(&mut self, g: usize, len: usize, elem_bytes: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let g = g.max(1);
        let rounds = len.div_ceil(g) as u64;
        self.cost.issue_rounds += rounds * self.warps();
        // Full rounds move g elements; the last moves the remainder.
        let full = (len / g) as u64;
        let tx_full = (g * elem_bytes).div_ceil(self.transaction_bytes) as u64;
        self.cost.gmem_tx += full * tx_full;
        let rem = len % g;
        if rem > 0 {
            self.cost.gmem_tx += (rem * elem_bytes).div_ceil(self.transaction_bytes) as u64;
        }
        rounds
    }

    /// Cost of writing `len` consecutive elements back to global memory by
    /// the whole block (coalesced, `threads`-wide).
    pub fn charge_gmem_store(&mut self, len: usize, elem_bytes: usize) -> u64 {
        self.charge_gmem_stream(self.cfg.threads, len, elem_bytes)
    }

    /// Transaction count of a `g`-wide stream over `len` elements of
    /// `elem_bytes` each, *without* charging anything. Kernels that compute
    /// their issue rounds separately (via [`simulate_group_rounds`]) use
    /// this to charge memory traffic without double-counting rounds.
    pub fn stream_tx(&self, g: usize, len: usize, elem_bytes: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let g = g.max(1);
        let full = (len / g) as u64;
        let mut tx = full * ((g * elem_bytes).div_ceil(self.transaction_bytes) as u64);
        let rem = len % g;
        if rem > 0 {
            tx += (rem * elem_bytes).div_ceil(self.transaction_bytes) as u64;
        }
        tx
    }
}

/// Iteration count of a block whose `k` groups dynamically pick tasks.
///
/// The paper's local load balancer assigns groups "successively to the NZ
/// of A" (§4.3): the block finishes after roughly `total/k` rounds but can
/// never beat the single longest task. Returns
/// `max(ceil(total_iters / k), max_task_iters)`.
pub fn simulate_group_rounds(k: usize, iters_per_task: impl IntoIterator<Item = u64>) -> u64 {
    let k = k.max(1) as u64;
    let mut total = 0u64;
    let mut max_task = 0u64;
    for it in iters_per_task {
        total += it;
        max_task = max_task.max(it);
    }
    max_task.max(total.div_ceil(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> BlockCtx {
        BlockCtx::new(0, KernelConfig::new(256, 16 * 1024), 128, 32)
    }

    #[test]
    fn stream_rounds_match_paper_figure_1() {
        // Fig. 1: 8 threads, rows of B with 1,7,3,1 entries.
        // g=8: 4 iterations; g=4: lengths ceil(1/4)+ceil(7/4)+... = 1+2+1+1=5
        //       split over 2 groups -> 3 rounds; g=2: 1+4+2+1=8 over 4 groups
        //       -> max(ceil(8/4), 4) = 4; g=1: longest row alone needs 7.
        let rows = [1u64, 7, 3, 1];
        let iters = |g: u64| rows.iter().map(move |&l| l.div_ceil(g));
        assert_eq!(simulate_group_rounds(1, iters(8)), 4);
        assert_eq!(simulate_group_rounds(2, iters(4)), 3);
        assert_eq!(simulate_group_rounds(4, iters(2)), 4);
        assert_eq!(simulate_group_rounds(8, iters(1)), 7);
    }

    #[test]
    fn stream_counts_transactions_by_coalescing() {
        let mut c = ctx();
        // 32 threads reading 64 doubles: 2 rounds, each 32*8=256 B = 2 tx.
        let rounds = c.charge_gmem_stream(32, 64, 8);
        assert_eq!(rounds, 2);
        assert_eq!(c.cost().gmem_tx, 4);
        // 256-thread block = 8 warps; 2 rounds -> 16 warp-rounds.
        assert_eq!(c.cost().issue_rounds, 16);
    }

    #[test]
    fn stream_remainder_rounds_up() {
        let mut c = ctx();
        // 32 threads reading 33 u32s: 2 rounds; first 32*4=128B=1tx, then 4B=1tx.
        let rounds = c.charge_gmem_stream(32, 33, 4);
        assert_eq!(rounds, 2);
        assert_eq!(c.cost().gmem_tx, 2);
    }

    #[test]
    fn narrow_group_wastes_transactions() {
        // Same 64 doubles with g=2: 32 rounds, each 16 B still costs 1 tx.
        let mut a = ctx();
        a.charge_gmem_stream(2, 64, 8);
        let mut b = ctx();
        b.charge_gmem_stream(32, 64, 8);
        assert!(a.cost().gmem_tx > b.cost().gmem_tx);
        assert!(a.cost().issue_rounds > b.cost().issue_rounds);
    }

    #[test]
    fn empty_stream_is_free() {
        let mut c = ctx();
        assert_eq!(c.charge_gmem_stream(32, 0, 8), 0);
        assert_eq!(*c.cost(), BlockCost::default());
    }

    #[test]
    fn group_rounds_balances_work() {
        // 10 tasks of 3 iterations over 5 groups: 6 rounds.
        assert_eq!(simulate_group_rounds(5, std::iter::repeat_n(3, 10)), 6);
        // Straggler dominates.
        assert_eq!(simulate_group_rounds(8, [100u64, 1, 1].into_iter()), 100);
        // Zero tasks: zero rounds.
        assert_eq!(simulate_group_rounds(4, std::iter::empty()), 0);
    }

    #[test]
    fn charges_accumulate() {
        let mut c = ctx();
        c.charge_rounds(5);
        c.charge_smem(10);
        c.charge_smem_atomic(3);
        c.charge_probes(2);
        c.charge_sync();
        c.charge_spill(7);
        c.charge_gmem_atomic(1);
        c.charge_gmem_scatter(4);
        c.charge_sort_steps(6);
        let cost = c.cost();
        // 5 block rounds x 8 warps.
        assert_eq!(cost.issue_rounds, 40);
        assert_eq!(cost.smem_ops, 10);
        assert_eq!(cost.smem_atomics, 3);
        assert_eq!(cost.hash_probes, 2);
        assert_eq!(cost.syncs, 1);
        assert_eq!(cost.spilled_elems, 7);
        assert_eq!(cost.gmem_atomics, 1);
        assert_eq!(cost.gmem_scatter, 4);
        assert_eq!(cost.sort_steps, 6);
    }
}
