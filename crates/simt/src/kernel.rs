//! Kernel launch shape.

use crate::device::DeviceConfig;

/// Shape of one kernel launch: threads per block and scratchpad bytes per
/// block. The grid size is passed separately to [`crate::exec::launch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelConfig {
    /// Threads per block (must be a multiple of the warp size for full
    /// efficiency; the simulator rounds up internally).
    pub threads: usize,
    /// Scratchpad bytes requested per block.
    pub scratch_bytes: usize,
}

impl KernelConfig {
    /// Creates a kernel configuration.
    pub fn new(threads: usize, scratch_bytes: usize) -> Self {
        assert!(threads > 0, "KernelConfig: threads must be positive");
        Self {
            threads,
            scratch_bytes,
        }
    }

    /// Occupancy of this configuration on `dev`, as resident blocks per SM.
    pub fn blocks_per_sm(&self, dev: &DeviceConfig) -> usize {
        dev.blocks_per_sm(self.threads, self.scratch_bytes)
    }

    /// Fraction of the SM's thread capacity this configuration keeps busy —
    /// the "full hardware utilization" criterion of paper §4.2.
    pub fn thread_occupancy(&self, dev: &DeviceConfig) -> f64 {
        let resident = self.blocks_per_sm(dev) * self.threads;
        (resident as f64 / dev.max_threads_per_sm as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_fully_occupy_titan_v() {
        let dev = DeviceConfig::titan_v();
        // The paper's cascade: (1024 t, 48 KiB), (512, 24 KiB), ... each
        // halving both, all reach full thread occupancy.
        for i in 0..5 {
            let cfg = KernelConfig::new(1024 >> i, (48 * 1024) >> i);
            assert_eq!(
                cfg.thread_occupancy(&dev),
                1.0,
                "config {i} should fully occupy"
            );
        }
    }

    #[test]
    fn oversized_scratch_halves_occupancy() {
        let dev = DeviceConfig::titan_v();
        let big = KernelConfig::new(1024, 96 * 1024);
        assert_eq!(big.blocks_per_sm(&dev), 1);
        assert!((big.thread_occupancy(&dev) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threads_rejected() {
        let _ = KernelConfig::new(0, 0);
    }
}
