//! Capacity-checked scratchpad (shared-memory) arena.
//!
//! Real storage is host memory; what matters for fidelity is that a block
//! can never hold more bytes than its [`crate::KernelConfig`] requested,
//! because every decision in spECK's global load balancer is capacity
//! arithmetic over this limit.

/// Per-block scratchpad allocator.
#[derive(Debug)]
pub struct Scratchpad {
    capacity: usize,
    used: usize,
    high_water: usize,
}

impl Scratchpad {
    /// A scratchpad with the given byte capacity.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            used: 0,
            high_water: 0,
        }
    }

    /// Byte capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Highest `used` value observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Remaining bytes.
    pub fn remaining(&self) -> usize {
        self.capacity - self.used
    }

    fn bump(&mut self, bytes: usize, what: &str) {
        assert!(
            self.used + bytes <= self.capacity,
            "scratchpad overflow: {what} needs {bytes} B but only {} of {} B remain \
             (a load-balancing bug: spECK must size blocks to fit)",
            self.remaining(),
            self.capacity
        );
        self.used += bytes;
        self.high_water = self.high_water.max(self.used);
    }

    /// Accounts for `bytes` of scratchpad use without materialising
    /// storage — for kernels whose working set lives in an external
    /// structure (e.g. the hash accumulator) but must still respect the
    /// block's capacity.
    pub fn reserve(&mut self, bytes: usize, what: &str) {
        self.bump(bytes, what);
    }

    /// Allocates `n` u32 slots initialised to `fill`.
    pub fn alloc_u32(&mut self, n: usize, fill: u32) -> Vec<u32> {
        self.bump(n * 4, "u32 array");
        vec![fill; n]
    }

    /// Allocates `n` u64 slots initialised to `fill`.
    pub fn alloc_u64(&mut self, n: usize, fill: u64) -> Vec<u64> {
        self.bump(n * 8, "u64 array");
        vec![fill; n]
    }

    /// Allocates `n` f64 slots initialised to zero.
    pub fn alloc_f64(&mut self, n: usize) -> Vec<f64> {
        self.bump(n * 8, "f64 array");
        vec![0.0; n]
    }

    /// Allocates a bit mask of `n` bits (rounded up to whole words).
    pub fn alloc_bitmask(&mut self, n: usize) -> Vec<u64> {
        let words = n.div_ceil(64);
        self.bump(words * 8, "bitmask");
        vec![0u64; words]
    }

    /// Releases `bytes` back (scoped reuse between kernel phases).
    pub fn release(&mut self, bytes: usize) {
        assert!(bytes <= self.used, "scratchpad release underflow");
        self.used -= bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_within_capacity() {
        let mut s = Scratchpad::new(1024);
        let a = s.alloc_u32(100, 0);
        assert_eq!(a.len(), 100);
        assert_eq!(s.used(), 400);
        let b = s.alloc_f64(64);
        assert_eq!(b.len(), 64);
        assert_eq!(s.used(), 400 + 512);
        assert_eq!(s.remaining(), 1024 - 912);
    }

    #[test]
    #[should_panic(expected = "scratchpad overflow")]
    fn overflow_panics() {
        let mut s = Scratchpad::new(64);
        let _ = s.alloc_f64(9);
    }

    #[test]
    fn bitmask_rounds_to_words() {
        let mut s = Scratchpad::new(1024);
        let m = s.alloc_bitmask(65);
        assert_eq!(m.len(), 2);
        assert_eq!(s.used(), 16);
    }

    #[test]
    fn release_allows_phase_reuse() {
        let mut s = Scratchpad::new(100);
        let _a = s.alloc_u32(20, 0); // 80 bytes
        s.release(80);
        let _b = s.alloc_u32(25, 0); // fits again
        assert_eq!(s.high_water(), 100);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn release_more_than_used_panics() {
        let mut s = Scratchpad::new(100);
        s.release(1);
    }
}
