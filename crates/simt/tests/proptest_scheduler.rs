//! Property-based tests of the simulator's scheduler: lower bounds,
//! monotonicity and determinism on arbitrary block-cost distributions.

use proptest::prelude::*;
use speck_simt::exec::schedule_blocks;
use speck_simt::{launch, CostModel, DeviceConfig, KernelConfig};

fn blocks_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec(
        (0u32..100_000, 0u32..100_000).prop_map(|(c, m)| (c as f64, m as f64)),
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn makespan_respects_lower_bounds(blocks in blocks_strategy()) {
        let dev = DeviceConfig::titan_v();
        let cfg = KernelConfig::new(256, 8 * 1024);
        let t = schedule_blocks(&dev, cfg, &blocks);
        // Never below the single most expensive block.
        let max_serial = blocks
            .iter()
            .map(|&(c, m)| c.max(m))
            .fold(0.0f64, f64::max);
        prop_assert!(t >= max_serial - 1e-9);
        // Never below total work spread over all SMs.
        let total_c: f64 = blocks.iter().map(|b| b.0).sum();
        let total_m: f64 = blocks.iter().map(|b| b.1).sum();
        let sms = dev.num_sms as f64;
        prop_assert!(t >= total_c / sms - 1e-9);
        prop_assert!(t >= total_m / sms - 1e-9);
        // And never above fully serial execution on one SM.
        let serial: f64 = blocks.iter().map(|&(c, m)| c.max(m)).sum();
        prop_assert!(t <= serial + 1e-9);
    }

    #[test]
    fn adding_work_never_speeds_up(blocks in blocks_strategy(), extra in 0u32..100_000) {
        let dev = DeviceConfig::titan_v();
        let cfg = KernelConfig::new(128, 0);
        let t1 = schedule_blocks(&dev, cfg, &blocks);
        let mut more = blocks.clone();
        more.push((extra as f64, extra as f64 / 2.0));
        let t2 = schedule_blocks(&dev, cfg, &more);
        prop_assert!(t2 >= t1 - 1e-9);
    }

    #[test]
    fn lower_occupancy_never_speeds_up(blocks in blocks_strategy()) {
        let dev = DeviceConfig::titan_v();
        let high = KernelConfig::new(256, 4 * 1024); // many resident blocks
        let low = KernelConfig::new(256, 96 * 1024); // one resident block
        let t_high = schedule_blocks(&dev, high, &blocks);
        let t_low = schedule_blocks(&dev, low, &blocks);
        prop_assert!(t_low >= t_high - 1e-9);
    }

    #[test]
    fn launch_is_deterministic_for_random_charges(
        seeds in proptest::collection::vec(0u64..1_000_000, 1..64),
    ) {
        let dev = DeviceConfig::tiny();
        let cost = CostModel::default();
        let run = || {
            launch(&dev, &cost, "prop", seeds.len(), KernelConfig::new(64, 0), |ctx| {
                let s = seeds[ctx.block_id()];
                ctx.charge_rounds(s % 97);
                ctx.charge_gmem_tx(s % 31);
                ctx.charge_gmem_scatter(s % 13);
                if s % 5 == 0 {
                    ctx.charge_sync();
                }
            })
            .sim_cycles
        };
        prop_assert_eq!(run(), run());
    }
}
