//! CSR transpose.
//!
//! The paper evaluates rectangular matrices as `C = A·Aᵀ` with `Aᵀ`
//! precomputed (§6); this module provides that precomputation.

use crate::csr::Csr;
use crate::scalar::Scalar;

/// Transposes a CSR matrix. Output rows are sorted by construction because
/// the counting pass walks the input in row-major (hence column-minor after
/// the swap) order.
pub fn transpose<V: Scalar>(m: &Csr<V>) -> Csr<V> {
    let rows_t = m.cols();
    let mut counts = vec![0usize; rows_t + 1];
    for &c in m.col_idx() {
        counts[c as usize + 1] += 1;
    }
    for i in 0..rows_t {
        counts[i + 1] += counts[i];
    }
    let row_ptr_t = counts.clone();
    let mut cursor = counts;
    let nnz = m.nnz();
    let mut col_idx_t = vec![0u32; nnz];
    let mut vals_t = vec![V::zero(); nnz];
    for (r, cols, vals) in m.iter_rows() {
        for (&c, &v) in cols.iter().zip(vals) {
            let dst = cursor[c as usize];
            col_idx_t[dst] = r as u32;
            vals_t[dst] = v;
            cursor[c as usize] += 1;
        }
    }
    Csr::from_parts_unchecked(rows_t, m.rows(), row_ptr_t, col_idx_t, vals_t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;

    #[test]
    fn transpose_matches_dense() {
        let m = Csr::from_parts(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0]).unwrap();
        let t = transpose(&m);
        t.validate().unwrap();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        let d = DenseMatrix::from_csr(&m);
        let dt = DenseMatrix::from_csr(&t);
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(d.get(r, c), dt.get(c, r));
            }
        }
    }

    #[test]
    fn double_transpose_is_identity_op() {
        let m = Csr::from_parts(
            3,
            3,
            vec![0, 1, 3, 4],
            vec![2, 0, 1, 0],
            vec![5.0, 1.0, 2.0, 7.0],
        )
        .unwrap();
        let tt = transpose(&transpose(&m));
        assert!(m.approx_eq(&tt, 0.0, 0.0));
    }

    #[test]
    fn transpose_of_empty() {
        let m: Csr<f64> = Csr::empty(3, 5);
        let t = transpose(&m);
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.nnz(), 0);
        t.validate().unwrap();
    }
}
