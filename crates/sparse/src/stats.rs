//! Matrix statistics mirroring the quantities the paper reports (Table 4)
//! and the ones its decision heuristics consume (§3.3, §4.1).

use crate::csr::Csr;
use crate::scalar::Scalar;

/// Summary statistics of a single matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixStats {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Number of stored entries.
    pub nnz: usize,
    /// Mean NNZ per row.
    pub avg_row_nnz: f64,
    /// Largest NNZ in any row.
    pub max_row_nnz: usize,
    /// Smallest NNZ in any row.
    pub min_row_nnz: usize,
    /// Population standard deviation of row lengths.
    pub row_nnz_stddev: f64,
    /// Number of rows with exactly one stored entry — the paper's direct
    /// referencing path applies to these (§4.3).
    pub single_entry_rows: usize,
    /// Number of rows with no stored entries.
    pub empty_rows: usize,
}

impl MatrixStats {
    /// Computes statistics for a matrix.
    pub fn of<V: Scalar>(m: &Csr<V>) -> Self {
        let rows = m.rows();
        let mut max_row = 0usize;
        let mut min_row = usize::MAX;
        let mut singles = 0usize;
        let mut empties = 0usize;
        let mut sum = 0f64;
        let mut sum_sq = 0f64;
        for i in 0..rows {
            let n = m.row_nnz(i);
            max_row = max_row.max(n);
            min_row = min_row.min(n);
            if n == 1 {
                singles += 1;
            }
            if n == 0 {
                empties += 1;
            }
            sum += n as f64;
            sum_sq += (n * n) as f64;
        }
        if rows == 0 {
            min_row = 0;
        }
        let avg = if rows == 0 { 0.0 } else { sum / rows as f64 };
        let var = if rows == 0 {
            0.0
        } else {
            (sum_sq / rows as f64 - avg * avg).max(0.0)
        };
        Self {
            rows,
            cols: m.cols(),
            nnz: m.nnz(),
            avg_row_nnz: avg,
            max_row_nnz: max_row,
            min_row_nnz: min_row,
            row_nnz_stddev: var.sqrt(),
            single_entry_rows: singles,
            empty_rows: empties,
        }
    }
}

/// Statistics of a *multiplication* `A·B`, the quantities in paper Table 4.
#[derive(Clone, Debug)]
pub struct ProductStats {
    /// Intermediate product count (the paper's "Prod.").
    pub products: u64,
    /// NNZ of the result C.
    pub nnz_c: usize,
    /// Compaction factor `products / nnz_c` (paper §4.2: SuiteSparse
    /// average is ~7; ~2 below 10M products).
    pub compaction: f64,
    /// FLOP count — the paper counts 2 ops (multiply + add) per product.
    pub flops: u64,
}

impl ProductStats {
    /// Computes product statistics given both inputs and the result.
    pub fn of<V: Scalar>(a: &Csr<V>, b: &Csr<V>, c: &Csr<V>) -> Self {
        let products = a.products(b);
        let nnz_c = c.nnz();
        Self {
            products,
            nnz_c,
            compaction: if nnz_c == 0 {
                0.0
            } else {
                products as f64 / nnz_c as f64
            },
            flops: 2 * products,
        }
    }

    /// GFLOPS for a given duration in seconds (paper Fig. 6/9 metric).
    pub fn gflops(&self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            0.0
        } else {
            self.flops as f64 / seconds / 1e9
        }
    }
}

/// Histogram of row lengths in power-of-two buckets; used by the corpus
/// summaries and by tests that check generator shapes.
pub fn row_length_histogram<V: Scalar>(m: &Csr<V>) -> Vec<(usize, usize)> {
    // Bucket b holds rows with nnz in [2^b, 2^(b+1)), bucket 0 holds 0..2.
    let mut hist: Vec<usize> = Vec::new();
    for i in 0..m.rows() {
        let n = m.row_nnz(i);
        let b = if n < 2 {
            0
        } else {
            (usize::BITS - n.leading_zeros()) as usize - 1
        };
        if hist.len() <= b {
            hist.resize(b + 1, 0);
        }
        hist[b] += 1;
    }
    hist.into_iter()
        .enumerate()
        .map(|(b, count)| (1usize << b, count))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::spgemm_seq;

    fn sample() -> Csr<f64> {
        Csr::from_parts(
            4,
            4,
            vec![0, 1, 1, 4, 6],
            vec![2, 0, 1, 3, 0, 2],
            vec![1.0; 6],
        )
        .unwrap()
    }

    #[test]
    fn matrix_stats_basic() {
        let s = MatrixStats::of(&sample());
        assert_eq!(s.rows, 4);
        assert_eq!(s.nnz, 6);
        assert_eq!(s.max_row_nnz, 3);
        assert_eq!(s.min_row_nnz, 0);
        assert_eq!(s.single_entry_rows, 1);
        assert_eq!(s.empty_rows, 1);
        assert!((s.avg_row_nnz - 1.5).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_matrix() {
        let s = MatrixStats::of(&Csr::<f64>::empty(0, 0));
        assert_eq!(s.rows, 0);
        assert_eq!(s.avg_row_nnz, 0.0);
        assert_eq!(s.min_row_nnz, 0);
    }

    #[test]
    fn stddev_zero_for_uniform_rows() {
        let m: Csr<f64> = Csr::identity(8);
        let s = MatrixStats::of(&m);
        assert!(s.row_nnz_stddev.abs() < 1e-12);
    }

    #[test]
    fn product_stats_and_gflops() {
        let a = sample();
        let c = spgemm_seq(&a, &a);
        let ps = ProductStats::of(&a, &a, &c);
        assert_eq!(ps.products, a.products(&a));
        assert_eq!(ps.flops, 2 * ps.products);
        assert!(ps.compaction >= 1.0);
        let g = ps.gflops(1e-3);
        assert!((g - ps.flops as f64 / 1e-3 / 1e9).abs() < 1e-9);
        assert_eq!(ps.gflops(0.0), 0.0);
    }

    #[test]
    fn histogram_buckets_rows() {
        let hist = row_length_histogram(&sample());
        // rows: lengths 1,0,3,2 -> bucket 1 (i.e. [1,2)): two rows (0 and 1)
        let total: usize = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 4);
        assert_eq!(hist[0].0, 1); // first bucket labelled by lower bound 2^0
    }
}
