//! Error type shared by the sparse substrate.

use std::fmt;
use std::io;

/// Errors produced while constructing, converting or reading sparse matrices.
#[derive(Debug)]
pub enum SparseError {
    /// A structural invariant of a format was violated.
    ///
    /// Carries a human-readable description of the broken invariant.
    InvalidStructure(String),
    /// Dimension mismatch between operands of a matrix operation.
    DimensionMismatch {
        /// Textual description of the operation, e.g. `"spgemm"`.
        op: &'static str,
        /// Dimensions of the left operand.
        lhs: (usize, usize),
        /// Dimensions of the right operand.
        rhs: (usize, usize),
    },
    /// The parser could not understand a MatrixMarket or binary stream.
    Parse {
        /// 1-based line number where the failure occurred (0 for header).
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// Underlying I/O failure.
    Io(io::Error),
    /// An index would overflow the 32-bit column index space.
    IndexOverflow(usize),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::InvalidStructure(msg) => write!(f, "invalid matrix structure: {msg}"),
            SparseError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            SparseError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            SparseError::Io(e) => write!(f, "i/o error: {e}"),
            SparseError::IndexOverflow(v) => {
                write!(f, "index {v} does not fit the 32-bit column index space")
            }
        }
    }
}

impl std::error::Error for SparseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SparseError {
    fn from(e: io::Error) -> Self {
        SparseError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = SparseError::DimensionMismatch {
            op: "spgemm",
            lhs: (3, 4),
            rhs: (5, 6),
        };
        let s = e.to_string();
        assert!(s.contains("spgemm") && s.contains("3x4") && s.contains("5x6"));

        let e = SparseError::Parse {
            line: 7,
            msg: "bad token".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_is_wrapped_with_source() {
        let e: SparseError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
