//! Numeric scalar abstraction used by all matrix types and kernels.
//!
//! The paper evaluates in double precision; we keep the kernels generic over
//! [`Scalar`] so both `f32` and `f64` are first-class, which also lets tests
//! exercise the accumulation paths at both precisions.

use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Element type of a sparse matrix.
///
/// The bound set is the minimum the SpGEMM kernels need: ring operations,
/// a additive identity for accumulator initialisation, and a magnitude for
/// approximate comparison in tests.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + Debug
    + PartialEq
    + PartialOrd
    + Default
    + Add<Output = Self>
    + AddAssign
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + 'static
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Absolute value, used for approximate equality in validation.
    fn abs(self) -> Self;
    /// Lossy conversion from `f64`, used by generators.
    fn from_f64(v: f64) -> Self;
    /// Lossy conversion to `f64`, used by statistics and validation.
    fn to_f64(self) -> f64;
}

impl Scalar for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
}

impl Scalar for f32 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
}

/// Relative-or-absolute approximate equality for validating numeric results.
///
/// Returns `true` when `|a - b| <= atol + rtol * max(|a|, |b|)`.
pub fn approx_eq<V: Scalar>(a: V, b: V, rtol: f64, atol: f64) -> bool {
    let (a, b) = (a.to_f64(), b.to_f64());
    let diff = (a - b).abs();
    diff <= atol + rtol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_ring_identities() {
        assert_eq!(<f64 as Scalar>::zero() + 3.5, 3.5);
        assert_eq!(<f64 as Scalar>::one() * 3.5, 3.5);
        assert_eq!((-2.0f64).abs(), 2.0);
    }

    #[test]
    fn f32_roundtrip_through_f64() {
        let x = 1.25f32;
        assert_eq!(f32::from_f64(x.to_f64()), x);
    }

    #[test]
    fn approx_eq_respects_tolerances() {
        assert!(approx_eq(1.0f64, 1.0 + 1e-12, 1e-9, 0.0));
        assert!(!approx_eq(1.0f64, 1.1, 1e-9, 0.0));
        assert!(approx_eq(0.0f64, 1e-15, 0.0, 1e-12));
    }

    #[test]
    fn approx_eq_scales_with_magnitude() {
        // Relative tolerance grows with the operands.
        assert!(approx_eq(1e12f64, 1e12 + 1.0, 1e-9, 0.0));
        assert!(!approx_eq(1e-12f64, 2e-12, 1e-9, 0.0));
    }
}
