//! Reference SpGEMM implementations.
//!
//! [`spgemm_seq`] is the sequential Gustavson algorithm every kernel in the
//! workspace is validated against. [`spgemm_cpu_parallel`] is the
//! rayon-parallel variant that doubles as the "Intel MKL"-style CPU
//! comparator in the paper's evaluation (§6): a well-implemented multicore
//! CPU SpGEMM with no device-launch overhead.

use crate::csr::Csr;
use crate::error::SparseError;
use crate::scalar::Scalar;
use rayon::prelude::*;

/// Checks that `a * b` is dimensionally valid.
fn check_dims<V: Scalar>(a: &Csr<V>, b: &Csr<V>) -> Result<(), SparseError> {
    if a.cols() != b.rows() {
        return Err(SparseError::DimensionMismatch {
            op: "spgemm",
            lhs: (a.rows(), a.cols()),
            rhs: (b.rows(), b.cols()),
        });
    }
    Ok(())
}

/// Gustavson's row-wise SpGEMM with a dense accumulator ("SPA").
///
/// O(products) time, O(cols(B)) scratch. Deterministic: accumulation order
/// within a row follows the order of A's column indices, so results are
/// bit-stable across runs.
pub fn spgemm_seq<V: Scalar>(a: &Csr<V>, b: &Csr<V>) -> Csr<V> {
    try_spgemm_seq(a, b).expect("spgemm_seq: dimension mismatch")
}

/// Fallible variant of [`spgemm_seq`].
pub fn try_spgemm_seq<V: Scalar>(a: &Csr<V>, b: &Csr<V>) -> Result<Csr<V>, SparseError> {
    check_dims(a, b)?;
    let n_cols = b.cols();
    let mut accumulator: Vec<V> = vec![V::zero(); n_cols];
    let mut occupied: Vec<bool> = vec![false; n_cols];
    let mut touched: Vec<u32> = Vec::new();

    let mut row_ptr = Vec::with_capacity(a.rows() + 1);
    row_ptr.push(0usize);
    let mut col_idx: Vec<u32> = Vec::new();
    let mut vals: Vec<V> = Vec::new();

    for i in 0..a.rows() {
        let (a_cols, a_vals) = a.row(i);
        touched.clear();
        for (&k, &av) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k as usize);
            for (&j, &bv) in b_cols.iter().zip(b_vals) {
                let j_us = j as usize;
                if !occupied[j_us] {
                    occupied[j_us] = true;
                    accumulator[j_us] = V::zero();
                    touched.push(j);
                }
                accumulator[j_us] += av * bv;
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            col_idx.push(j);
            vals.push(accumulator[j as usize]);
            occupied[j as usize] = false;
        }
        row_ptr.push(col_idx.len());
    }
    Ok(Csr::from_parts_unchecked(
        a.rows(),
        n_cols,
        row_ptr,
        col_idx,
        vals,
    ))
}

/// Symbolic-only reference: the number of non-zeros in each row of `a * b`.
pub fn spgemm_row_nnz<V: Scalar>(a: &Csr<V>, b: &Csr<V>) -> Vec<usize> {
    check_dims(a, b).expect("spgemm_row_nnz: dimension mismatch");
    let n_cols = b.cols();
    let mut occupied = vec![false; n_cols];
    let mut touched: Vec<u32> = Vec::new();
    let mut out = Vec::with_capacity(a.rows());
    for i in 0..a.rows() {
        touched.clear();
        let (a_cols, _) = a.row(i);
        for &k in a_cols {
            let (b_cols, _) = b.row(k as usize);
            for &j in b_cols {
                if !occupied[j as usize] {
                    occupied[j as usize] = true;
                    touched.push(j);
                }
            }
        }
        out.push(touched.len());
        for &j in &touched {
            occupied[j as usize] = false;
        }
    }
    out
}

/// Rayon-parallel Gustavson SpGEMM (row-partitioned).
///
/// Each worker owns a private dense accumulator; per-row outputs are
/// gathered and spliced. This is the "MKL"-style CPU baseline.
pub fn spgemm_cpu_parallel<V: Scalar>(a: &Csr<V>, b: &Csr<V>) -> Csr<V> {
    check_dims(a, b).expect("spgemm_cpu_parallel: dimension mismatch");
    let n_cols = b.cols();

    // Phase 1: per-row results, computed independently.
    let rows: Vec<(Vec<u32>, Vec<V>)> = (0..a.rows())
        .into_par_iter()
        .map_init(
            || (vec![V::zero(); n_cols], vec![false; n_cols], Vec::new()),
            |(acc, occ, touched): &mut (Vec<V>, Vec<bool>, Vec<u32>), i| {
                touched.clear();
                let (a_cols, a_vals) = a.row(i);
                for (&k, &av) in a_cols.iter().zip(a_vals) {
                    let (b_cols, b_vals) = b.row(k as usize);
                    for (&j, &bv) in b_cols.iter().zip(b_vals) {
                        let j_us = j as usize;
                        if !occ[j_us] {
                            occ[j_us] = true;
                            acc[j_us] = V::zero();
                            touched.push(j);
                        }
                        acc[j_us] += av * bv;
                    }
                }
                touched.sort_unstable();
                let cols: Vec<u32> = touched.clone();
                let vals: Vec<V> = touched.iter().map(|&j| acc[j as usize]).collect();
                for &j in touched.iter() {
                    occ[j as usize] = false;
                }
                (cols, vals)
            },
        )
        .collect();

    // Phase 2: splice.
    let mut row_ptr = Vec::with_capacity(a.rows() + 1);
    row_ptr.push(0usize);
    let total: usize = rows.iter().map(|(c, _)| c.len()).sum();
    let mut col_idx = Vec::with_capacity(total);
    let mut vals = Vec::with_capacity(total);
    for (c, v) in rows {
        col_idx.extend_from_slice(&c);
        vals.extend_from_slice(&v);
        row_ptr.push(col_idx.len());
    }
    Csr::from_parts_unchecked(a.rows(), n_cols, row_ptr, col_idx, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;

    fn sample_pair() -> (Csr<f64>, Csr<f64>) {
        let a = Csr::from_parts(
            3,
            3,
            vec![0, 2, 3, 5],
            vec![0, 1, 2, 0, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        let b = Csr::from_parts(
            3,
            4,
            vec![0, 2, 3, 5],
            vec![0, 3, 1, 0, 2],
            vec![1.0, 1.0, 2.0, 3.0, 4.0],
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn seq_matches_dense_oracle() {
        let (a, b) = sample_pair();
        let c = spgemm_seq(&a, &b);
        c.validate().unwrap();
        let oracle = DenseMatrix::from_csr(&a).matmul(&DenseMatrix::from_csr(&b));
        assert!(c.approx_eq(&oracle.to_csr(), 1e-12, 1e-12));
    }

    #[test]
    fn identity_is_neutral() {
        let (a, _) = sample_pair();
        let i = Csr::identity(3);
        assert!(spgemm_seq(&a, &i).approx_eq(&a, 0.0, 0.0));
        assert!(spgemm_seq(&i, &a).approx_eq(&a, 0.0, 0.0));
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a: Csr<f64> = Csr::identity(3);
        let b: Csr<f64> = Csr::identity(4);
        assert!(try_spgemm_seq(&a, &b).is_err());
    }

    #[test]
    fn row_nnz_matches_full_product() {
        let (a, b) = sample_pair();
        let c = spgemm_seq(&a, &b);
        let nnz = spgemm_row_nnz(&a, &b);
        for (i, &n) in nnz.iter().enumerate() {
            assert_eq!(n, c.row_nnz(i));
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let (a, b) = sample_pair();
        let c_seq = spgemm_seq(&a, &b);
        let c_par = spgemm_cpu_parallel(&a, &b);
        assert!(c_seq.approx_eq(&c_par, 1e-12, 1e-12));
    }

    #[test]
    fn empty_rows_produce_empty_output_rows() {
        let a: Csr<f64> = Csr::empty(4, 4);
        let b: Csr<f64> = Csr::identity(4);
        let c = spgemm_seq(&a, &b);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.rows(), 4);
    }

    #[test]
    fn numerical_cancellation_keeps_explicit_zero() {
        // A row that sums to exactly zero still appears in the pattern —
        // SpGEMM is structural, matching the paper's symbolic counting.
        let a = Csr::from_parts(1, 2, vec![0, 2], vec![0, 1], vec![1.0, -1.0]).unwrap();
        let b = Csr::from_parts(2, 1, vec![0, 1, 2], vec![0, 0], vec![1.0, 1.0]).unwrap();
        let c = spgemm_seq(&a, &b);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.vals()[0], 0.0);
    }
}
