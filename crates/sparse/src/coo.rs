//! Coordinate (triplet) format — the interchange format used by the
//! MatrixMarket reader and the generators before conversion to CSR.

use crate::csr::Csr;
use crate::scalar::Scalar;

/// A sparse matrix as unordered `(row, col, value)` triplets.
#[derive(Clone, Debug)]
pub struct Coo<V> {
    rows: usize,
    cols: usize,
    row_idx: Vec<u32>,
    col_idx: Vec<u32>,
    vals: Vec<V>,
}

impl<V: Scalar> Coo<V> {
    /// Builds from parallel triplet arrays. Panics if lengths differ.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        row_idx: Vec<u32>,
        col_idx: Vec<u32>,
        vals: Vec<V>,
    ) -> Self {
        assert_eq!(row_idx.len(), col_idx.len());
        assert_eq!(row_idx.len(), vals.len());
        Self {
            rows,
            cols,
            row_idx,
            col_idx,
            vals,
        }
    }

    /// An empty triplet list with the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            row_idx: Vec::new(),
            col_idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Appends one entry; duplicates are allowed and combined by
    /// [`Coo::to_csr`].
    pub fn push(&mut self, row: u32, col: u32, val: V) {
        debug_assert!((row as usize) < self.rows && (col as usize) < self.cols);
        self.row_idx.push(row);
        self.col_idx.push(col);
        self.vals.push(val);
    }

    /// Number of stored triplets (before duplicate combination).
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when no triplets are stored.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Converts to CSR: counting sort by row, in-row sort by column, and
    /// summation of duplicate coordinates.
    pub fn to_csr(&self) -> Csr<V> {
        // Counting sort by row keeps the conversion O(nnz + rows).
        let mut counts = vec![0usize; self.rows + 1];
        for &r in &self.row_idx {
            counts[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            counts[i + 1] += counts[i];
        }
        let mut order: Vec<usize> = vec![0; self.len()];
        let mut cursor = counts.clone();
        for (t, &r) in self.row_idx.iter().enumerate() {
            order[cursor[r as usize]] = t;
            cursor[r as usize] += 1;
        }

        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        row_ptr.push(0usize);
        let mut col_out: Vec<u32> = Vec::with_capacity(self.len());
        let mut val_out: Vec<V> = Vec::with_capacity(self.len());
        let mut buf: Vec<(u32, V)> = Vec::new();
        for r in 0..self.rows {
            buf.clear();
            for &t in &order[counts[r]..counts[r + 1]] {
                buf.push((self.col_idx[t], self.vals[t]));
            }
            buf.sort_unstable_by_key(|&(c, _)| c);
            let mut j = 0;
            while j < buf.len() {
                let (c, mut v) = buf[j];
                let mut k = j + 1;
                while k < buf.len() && buf[k].0 == c {
                    v += buf[k].1;
                    k += 1;
                }
                col_out.push(c);
                val_out.push(v);
                j = k;
            }
            row_ptr.push(col_out.len());
        }
        Csr::from_parts_unchecked(self.rows, self.cols, row_ptr, col_out, val_out)
    }

    /// Iterator over the stored triplets.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, V)> + '_ {
        self.row_idx
            .iter()
            .zip(self.col_idx.iter())
            .zip(self.vals.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_csr_sorts_rows_and_columns() {
        let mut coo: Coo<f64> = Coo::new(3, 3);
        coo.push(2, 1, 4.0);
        coo.push(0, 2, 2.0);
        coo.push(2, 0, 3.0);
        coo.push(0, 0, 1.0);
        let csr = coo.to_csr();
        csr.validate().unwrap();
        assert_eq!(csr.row(0), (&[0u32, 2][..], &[1.0, 2.0][..]));
        assert_eq!(csr.row(1), (&[][..], &[][..]));
        assert_eq!(csr.row(2), (&[0u32, 1][..], &[3.0, 4.0][..]));
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo: Coo<f64> = Coo::new(1, 2);
        coo.push(0, 1, 1.0);
        coo.push(0, 1, 2.5);
        coo.push(0, 0, -1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.row(0), (&[0u32, 1][..], &[-1.0, 3.5][..]));
    }

    #[test]
    fn empty_coo_yields_empty_csr() {
        let coo: Coo<f64> = Coo::new(4, 4);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
        csr.validate().unwrap();
    }

    #[test]
    fn iter_reports_pushed_triplets() {
        let mut coo: Coo<f64> = Coo::new(2, 2);
        coo.push(1, 0, 9.0);
        let all: Vec<_> = coo.iter().collect();
        assert_eq!(all, vec![(1, 0, 9.0)]);
    }

    #[test]
    fn big_random_roundtrip_matches_manual_accumulation() {
        use std::collections::BTreeMap;
        // Deterministic pseudo-random triplets with duplicates.
        let mut coo: Coo<f64> = Coo::new(17, 13);
        let mut truth: BTreeMap<(u32, u32), f64> = BTreeMap::new();
        let mut state = 12345u64;
        for _ in 0..500 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = ((state >> 33) % 17) as u32;
            let c = ((state >> 13) % 13) as u32;
            let v = ((state % 100) as f64) - 50.0;
            coo.push(r, c, v);
            *truth.entry((r, c)).or_insert(0.0) += v;
        }
        let csr = coo.to_csr();
        csr.validate().unwrap();
        let mut seen = 0;
        for (i, cols, vals) in csr.iter_rows() {
            for (&c, &v) in cols.iter().zip(vals) {
                assert!((truth[&(i as u32, c)] - v).abs() < 1e-9);
                seen += 1;
            }
        }
        assert_eq!(seen, truth.len());
    }
}
