//! Sparse-matrix substrate for the spECK reproduction.
//!
//! This crate provides everything the SpGEMM algorithms need that is *not*
//! part of the paper's contribution: storage formats ([`Csr`], [`Coo`]),
//! MatrixMarket and binary I/O, synthetic matrix generators standing in for
//! the SuiteSparse collection, matrix statistics, and a sequential reference
//! SpGEMM used as the gold standard by every test in the workspace.
//!
//! # Quick start
//!
//! ```
//! use speck_sparse::{Csr, reference};
//!
//! // 2x2 identity times itself.
//! let a: Csr<f64> = Csr::identity(2);
//! let c = reference::spgemm_seq(&a, &a);
//! assert_eq!(c.nnz(), 2);
//! ```

#![warn(missing_docs)]

pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod gen;
pub mod io;
pub mod ops;
pub mod reference;
pub mod scalar;
pub mod stats;
pub mod transpose;

pub use coo::Coo;
pub use csr::Csr;
pub use dense::DenseMatrix;
pub use error::SparseError;
pub use scalar::Scalar;
pub use stats::MatrixStats;
