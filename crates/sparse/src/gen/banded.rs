//! Banded matrices: short uniform rows with strong column locality,
//! representative of the mesh/trace matrices in SuiteSparse
//! (`hugebubbles`, `mario002`, road networks).

use super::{finish, nz_value, rng};
use crate::csr::Csr;
use rand::Rng;

/// Generates an `n x n` banded matrix.
///
/// Each row holds entries at offsets `-half_band..=half_band` (clipped to
/// the matrix), each kept with probability `fill`, plus the diagonal which
/// is always present. `fill = 1.0` gives a full band of `2*half_band + 1`
/// per row.
pub fn banded(n: usize, half_band: usize, fill: f64, seed: u64) -> Csr<f64> {
    assert!(n > 0, "banded: n must be positive");
    assert!((0.0..=1.0).contains(&fill), "banded: fill must be in [0,1]");
    let mut r = rng(seed);
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0usize);
    for i in 0..n {
        let lo = i.saturating_sub(half_band);
        let hi = (i + half_band).min(n - 1);
        for j in lo..=hi {
            if j == i || r.gen_bool(fill) {
                col_idx.push(j as u32);
                vals.push(nz_value(&mut r));
            }
        }
        row_ptr.push(col_idx.len());
    }
    finish(Csr::from_parts_unchecked(n, n, row_ptr, col_idx, vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MatrixStats;

    #[test]
    fn full_band_has_uniform_interior_rows() {
        let m = banded(100, 2, 1.0, 1);
        m.validate().unwrap();
        // Interior rows have exactly 5 entries.
        for i in 2..98 {
            assert_eq!(m.row_nnz(i), 5, "row {i}");
        }
        // Boundary rows are clipped.
        assert_eq!(m.row_nnz(0), 3);
        assert_eq!(m.row_nnz(99), 3);
    }

    #[test]
    fn diagonal_always_present() {
        let m = banded(50, 3, 0.0, 9);
        for i in 0..50 {
            let (cols, _) = m.row(i);
            assert_eq!(cols, &[i as u32]);
        }
    }

    #[test]
    fn fill_probability_controls_density() {
        let dense = banded(200, 4, 1.0, 2);
        let sparse = banded(200, 4, 0.3, 2);
        assert!(sparse.nnz() < dense.nnz());
        // Low fill still keeps at least the diagonal.
        assert!(sparse.nnz() >= 200);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = banded(64, 2, 0.5, 77);
        let b = banded(64, 2, 0.5, 77);
        assert!(a.approx_eq(&b, 0.0, 0.0));
    }

    #[test]
    fn row_length_variance_is_low() {
        let s = MatrixStats::of(&banded(500, 3, 1.0, 5));
        // Uniform family: max is close to avg, the paper's "no binning" case.
        assert!(s.max_row_nnz as f64 / s.avg_row_nnz < 1.5);
    }
}
