//! R-MAT (recursive matrix) generator producing scale-free graphs with
//! heavy-tailed degree distributions — the social/web-graph family
//! (`email-Enron`, `webbase`, `wiki-Vote`) whose skew defeats fixed
//! per-row thread assignment (paper §3.2).

use super::{finish, nz_value, rng};
use crate::coo::Coo;
use crate::csr::Csr;
use rand::Rng;

/// Generates a `2^scale x 2^scale` R-MAT graph with `edge_factor * 2^scale`
/// sampled edges (duplicates are merged, so the final nnz is slightly
/// lower). The partition probabilities `(a, b, c)` follow the Graph500
/// convention with `d = 1 - a - b - c`; the default skew `(0.57, 0.19,
/// 0.19)` yields strongly power-law degrees.
pub fn rmat(scale: u32, edge_factor: usize, a: f64, b: f64, c: f64, seed: u64) -> Csr<f64> {
    assert!(scale <= 26, "rmat: scale too large for u32 indices");
    let d = 1.0 - a - b - c;
    assert!(
        a > 0.0 && b >= 0.0 && c >= 0.0 && d > 0.0,
        "rmat: probabilities must form a distribution"
    );
    let n = 1usize << scale;
    let edges = edge_factor * n;
    let mut r = rng(seed);
    let mut coo: Coo<f64> = Coo::new(n, n);
    for _ in 0..edges {
        let (mut row, mut col) = (0usize, 0usize);
        for level in (0..scale).rev() {
            let bit = 1usize << level;
            let p: f64 = r.gen();
            if p < a {
                // upper-left: nothing set
            } else if p < a + b {
                col |= bit;
            } else if p < a + b + c {
                row |= bit;
            } else {
                row |= bit;
                col |= bit;
            }
        }
        coo.push(row as u32, col as u32, nz_value(&mut r));
    }
    finish(coo.to_csr())
}

/// Convenience wrapper with Graph500 default skew.
pub fn rmat_default(scale: u32, edge_factor: usize, seed: u64) -> Csr<f64> {
    rmat(scale, edge_factor, 0.57, 0.19, 0.19, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MatrixStats;

    #[test]
    fn shape_and_determinism() {
        let a = rmat_default(8, 8, 42);
        let b = rmat_default(8, 8, 42);
        a.validate().unwrap();
        assert_eq!(a.rows(), 256);
        assert!(a.approx_eq(&b, 0.0, 0.0));
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let m = rmat_default(10, 16, 7);
        let s = MatrixStats::of(&m);
        // Skewed generator: max degree far above the mean — the paper's
        // "load balancer pays off" regime (m_max/m_avg >> threshold).
        assert!(
            s.max_row_nnz as f64 > 8.0 * s.avg_row_nnz,
            "max={} avg={}",
            s.max_row_nnz,
            s.avg_row_nnz
        );
    }

    #[test]
    fn uniform_probabilities_flatten_degrees() {
        let m = rmat(10, 8, 0.25, 0.25, 0.25, 7);
        let s = MatrixStats::of(&m);
        let skewed = MatrixStats::of(&rmat_default(10, 8, 7));
        assert!(s.max_row_nnz < skewed.max_row_nnz);
    }

    #[test]
    fn duplicate_edges_are_merged() {
        let m = rmat_default(6, 32, 3);
        // 32*64 = 2048 samples into a 64x64 grid must collide.
        assert!(m.nnz() < 2048);
        m.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "distribution")]
    fn rejects_bad_probabilities() {
        let _ = rmat(5, 4, 0.8, 0.3, 0.3, 0);
    }
}
