//! Named stand-ins for the 11 "common matrices" of paper Table 4 / Fig. 8.
//!
//! Each stand-in reproduces the *shape* that made the original matrix
//! interesting for SpGEMM — row-length distribution, column locality,
//! compaction under squaring — at roughly 1/30–1/100 of the original size
//! so the whole suite runs in seconds on a laptop. The paper's absolute
//! sizes are recorded in EXPERIMENTS.md next to the stand-in sizes.

use super::{banded, block_diagonal, poisson_3d, rectangular_lp, rmat};
use crate::csr::Csr;
use crate::transpose::transpose;

/// How the paper multiplies a given matrix (§6: square matrices use `A·A`,
/// rectangular ones use `A·Aᵀ`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MulOp {
    /// `C = A·A`
    Square,
    /// `C = A·Aᵀ` with `Aᵀ` precomputed
    TimesTranspose,
}

/// A named benchmark matrix with its multiplication mode.
pub struct CommonMatrix {
    /// Stand-in name, matching the paper's matrix name.
    pub name: &'static str,
    /// Which family it represents and why.
    pub family: &'static str,
    /// Multiplication mode used in the evaluation.
    pub op: MulOp,
    /// The matrix A.
    pub a: Csr<f64>,
}

impl CommonMatrix {
    /// Returns the `(A, B)` pair the evaluation multiplies.
    pub fn pair(&self) -> (Csr<f64>, Csr<f64>) {
        match self.op {
            MulOp::Square => (self.a.clone(), self.a.clone()),
            MulOp::TimesTranspose => (self.a.clone(), transpose(&self.a)),
        }
    }
}

/// Builds all 11 stand-ins in the paper's Table 4 order.
pub fn common_matrices() -> Vec<CommonMatrix> {
    vec![
        CommonMatrix {
            name: "webbase",
            family: "web graph: power-law degrees, a few huge hub rows",
            op: MulOp::Square,
            a: rmat(13, 3, 0.57, 0.19, 0.19, 101),
        },
        CommonMatrix {
            name: "hugebubbles",
            family: "2D triangulation trace: ~3 NZ/row, banded with irregular boundaries",
            op: MulOp::Square,
            a: banded(40_000, 2, 0.55, 102),
        },
        CommonMatrix {
            name: "mario002",
            family: "mesh: short uniform rows, diagonal-ish locality",
            op: MulOp::Square,
            a: banded(16_384, 3, 0.7, 103),
        },
        CommonMatrix {
            name: "stat96v2",
            family: "stochastic LP: rectangular, medium rows in A, tiny rows in A^T",
            op: MulOp::TimesTranspose,
            a: rectangular_lp(1_000, 32_000, 90, 110, 104),
        },
        CommonMatrix {
            name: "email-Enron",
            family: "social graph: extreme degree skew",
            op: MulOp::Square,
            a: rmat(12, 11, 0.57, 0.19, 0.19, 105),
        },
        CommonMatrix {
            name: "cage13",
            family: "DNA electrophoresis: ~17 NZ/row, good locality",
            op: MulOp::Square,
            a: banded(12_000, 12, 0.65, 106),
        },
        CommonMatrix {
            name: "144",
            family: "3D FEM mesh: ~15 NZ/row, uniform",
            op: MulOp::Square,
            a: banded(10_000, 8, 0.85, 107),
        },
        CommonMatrix {
            name: "poisson3Da",
            family: "3D FEM Poisson: ~27 NZ/row, uniform",
            op: MulOp::Square,
            a: banded(6_000, 14, 0.9, 108),
        },
        CommonMatrix {
            name: "QCD",
            family: "lattice QCD operator: uniform block structure",
            op: MulOp::Square,
            a: block_diagonal(64, 48, 0.65, 109),
        },
        CommonMatrix {
            name: "harbor",
            family: "3D CFD: ~51 NZ/row, high compaction",
            op: MulOp::Square,
            a: banded(2_000, 25, 1.0, 110),
        },
        CommonMatrix {
            name: "TSC_OPF",
            family: "optimal power flow: few rows, very long dense rows",
            op: MulOp::Square,
            a: block_diagonal(6, 96, 1.0, 111),
        },
    ]
}

/// A tiny 3D Poisson matrix (used by examples and docs as a fast default).
pub fn small_poisson() -> Csr<f64> {
    poisson_3d(12, 12, 12, 0.0, 7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::spgemm_seq;
    use crate::stats::{MatrixStats, ProductStats};

    #[test]
    fn all_eleven_present_and_valid() {
        let all = common_matrices();
        assert_eq!(all.len(), 11);
        for m in &all {
            m.a.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
        let names: Vec<_> = all.iter().map(|m| m.name).collect();
        assert_eq!(names[0], "webbase");
        assert_eq!(names[10], "TSC_OPF");
    }

    #[test]
    fn stat96v2_is_rectangular_and_multiplies_by_transpose() {
        let all = common_matrices();
        let s = all.iter().find(|m| m.name == "stat96v2").unwrap();
        assert_eq!(s.op, MulOp::TimesTranspose);
        assert!(s.a.cols() > 10 * s.a.rows());
        let (a, b) = s.pair();
        assert_eq!(a.cols(), b.rows());
        assert_eq!(b.cols(), a.rows());
    }

    #[test]
    fn power_law_standins_are_skewed_and_meshes_are_uniform() {
        let all = common_matrices();
        let skew = |name: &str| {
            let m = &all.iter().find(|m| m.name == name).unwrap().a;
            let s = MatrixStats::of(m);
            s.max_row_nnz as f64 / s.avg_row_nnz.max(1e-12)
        };
        assert!(skew("email-Enron") > 10.0);
        assert!(skew("webbase") > 10.0);
        assert!(skew("hugebubbles") < 2.0);
        assert!(skew("144") < 2.0);
    }

    #[test]
    fn tsc_opf_has_highest_compaction() {
        let all = common_matrices();
        let compaction = |name: &str| {
            let cm = all.iter().find(|m| m.name == name).unwrap();
            let (a, b) = cm.pair();
            let c = spgemm_seq(&a, &b);
            ProductStats::of(&a, &b, &c).compaction
        };
        let tsc = compaction("TSC_OPF");
        assert!(tsc > 50.0, "TSC_OPF compaction {tsc}");
        assert!(tsc > compaction("hugebubbles"));
        assert!(tsc > compaction("mario002"));
    }

    #[test]
    fn sizes_are_laptop_scale() {
        for m in common_matrices() {
            let (a, b) = m.pair();
            let prod = a.products(&b);
            assert!(
                prod < 30_000_000,
                "{} has {prod} products (too slow for the suite)",
                m.name
            );
            assert!(prod > 10_000, "{} has only {prod} products", m.name);
        }
    }
}
