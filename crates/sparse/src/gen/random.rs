//! Uniform random sparse matrices: no column locality, geometric-ish row
//! lengths around a target mean — the "unstructured" end of SuiteSparse.

use super::{finish, nz_value, rng, sample_distinct_cols};
use crate::csr::Csr;
use rand::Rng;

/// Generates a `rows x cols` matrix whose row lengths are drawn uniformly
/// from `[min_row_nnz, max_row_nnz]` with columns sampled without
/// replacement uniformly over `[0, cols)`.
pub fn uniform_random(
    rows: usize,
    cols: usize,
    min_row_nnz: usize,
    max_row_nnz: usize,
    seed: u64,
) -> Csr<f64> {
    assert!(min_row_nnz <= max_row_nnz, "uniform_random: bad row bounds");
    assert!(cols > 0, "uniform_random: cols must be positive");
    let mut r = rng(seed);
    let mut row_ptr = Vec::with_capacity(rows + 1);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    let mut buf = Vec::new();
    row_ptr.push(0usize);
    for _ in 0..rows {
        let k = r.gen_range(min_row_nnz..=max_row_nnz).min(cols);
        sample_distinct_cols(&mut r, cols, k, &mut buf);
        for &c in &buf {
            col_idx.push(c);
            vals.push(nz_value(&mut r));
        }
        row_ptr.push(col_idx.len());
    }
    finish(Csr::from_parts_unchecked(
        rows, cols, row_ptr, col_idx, vals,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MatrixStats;

    #[test]
    fn row_lengths_respect_bounds() {
        let m = uniform_random(200, 500, 3, 9, 11);
        m.validate().unwrap();
        for i in 0..m.rows() {
            let n = m.row_nnz(i);
            assert!((3..=9).contains(&n), "row {i} has {n}");
        }
    }

    #[test]
    fn fixed_length_rows_when_bounds_equal() {
        let m = uniform_random(50, 100, 4, 4, 3);
        for i in 0..50 {
            assert_eq!(m.row_nnz(i), 4);
        }
    }

    #[test]
    fn row_length_clamped_to_cols() {
        let m = uniform_random(10, 3, 5, 8, 3);
        for i in 0..10 {
            assert_eq!(m.row_nnz(i), 3);
        }
    }

    #[test]
    fn mean_row_length_near_midpoint() {
        let s = MatrixStats::of(&uniform_random(2000, 10_000, 2, 10, 5));
        assert!((s.avg_row_nnz - 6.0).abs() < 0.5, "avg={}", s.avg_row_nnz);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = uniform_random(64, 64, 1, 5, 123);
        let b = uniform_random(64, 64, 1, 5, 123);
        assert!(a.approx_eq(&b, 0.0, 0.0));
    }
}
