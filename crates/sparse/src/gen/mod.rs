//! Synthetic matrix generators standing in for the SuiteSparse collection.
//!
//! The paper designs and evaluates spECK on all of SuiteSparse (§3, §6).
//! That collection is not redistributable inside this repository, so we
//! generate matrices from the structural families that dominate it, each
//! with a deterministic seed:
//!
//! * [`banded()`] — banded systems (e.g. `hugebubbles`, `mario002`): short,
//!   uniform rows with strong column locality.
//! * [`stencil`] — 2D/3D Poisson/FEM stencils (`poisson3Da`, `144`):
//!   uniform 5/7/27-point rows.
//! * [`random`] — uniform random patterns: no locality, tunable row length.
//! * [`powerlaw`] — R-MAT scale-free graphs (`email-Enron`, `webbase`):
//!   heavy-tailed row lengths, the case that breaks fixed load balancing.
//! * [`blockdiag`] — dense diagonal blocks (`TSC_OPF`, QCD lattices): very
//!   high compaction, dense output rows.
//! * [`rectangular`] — tall LP-style rectangular matrices (`stat96v2`):
//!   medium rows in A but very short rows in Aᵀ.
//! * [`common`] — named, scaled stand-ins for the 11 matrices of paper
//!   Table 4 / Fig. 8.

pub mod banded;
pub mod blockdiag;
pub mod common;
pub mod hub;
pub mod powerlaw;
pub mod random;
pub mod rectangular;
pub mod stencil;

pub use banded::banded;
pub use blockdiag::block_diagonal;
pub use common::{common_matrices, CommonMatrix};
pub use hub::with_hub_rows;
pub use powerlaw::rmat;
pub use random::uniform_random;
pub use rectangular::rectangular_lp;
pub use stencil::{poisson_2d, poisson_3d};

use crate::csr::Csr;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG shared by all generators.
pub(crate) fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Random nonzero value in `[-1, 1] \ {0}` — generators avoid exact zeros so
/// structural and numeric nnz coincide.
pub(crate) fn nz_value(rng: &mut StdRng) -> f64 {
    let u = Uniform::new(-1.0f64, 1.0);
    loop {
        let v = u.sample(rng);
        if v != 0.0 {
            return v;
        }
    }
}

/// Samples `k` distinct column indices from `[0, cols)` into `buf` (sorted).
///
/// Uses Floyd's algorithm, O(k) expected, so long rows stay cheap.
pub(crate) fn sample_distinct_cols(rng: &mut StdRng, cols: usize, k: usize, buf: &mut Vec<u32>) {
    buf.clear();
    let k = k.min(cols);
    if k == 0 {
        return;
    }
    // Floyd's sampling: for j in cols-k..cols, pick t in [0, j]; insert t or j.
    let mut set = std::collections::HashSet::with_capacity(k * 2);
    for j in (cols - k)..cols {
        let t = rng.gen_range(0..=j);
        if !set.insert(t as u32) {
            set.insert(j as u32);
        }
    }
    buf.extend(set);
    buf.sort_unstable();
}

/// Asserts a generated matrix is structurally valid in debug builds and
/// returns it. All generators funnel their output through this.
pub(crate) fn finish(m: Csr<f64>) -> Csr<f64> {
    debug_assert!(m.validate().is_ok(), "generator produced invalid CSR");
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_distinct_is_sorted_and_unique() {
        let mut r = rng(7);
        let mut buf = Vec::new();
        for _ in 0..50 {
            sample_distinct_cols(&mut r, 100, 12, &mut buf);
            assert_eq!(buf.len(), 12);
            assert!(buf.windows(2).all(|w| w[0] < w[1]));
            assert!(buf.iter().all(|&c| c < 100));
        }
    }

    #[test]
    fn sample_distinct_clamps_to_cols() {
        let mut r = rng(7);
        let mut buf = Vec::new();
        sample_distinct_cols(&mut r, 5, 10, &mut buf);
        assert_eq!(buf, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn rng_is_deterministic() {
        let a: Vec<u32> = {
            let mut r = rng(42);
            (0..5).map(|_| r.gen()).collect()
        };
        let b: Vec<u32> = {
            let mut r = rng(42);
            (0..5).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn nz_value_never_zero() {
        let mut r = rng(3);
        for _ in 0..1000 {
            assert_ne!(nz_value(&mut r), 0.0);
        }
    }
}
