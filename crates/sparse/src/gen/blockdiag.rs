//! Block-diagonal matrices with dense blocks — circuit/optimal-power-flow
//! structure (`TSC_OPF`, QCD lattice operators). Squaring them produces
//! very high compaction and dense output rows, the regime where the
//! paper's dense accumulator wins (§4.3, Fig. 12).

use super::{finish, nz_value, rng};
use crate::csr::Csr;
use rand::Rng;

/// Generates `n_blocks` dense blocks of size `block` on the diagonal, each
/// entry kept with probability `fill` (diagonal always kept).
pub fn block_diagonal(n_blocks: usize, block: usize, fill: f64, seed: u64) -> Csr<f64> {
    assert!(block > 0, "block_diagonal: block size must be positive");
    assert!((0.0..=1.0).contains(&fill));
    let n = n_blocks * block;
    let mut r = rng(seed);
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0usize);
    for bi in 0..n_blocks {
        let base = bi * block;
        for i in 0..block {
            for j in 0..block {
                if i == j || r.gen_bool(fill) {
                    col_idx.push((base + j) as u32);
                    vals.push(nz_value(&mut r));
                }
            }
            row_ptr.push(col_idx.len());
        }
    }
    finish(Csr::from_parts_unchecked(n, n, row_ptr, col_idx, vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::spgemm_seq;
    use crate::stats::ProductStats;

    #[test]
    fn full_blocks_are_dense() {
        let m = block_diagonal(4, 8, 1.0, 1);
        m.validate().unwrap();
        assert_eq!(m.rows(), 32);
        assert_eq!(m.nnz(), 4 * 64);
        for i in 0..32 {
            assert_eq!(m.row_nnz(i), 8);
        }
    }

    #[test]
    fn entries_stay_inside_their_block() {
        let m = block_diagonal(3, 5, 0.7, 9);
        for (i, cols, _) in m.iter_rows() {
            let b = i / 5;
            for &c in cols {
                assert_eq!(c as usize / 5, b);
            }
        }
    }

    #[test]
    fn squaring_has_high_compaction() {
        let m = block_diagonal(4, 16, 1.0, 2);
        let c = spgemm_seq(&m, &m);
        let ps = ProductStats::of(&m, &m, &c);
        // products = 4 * 16^3, nnz_c = 4 * 16^2 -> compaction = 16.
        assert!((ps.compaction - 16.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = block_diagonal(2, 10, 0.5, 5);
        let b = block_diagonal(2, 10, 0.5, 5);
        assert!(a.approx_eq(&b, 0.0, 0.0));
    }
}
