//! Banded matrices with a few "hub" rows referencing rows spread across
//! the whole matrix. Squaring one produces output where only the hub rows
//! are long — the shape that exercises accumulator switching per *row*
//! rather than per matrix (paper Fig. 12's x-axis is the longest row of C,
//! everything else held comparable).

use super::{finish, nz_value, rng, sample_distinct_cols};
use crate::csr::Csr;

/// Banded `n x n` matrix whose first `hubs` rows instead hold `refs`
/// entries spread uniformly over all columns.
///
/// In `A·A`, a hub row's output covers roughly `refs * (2*half_band + 1)`
/// columns while ordinary rows stay at `(2*half_band + 1)^2`, so the
/// longest output row is tuned by `refs` at product cost only
/// `refs * (2*half_band + 1)` per hub.
pub fn with_hub_rows(n: usize, half_band: usize, hubs: usize, refs: usize, seed: u64) -> Csr<f64> {
    assert!(hubs <= n, "with_hub_rows: more hubs than rows");
    let mut r = rng(seed);
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    let mut buf = Vec::new();
    row_ptr.push(0usize);
    for i in 0..n {
        if i < hubs {
            sample_distinct_cols(&mut r, n, refs, &mut buf);
            for &c in &buf {
                col_idx.push(c);
                vals.push(nz_value(&mut r));
            }
        } else {
            let lo = i.saturating_sub(half_band);
            let hi = (i + half_band).min(n - 1);
            for j in lo..=hi {
                col_idx.push(j as u32);
                vals.push(nz_value(&mut r));
            }
        }
        row_ptr.push(col_idx.len());
    }
    finish(Csr::from_parts_unchecked(n, n, row_ptr, col_idx, vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::spgemm_seq;

    #[test]
    fn hub_rows_are_wide_in_the_square() {
        let a = with_hub_rows(2000, 1, 4, 300, 9);
        a.validate().unwrap();
        let c = spgemm_seq(&a, &a);
        let hub_len = c.row_nnz(0);
        let normal_len = c.row_nnz(1000);
        assert!(hub_len > 500, "hub output row {hub_len}");
        assert!(normal_len <= 9, "ordinary row {normal_len}");
    }

    #[test]
    fn refs_controls_longest_output_row() {
        let short = with_hub_rows(2000, 1, 2, 100, 3);
        let long = with_hub_rows(2000, 1, 2, 600, 3);
        let cs = spgemm_seq(&short, &short);
        let cl = spgemm_seq(&long, &long);
        assert!(cl.max_row_nnz() > 3 * cs.max_row_nnz());
    }

    #[test]
    fn products_stay_cheap() {
        let a = with_hub_rows(4000, 1, 8, 2000, 5);
        // hubs: 8 * 2000 * ~3; band: 4000 * 9 — well under a million.
        assert!(a.products(&a) < 1_000_000);
    }
}
