//! Finite-difference stencil matrices on regular grids — the FEM/PDE family
//! (`poisson3Da`, `144`, `cage13`-like locality) of SuiteSparse.

use super::{finish, nz_value, rng};
use crate::csr::Csr;

/// 5-point Laplacian stencil on an `nx x ny` grid (matrix is `nx*ny` square).
///
/// Diagonal entries are 4, neighbours -1, with optional value jitter so the
/// numeric path is exercised (jitter 0.0 reproduces the textbook stencil).
pub fn poisson_2d(nx: usize, ny: usize, jitter: f64, seed: u64) -> Csr<f64> {
    assert!(nx > 0 && ny > 0);
    let n = nx * ny;
    let mut r = rng(seed);
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0usize);
    let idx = |x: usize, y: usize| (y * nx + x) as u32;
    for y in 0..ny {
        for x in 0..nx {
            let mut push = |c: u32, v: f64| {
                col_idx.push(c);
                vals.push(v + jitter * nz_value(&mut r));
            };
            if y > 0 {
                push(idx(x, y - 1), -1.0);
            }
            if x > 0 {
                push(idx(x - 1, y), -1.0);
            }
            push(idx(x, y), 4.0);
            if x + 1 < nx {
                push(idx(x + 1, y), -1.0);
            }
            if y + 1 < ny {
                push(idx(x, y + 1), -1.0);
            }
            row_ptr.push(col_idx.len());
        }
    }
    finish(Csr::from_parts_unchecked(n, n, row_ptr, col_idx, vals))
}

/// 7-point Laplacian stencil on an `nx x ny x nz` grid.
pub fn poisson_3d(nx: usize, ny: usize, nz: usize, jitter: f64, seed: u64) -> Csr<f64> {
    assert!(nx > 0 && ny > 0 && nz > 0);
    let n = nx * ny * nz;
    let mut r = rng(seed);
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0usize);
    let idx = |x: usize, y: usize, z: usize| (z * nx * ny + y * nx + x) as u32;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let mut push = |c: u32, v: f64| {
                    col_idx.push(c);
                    vals.push(v + jitter * nz_value(&mut r));
                };
                if z > 0 {
                    push(idx(x, y, z - 1), -1.0);
                }
                if y > 0 {
                    push(idx(x, y - 1, z), -1.0);
                }
                if x > 0 {
                    push(idx(x - 1, y, z), -1.0);
                }
                push(idx(x, y, z), 6.0);
                if x + 1 < nx {
                    push(idx(x + 1, y, z), -1.0);
                }
                if y + 1 < ny {
                    push(idx(x, y + 1, z), -1.0);
                }
                if z + 1 < nz {
                    push(idx(x, y, z + 1), -1.0);
                }
                row_ptr.push(col_idx.len());
            }
        }
    }
    finish(Csr::from_parts_unchecked(n, n, row_ptr, col_idx, vals))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_2d_interior_rows_have_five_points() {
        let m = poisson_2d(10, 10, 0.0, 0);
        m.validate().unwrap();
        // Interior point (5,5) = row 55.
        assert_eq!(m.row_nnz(55), 5);
        // Corner has 3.
        assert_eq!(m.row_nnz(0), 3);
        assert_eq!(m.nnz(), 5 * 100 - 4 * 10); // 5N - 2*(nx+ny) boundary losses
    }

    #[test]
    fn poisson_2d_is_symmetric_without_jitter() {
        let m = poisson_2d(6, 7, 0.0, 0);
        let t = crate::transpose::transpose(&m);
        assert!(m.approx_eq(&t, 0.0, 0.0));
    }

    #[test]
    fn poisson_3d_interior_rows_have_seven_points() {
        let m = poisson_3d(5, 5, 5, 0.0, 0);
        m.validate().unwrap();
        // Center point (2,2,2) = 2*25 + 2*5 + 2 = 62.
        assert_eq!(m.row_nnz(62), 7);
        assert_eq!(m.rows(), 125);
    }

    #[test]
    fn jitter_perturbs_values_not_pattern() {
        let a = poisson_2d(8, 8, 0.0, 1);
        let b = poisson_2d(8, 8, 0.01, 1);
        assert!(a.pattern_eq(&b));
        assert!(!a.approx_eq(&b, 0.0, 0.0));
    }

    #[test]
    fn row_sums_are_nonnegative_diagonally_dominant() {
        let m = poisson_2d(12, 12, 0.0, 0);
        for (_, _, vals) in m.iter_rows() {
            let sum: f64 = vals.iter().sum();
            assert!(sum >= 0.0);
        }
    }
}
