//! Tall rectangular LP-style matrices (`stat96v2`): medium-length rows in A
//! but, crucially, very short rows in Aᵀ. The paper uses this family to
//! show why a fixed 32-threads-per-row local balancer wastes >90 % of its
//! threads (§6.2).

use super::{finish, nz_value, rng, sample_distinct_cols};
use crate::csr::Csr;
use rand::Rng;

/// Generates a `rows x cols` matrix (typically `cols >> rows`) whose rows
/// have `row_nnz_lo..=row_nnz_hi` entries with mild left-to-right banding
/// so columns are reused across nearby rows — the staircase structure of
/// staged stochastic LPs.
pub fn rectangular_lp(
    rows: usize,
    cols: usize,
    row_nnz_lo: usize,
    row_nnz_hi: usize,
    seed: u64,
) -> Csr<f64> {
    assert!(rows > 0 && cols > 0);
    assert!(row_nnz_lo <= row_nnz_hi);
    let mut r = rng(seed);
    let mut row_ptr = Vec::with_capacity(rows + 1);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    let mut buf = Vec::new();
    row_ptr.push(0usize);
    // Window of columns roughly 4x wider than a row's entries, sliding with
    // the row index (staircase pattern).
    for i in 0..rows {
        let k = r.gen_range(row_nnz_lo..=row_nnz_hi).min(cols);
        let window = (k * 4).max(8).min(cols);
        let start = if rows > 1 {
            ((i as f64 / (rows - 1) as f64) * (cols - window) as f64) as usize
        } else {
            0
        };
        sample_distinct_cols(&mut r, window, k, &mut buf);
        for &c in &buf {
            col_idx.push(c + start as u32);
            vals.push(nz_value(&mut r));
        }
        row_ptr.push(col_idx.len());
    }
    finish(Csr::from_parts_unchecked(
        rows, cols, row_ptr, col_idx, vals,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MatrixStats;
    use crate::transpose::transpose;

    #[test]
    fn shape_and_validity() {
        let m = rectangular_lp(100, 3000, 20, 40, 4);
        m.validate().unwrap();
        assert_eq!(m.rows(), 100);
        assert_eq!(m.cols(), 3000);
    }

    #[test]
    fn transpose_has_short_rows() {
        let m = rectangular_lp(200, 8000, 30, 60, 4);
        let t = transpose(&m);
        let st = MatrixStats::of(&t);
        let sm = MatrixStats::of(&m);
        // A has medium rows, Aᵀ has very short rows — the stat96v2 shape.
        assert!(sm.avg_row_nnz > 10.0 * st.avg_row_nnz.max(1e-9));
    }

    #[test]
    fn staircase_moves_rightward() {
        let m = rectangular_lp(50, 5000, 10, 10, 8);
        let first_row_max = *m.row(0).0.iter().max().unwrap();
        let last_row_min = *m.row(49).0.iter().min().unwrap();
        assert!(last_row_min > first_row_max);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = rectangular_lp(30, 100, 2, 6, 1);
        let b = rectangular_lp(30, 100, 2, 6, 1);
        assert!(a.approx_eq(&b, 0.0, 0.0));
    }
}
