//! Small dense matrices — used only by tests and validation as an oracle
//! for the sparse kernels on tiny inputs.

use crate::csr::Csr;
use crate::scalar::Scalar;

/// Row-major dense matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix<V> {
    rows: usize,
    cols: usize,
    data: Vec<V>,
}

impl<V: Scalar> DenseMatrix<V> {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![V::zero(); rows * cols],
        }
    }

    /// Builds from a row-major slice. Panics if the length mismatches.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<V>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> V {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut V {
        &mut self.data[r * self.cols + c]
    }

    /// Dense matrix product — the O(n^3) oracle.
    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.rows, "dense matmul shape mismatch");
        let mut out = Self::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == V::zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    *out.get_mut(i, j) += a * rhs.get(k, j);
                }
            }
        }
        out
    }

    /// Converts to CSR dropping exact zeros.
    pub fn to_csr(&self) -> Csr<V> {
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0usize);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let v = self.get(r, c);
                if v != V::zero() {
                    col_idx.push(c as u32);
                    vals.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Csr::from_parts_unchecked(self.rows, self.cols, row_ptr, col_idx, vals)
    }

    /// Converts a CSR matrix to dense form.
    pub fn from_csr(m: &Csr<V>) -> Self {
        let mut out = Self::zeros(m.rows(), m.cols());
        for (r, cols, vals) in m.iter_rows() {
            for (&c, &v) in cols.iter().zip(vals) {
                *out.get_mut(r, c as usize) = v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::approx_eq;

    #[test]
    fn dense_matmul_known_product() {
        let a = DenseMatrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_row_major(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    fn csr_dense_roundtrip() {
        let a = DenseMatrix::from_row_major(2, 3, vec![0.0, 1.0, 0.0, 2.0, 0.0, 3.0]);
        let csr = a.to_csr();
        assert_eq!(csr.nnz(), 3);
        let back = DenseMatrix::from_csr(&csr);
        assert_eq!(a, back);
    }

    #[test]
    fn dense_agrees_with_identity() {
        let i: Csr<f64> = Csr::identity(3);
        let d = DenseMatrix::from_csr(&i);
        let sq = d.matmul(&d);
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!(approx_eq(sq.get(r, c), expect, 0.0, 0.0));
            }
        }
    }
}
