//! MatrixMarket (.mtx) reader/writer.
//!
//! Supports the `matrix coordinate` object with `real`, `integer` and
//! `pattern` fields and `general`, `symmetric` and `skew-symmetric`
//! symmetries — enough to load any SuiteSparse download, which is how real
//! matrices are fed into the benchmark harness in place of the synthetic
//! corpus.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::SparseError;
use crate::scalar::Scalar;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Value field declared in the MatrixMarket header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

/// Symmetry declared in the MatrixMarket header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

fn parse_header(line: &str) -> Result<(Field, Symmetry), SparseError> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    let err = |msg: &str| SparseError::Parse {
        line: 1,
        msg: msg.to_string(),
    };
    if toks.len() < 5 || !toks[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(err("missing %%MatrixMarket banner"));
    }
    if !toks[1].eq_ignore_ascii_case("matrix") || !toks[2].eq_ignore_ascii_case("coordinate") {
        return Err(err("only 'matrix coordinate' objects are supported"));
    }
    let field = match toks[3].to_ascii_lowercase().as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => {
            return Err(err(&format!("unsupported field '{other}'")));
        }
    };
    let symmetry = match toks[4].to_ascii_lowercase().as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => {
            return Err(err(&format!("unsupported symmetry '{other}'")));
        }
    };
    Ok((field, symmetry))
}

/// Reads a MatrixMarket stream into CSR form.
pub fn read_matrix_market<V: Scalar, R: Read>(reader: R) -> Result<Csr<V>, SparseError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().ok_or_else(|| SparseError::Parse {
        line: 1,
        msg: "empty file".to_string(),
    })??;
    let (field, symmetry) = parse_header(&header)?;

    // Skip comments, find the size line.
    let mut line_no = 1usize;
    let size_line = loop {
        let line = lines.next().ok_or_else(|| SparseError::Parse {
            line: line_no,
            msg: "missing size line".to_string(),
        })??;
        line_no += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        break t.to_string();
    };
    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(SparseError::Parse {
            line: line_no,
            msg: format!("size line must have 3 fields, got {}", dims.len()),
        });
    }
    let parse_usize = |s: &str, ln: usize| {
        s.parse::<usize>().map_err(|_| SparseError::Parse {
            line: ln,
            msg: format!("bad integer '{s}'"),
        })
    };
    let rows = parse_usize(dims[0], line_no)?;
    let cols = parse_usize(dims[1], line_no)?;
    let nnz = parse_usize(dims[2], line_no)?;
    if rows > u32::MAX as usize || cols > u32::MAX as usize {
        return Err(SparseError::IndexOverflow(rows.max(cols)));
    }

    let mut coo: Coo<V> = Coo::new(rows, cols);
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        line_no += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r = parse_usize(
            it.next().ok_or_else(|| SparseError::Parse {
                line: line_no,
                msg: "missing row index".into(),
            })?,
            line_no,
        )?;
        let c = parse_usize(
            it.next().ok_or_else(|| SparseError::Parse {
                line: line_no,
                msg: "missing column index".into(),
            })?,
            line_no,
        )?;
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(SparseError::Parse {
                line: line_no,
                msg: format!("index ({r},{c}) out of 1-based range {rows}x{cols}"),
            });
        }
        let v: V = match field {
            Field::Pattern => V::one(),
            Field::Real | Field::Integer => {
                let tok = it.next().ok_or_else(|| SparseError::Parse {
                    line: line_no,
                    msg: "missing value".into(),
                })?;
                let f: f64 = tok.parse().map_err(|_| SparseError::Parse {
                    line: line_no,
                    msg: format!("bad value '{tok}'"),
                })?;
                V::from_f64(f)
            }
        };
        let (r0, c0) = ((r - 1) as u32, (c - 1) as u32);
        coo.push(r0, c0, v);
        match symmetry {
            Symmetry::General => {}
            Symmetry::Symmetric => {
                if r0 != c0 {
                    coo.push(c0, r0, v);
                }
            }
            Symmetry::SkewSymmetric => {
                if r0 != c0 {
                    coo.push(c0, r0, -v);
                }
            }
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse {
            line: line_no,
            msg: format!("header declared {nnz} entries but file has {seen}"),
        });
    }
    Ok(coo.to_csr())
}

/// Reads a `.mtx` file from disk.
pub fn read_matrix_market_file<V: Scalar>(path: &Path) -> Result<Csr<V>, SparseError> {
    let f = std::fs::File::open(path)?;
    read_matrix_market(f)
}

/// Writes a matrix in `matrix coordinate real general` form.
pub fn write_matrix_market<V: Scalar, W: Write>(m: &Csr<V>, mut w: W) -> Result<(), SparseError> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by speck-sparse")?;
    writeln!(w, "{} {} {}", m.rows(), m.cols(), m.nnz())?;
    for (r, cols, vals) in m.iter_rows() {
        for (&c, &v) in cols.iter().zip(vals) {
            writeln!(w, "{} {} {:.17e}", r + 1, c + 1, v.to_f64())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIMPLE: &str = "%%MatrixMarket matrix coordinate real general\n\
                          % a comment\n\
                          3 3 4\n\
                          1 1 1.0\n\
                          1 3 2.0\n\
                          3 1 3.0\n\
                          3 2 4.0\n";

    #[test]
    fn reads_general_real() {
        let m: Csr<f64> = read_matrix_market(SIMPLE.as_bytes()).unwrap();
        m.validate().unwrap();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row(0), (&[0u32, 2][..], &[1.0, 2.0][..]));
        assert_eq!(m.row(2), (&[0u32, 1][..], &[3.0, 4.0][..]));
    }

    #[test]
    fn reads_symmetric_expanding_off_diagonal() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 5.0\n\
                    2 1 7.0\n";
        let m: Csr<f64> = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0), (&[0u32, 1][..], &[5.0, 7.0][..]));
        assert_eq!(m.row(1), (&[0u32][..], &[7.0][..]));
    }

    #[test]
    fn reads_skew_symmetric_with_negation() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    2 2 1\n\
                    2 1 3.0\n";
        let m: Csr<f64> = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.row(0), (&[1u32][..], &[-3.0][..]));
        assert_eq!(m.row(1), (&[0u32][..], &[3.0][..]));
    }

    #[test]
    fn reads_pattern_as_ones() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 2\n\
                    1 2\n\
                    2 1\n";
        let m: Csr<f64> = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.vals(), &[1.0, 1.0]);
    }

    #[test]
    fn rejects_wrong_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_index() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_bad_banner() {
        let text = "%%NotMatrixMarket nothing\n";
        assert!(read_matrix_market::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_unsupported_field() {
        let text = "%%MatrixMarket matrix coordinate complex general\n1 1 0\n";
        assert!(read_matrix_market::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let m: Csr<f64> = read_matrix_market(SIMPLE.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back: Csr<f64> = read_matrix_market(buf.as_slice()).unwrap();
        assert!(m.approx_eq(&back, 1e-15, 0.0));
    }

    #[test]
    fn duplicate_entries_are_summed() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    1 1 2\n\
                    1 1 1.0\n\
                    1 1 2.0\n";
        let m: Csr<f64> = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.vals()[0], 3.0);
    }
}
