//! Fast binary CSR serialisation.
//!
//! The spECK artifact converts `.mtx` files into a binary ".hicsr" cache so
//! repeated benchmark runs skip text parsing; this module provides the same
//! convenience. Layout (all little-endian):
//!
//! ```text
//! magic  u64   0x4853_4352_5350_4B31 ("HSCRSPK1"-ish tag)
//! rows   u64
//! cols   u64
//! nnz    u64
//! vbytes u64   bytes per value (4 or 8)
//! row_ptr: (rows+1) x u64
//! col_idx: nnz x u32
//! vals:    nnz x f32|f64
//! ```

use crate::csr::Csr;
use crate::error::SparseError;
use crate::scalar::Scalar;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: u64 = 0x4853_4352_5350_4B31;

fn write_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes a matrix in the binary format.
pub fn write_bin_csr<V: Scalar, W: Write>(m: &Csr<V>, mut w: W) -> Result<(), SparseError> {
    write_u64(&mut w, MAGIC)?;
    write_u64(&mut w, m.rows() as u64)?;
    write_u64(&mut w, m.cols() as u64)?;
    write_u64(&mut w, m.nnz() as u64)?;
    write_u64(&mut w, std::mem::size_of::<V>() as u64)?;
    for &p in m.row_ptr() {
        write_u64(&mut w, p as u64)?;
    }
    for &c in m.col_idx() {
        w.write_all(&c.to_le_bytes())?;
    }
    for &v in m.vals() {
        let f = v.to_f64();
        if std::mem::size_of::<V>() == 4 {
            w.write_all(&(f as f32).to_le_bytes())?;
        } else {
            w.write_all(&f.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a matrix from the binary format.
pub fn read_bin_csr<V: Scalar, R: Read>(mut r: R) -> Result<Csr<V>, SparseError> {
    let parse = |msg: &str| SparseError::Parse {
        line: 0,
        msg: msg.to_string(),
    };
    if read_u64(&mut r)? != MAGIC {
        return Err(parse("bad magic"));
    }
    let rows = read_u64(&mut r)? as usize;
    let cols = read_u64(&mut r)? as usize;
    let nnz = read_u64(&mut r)? as usize;
    let vbytes = read_u64(&mut r)? as usize;
    if vbytes != std::mem::size_of::<V>() {
        return Err(parse(&format!(
            "value width mismatch: file has {vbytes} bytes, requested {}",
            std::mem::size_of::<V>()
        )));
    }
    let mut row_ptr = Vec::with_capacity(rows + 1);
    for _ in 0..=rows {
        row_ptr.push(read_u64(&mut r)? as usize);
    }
    let mut col_idx = Vec::with_capacity(nnz);
    let mut b4 = [0u8; 4];
    for _ in 0..nnz {
        r.read_exact(&mut b4)?;
        col_idx.push(u32::from_le_bytes(b4));
    }
    let mut vals = Vec::with_capacity(nnz);
    if vbytes == 4 {
        for _ in 0..nnz {
            r.read_exact(&mut b4)?;
            vals.push(V::from_f64(f32::from_le_bytes(b4) as f64));
        }
    } else {
        let mut b8 = [0u8; 8];
        for _ in 0..nnz {
            r.read_exact(&mut b8)?;
            vals.push(V::from_f64(f64::from_le_bytes(b8)));
        }
    }
    Csr::from_parts(rows, cols, row_ptr, col_idx, vals)
}

/// Writes a matrix to a binary file on disk.
pub fn write_bin_csr_file<V: Scalar>(m: &Csr<V>, path: &Path) -> Result<(), SparseError> {
    let f = std::fs::File::create(path)?;
    write_bin_csr(m, std::io::BufWriter::new(f))
}

/// Reads a matrix from a binary file on disk.
pub fn read_bin_csr_file<V: Scalar>(path: &Path) -> Result<Csr<V>, SparseError> {
    let f = std::fs::File::open(path)?;
    read_bin_csr(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<f64> {
        Csr::from_parts(
            3,
            4,
            vec![0, 2, 2, 5],
            vec![0, 3, 1, 2, 3],
            vec![1.5, -2.0, 0.25, 7.0, 1e-30],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_f64_is_exact() {
        let m = sample();
        let mut buf = Vec::new();
        write_bin_csr(&m, &mut buf).unwrap();
        let back: Csr<f64> = read_bin_csr(buf.as_slice()).unwrap();
        assert!(m.approx_eq(&back, 0.0, 0.0));
    }

    #[test]
    fn roundtrip_f32() {
        let m = Csr::<f32>::identity(5);
        let mut buf = Vec::new();
        write_bin_csr(&m, &mut buf).unwrap();
        let back: Csr<f32> = read_bin_csr(buf.as_slice()).unwrap();
        assert!(m.approx_eq(&back, 0.0, 0.0));
    }

    #[test]
    fn width_mismatch_rejected() {
        let m = Csr::<f32>::identity(2);
        let mut buf = Vec::new();
        write_bin_csr(&m, &mut buf).unwrap();
        assert!(read_bin_csr::<f64, _>(buf.as_slice()).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = vec![0u8; 64];
        assert!(read_bin_csr::<f64, _>(buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let m = sample();
        let mut buf = Vec::new();
        write_bin_csr(&m, &mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(matches!(
            read_bin_csr::<f64, _>(buf.as_slice()),
            Err(SparseError::Io(_))
        ));
    }
}
