//! Matrix I/O: the MatrixMarket exchange format ([`mm`]) used by the
//! SuiteSparse collection, and a fast binary CSR format ([`bin`]) mirroring
//! the spECK artifact's ".hicsr" cache files.

pub mod bin;
pub mod mm;
