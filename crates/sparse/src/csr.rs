//! Compressed Sparse Row storage — the format every algorithm in this
//! workspace consumes and produces, matching the paper's setting (§1).
//!
//! Invariants maintained by all constructors except
//! [`Csr::from_parts_unchecked`]:
//!
//! 1. `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`, non-decreasing,
//!    `row_ptr[rows] == col_idx.len() == vals.len()`.
//! 2. every column index is `< cols`.
//! 3. column indices are strictly increasing within each row (sorted CSR,
//!    which the paper's output contract requires — KokkosKernels is called
//!    out in §6 precisely for violating it).

use crate::coo::Coo;
use crate::error::SparseError;
use crate::scalar::{approx_eq, Scalar};

/// A sparse matrix in Compressed Sparse Row format.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr<V> {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<V>,
}

impl<V: Scalar> Csr<V> {
    /// Builds a CSR matrix and verifies all structural invariants.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        vals: Vec<V>,
    ) -> Result<Self, SparseError> {
        let m = Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        };
        m.validate()?;
        Ok(m)
    }

    /// Builds a CSR matrix without validation.
    ///
    /// Intended for kernels that construct output they have already proven
    /// well-formed; debug builds still assert the invariants.
    pub fn from_parts_unchecked(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        vals: Vec<V>,
    ) -> Self {
        let m = Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        };
        debug_assert!(m.validate().is_ok(), "from_parts_unchecked got invalid CSR");
        m
    }

    /// Builds a CSR matrix that may have *unsorted* rows — the escape
    /// hatch for methods that knowingly violate the CSR column-order
    /// contract (the paper calls out KokkosKernels for this, §6). Offset
    /// consistency is still asserted in debug builds; call
    /// [`Csr::sort_rows`] to canonicalise.
    pub fn from_parts_unsorted(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        vals: Vec<V>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), rows + 1);
        debug_assert_eq!(*row_ptr.last().unwrap_or(&0), col_idx.len());
        debug_assert_eq!(col_idx.len(), vals.len());
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// An `rows x cols` matrix with no stored entries.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            vals: vec![V::one(); n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The row-offsets array (`rows + 1` entries).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// All column indices, row-major.
    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// All values, row-major.
    #[inline]
    pub fn vals(&self) -> &[V] {
        &self.vals
    }

    /// Half-open index range of row `i` into [`Self::col_idx`]/[`Self::vals`].
    #[inline]
    pub fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        self.row_ptr[i]..self.row_ptr[i + 1]
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[V]) {
        let r = self.row_range(i);
        (&self.col_idx[r.clone()], &self.vals[r])
    }

    /// Value at `(row, col)`, or zero when not stored — O(log row_nnz).
    pub fn get(&self, row: usize, col: usize) -> V {
        let (cols, vals) = self.row(row);
        match cols.binary_search(&(col as u32)) {
            Ok(pos) => vals[pos],
            Err(_) => V::zero(),
        }
    }

    /// Iterator over `(row, cols, vals)` triples.
    pub fn iter_rows(&self) -> impl Iterator<Item = (usize, &[u32], &[V])> {
        (0..self.rows).map(move |i| {
            let (c, v) = self.row(i);
            (i, c, v)
        })
    }

    /// Largest row length, or 0 for an empty matrix.
    pub fn max_row_nnz(&self) -> usize {
        (0..self.rows).map(|i| self.row_nnz(i)).max().unwrap_or(0)
    }

    /// Mean row length.
    pub fn avg_row_nnz(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.rows as f64
        }
    }

    /// Number of intermediate products `|{(i,k,j) : A_ik != 0, B_kj != 0}|`
    /// of `self * rhs` — the paper's primary workload-size measure.
    pub fn products(&self, rhs: &Csr<V>) -> u64 {
        let rhs_len: Vec<u64> = (0..rhs.rows).map(|k| rhs.row_nnz(k) as u64).collect();
        self.col_idx.iter().map(|&k| rhs_len[k as usize]).sum()
    }

    /// Checks every structural invariant; see the module docs.
    pub fn validate(&self) -> Result<(), SparseError> {
        if self.row_ptr.len() != self.rows + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "row_ptr length {} != rows+1 = {}",
                self.row_ptr.len(),
                self.rows + 1
            )));
        }
        if self.row_ptr[0] != 0 {
            return Err(SparseError::InvalidStructure(
                "row_ptr[0] must be 0".to_string(),
            ));
        }
        if *self.row_ptr.last().unwrap() != self.col_idx.len() {
            return Err(SparseError::InvalidStructure(format!(
                "row_ptr[rows] = {} != nnz = {}",
                self.row_ptr.last().unwrap(),
                self.col_idx.len()
            )));
        }
        if self.col_idx.len() != self.vals.len() {
            return Err(SparseError::InvalidStructure(format!(
                "col_idx length {} != vals length {}",
                self.col_idx.len(),
                self.vals.len()
            )));
        }
        for i in 0..self.rows {
            if self.row_ptr[i] > self.row_ptr[i + 1] {
                return Err(SparseError::InvalidStructure(format!(
                    "row_ptr decreases at row {i}"
                )));
            }
            let (cols, _) = self.row(i);
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::InvalidStructure(format!(
                        "row {i} has unsorted or duplicate columns ({} then {})",
                        w[0], w[1]
                    )));
                }
            }
            if let Some(&last) = cols.last() {
                if last as usize >= self.cols {
                    return Err(SparseError::InvalidStructure(format!(
                        "row {i} has column {last} >= cols {}",
                        self.cols
                    )));
                }
            }
        }
        Ok(())
    }

    /// True when every row's column indices are strictly increasing.
    pub fn is_sorted(&self) -> bool {
        (0..self.rows).all(|i| self.row(i).0.windows(2).all(|w| w[0] < w[1]))
    }

    /// Sorts each row by column index, combining duplicate columns by
    /// addition. Used to canonicalise kernel output that is produced
    /// unsorted (e.g. the KokkosKernels-style baseline).
    pub fn sort_rows(&mut self) {
        let mut buf: Vec<(u32, V)> = Vec::new();
        let mut new_cols = Vec::with_capacity(self.col_idx.len());
        let mut new_vals = Vec::with_capacity(self.vals.len());
        let mut new_ptr = Vec::with_capacity(self.rows + 1);
        new_ptr.push(0usize);
        for i in 0..self.rows {
            let r = self.row_range(i);
            buf.clear();
            buf.extend(
                self.col_idx[r.clone()]
                    .iter()
                    .copied()
                    .zip(self.vals[r].iter().copied()),
            );
            buf.sort_unstable_by_key(|&(c, _)| c);
            let mut j = 0;
            while j < buf.len() {
                let (c, mut v) = buf[j];
                let mut k = j + 1;
                while k < buf.len() && buf[k].0 == c {
                    v += buf[k].1;
                    k += 1;
                }
                new_cols.push(c);
                new_vals.push(v);
                j = k;
            }
            new_ptr.push(new_cols.len());
        }
        self.row_ptr = new_ptr;
        self.col_idx = new_cols;
        self.vals = new_vals;
    }

    /// Converts to coordinate (triplet) form.
    pub fn to_coo(&self) -> Coo<V> {
        let mut rows_v = Vec::with_capacity(self.nnz());
        for i in 0..self.rows {
            rows_v.extend(std::iter::repeat_n(i as u32, self.row_nnz(i)));
        }
        Coo::from_triplets(
            self.rows,
            self.cols,
            rows_v,
            self.col_idx.clone(),
            self.vals.clone(),
        )
    }

    /// True when both matrices have identical sparsity patterns.
    pub fn pattern_eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
    }

    /// True when patterns match exactly and values match within tolerance.
    pub fn approx_eq(&self, other: &Self, rtol: f64, atol: f64) -> bool {
        self.pattern_eq(other)
            && self
                .vals
                .iter()
                .zip(other.vals.iter())
                .all(|(&a, &b)| approx_eq(a, b, rtol, atol))
    }

    /// Drops entries whose absolute value is `<= threshold`, preserving
    /// sortedness. Useful for generators that produce explicit zeros.
    pub fn prune(&mut self, threshold: f64) {
        let mut new_cols = Vec::with_capacity(self.col_idx.len());
        let mut new_vals = Vec::with_capacity(self.vals.len());
        let mut new_ptr = Vec::with_capacity(self.rows + 1);
        new_ptr.push(0usize);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                if v.abs().to_f64() > threshold {
                    new_cols.push(c);
                    new_vals.push(v);
                }
            }
            new_ptr.push(new_cols.len());
        }
        self.row_ptr = new_ptr;
        self.col_idx = new_cols;
        self.vals = new_vals;
    }

    /// Total bytes of the CSR arrays, the paper's memory-footprint unit.
    pub fn size_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<u32>()
            + self.vals.len() * std::mem::size_of::<V>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<f64> {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        Csr::from_parts(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn identity_shape_and_entries() {
        let i: Csr<f64> = Csr::identity(4);
        assert_eq!(i.rows(), 4);
        assert_eq!(i.cols(), 4);
        assert_eq!(i.nnz(), 4);
        for r in 0..4 {
            assert_eq!(i.row(r), (&[r as u32][..], &[1.0][..]));
        }
        i.validate().unwrap();
    }

    #[test]
    fn empty_matrix_is_valid() {
        let e: Csr<f64> = Csr::empty(5, 7);
        e.validate().unwrap();
        assert_eq!(e.nnz(), 0);
        assert_eq!(e.max_row_nnz(), 0);
    }

    #[test]
    fn row_access() {
        let m = sample();
        assert_eq!(m.row(0), (&[0u32, 2][..], &[1.0, 2.0][..]));
        assert_eq!(m.row(1), (&[][..], &[][..]));
        assert_eq!(m.row(2), (&[0u32, 1][..], &[3.0, 4.0][..]));
        assert_eq!(m.row_nnz(2), 2);
    }

    #[test]
    fn validation_rejects_unsorted_rows() {
        let r = Csr::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
        assert!(matches!(r, Err(SparseError::InvalidStructure(_))));
    }

    #[test]
    fn validation_rejects_duplicate_columns() {
        let r = Csr::from_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]);
        assert!(r.is_err());
    }

    #[test]
    fn validation_rejects_out_of_range_column() {
        let r = Csr::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
        assert!(r.is_err());
    }

    #[test]
    fn validation_rejects_bad_row_ptr() {
        let r = Csr::from_parts(2, 2, vec![0, 2, 1], vec![0, 1, 0], vec![1.0; 3]);
        assert!(r.is_err());
        let r = Csr::from_parts(2, 2, vec![1, 1, 2], vec![0, 1], vec![1.0; 2]);
        assert!(r.is_err());
    }

    #[test]
    fn products_counts_intermediates() {
        let m = sample();
        // row0 references B-rows 0 (len 2) and 2 (len 2) -> 4
        // row2 references B-rows 0 (len 2) and 1 (len 0) -> 2
        assert_eq!(m.products(&m), 6);
    }

    #[test]
    fn sort_rows_combines_duplicates() {
        let mut m =
            Csr::from_parts_unsorted(1, 4, vec![0, 4], vec![3, 1, 3, 0], vec![1.0, 2.0, 5.0, 7.0]);
        m.sort_rows();
        assert_eq!(m.row(0), (&[0u32, 1, 3][..], &[7.0, 2.0, 6.0][..]));
        m.validate().unwrap();
    }

    #[test]
    fn prune_removes_small_entries() {
        let mut m = sample();
        m.prune(2.5);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.row(2), (&[0u32, 1][..], &[3.0, 4.0][..]));
        m.validate().unwrap();
    }

    #[test]
    fn coo_roundtrip_preserves_matrix() {
        let m = sample();
        let back = m.to_coo().to_csr();
        assert!(m.approx_eq(&back, 0.0, 0.0));
    }

    #[test]
    fn approx_eq_detects_value_drift() {
        let m = sample();
        let mut n = m.clone();
        assert!(m.approx_eq(&n, 1e-12, 0.0));
        n.vals[0] += 1.0;
        assert!(!m.approx_eq(&n, 1e-12, 0.0));
    }

    #[test]
    fn get_returns_stored_or_zero() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.get(2, 1), 4.0);
    }

    #[test]
    fn avg_and_max_row_nnz() {
        let m = sample();
        assert_eq!(m.max_row_nnz(), 2);
        assert!((m.avg_row_nnz() - 4.0 / 3.0).abs() < 1e-12);
    }

    mod vals_mut_access {
        use super::*;

        #[test]
        fn size_bytes_counts_all_arrays() {
            let m = sample();
            let expect = 4 * std::mem::size_of::<usize>()
                + 4 * std::mem::size_of::<u32>()
                + 4 * std::mem::size_of::<f64>();
            assert_eq!(m.size_bytes(), expect);
        }
    }
}
