//! Element-wise sparse operations: addition, scaling, diagonal access.
//!
//! SpGEMM rarely appears alone — the paper's motivating applications
//! (algebraic multigrid [2], graph algorithms [12]) interleave it with
//! matrix addition and diagonal scaling (e.g. building the smoothed
//! prolongator `P = (I - w D^-1 A) T`). These helpers make the examples
//! real workloads instead of bare multiplications.

use crate::csr::Csr;
use crate::error::SparseError;
use crate::scalar::Scalar;

/// `C = alpha * A + beta * B` with matching shapes; result rows stay
/// sorted and entries that appear in either operand are kept (including
/// exact numeric zeros produced by cancellation, matching SpGEMM's
/// structural semantics).
pub fn add_scaled<V: Scalar>(
    alpha: V,
    a: &Csr<V>,
    beta: V,
    b: &Csr<V>,
) -> Result<Csr<V>, SparseError> {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return Err(SparseError::DimensionMismatch {
            op: "add",
            lhs: (a.rows(), a.cols()),
            rhs: (b.rows(), b.cols()),
        });
    }
    let mut row_ptr = Vec::with_capacity(a.rows() + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::with_capacity(a.nnz() + b.nnz());
    let mut vals = Vec::with_capacity(a.nnz() + b.nnz());
    for i in 0..a.rows() {
        let (ac, av) = a.row(i);
        let (bc, bv) = b.row(i);
        let (mut p, mut q) = (0usize, 0usize);
        while p < ac.len() || q < bc.len() {
            let take_a = q >= bc.len() || (p < ac.len() && ac[p] < bc[q]);
            let take_both = p < ac.len() && q < bc.len() && ac[p] == bc[q];
            if take_both {
                col_idx.push(ac[p]);
                vals.push(alpha * av[p] + beta * bv[q]);
                p += 1;
                q += 1;
            } else if take_a {
                col_idx.push(ac[p]);
                vals.push(alpha * av[p]);
                p += 1;
            } else {
                col_idx.push(bc[q]);
                vals.push(beta * bv[q]);
                q += 1;
            }
        }
        row_ptr.push(col_idx.len());
    }
    Ok(Csr::from_parts_unchecked(
        a.rows(),
        a.cols(),
        row_ptr,
        col_idx,
        vals,
    ))
}

/// `C = A + B`.
pub fn add<V: Scalar>(a: &Csr<V>, b: &Csr<V>) -> Result<Csr<V>, SparseError> {
    add_scaled(V::one(), a, V::one(), b)
}

/// Multiplies every stored value by `alpha` (pattern unchanged).
pub fn scale<V: Scalar>(a: &Csr<V>, alpha: V) -> Csr<V> {
    Csr::from_parts_unchecked(
        a.rows(),
        a.cols(),
        a.row_ptr().to_vec(),
        a.col_idx().to_vec(),
        a.vals().iter().map(|&v| alpha * v).collect(),
    )
}

/// The main diagonal as a dense vector (`min(rows, cols)` entries; missing
/// diagonal entries are zero).
pub fn diagonal<V: Scalar>(a: &Csr<V>) -> Vec<V> {
    let n = a.rows().min(a.cols());
    let mut d = vec![V::zero(); n];
    for (i, item) in d.iter_mut().enumerate() {
        let (cols, vals) = a.row(i);
        if let Ok(pos) = cols.binary_search(&(i as u32)) {
            *item = vals[pos];
        }
    }
    d
}

/// Scales row `i` of `A` by `scales[i]` (e.g. `D^-1 A` with
/// `scales[i] = 1/d_i`). Panics if `scales.len() != rows`.
pub fn scale_rows<V: Scalar>(a: &Csr<V>, scales: &[V]) -> Csr<V> {
    assert_eq!(scales.len(), a.rows(), "scale_rows: length mismatch");
    let mut vals = Vec::with_capacity(a.nnz());
    for (i, _, row_vals) in a.iter_rows() {
        for &v in row_vals {
            vals.push(scales[i] * v);
        }
    }
    Csr::from_parts_unchecked(
        a.rows(),
        a.cols(),
        a.row_ptr().to_vec(),
        a.col_idx().to_vec(),
        vals,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;

    fn sample_a() -> Csr<f64> {
        Csr::from_parts(
            3,
            3,
            vec![0, 2, 3, 4],
            vec![0, 2, 1, 2],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    fn sample_b() -> Csr<f64> {
        Csr::from_parts(
            3,
            3,
            vec![0, 1, 3, 4],
            vec![1, 1, 2, 2],
            vec![5.0, 6.0, 7.0, 8.0],
        )
        .unwrap()
    }

    #[test]
    fn add_matches_dense() {
        let c = add(&sample_a(), &sample_b()).unwrap();
        c.validate().unwrap();
        let da = DenseMatrix::from_csr(&sample_a());
        let db = DenseMatrix::from_csr(&sample_b());
        let dc = DenseMatrix::from_csr(&c);
        for r in 0..3 {
            for col in 0..3 {
                assert_eq!(dc.get(r, col), da.get(r, col) + db.get(r, col));
            }
        }
    }

    #[test]
    fn add_scaled_applies_coefficients() {
        let c = add_scaled(2.0, &sample_a(), -1.0, &sample_b()).unwrap();
        // (1,2): a=3, b=6 -> 2*3 - 6 = 0 kept structurally.
        let (cols, vals) = c.row(1);
        assert_eq!(cols, &[1, 2]);
        assert_eq!(vals, &[0.0, -7.0]);
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let a = sample_a();
        let b: Csr<f64> = Csr::identity(4);
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn scale_and_identity() {
        let s = scale(&sample_a(), 0.5);
        assert!(s.pattern_eq(&sample_a()));
        assert_eq!(s.vals()[0], 0.5);
        let z = scale(&sample_a(), 1.0);
        assert!(z.approx_eq(&sample_a(), 0.0, 0.0));
    }

    #[test]
    fn diagonal_extraction() {
        let d = diagonal(&sample_a());
        assert_eq!(d, vec![1.0, 3.0, 4.0]);
        let i: Csr<f64> = Csr::identity(4);
        assert_eq!(diagonal(&i), vec![1.0; 4]);
    }

    #[test]
    fn scale_rows_applies_per_row() {
        let s = scale_rows(&sample_a(), &[1.0, 10.0, 100.0]);
        assert_eq!(s.vals(), &[1.0, 2.0, 30.0, 400.0]);
        s.validate().unwrap();
    }

    #[test]
    fn jacobi_smoother_shape() {
        // (I - w D^-1 A) stays square and keeps A's sparsity + diagonal.
        let a = sample_a();
        let d = diagonal(&a);
        let dinv: Vec<f64> = d
            .iter()
            .map(|&x| if x != 0.0 { 1.0 / x } else { 0.0 })
            .collect();
        let da = scale_rows(&a, &dinv);
        let i: Csr<f64> = Csr::identity(3);
        let s = add_scaled(1.0, &i, -0.5, &da).unwrap();
        s.validate().unwrap();
        assert_eq!(s.rows(), 3);
        // Diagonal entries: 1 - 0.5 * a_ii/d_i = 0.5 where d_i != 0.
        assert_eq!(s.row(0).1[0], 0.5);
    }
}
