//! # speck-core — the spECK algorithm
//!
//! Reproduction of *spECK: Accelerating GPU Sparse Matrix-Matrix
//! Multiplication through Lightweight Analysis* (PPoPP 2020) on the
//! deterministic SIMT simulator from `speck-simt`.
//!
//! The pipeline (paper Fig. 2):
//!
//! 1. **Row analysis** ([`analysis`]) — O(NNZ(A)) pass over A and the row
//!    extents of B (paper Alg. 1).
//! 2. **Global load balancing** ([`global_lb`]) — conditional binning of
//!    rows into six kernel configurations by scratchpad demand, with
//!    parallel block merging for the smallest bin ([`block_merge`],
//!    paper Alg. 2).
//! 3. **Symbolic SpGEMM** ([`symbolic`]) — exact output-size counting with
//!    per-block choice of hash / dense / direct accumulation.
//! 4. **Second global load balancing** — re-binning on exact row sizes.
//! 5. **Numeric SpGEMM** ([`numeric`]) — value computation with the same
//!    accumulator choice plus in-scratchpad or global sorting ([`sort`]).
//! 6. **Output assembly**.
//!
//! Entry point: [`multiply`] / [`SpeckSpgemm`].
//!
//! ```
//! use speck_core::SpeckSpgemm;
//! use speck_sparse::Csr;
//!
//! let a: Csr<f64> = Csr::identity(64);
//! let engine = SpeckSpgemm::default();
//! let (c, report) = engine.multiply(&a, &a);
//! assert_eq!(c.nnz(), 64);
//! assert!(report.sim_time_s > 0.0);
//! ```
//!
//! ## Plan reuse
//!
//! Stages 1–4 depend only on the sparsity patterns of A and B. The
//! [`plan`] module captures them as a reusable [`SpgemmPlan`];
//! [`SpeckSpgemm::multiply`] caches plans by pattern fingerprint so a
//! repeated pattern transparently skips analysis and the symbolic pass,
//! and [`SpeckSpgemm::execute_plan`] exposes the split explicitly:
//!
//! ```
//! use speck_core::SpeckSpgemm;
//! use speck_sparse::Csr;
//!
//! let a: Csr<f64> = Csr::identity(64);
//! let engine = SpeckSpgemm::default();
//! let plan = engine.plan(&a, &a);
//! let (c, report) = engine.execute_plan(&plan, &a, &a);
//! assert_eq!(c.nnz(), plan.nnz_c());
//! assert!(report.reused_plan);
//! // Independent multiplies can also run as one batch:
//! let results = engine.multiply_batch(&[(&a, &a), (&a, &a)]);
//! assert!(results[1].1.reused_plan);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod audit;
pub mod block_merge;
pub mod cascade;
pub mod config;
pub mod denseacc;
pub mod global_lb;
pub mod hashacc;
pub mod local_lb;
pub mod metrics;
pub mod numeric;
pub mod partial;
pub mod pipeline;
pub mod plan;
pub mod profile;
pub mod sort;
pub mod symbolic;
pub mod trace;
pub mod tuning;
pub mod workspace;

pub use analysis::{analyze, AnalysisInfo, RowInfo};
pub use audit::{
    diff_reports, AuditDiff, AuditGroupStats, DecisionRecord, DecisionReport, Verdict, AUDIT_FORMAT,
};
pub use cascade::KernelCascade;
pub use config::{GlobalLbMode, GlobalLbThresholds, LocalLbMode, SpeckConfig};
pub use metrics::{
    compare_snapshots, HistogramSnapshot, MetricsRegistry, MetricsSink, MetricsSnapshot, Span,
};
pub use partial::{multiply_multi_gpu, multiply_partitioned};
pub use pipeline::{
    execute_plan_with_pool, multiply, multiply_with_pool, plan_with_pool, MultiplyReport,
    SpeckSpgemm, DEFAULT_PLAN_CACHE_CAPACITY,
};
pub use plan::{pattern_fingerprint, PatternKey, PlanCache, SpgemmPlan};
pub use profile::{diff_traces, profile_trace, ProfileReport, TraceDiff};
pub use trace::{
    parse_json_value, BlockAnnotation, ExecutionTrace, JsonValue, KernelTraceRecord, TraceBuilder,
    TraceRecord, TraceRecordKind, TRACE_FORMAT,
};
pub use workspace::{SharedWorkspaces, Workspace, WorkspacePool};
