//! Auto-tuning of the global load-balancer thresholds — paper §5.
//!
//! The paper benchmarks every matrix under the four combinations of global
//! load balancing (none / symbolic only / numeric only / both), then
//! line-searches the eight thresholds of Table 2 to minimise the *average
//! slowdown* against the per-matrix best combination, validated with an
//! inverse 3-fold cross validation (tune on one third, evaluate on two).
//!
//! We reproduce that procedure exactly; `exp_table2` in the bench crate
//! drives it over the synthetic corpus.

use crate::config::{GlobalLbMode, GlobalLbThresholds, SpeckConfig};
use crate::global_lb::ThresholdSet;
use crate::pipeline::multiply;
use speck_simt::{CostModel, DeviceConfig};
use speck_sparse::{Csr, Scalar};

/// Everything the tuner needs to know about one matrix: the decision
/// features and the measured time of each load-balancing combination.
#[derive(Clone, Debug)]
pub struct MatrixMeasurement {
    /// Matrix label, for reporting.
    pub name: String,
    /// Symbolic decision features: (ratio, rows, starred set?).
    pub sym: (f64, usize, bool),
    /// Numeric decision features.
    pub num: (f64, usize, bool),
    /// Simulated times indexed by `combo_index(sym_on, num_on)`.
    pub times: [f64; 4],
}

/// Index into [`MatrixMeasurement::times`].
#[inline]
pub fn combo_index(sym_on: bool, num_on: bool) -> usize {
    usize::from(sym_on) | (usize::from(num_on) << 1)
}

/// Thresholds that force a pass's Auto decision on or off.
fn forced(sym_on: bool, num_on: bool) -> GlobalLbThresholds {
    let on = (0.0, 0usize);
    let off = (f64::INFINITY, usize::MAX);
    let s = if sym_on { on } else { off };
    let n = if num_on { on } else { off };
    GlobalLbThresholds {
        symbolic_ratio: s.0,
        symbolic_min_rows: s.1,
        symbolic_ratio_large: s.0,
        symbolic_min_rows_large: s.1,
        numeric_ratio: n.0,
        numeric_min_rows: n.1,
        numeric_ratio_large: n.0,
        numeric_min_rows_large: n.1,
    }
}

/// Benchmarks all four combinations on one multiplication.
pub fn measure<V: Scalar>(
    dev: &DeviceConfig,
    cost: &CostModel,
    base: &SpeckConfig,
    name: &str,
    a: &Csr<V>,
    b: &Csr<V>,
) -> MatrixMeasurement {
    let mut times = [0.0f64; 4];
    let mut sym = (1.0, a.rows(), false);
    let mut num = (1.0, a.rows(), false);
    for s_on in [false, true] {
        for n_on in [false, true] {
            let mut cfg = base.clone();
            cfg.global_lb = GlobalLbMode::Auto;
            cfg.thresholds = forced(s_on, n_on);
            let (_, report) = multiply(dev, cost, &cfg, a, b);
            times[combo_index(s_on, n_on)] = report.sim_time_s;
            if !s_on && !n_on {
                sym = (
                    report.symbolic_ratio,
                    a.rows(),
                    report.symbolic_threshold_set == ThresholdSet::Large,
                );
                num = (
                    report.numeric_ratio,
                    a.rows(),
                    report.numeric_threshold_set == ThresholdSet::Large,
                );
            }
        }
    }
    MatrixMeasurement {
        name: name.to_string(),
        sym,
        num,
        times,
    }
}

/// The combination a threshold set would choose for a measurement. Uses
/// the same predicate ([`crate::global_lb::lb_threshold_fires`]) as the
/// pipeline's gate, so tuner predictions and audit provenance agree.
pub fn predict(t: &GlobalLbThresholds, m: &MatrixMeasurement) -> (bool, bool) {
    use crate::global_lb::lb_threshold_fires;
    let sym_on = if m.sym.2 {
        lb_threshold_fires(
            m.sym.0,
            m.sym.1,
            t.symbolic_ratio_large,
            t.symbolic_min_rows_large,
        )
    } else {
        lb_threshold_fires(m.sym.0, m.sym.1, t.symbolic_ratio, t.symbolic_min_rows)
    };
    let num_on = if m.num.2 {
        lb_threshold_fires(
            m.num.0,
            m.num.1,
            t.numeric_ratio_large,
            t.numeric_min_rows_large,
        )
    } else {
        lb_threshold_fires(m.num.0, m.num.1, t.numeric_ratio, t.numeric_min_rows)
    };
    (sym_on, num_on)
}

/// Mean slowdown of the thresholds' choices versus the per-matrix best —
/// the paper's tuning loss (§5: "minimize the average slowdown compared to
/// the best approach").
pub fn loss(t: &GlobalLbThresholds, meas: &[MatrixMeasurement]) -> f64 {
    if meas.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for m in meas {
        let (s, n) = predict(t, m);
        let chosen = m.times[combo_index(s, n)];
        let best = m.times.iter().cloned().fold(f64::INFINITY, f64::min);
        total += chosen / best;
    }
    total / meas.len() as f64
}

/// Fraction of matrices for which the thresholds pick the fastest of the
/// four combinations (the paper reports 85 %).
pub fn accuracy(t: &GlobalLbThresholds, meas: &[MatrixMeasurement]) -> f64 {
    if meas.is_empty() {
        return 1.0;
    }
    let hits = meas
        .iter()
        .filter(|m| {
            let (s, n) = predict(t, m);
            let chosen = m.times[combo_index(s, n)];
            let best = m.times.iter().cloned().fold(f64::INFINITY, f64::min);
            chosen <= best * (1.0 + 1e-12)
        })
        .count();
    hits as f64 / meas.len() as f64
}

/// Candidate grid for one parameter, from the observed feature values.
fn candidates(values: impl Iterator<Item = f64>) -> Vec<f64> {
    let mut v: Vec<f64> = values.filter(|x| x.is_finite()).collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v.dedup();
    let mut c = vec![0.0];
    for w in v.windows(2) {
        c.push((w[0] + w[1]) / 2.0); // decision boundaries between samples
    }
    if let Some(&last) = v.last() {
        c.push(last + 1.0);
    }
    c
}

/// Line search: sweep each of the eight parameters over candidate
/// boundaries, keeping the value that minimises the loss; repeat until a
/// full sweep makes no progress.
pub fn line_search(meas: &[MatrixMeasurement], start: GlobalLbThresholds) -> GlobalLbThresholds {
    let ratio_cands_sym = candidates(meas.iter().map(|m| m.sym.0));
    let ratio_cands_num = candidates(meas.iter().map(|m| m.num.0));
    let row_cands: Vec<usize> = {
        let mut v: Vec<usize> = meas.iter().map(|m| m.sym.1).collect();
        v.push(0);
        v.sort_unstable();
        v.dedup();
        v
    };

    let mut best = start;
    let mut best_loss = loss(&best, meas);
    loop {
        let before = best_loss;
        // Each closure mutates one field; sweep all eight.
        type Setter = fn(&mut GlobalLbThresholds, f64);
        let ratio_fields: [(Setter, &[f64]); 4] = [
            (|t, v| t.symbolic_ratio = v, &ratio_cands_sym),
            (|t, v| t.symbolic_ratio_large = v, &ratio_cands_sym),
            (|t, v| t.numeric_ratio = v, &ratio_cands_num),
            (|t, v| t.numeric_ratio_large = v, &ratio_cands_num),
        ];
        for (set, cands) in ratio_fields {
            for &c in cands {
                let mut t = best;
                set(&mut t, c);
                let l = loss(&t, meas);
                if l < best_loss {
                    best_loss = l;
                    best = t;
                }
            }
        }
        type RowSetter = fn(&mut GlobalLbThresholds, usize);
        let row_fields: [RowSetter; 4] = [
            |t, v| t.symbolic_min_rows = v,
            |t, v| t.symbolic_min_rows_large = v,
            |t, v| t.numeric_min_rows = v,
            |t, v| t.numeric_min_rows_large = v,
        ];
        for set in row_fields {
            for &c in &row_cands {
                let mut t = best;
                set(&mut t, c);
                let l = loss(&t, meas);
                if l < best_loss {
                    best_loss = l;
                    best = t;
                }
            }
        }
        if best_loss >= before - 1e-12 {
            break;
        }
    }
    best
}

/// Result of the inverse 3-fold cross validation.
#[derive(Clone, Debug)]
pub struct CvResult {
    /// Thresholds tuned on each fold.
    pub fold_thresholds: Vec<GlobalLbThresholds>,
    /// Evaluation loss of each fold's thresholds on the *other* folds.
    pub fold_eval_loss: Vec<f64>,
    /// Final thresholds: the average over folds (paper: "we average the
    /// parameters over the three training sets").
    pub final_thresholds: GlobalLbThresholds,
    /// Loss of the final thresholds on the full corpus.
    pub final_loss: f64,
    /// Fraction of matrices where the final thresholds pick the fastest
    /// combination.
    pub final_accuracy: f64,
}

/// Inverse k-fold cross validation: tune on fold i (1/k of the data),
/// evaluate on the remainder; average the tuned parameters.
pub fn cross_validate(meas: &[MatrixMeasurement], folds: usize) -> CvResult {
    assert!(folds >= 2, "cross_validate: need at least 2 folds");
    let mut fold_thresholds = Vec::with_capacity(folds);
    let mut fold_eval_loss = Vec::with_capacity(folds);
    for f in 0..folds {
        let train: Vec<MatrixMeasurement> = meas
            .iter()
            .enumerate()
            .filter(|(i, _)| i % folds == f)
            .map(|(_, m)| m.clone())
            .collect();
        let eval: Vec<MatrixMeasurement> = meas
            .iter()
            .enumerate()
            .filter(|(i, _)| i % folds != f)
            .map(|(_, m)| m.clone())
            .collect();
        let t = line_search(&train, GlobalLbThresholds::scaled_default());
        fold_eval_loss.push(loss(&t, &eval));
        fold_thresholds.push(t);
    }
    let k = folds as f64;
    let avg = |f: fn(&GlobalLbThresholds) -> f64| fold_thresholds.iter().map(f).sum::<f64>() / k;
    let avg_rows = |f: fn(&GlobalLbThresholds) -> usize| {
        (fold_thresholds.iter().map(f).sum::<usize>() as f64 / k).round() as usize
    };
    let final_thresholds = GlobalLbThresholds {
        symbolic_ratio: avg(|t| t.symbolic_ratio),
        symbolic_min_rows: avg_rows(|t| t.symbolic_min_rows),
        symbolic_ratio_large: avg(|t| t.symbolic_ratio_large),
        symbolic_min_rows_large: avg_rows(|t| t.symbolic_min_rows_large),
        numeric_ratio: avg(|t| t.numeric_ratio),
        numeric_min_rows: avg_rows(|t| t.numeric_min_rows),
        numeric_ratio_large: avg(|t| t.numeric_ratio_large),
        numeric_min_rows_large: avg_rows(|t| t.numeric_min_rows_large),
    };
    let final_loss = loss(&final_thresholds, meas);
    let final_accuracy = accuracy(&final_thresholds, meas);
    CvResult {
        fold_thresholds,
        fold_eval_loss,
        final_thresholds,
        final_loss,
        final_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speck_sparse::gen::{banded, rmat, uniform_random};

    fn synth_measurement(name: &str, sym_ratio: f64, best: usize) -> MatrixMeasurement {
        // Fabricate a measurement whose `best` combo is fastest.
        let mut times = [2.0; 4];
        times[best] = 1.0;
        MatrixMeasurement {
            name: name.into(),
            sym: (sym_ratio, 10_000, false),
            num: (sym_ratio, 10_000, false),
            times,
        }
    }

    #[test]
    fn combo_index_layout() {
        assert_eq!(combo_index(false, false), 0);
        assert_eq!(combo_index(true, false), 1);
        assert_eq!(combo_index(false, true), 2);
        assert_eq!(combo_index(true, true), 3);
    }

    #[test]
    fn loss_is_one_for_perfect_prediction() {
        let m = synth_measurement("a", 100.0, combo_index(true, true));
        let t = forced(true, true);
        assert!((loss(&t, &[m]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loss_penalises_wrong_choice() {
        let m = synth_measurement("a", 100.0, combo_index(true, true));
        let t = forced(false, false);
        assert!((loss(&t, &[m]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn line_search_separates_by_ratio() {
        // Low-ratio matrices want LB off; high-ratio want it on. A single
        // ratio threshold between 5 and 50 is optimal.
        let mut meas = Vec::new();
        for i in 0..6 {
            meas.push(synth_measurement(
                &format!("low{i}"),
                5.0,
                combo_index(false, false),
            ));
            meas.push(synth_measurement(
                &format!("high{i}"),
                50.0,
                combo_index(true, true),
            ));
        }
        let t = line_search(&meas, GlobalLbThresholds::scaled_default());
        assert!(
            (loss(&t, &meas) - 1.0).abs() < 1e-9,
            "loss {}",
            loss(&t, &meas)
        );
        assert!(t.symbolic_ratio > 5.0 && t.symbolic_ratio <= 50.0);
        assert_eq!(accuracy(&t, &meas), 1.0);
    }

    #[test]
    fn empty_measurement_set_degenerates_gracefully() {
        let t = GlobalLbThresholds::scaled_default();
        assert_eq!(loss(&t, &[]), 0.0);
        assert_eq!(accuracy(&t, &[]), 1.0);
        // Line search over nothing keeps the starting thresholds.
        assert_eq!(line_search(&[], t), t);
    }

    #[test]
    fn predict_on_single_measurement_matches_gate_predicate() {
        let t = GlobalLbThresholds::scaled_default();
        // Exactly on the base threshold: >= fires on both features.
        let m = MatrixMeasurement {
            name: "edge".into(),
            sym: (t.symbolic_ratio, t.symbolic_min_rows, false),
            num: (t.numeric_ratio, t.numeric_min_rows - 1, false),
            times: [1.0; 4],
        };
        assert_eq!(predict(&t, &m), (true, false));
        assert_eq!(accuracy(&t, std::slice::from_ref(&m)), 1.0); // all times tie
                                                                 // Starred matrices consult the `_large` thresholds instead.
        let starred = MatrixMeasurement {
            sym: (t.symbolic_ratio_large, t.symbolic_min_rows_large, true),
            num: (0.0, 0, true),
            ..m
        };
        assert_eq!(predict(&t, &starred), (true, false));
    }

    #[test]
    fn cross_validate_single_measurement_two_folds() {
        // One fold ends up empty; line_search and loss must cope.
        let m = synth_measurement("solo", 100.0, combo_index(true, true));
        let cv = cross_validate(&[m], 2);
        assert_eq!(cv.fold_thresholds.len(), 2);
        assert!(cv.final_loss.is_finite());
        assert!(cv.final_accuracy >= 0.0 && cv.final_accuracy <= 1.0);
    }

    #[test]
    fn measure_produces_four_distinct_runs() {
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let a = rmat(8, 8, 0.57, 0.19, 0.19, 3);
        let m = measure(&dev, &cost, &SpeckConfig::default(), "rmat", &a, &a);
        assert!(m.times.iter().all(|&t| t > 0.0));
        assert!(m.sym.0 >= 1.0);
    }

    #[test]
    fn cross_validation_end_to_end_small() {
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let base = SpeckConfig::default();
        let mats = [
            ("banded", banded(800, 2, 1.0, 1)),
            ("uniform", uniform_random(600, 600, 2, 6, 2)),
            ("rmat1", rmat(8, 8, 0.57, 0.19, 0.19, 3)),
            ("rmat2", rmat(9, 6, 0.57, 0.19, 0.19, 4)),
            ("banded2", banded(500, 4, 0.8, 5)),
            ("uniform2", uniform_random(400, 400, 3, 9, 6)),
        ];
        let meas: Vec<MatrixMeasurement> = mats
            .iter()
            .map(|(n, m)| measure(&dev, &cost, &base, n, m, m))
            .collect();
        let cv = cross_validate(&meas, 3);
        assert_eq!(cv.fold_thresholds.len(), 3);
        // Tuned thresholds must not be worse than always-off on average.
        let off = forced(false, false);
        assert!(cv.final_loss <= loss(&off, &meas) + 1e-9);
        assert!(cv.final_accuracy > 0.0);
    }
}
