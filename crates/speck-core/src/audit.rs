//! Decision provenance and counterfactual audit of the spECK pipeline.
//!
//! Every multiplication makes a chain of decisions before any value is
//! computed: the global-LB gate per pass (paper Table 2), the bin each
//! hash row lands in, whether the smallest bin's rows are block-merged,
//! the accumulator per block (hash / dense / direct), and the group size
//! `g` per hash block (§3.2). This module reconstructs each of those
//! decisions from a finished [`ExecutionTrace`], records the measured
//! features that drove it, shadow-costs the rejected alternatives with
//! the simulator's own [`CostModel`], and reconciles prediction against
//! the measured per-block cycles:
//!
//! * **Confirmed** — the chosen option measured no worse than the best
//!   rejected alternative's estimate.
//! * **Misprediction** — some rejected alternative was estimated
//!   cheaper; the gap is the decision's *regret* in cycles.
//! * **Tie** — measured and best alternative agree to relative 1e-9.
//!
//! The estimate of the *chosen* option is always the identity shadow
//! cost of the measured block ([`CostModel::shadow_cycles`]), so
//! `chosen_est_cycles == measured_cycles` bit-for-bit — the audit's
//! internal consistency check (property-tested in
//! `tests/audit_reconcile.rs`). Alternative estimates are counterfactual
//! perturbations of the same measured block (scaled rounds, scaled
//! compute, or a re-planned pass costed by row attribution), so they are
//! deterministic but *optimistic bounds*, not replays.
//!
//! Everything here is read-only post-processing: auditing never changes
//! simulated results, and [`DecisionReport::canonical_json`] is
//! byte-deterministic (CI gates on a committed baseline).

use crate::analysis::AnalysisInfo;
use crate::cascade::{numeric_entry_bytes, symbolic_entry_bytes, KernelCascade};
use crate::config::{GlobalLbMode, SpeckConfig};
use crate::global_lb::{
    numeric_entries, plan_numeric, plan_symbolic, symbolic_entries, AccMethod, GateProvenance,
    PassPlan,
};
use crate::local_lb::{alternative_group_sizes, estimated_rounds};
use crate::pipeline::stage;
use crate::symbolic::group_blocks;
use crate::trace::{parse_json_value, ExecutionTrace, JsonValue};
use speck_simt::{CostModel, DeviceConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Format tag embedded in every audit export.
pub const AUDIT_FORMAT: &str = "speck-audit-v1";

/// Relative tolerance separating a tie from a real cycle gap.
const TIE_RTOL: f64 = 1e-9;

/// Outcome of reconciling one decision against its alternatives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The chosen option measured no worse than every alternative's
    /// estimate (vacuously true when nothing was rejected).
    Confirmed,
    /// A rejected alternative was estimated cheaper than the measured
    /// cost of the choice.
    Misprediction,
    /// Measured and best alternative agree to relative `1e-9`.
    Tie,
}

impl Verdict {
    fn name(self) -> &'static str {
        match self {
            Verdict::Confirmed => "confirmed",
            Verdict::Misprediction => "misprediction",
            Verdict::Tie => "tie",
        }
    }

    fn from_name(s: &str) -> Option<Verdict> {
        match s {
            "confirmed" => Some(Verdict::Confirmed),
            "misprediction" => Some(Verdict::Misprediction),
            "tie" => Some(Verdict::Tie),
            _ => None,
        }
    }
}

/// One rejected option with its counterfactual cost estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct Alternative {
    /// What the pipeline could have chosen instead (e.g. `"bin 3"`,
    /// `"g=16"`, `"lb_off"`).
    pub label: String,
    /// Shadow-cost estimate of that option, in device cycles.
    pub est_cycles: f64,
}

/// One audited pipeline decision.
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionRecord {
    /// Pass the decision belongs to: `"symbolic"` or `"numeric"`.
    pub stage: String,
    /// Decision type: `"gate"`, `"merge"`, `"bin"`, `"acc"`, or
    /// `"group_size"`.
    pub kind: &'static str,
    /// What was decided about (a pass gate, or `"<kernel>#<block>"`).
    pub subject: String,
    /// Cascade bin of the block, for per-block decisions on hash blocks.
    pub bin: Option<usize>,
    /// Accumulator of the block, for per-block decisions.
    pub acc: Option<AccMethod>,
    /// Measured features the decision consumed, in recording order.
    pub features: Vec<(String, f64)>,
    /// The option the pipeline picked.
    pub chosen: String,
    /// Shadow-cost estimate of the chosen option — by construction the
    /// identity shadow cost of the measured execution, so it equals
    /// `measured_cycles` bit-for-bit.
    pub chosen_est_cycles: f64,
    /// Measured cycles attributed to the decision.
    pub measured_cycles: f64,
    /// The rejected options with their counterfactual estimates.
    pub alternatives: Vec<Alternative>,
    /// Reconciliation outcome.
    pub verdict: Verdict,
    /// `measured - best_alternative` when mispredicted, else 0.
    pub regret_cycles: f64,
}

/// Aggregate statistics of one summary cell.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AuditGroupStats {
    /// Decisions in the cell.
    pub decisions: usize,
    /// Decisions confirmed by measurement.
    pub confirmed: usize,
    /// Decisions where a rejected alternative was estimated cheaper.
    pub mispredictions: usize,
    /// Decisions within tolerance of the best alternative.
    pub ties: usize,
    /// Total estimated regret cycles of the cell's mispredictions.
    pub regret_cycles: f64,
}

impl AuditGroupStats {
    fn add(&mut self, r: &DecisionRecord) {
        self.decisions += 1;
        match r.verdict {
            Verdict::Confirmed => self.confirmed += 1,
            Verdict::Misprediction => self.mispredictions += 1,
            Verdict::Tie => self.ties += 1,
        }
        self.regret_cycles += r.regret_cycles;
    }
}

/// Summary cell key: `(stage/kind, accumulator, bin)` — the same shape
/// as the profiler's kernel grouping.
pub type AuditKey = (String, Option<AccMethod>, Option<usize>);

/// The decision-provenance report of one multiplication.
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionReport {
    /// Simulated device the decisions ran on.
    pub device_name: String,
    /// Every audited decision, in pipeline order.
    pub records: Vec<DecisionRecord>,
}

impl DecisionReport {
    /// Aggregates the records into `(stage/kind, acc, bin)` cells.
    pub fn summary(&self) -> BTreeMap<AuditKey, AuditGroupStats> {
        let mut cells: BTreeMap<AuditKey, AuditGroupStats> = BTreeMap::new();
        for r in &self.records {
            let key = (format!("{}/{}", r.stage, r.kind), r.acc, r.bin);
            cells.entry(key).or_default().add(r);
        }
        cells
    }

    /// Overall statistics across every record.
    pub fn totals(&self) -> AuditGroupStats {
        let mut t = AuditGroupStats::default();
        for r in &self.records {
            t.add(r);
        }
        t
    }

    /// Fraction of decisions reconciled as mispredictions (0 when the
    /// report is empty).
    pub fn misprediction_rate(&self) -> f64 {
        let t = self.totals();
        if t.decisions == 0 {
            0.0
        } else {
            t.mispredictions as f64 / t.decisions as f64
        }
    }

    /// Total estimated regret cycles across every misprediction.
    pub fn total_regret_cycles(&self) -> f64 {
        self.records.iter().map(|r| r.regret_cycles).sum()
    }

    /// Serialises the report as canonical JSON: fixed key order, numbers
    /// via shortest-roundtrip `Display` — byte-deterministic, and
    /// [`DecisionReport::from_json`] followed by re-export reproduces the
    /// bytes exactly.
    pub fn canonical_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n\"format\": ");
        push_json_string(&mut out, AUDIT_FORMAT);
        out.push_str(",\n\"device\": ");
        push_json_string(&mut out, &self.device_name);
        let t = self.totals();
        let _ = write!(
            out,
            ",\n\"summary\": {{\"decisions\": {}, \"confirmed\": {}, \"mispredictions\": {}, \"ties\": {}, \"regret_cycles\": ",
            t.decisions, t.confirmed, t.mispredictions, t.ties
        );
        push_num(&mut out, t.regret_cycles);
        out.push_str(", \"misprediction_rate\": ");
        push_num(&mut out, self.misprediction_rate());
        out.push_str("},\n\"records\": [");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("{\"stage\": ");
            push_json_string(&mut out, &r.stage);
            out.push_str(", \"kind\": ");
            push_json_string(&mut out, r.kind);
            out.push_str(", \"subject\": ");
            push_json_string(&mut out, &r.subject);
            out.push_str(", \"bin\": ");
            match r.bin {
                Some(b) => {
                    let _ = write!(out, "{b}");
                }
                None => out.push_str("null"),
            }
            out.push_str(", \"acc\": ");
            match r.acc {
                Some(a) => push_json_string(&mut out, acc_name(a)),
                None => out.push_str("null"),
            }
            out.push_str(", \"chosen\": ");
            push_json_string(&mut out, &r.chosen);
            out.push_str(", \"chosen_est_cycles\": ");
            push_num(&mut out, r.chosen_est_cycles);
            out.push_str(", \"measured_cycles\": ");
            push_num(&mut out, r.measured_cycles);
            out.push_str(", \"regret_cycles\": ");
            push_num(&mut out, r.regret_cycles);
            out.push_str(", \"verdict\": ");
            push_json_string(&mut out, r.verdict.name());
            out.push_str(", \"features\": {");
            for (j, (k, v)) in r.features.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                push_json_string(&mut out, k);
                out.push_str(": ");
                push_num(&mut out, *v);
            }
            out.push_str("}, \"alternatives\": [");
            for (j, a) in r.alternatives.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"label\": ");
                push_json_string(&mut out, &a.label);
                out.push_str(", \"est_cycles\": ");
                push_num(&mut out, a.est_cycles);
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("\n]\n}\n");
        out
    }

    /// Parses a report back from [`DecisionReport::canonical_json`]
    /// output. The derived `summary` block is ignored and recomputed.
    pub fn from_json(text: &str) -> Result<DecisionReport, String> {
        let root = parse_json_value(text)?;
        let format = root
            .get("format")
            .and_then(JsonValue::as_str)
            .ok_or("audit JSON: missing format tag")?;
        if format != AUDIT_FORMAT {
            return Err(format!("audit JSON: unsupported format {format:?}"));
        }
        let device_name = root
            .get("device")
            .and_then(JsonValue::as_str)
            .ok_or("audit JSON: missing device")?
            .to_string();
        let mut records = Vec::new();
        for rec in root
            .get("records")
            .and_then(JsonValue::as_arr)
            .ok_or("audit JSON: missing records")?
        {
            let str_field = |key: &str| -> Result<String, String> {
                rec.get(key)
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
                    .ok_or(format!("audit JSON: record missing {key}"))
            };
            let num_field = |key: &str| -> Result<f64, String> {
                rec.get(key)
                    .and_then(JsonValue::as_f64)
                    .ok_or(format!("audit JSON: record missing {key}"))
            };
            let kind = match str_field("kind")?.as_str() {
                "gate" => "gate",
                "merge" => "merge",
                "bin" => "bin",
                "acc" => "acc",
                "group_size" => "group_size",
                k => return Err(format!("audit JSON: unknown kind {k:?}")),
            };
            let mut features = Vec::new();
            if let Some(JsonValue::Obj(fields)) = rec.get("features") {
                for (k, v) in fields {
                    let v = v.as_f64().ok_or("audit JSON: non-numeric feature")?;
                    features.push((k.clone(), v));
                }
            }
            let mut alternatives = Vec::new();
            if let Some(alts) = rec.get("alternatives").and_then(JsonValue::as_arr) {
                for a in alts {
                    alternatives.push(Alternative {
                        label: a
                            .get("label")
                            .and_then(JsonValue::as_str)
                            .ok_or("audit JSON: alternative missing label")?
                            .to_string(),
                        est_cycles: a
                            .get("est_cycles")
                            .and_then(JsonValue::as_f64)
                            .ok_or("audit JSON: alternative missing est_cycles")?,
                    });
                }
            }
            records.push(DecisionRecord {
                stage: str_field("stage")?,
                kind,
                subject: str_field("subject")?,
                bin: rec.get("bin").and_then(JsonValue::as_usize),
                acc: rec
                    .get("acc")
                    .and_then(JsonValue::as_str)
                    .and_then(acc_from_name),
                features,
                chosen: str_field("chosen")?,
                chosen_est_cycles: num_field("chosen_est_cycles")?,
                measured_cycles: num_field("measured_cycles")?,
                alternatives,
                verdict: Verdict::from_name(&str_field("verdict")?)
                    .ok_or("audit JSON: unknown verdict")?,
                regret_cycles: num_field("regret_cycles")?,
            });
        }
        Ok(DecisionReport {
            device_name,
            records,
        })
    }

    /// Renders the summary cells as an aligned text table with headline
    /// totals, mispredictions first within the listing order.
    pub fn render_table(&self) -> String {
        let t = self.totals();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "decision audit: {} decisions, {} confirmed, {} mispredicted, {} ties \
             (misprediction rate {:.1}%)",
            t.decisions,
            t.confirmed,
            t.mispredictions,
            t.ties,
            self.misprediction_rate() * 100.0
        );
        let _ = writeln!(
            out,
            "estimated regret: {:.3} cycles",
            self.total_regret_cycles()
        );
        let cells = self.summary();
        if cells.is_empty() {
            return out;
        }
        let width = cells
            .keys()
            .map(|(s, _, _)| s.len())
            .max()
            .unwrap_or(0)
            .max("decision".len());
        let _ = writeln!(
            out,
            "  {:width$}  {:>6}  {:>4}  {:>9}  {:>9}  {:>5}  {:>14}",
            "decision", "acc", "bin", "decisions", "mispred", "ties", "regret cycles"
        );
        for ((cell, acc, bin), st) in &cells {
            let acc = match acc {
                Some(a) => acc_name(*a),
                None => "-",
            };
            let bin = bin.map_or("-".to_string(), |b| b.to_string());
            let _ = writeln!(
                out,
                "  {:width$}  {:>6}  {:>4}  {:>9}  {:>9}  {:>5}  {:>14.3}",
                cell, acc, bin, st.decisions, st.mispredictions, st.ties, st.regret_cycles
            );
        }
        out
    }
}

/// Difference between two decision reports, cell by cell.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditDiff {
    /// `new.total_regret_cycles() - old.total_regret_cycles()`.
    pub regret_delta_cycles: f64,
    /// Summary cells whose statistics differ, keyed like
    /// [`DecisionReport::summary`], with `(old, new)` stats (a missing
    /// side contributes zeroed stats). Empty for identical reports.
    pub cells: BTreeMap<AuditKey, (AuditGroupStats, AuditGroupStats)>,
}

impl AuditDiff {
    /// Renders the diff as text; the first line is the grep-able
    /// `regret delta: {:+.3} cycles` (all-zero for identical reports).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "regret delta: {:+.3} cycles", self.regret_delta_cycles);
        if self.cells.is_empty() {
            let _ = writeln!(out, "  no decision cells changed");
            return out;
        }
        let width = self
            .cells
            .keys()
            .map(|(s, _, _)| s.len())
            .max()
            .unwrap_or(0)
            .max("decision".len());
        let _ = writeln!(
            out,
            "  {:width$}  {:>6}  {:>4}  {:>13}  {:>13}  {:>14}",
            "decision", "acc", "bin", "decisions", "mispred", "regret delta"
        );
        for ((cell, acc, bin), (old, new)) in &self.cells {
            let acc = match acc {
                Some(a) => acc_name(*a),
                None => "-",
            };
            let bin = bin.map_or("-".to_string(), |b| b.to_string());
            let _ = writeln!(
                out,
                "  {:width$}  {:>6}  {:>4}  {:>6} -> {:>4}  {:>6} -> {:>4}  {:>+14.3}",
                cell,
                acc,
                bin,
                old.decisions,
                new.decisions,
                old.mispredictions,
                new.mispredictions,
                new.regret_cycles - old.regret_cycles
            );
        }
        out
    }
}

/// Diffs two reports cell by cell; `diff_reports(r, r)` has no cells and
/// a zero regret delta.
pub fn diff_reports(old: &DecisionReport, new: &DecisionReport) -> AuditDiff {
    let old_cells = old.summary();
    let new_cells = new.summary();
    let mut cells = BTreeMap::new();
    for (key, o) in &old_cells {
        let n = new_cells.get(key).copied().unwrap_or_default();
        if *o != n {
            cells.insert(key.clone(), (*o, n));
        }
    }
    for (key, n) in &new_cells {
        if !old_cells.contains_key(key) {
            cells.insert(key.clone(), (AuditGroupStats::default(), *n));
        }
    }
    AuditDiff {
        regret_delta_cycles: new.total_regret_cycles() - old.total_regret_cycles(),
        cells,
    }
}

// ---------------------------------------------------------------------------
// Report construction
// ---------------------------------------------------------------------------

/// Per-pass context the extractors share.
struct PassCtx<'a> {
    /// `"symbolic"` or `"numeric"` — the record's `stage` label.
    pass: &'static str,
    /// Timeline stage of the pass's SpGEMM kernels.
    spgemm_stage: &'static str,
    /// Timeline stage of the pass's load-balancing kernels.
    load_stage: &'static str,
    gate: &'a GateProvenance,
    /// Per-row hash-entry demand of the pass.
    entries: Vec<u64>,
    entry_bytes: usize,
}

/// Builds the decision report from a finished trace. Called by the
/// pipeline after execution; read-only on everything it receives.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_report(
    dev: &DeviceConfig,
    model: &CostModel,
    cfg: &SpeckConfig,
    info: &AnalysisInfo,
    row_nnz: &[u32],
    sym_gate: &GateProvenance,
    num_gate: &GateProvenance,
    b_cols: usize,
    val_bytes: usize,
    trace: &ExecutionTrace,
) -> DecisionReport {
    let cascade = KernelCascade::for_device(dev);
    let mut records = Vec::new();
    let passes = [
        PassCtx {
            pass: "symbolic",
            spgemm_stage: stage::SYMBOLIC,
            load_stage: stage::SYMBOLIC_LOAD,
            gate: sym_gate,
            entries: symbolic_entries(info),
            entry_bytes: symbolic_entry_bytes(b_cols),
        },
        PassCtx {
            pass: "numeric",
            spgemm_stage: stage::NUMERIC,
            load_stage: stage::NUMERIC_LOAD,
            gate: num_gate,
            entries: numeric_entries(row_nnz, cfg.numeric_max_fill),
            entry_bytes: numeric_entry_bytes(b_cols, val_bytes),
        },
    ];
    for p in &passes {
        // A warm (plan-reusing) run carries only the stages that actually
        // executed — its trace has no symbolic kernels, so only the
        // numeric decisions are audited.
        if !trace.kernels().any(|(r, _)| r.stage == p.spgemm_stage) {
            continue;
        }
        records.push(gate_record(
            dev, model, &cascade, cfg, info, row_nnz, b_cols, val_bytes, p, trace,
        ));
        if let Some(r) = merge_record(p, model, trace) {
            records.push(r);
        }
        block_records(p, model, &cascade, info, trace, &mut records);
    }
    DecisionReport {
        device_name: trace.device_name.clone(),
        records,
    }
}

/// Shared verdict rule: compare measured cycles against the cheapest
/// alternative estimate.
fn verdict_for(measured: f64, alternatives: &[Alternative]) -> (Verdict, f64) {
    let best = alternatives
        .iter()
        .map(|a| a.est_cycles)
        .min_by(f64::total_cmp);
    let Some(best) = best else {
        return (Verdict::Confirmed, 0.0);
    };
    let tol = TIE_RTOL * measured.abs().max(best.abs()).max(1.0);
    if (measured - best).abs() <= tol {
        (Verdict::Tie, 0.0)
    } else if measured > best {
        (Verdict::Misprediction, measured - best)
    } else {
        (Verdict::Confirmed, 0.0)
    }
}

/// Measured cycles attributed to each row of the pass: every per-block
/// event's serial cycles split evenly over the block's rows (the
/// profiler's attribution convention).
fn row_attribution(p: &PassCtx<'_>, trace: &ExecutionTrace) -> BTreeMap<u32, f64> {
    let mut attr = BTreeMap::new();
    for (r, k) in trace.kernels() {
        if r.stage != p.spgemm_stage {
            continue;
        }
        let (Some(bt), Some(anns)) = (&k.blocks, &k.annotations) else {
            continue;
        };
        for e in &bt.events {
            let Some(ann) = anns.get(e.grid_idx as usize) else {
                continue;
            };
            if ann.rows.is_empty() {
                continue;
            }
            let share = e.serial_cycles() / ann.rows.len() as f64;
            for &row in &ann.rows {
                *attr.entry(row).or_insert(0.0) += share;
            }
        }
    }
    attr
}

/// Optimistic work/span schedule bound for one launch over per-block
/// cycle attributions: blocks spread over the SMs, bounded below by the
/// heaviest block, plus the launch overhead.
fn launch_bound(block_cycles: &[f64], trace: &ExecutionTrace) -> f64 {
    let total: f64 = block_cycles.iter().sum();
    let max = block_cycles.iter().copied().fold(0.0, f64::max);
    (total / trace.num_sms.max(1) as f64).max(max) + trace.launch_overhead_cycles
}

/// The pass's global-LB gate decision (Table 2 thresholds). Measured
/// cost is what the pass actually paid (binning + SpGEMM kernels); the
/// alternative re-plans the pass with the gate forced the other way and
/// costs the resulting launch groups by row attribution — an optimistic
/// bound, since re-planned blocks reuse the measured per-row cycles.
#[allow(clippy::too_many_arguments)]
fn gate_record(
    dev: &DeviceConfig,
    model: &CostModel,
    cascade: &KernelCascade,
    cfg: &SpeckConfig,
    info: &AnalysisInfo,
    row_nnz: &[u32],
    b_cols: usize,
    val_bytes: usize,
    p: &PassCtx<'_>,
    trace: &ExecutionTrace,
) -> DecisionRecord {
    let mut measured = 0.0;
    let mut has_load = false;
    for (r, k) in trace.kernels() {
        if r.stage == p.spgemm_stage {
            measured += k.body_cycles + trace.launch_overhead_cycles;
        } else if r.stage == p.load_stage {
            measured += k.body_cycles + trace.launch_overhead_cycles;
            has_load = true;
        }
    }

    // Counterfactual: the same pass planned with the gate forced the
    // other way. Planning is side-effect-free (pure launches, results
    // discarded), so the audit never perturbs metrics or timelines.
    let alt_cfg = SpeckConfig {
        global_lb: if p.gate.used_global_lb {
            GlobalLbMode::AlwaysOff
        } else {
            GlobalLbMode::AlwaysOn
        },
        ..cfg.clone()
    };
    let alt_plan: PassPlan = if p.pass == "symbolic" {
        plan_symbolic(dev, model, cascade, &alt_cfg, info, b_cols)
    } else {
        plan_numeric(
            dev, model, cascade, &alt_cfg, info, row_nnz, b_cols, val_bytes,
        )
    };
    let attr = row_attribution(p, trace);
    let mut alt_est = 0.0;
    if has_load {
        // The alternative's own binning/merge kernels — comparable only
        // on cold runs, where the measured side also paid its load stage.
        for r in &alt_plan.lb_reports {
            alt_est += r.sim_cycles;
        }
    }
    for group in group_blocks(&alt_plan).values() {
        let block_cycles: Vec<f64> = group
            .iter()
            .map(|&bi| {
                alt_plan.blocks[bi]
                    .rows
                    .iter()
                    .map(|row| attr.get(row).copied().unwrap_or(0.0))
                    .sum()
            })
            .collect();
        alt_est += launch_bound(&block_cycles, trace);
    }

    let (chosen, alt_label) = if p.gate.used_global_lb {
        ("lb_on", "lb_off")
    } else {
        ("lb_off", "lb_on")
    };
    let alternatives = vec![Alternative {
        label: alt_label.to_string(),
        est_cycles: alt_est,
    }];
    let (verdict, regret_cycles) = verdict_for(measured, &alternatives);
    DecisionRecord {
        stage: p.pass.to_string(),
        kind: "gate",
        subject: "gate".to_string(),
        bin: None,
        acc: None,
        features: vec![
            ("ratio".to_string(), p.gate.ratio),
            ("rows".to_string(), p.gate.rows as f64),
            ("thr_ratio".to_string(), p.gate.thr_ratio),
            ("thr_rows".to_string(), p.gate.thr_rows as f64),
            (
                "needs_large_kernel".to_string(),
                p.gate.needs_large_kernel as u64 as f64,
            ),
        ],
        chosen: chosen.to_string(),
        chosen_est_cycles: measured,
        measured_cycles: measured,
        alternatives,
        verdict,
        regret_cycles,
    }
}

/// The smallest-bin block-merge decision, audited only when a merge
/// kernel actually launched in the pass. Measured cost is the merge
/// kernel plus the merged launch; the `no_merge` alternative re-spreads
/// the merged rows one block each (dropping the merge kernel) — an
/// optimistic bound, since the per-row shares keep the merged blocks'
/// amortisation of fixed per-block costs.
fn merge_record(
    p: &PassCtx<'_>,
    model: &CostModel,
    trace: &ExecutionTrace,
) -> Option<DecisionRecord> {
    let (_, mk) = trace
        .kernels()
        .find(|(r, k)| r.stage == p.load_stage && k.name == "block_merge")?;
    // The merged launch is the smallest-bin hash launch of the pass.
    let (_, sk) = trace
        .kernels()
        .filter(|(r, k)| {
            r.stage == p.spgemm_stage && k.acc == Some(AccMethod::Hash) && k.bin.is_some()
        })
        .min_by_key(|(_, k)| k.bin)?;
    let measured = mk.body_cycles + sk.body_cycles + 2.0 * trace.launch_overhead_cycles;
    let mut row_cycles = Vec::new();
    if let (Some(bt), Some(anns)) = (&sk.blocks, &sk.annotations) {
        for e in &bt.events {
            let Some(ann) = anns.get(e.grid_idx as usize) else {
                continue;
            };
            if ann.rows.is_empty() {
                continue;
            }
            let share = e.serial_cycles() / ann.rows.len() as f64;
            row_cycles.extend(std::iter::repeat_n(share, ann.rows.len()));
        }
    }
    let _ = model; // chosen estimate is the identity (measured) cost
    let alternatives = vec![Alternative {
        label: "no_merge".to_string(),
        est_cycles: launch_bound(&row_cycles, trace),
    }];
    let (verdict, regret_cycles) = verdict_for(measured, &alternatives);
    Some(DecisionRecord {
        stage: p.pass.to_string(),
        kind: "merge",
        subject: sk.name.clone(),
        bin: sk.bin,
        acc: Some(AccMethod::Hash),
        features: vec![
            ("merged_rows".to_string(), row_cycles.len() as f64),
            ("merged_blocks".to_string(), sk.grid as f64),
            ("merge_kernel_cycles".to_string(), mk.body_cycles),
        ],
        chosen: "merge".to_string(),
        chosen_est_cycles: measured,
        measured_cycles: measured,
        alternatives,
        verdict,
        regret_cycles,
    })
}

/// Per-block decisions of the pass's SpGEMM kernels: accumulator choice
/// for every block, bin assignment and group size for hash blocks. Each
/// decision's measured cost is the identity shadow cost of the block's
/// event (bit-equal to its serial cycles); alternatives perturb the same
/// measured counters.
fn block_records(
    p: &PassCtx<'_>,
    model: &CostModel,
    cascade: &KernelCascade,
    info: &AnalysisInfo,
    trace: &ExecutionTrace,
    out: &mut Vec<DecisionRecord>,
) {
    let units = model.acc_unit_costs();
    for (r, k) in trace.kernels() {
        if r.stage != p.spgemm_stage {
            continue;
        }
        let Some(acc) = k.acc else { continue };
        let (Some(bt), Some(anns)) = (&k.blocks, &k.annotations) else {
            continue;
        };
        for e in &bt.events {
            let Some(ann) = anns.get(e.grid_idx as usize) else {
                continue;
            };
            let measured = model.shadow_cycles(&e.cost);
            let subject = format!("{}#{}", k.name, e.grid_idx);
            let nnz_a: u64 = ann
                .rows
                .iter()
                .map(|&row| info.rows[row as usize].nnz_a as u64)
                .sum();
            let products: u64 = ann
                .rows
                .iter()
                .map(|&row| info.rows[row as usize].products)
                .sum();
            let max_b_row: u64 = ann
                .rows
                .iter()
                .map(|&row| info.rows[row as usize].max_b_row as u64)
                .max()
                .unwrap_or(0);

            // Accumulator decision: scale the measured compute side by
            // the per-entry unit-cost ratio of the alternative method.
            let mut acc_alts: Vec<(&str, f64)> = Vec::new();
            match acc {
                AccMethod::Hash => {
                    // Dense needs exclusive ownership of the scratchpad
                    // columns — only single-row blocks qualify.
                    if ann.rows.len() == 1 {
                        acc_alts.push(("dense", units.dense / units.hash));
                    }
                    // Direct applies only to rows with at most one NZ of A.
                    if !ann.rows.is_empty()
                        && ann
                            .rows
                            .iter()
                            .all(|&row| info.rows[row as usize].nnz_a <= 1)
                    {
                        acc_alts.push(("direct", units.direct / units.hash));
                    }
                }
                AccMethod::Dense => acc_alts.push(("hash", units.hash / units.dense)),
                AccMethod::Direct => acc_alts.push(("hash", units.hash / units.direct)),
            }
            let alternatives: Vec<Alternative> = acc_alts
                .iter()
                .map(|(label, factor)| Alternative {
                    label: label.to_string(),
                    est_cycles: model.shadow_cycles_compute_scaled(&e.cost, *factor),
                })
                .collect();
            let (verdict, regret_cycles) = verdict_for(measured, &alternatives);
            out.push(DecisionRecord {
                stage: p.pass.to_string(),
                kind: "acc",
                subject: subject.clone(),
                bin: k.bin,
                acc: Some(acc),
                features: vec![
                    ("rows".to_string(), ann.rows.len() as f64),
                    ("nnz_a".to_string(), nnz_a as f64),
                    ("products".to_string(), products as f64),
                ],
                chosen: acc_name(acc).to_string(),
                chosen_est_cycles: measured,
                measured_cycles: measured,
                alternatives,
                verdict,
                regret_cycles,
            });

            if acc != AccMethod::Hash {
                continue;
            }

            // Bin decision: the neighbouring cascade configurations,
            // costed by scaling compute with the thread-count ratio. The
            // smaller bin is offered only when the block's demand fits it
            // (rows were binned smallest-fit, so it rarely does — merged
            // blocks are the exception).
            if let Some(bin) = k.bin {
                let demand = ann
                    .rows
                    .iter()
                    .map(|&row| p.entries[row as usize])
                    .max()
                    .unwrap_or(0) as usize;
                let t_chosen = k.threads as f64;
                let mut alternatives = Vec::new();
                if bin > 0 && cascade.hash_capacity(bin - 1, p.entry_bytes) >= demand {
                    let t = cascade.config(bin - 1).threads as f64;
                    alternatives.push(Alternative {
                        label: format!("bin {}", bin - 1),
                        est_cycles: model.shadow_cycles_compute_scaled(&e.cost, t_chosen / t),
                    });
                }
                if bin + 1 < cascade.len() {
                    let t = cascade.config(bin + 1).threads as f64;
                    alternatives.push(Alternative {
                        label: format!("bin {}", bin + 1),
                        est_cycles: model.shadow_cycles_compute_scaled(&e.cost, t_chosen / t),
                    });
                }
                let (verdict, regret_cycles) = verdict_for(measured, &alternatives);
                out.push(DecisionRecord {
                    stage: p.pass.to_string(),
                    kind: "bin",
                    subject: subject.clone(),
                    bin: Some(bin),
                    acc: Some(acc),
                    features: vec![
                        ("demand_entries".to_string(), demand as f64),
                        ("entry_bytes".to_string(), p.entry_bytes as f64),
                        ("threads".to_string(), t_chosen),
                    ],
                    chosen: format!("bin {bin}"),
                    chosen_est_cycles: measured,
                    measured_cycles: measured,
                    alternatives,
                    verdict,
                    regret_cycles,
                });
            }

            // Group-size decision: scale the block's measured issue
            // rounds by the work/span estimate ratio of the rejected
            // neighbouring g (paper §3.2 / Fig. 13).
            if let Some(g) = ann.group_size {
                let est_g = estimated_rounds(g as usize, k.threads, nnz_a, products, max_b_row);
                let alternatives: Vec<Alternative> = alternative_group_sizes(g as usize, k.threads)
                    .into_iter()
                    .map(|alt_g| {
                        let est_alt =
                            estimated_rounds(alt_g, k.threads, nnz_a, products, max_b_row);
                        let rounds = ((e.cost.issue_rounds as u128 * est_alt as u128)
                            / est_g.max(1) as u128)
                            .max(1) as u64;
                        Alternative {
                            label: format!("g={alt_g}"),
                            est_cycles: model.shadow_cycles_with_rounds(&e.cost, rounds),
                        }
                    })
                    .collect();
                let (verdict, regret_cycles) = verdict_for(measured, &alternatives);
                out.push(DecisionRecord {
                    stage: p.pass.to_string(),
                    kind: "group_size",
                    subject,
                    bin: k.bin,
                    acc: Some(acc),
                    features: vec![
                        ("g".to_string(), g as f64),
                        ("nnz_a".to_string(), nnz_a as f64),
                        ("products".to_string(), products as f64),
                        ("max_b_row".to_string(), max_b_row as f64),
                        ("est_rounds".to_string(), est_g as f64),
                    ],
                    chosen: format!("g={g}"),
                    chosen_est_cycles: measured,
                    measured_cycles: measured,
                    alternatives,
                    verdict,
                    regret_cycles,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Serialization helpers (module-local copies, matching trace.rs)
// ---------------------------------------------------------------------------

fn acc_name(a: AccMethod) -> &'static str {
    match a {
        AccMethod::Hash => "hash",
        AccMethod::Dense => "dense",
        AccMethod::Direct => "direct",
    }
}

fn acc_from_name(s: &str) -> Option<AccMethod> {
    match s {
        "hash" => Some(AccMethod::Hash),
        "dense" => Some(AccMethod::Dense),
        "direct" => Some(AccMethod::Direct),
        _ => None,
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an f64 as a JSON number (shortest-roundtrip `Display` —
/// deterministic, and re-parsing recovers the exact value).
fn push_num(out: &mut String, v: f64) {
    if v == v.trunc() && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpeckSpgemm;
    use speck_sparse::gen::{rmat, uniform_random, with_hub_rows};

    fn audited(cache: usize) -> SpeckSpgemm {
        SpeckSpgemm::default()
            .with_plan_cache_capacity(cache)
            .with_auditing(true)
    }

    #[test]
    fn audit_covers_every_decision_kind_on_a_skewed_matrix() {
        let a = with_hub_rows(6_000, 1, 4, 3_000, 5);
        let (_, r) = audited(0).multiply(&a, &a);
        let audit = r.audit.expect("auditing engine attaches a report");
        assert!(r.trace.is_none(), "auditing alone must not attach a trace");
        let kinds: std::collections::BTreeSet<&str> =
            audit.records.iter().map(|d| d.kind).collect();
        for kind in ["gate", "acc", "bin", "group_size"] {
            assert!(kinds.contains(kind), "missing kind {kind}: {kinds:?}");
        }
        // Both passes present on a cold run.
        assert!(audit.records.iter().any(|d| d.stage == "symbolic"));
        assert!(audit.records.iter().any(|d| d.stage == "numeric"));
        // The chosen option's estimate is the identity shadow cost.
        for d in &audit.records {
            assert_eq!(
                d.chosen_est_cycles.to_bits(),
                d.measured_cycles.to_bits(),
                "{}/{} {}",
                d.stage,
                d.kind,
                d.subject
            );
            assert!(d.regret_cycles >= 0.0);
            if d.verdict == Verdict::Misprediction {
                assert!(d.regret_cycles > 0.0);
            }
        }
    }

    #[test]
    fn warm_audit_covers_only_numeric_decisions() {
        let a = uniform_random(500, 500, 2, 6, 52);
        let e = audited(8);
        let (_, cold) = e.multiply(&a, &a);
        let (_, warm) = e.multiply(&a, &a);
        assert!(warm.reused_plan);
        let cold_a = cold.audit.unwrap();
        let warm_a = warm.audit.unwrap();
        assert!(cold_a.records.iter().any(|d| d.stage == "symbolic"));
        for d in &warm_a.records {
            assert_eq!(
                d.stage, "numeric",
                "warm audit leaked {}/{}",
                d.stage, d.kind
            );
        }
        // The cold-vs-warm diff pins exactly the decisions plan reuse
        // skipped: every changed cell is a symbolic one.
        let d = diff_reports(&cold_a, &warm_a);
        assert!(!d.cells.is_empty());
        for (cell, _, _) in d.cells.keys() {
            assert!(cell.starts_with("symbolic/"), "unexpected cell {cell}");
        }
    }

    #[test]
    fn canonical_json_roundtrips_byte_identically() {
        let a = rmat(8, 6, 0.57, 0.19, 0.19, 4);
        let (_, r1) = audited(0).multiply(&a, &a);
        let (_, r2) = audited(0).multiply(&a, &a);
        let a1 = r1.audit.unwrap();
        let a2 = r2.audit.unwrap();
        let j1 = a1.canonical_json();
        // Byte-deterministic across runs and engines.
        assert_eq!(j1, a2.canonical_json());
        // Parse-then-export is the identity on the bytes.
        let back = DecisionReport::from_json(&j1).unwrap();
        assert_eq!(back.canonical_json(), j1);
        assert_eq!(back, *a1);
        // Self-diff is empty with a zero regret delta.
        let d = diff_reports(&a1, &back);
        assert!(d.cells.is_empty());
        assert_eq!(d.regret_delta_cycles, 0.0);
        assert!(d.render_table().starts_with("regret delta: +0.000 cycles"));
    }

    #[test]
    fn summary_counts_match_records_and_rate() {
        let a = with_hub_rows(3_000, 1, 4, 1_500, 9);
        let (_, r) = audited(0).multiply(&a, &a);
        let audit = r.audit.unwrap();
        let t = audit.totals();
        assert_eq!(t.decisions, audit.records.len());
        assert_eq!(t.confirmed + t.mispredictions + t.ties, t.decisions);
        let cells = audit.summary();
        let cell_total: usize = cells.values().map(|s| s.decisions).sum();
        assert_eq!(cell_total, t.decisions);
        let rate = audit.misprediction_rate();
        assert!((0.0..=1.0).contains(&rate));
        let table = audit.render_table();
        assert!(table.starts_with("decision audit:"));
        assert!(table.contains("estimated regret:"));
    }

    #[test]
    fn gate_record_carries_table2_provenance() {
        let a = with_hub_rows(6_000, 1, 4, 3_000, 5);
        let (_, r) = audited(0).multiply(&a, &a);
        let audit = r.audit.unwrap();
        for gate in audit.records.iter().filter(|d| d.kind == "gate") {
            let f: BTreeMap<&str, f64> = gate
                .features
                .iter()
                .map(|(k, v)| (k.as_str(), *v))
                .collect();
            for key in [
                "ratio",
                "rows",
                "thr_ratio",
                "thr_rows",
                "needs_large_kernel",
            ] {
                assert!(f.contains_key(key), "gate missing feature {key}");
            }
            // The recorded choice matches the threshold predicate's
            // outcome as re-derivable from the recorded features.
            assert!(gate.chosen == "lb_on" || gate.chosen == "lb_off");
            assert_eq!(gate.alternatives.len(), 1);
            assert!(gate.alternatives[0].est_cycles.is_finite());
        }
    }

    #[test]
    fn empty_report_renders_and_diffs_cleanly() {
        let empty = DecisionReport {
            device_name: "none".to_string(),
            records: Vec::new(),
        };
        assert_eq!(empty.misprediction_rate(), 0.0);
        assert_eq!(empty.total_regret_cycles(), 0.0);
        let j = empty.canonical_json();
        let back = DecisionReport::from_json(&j).unwrap();
        assert_eq!(back.canonical_json(), j);
        assert!(diff_reports(&empty, &back).cells.is_empty());
        // Malformed inputs fail, not panic.
        assert!(DecisionReport::from_json("{}").is_err());
        assert!(DecisionReport::from_json("not json").is_err());
        assert!(DecisionReport::from_json("{\"format\": \"other\", \"device\": \"d\"}").is_err());
    }
}
