//! Runtime configuration of the spECK pipeline, including the auto-tuned
//! thresholds of paper Table 2 and the ablation toggles that drive the
//! paper's Figs. 12–14.

/// When to run the global load balancer (paper Fig. 14 compares these).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GlobalLbMode {
    /// The paper's contribution: decide per pass from the analysis data
    /// using [`GlobalLbThresholds`].
    Auto,
    /// Always bin (the nsparse-style default).
    AlwaysOn,
    /// Never bin: single kernel size, fixed rows per block.
    AlwaysOff,
}

/// Local load-balancing strategy (paper Fig. 13 compares these).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalLbMode {
    /// The paper's contribution: choose `g` per block from the analysis.
    Dynamic,
    /// A fixed number of threads per row of B (nsparse uses 32).
    Fixed(usize),
}

/// Thresholds gating the global load balancer, tuned by line search in the
/// paper (§5, Table 2). A pass uses the load balancer when
/// `m_max / m_avg >= ratio && rows >= min_rows`, picking the starred set
/// when the longest row demands one of the largest kernel sizes (three of
/// six in symbolic, two of six in numeric — Table 2 caption).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GlobalLbThresholds {
    /// Symbolic ratio threshold (paper: 39.2).
    pub symbolic_ratio: f64,
    /// Symbolic minimum row count (paper: 28 000).
    pub symbolic_min_rows: usize,
    /// Symbolic ratio for the largest kernels (paper: 6.0).
    pub symbolic_ratio_large: f64,
    /// Symbolic minimum rows for the largest kernels (paper: 5 431).
    pub symbolic_min_rows_large: usize,
    /// Numeric ratio threshold (paper: 10.5).
    pub numeric_ratio: f64,
    /// Numeric minimum row count (paper: 23 006).
    pub numeric_min_rows: usize,
    /// Numeric ratio for the largest kernels (paper: 1.3).
    pub numeric_ratio_large: f64,
    /// Numeric minimum rows for the largest kernels (paper: 1 238).
    pub numeric_min_rows_large: usize,
}

impl GlobalLbThresholds {
    /// The values published in paper Table 2 (tuned on the full SuiteSparse
    /// collection on a Titan V).
    pub fn paper() -> Self {
        GlobalLbThresholds {
            symbolic_ratio: 39.2,
            symbolic_min_rows: 28_000,
            symbolic_ratio_large: 6.0,
            symbolic_min_rows_large: 5_431,
            numeric_ratio: 10.5,
            numeric_min_rows: 23_006,
            numeric_ratio_large: 1.3,
            numeric_min_rows_large: 1_238,
        }
    }

    /// Defaults for this reproduction's corpus, from the `exp_table2`
    /// line search on this simulator (paper §5 procedure).
    ///
    /// The base ratio thresholds carry over from the paper (scale-free);
    /// the row-count minima tune ~10x lower because our corpus is ~10–30x
    /// smaller than the SuiteSparse originals; the starred ratios tune
    /// higher (21.7 / 3.8 vs the paper's 6.0 / 1.3) because launch and
    /// binning overheads weigh relatively more at this scale, so binning
    /// must promise more before it pays. Re-run `exp_table2` to re-derive
    /// all eight values from scratch.
    pub fn scaled_default() -> Self {
        GlobalLbThresholds {
            symbolic_ratio: 39.2,
            symbolic_min_rows: 2_800,
            symbolic_ratio_large: 21.7,
            symbolic_min_rows_large: 543,
            numeric_ratio: 10.5,
            numeric_min_rows: 2_300,
            numeric_ratio_large: 3.8,
            numeric_min_rows_large: 124,
        }
    }
}

/// Full spECK configuration.
#[derive(Clone, Debug)]
pub struct SpeckConfig {
    /// Global load-balancer gating.
    pub global_lb: GlobalLbMode,
    /// Auto-tuned thresholds used when `global_lb == Auto`.
    pub thresholds: GlobalLbThresholds,
    /// Local load-balancing strategy.
    pub local_lb: LocalLbMode,
    /// Enable the dense accumulator (ablation: Fig. 12 "Hash only" turns
    /// this off).
    pub enable_dense: bool,
    /// Enable direct referencing for single-entry rows of A (Fig. 12).
    pub enable_direct: bool,
    /// Enable block merging for the smallest bin (extra ablation).
    pub block_merge: bool,
    /// Maximum hash-map fill rate for the numeric pass (paper: 0.66).
    pub numeric_max_fill: f64,
    /// Minimum row density for the numeric dense accumulator (paper: 0.18,
    /// i.e. at most three dense iterations).
    pub dense_min_density: f64,
    /// Symbolic pass switches to dense accumulation when the product count
    /// exceeds this multiple of the largest hash capacity (paper: 2.0).
    pub symbolic_dense_factor: f64,
}

impl Default for SpeckConfig {
    fn default() -> Self {
        SpeckConfig {
            global_lb: GlobalLbMode::Auto,
            thresholds: GlobalLbThresholds::scaled_default(),
            local_lb: LocalLbMode::Dynamic,
            enable_dense: true,
            enable_direct: true,
            block_merge: true,
            numeric_max_fill: 0.66,
            dense_min_density: 0.18,
            symbolic_dense_factor: 2.0,
        }
    }
}

impl SpeckConfig {
    /// Hash-only ablation (first series of paper Fig. 12).
    pub fn hash_only() -> Self {
        SpeckConfig {
            enable_dense: false,
            enable_direct: false,
            ..Self::default()
        }
    }

    /// Hash + dense, no direct referencing (second series of Fig. 12).
    pub fn hash_dense() -> Self {
        SpeckConfig {
            enable_direct: false,
            ..Self::default()
        }
    }

    /// Fixed 32-threads-per-row local balancing (nsparse style, Fig. 13).
    pub fn fixed_local_lb() -> Self {
        SpeckConfig {
            local_lb: LocalLbMode::Fixed(32),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_thresholds_match_table_2() {
        let t = GlobalLbThresholds::paper();
        assert_eq!(t.symbolic_ratio, 39.2);
        assert_eq!(t.symbolic_min_rows, 28_000);
        assert_eq!(t.symbolic_ratio_large, 6.0);
        assert_eq!(t.symbolic_min_rows_large, 5_431);
        assert_eq!(t.numeric_ratio, 10.5);
        assert_eq!(t.numeric_min_rows, 23_006);
        assert_eq!(t.numeric_ratio_large, 1.3);
        assert_eq!(t.numeric_min_rows_large, 1_238);
    }

    #[test]
    fn default_config_matches_paper_constants() {
        let c = SpeckConfig::default();
        assert_eq!(c.numeric_max_fill, 0.66);
        assert_eq!(c.dense_min_density, 0.18);
        assert_eq!(c.symbolic_dense_factor, 2.0);
        assert_eq!(c.global_lb, GlobalLbMode::Auto);
        assert_eq!(c.local_lb, LocalLbMode::Dynamic);
        assert!(c.enable_dense && c.enable_direct && c.block_merge);
    }

    #[test]
    fn ablation_presets() {
        assert!(!SpeckConfig::hash_only().enable_dense);
        assert!(!SpeckConfig::hash_only().enable_direct);
        let hd = SpeckConfig::hash_dense();
        assert!(hd.enable_dense && !hd.enable_direct);
        assert_eq!(
            SpeckConfig::fixed_local_lb().local_lb,
            LocalLbMode::Fixed(32)
        );
    }
}
