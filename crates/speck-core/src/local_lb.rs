//! Local load balancing — dynamic selection of `g`, the number of threads
//! cooperating on one row of B (paper §3.2, §4.3, Fig. 1).
//!
//! The block's `T` threads are divided into `k = T/g` groups that take NZ
//! of A (and hence rows of B) successively. `g` starts at the average
//! referenced row length, is corrected when the longest row would need
//! disproportionately many iterations (`iter_max` vs `n_rows` rule), is
//! clamped so every thread has work, and is rounded to a power of two.

use crate::config::LocalLbMode;

/// Rounds to the nearest power of two (ties go up), result >= 1.
fn round_pow2(x: f64) -> usize {
    if x <= 1.0 {
        return 1;
    }
    let l = x.log2().round().max(0.0) as u32;
    1usize << l.min(20)
}

/// Selects the group size for one block.
///
/// * `threads` — block size `T`.
/// * `nnz_a` — number of NZ of A processed by the block (= rows of B).
/// * `products` — total products of the block (sum of B row lengths).
/// * `max_b_row` — longest referenced row of B.
pub fn select_group_size(
    mode: LocalLbMode,
    threads: usize,
    nnz_a: u64,
    products: u64,
    max_b_row: u64,
) -> usize {
    match mode {
        LocalLbMode::Fixed(g) => g.min(threads).max(1),
        LocalLbMode::Dynamic => {
            if nnz_a == 0 || products == 0 {
                return 1;
            }
            // Start from the average referenced row length.
            let avg = products as f64 / nnz_a as f64;
            let mut g = avg.max(1.0);

            // Straggler correction: compare the iterations of the longest
            // row against the number of rows each group processes.
            let iter_max = (max_b_row as f64 / g).ceil().max(1.0);
            let k = (threads as f64 / g).max(1.0);
            let n_rows = (nnz_a as f64 / k).max(1.0);
            if iter_max > 2.0 * n_rows {
                g *= iter_max / (2.0 * n_rows);
            } else if n_rows > 2.0 * iter_max {
                g *= iter_max / n_rows;
            }

            let mut g = round_pow2(g).clamp(1, threads);
            // Never leave threads without any NZ of A: k <= nnz_a (the
            // paper reduces k when there are more groups than work items).
            while ((threads / g).max(1) as u64) > nnz_a && g < threads {
                g *= 2;
            }
            g
        }
    }
}

/// Iterations the block needs at group size `g` for the given per-task
/// B row lengths — used by tests and the Fig. 13 bench to count how close
/// dynamic `g` comes to optimal (paper: within 1.02x on average).
pub fn rounds_for_g(g: usize, threads: usize, b_row_lens: &[u64]) -> u64 {
    let k = (threads / g.max(1)).max(1);
    speck_simt::simulate_group_rounds(k, b_row_lens.iter().map(|&l| l.div_ceil(g as u64)))
}

/// Work/span lower bound on the issue rounds a block needs at group size
/// `g`, from the same summary features [`select_group_size`] consulted
/// (`nnz_a` tasks totalling `products` B entries, longest row
/// `max_b_row`). Total group iterations are `sum(ceil(l_r / g)) >=
/// max(ceil(products / g), nnz_a)` — the `nnz_a` floor is what makes
/// oversized groups expensive (idle lanes still cost a round per task,
/// paper Fig. 1/13). The work bound spreads those iterations over the
/// `k = T/g` groups; the span bound is the longest row alone. The
/// decision-audit layer scales a block's *measured* rounds by the ratio
/// of these estimates to shadow-cost a rejected group size.
pub fn estimated_rounds(
    g: usize,
    threads: usize,
    nnz_a: u64,
    products: u64,
    max_b_row: u64,
) -> u64 {
    if nnz_a == 0 || products == 0 {
        return 1;
    }
    let g = g.max(1) as u64;
    let k = ((threads as u64) / g).max(1);
    let iters = products.div_ceil(g).max(nnz_a);
    let work = iters.div_ceil(k);
    let span = max_b_row.div_ceil(g);
    work.max(span).max(1)
}

/// The group sizes the dynamic selector rejected in favour of `g`: the
/// neighbouring powers of two (half and double), clamped to
/// `[1, threads]` — the counterfactual candidates a decision audit
/// shadow-costs against the chosen `g`.
pub fn alternative_group_sizes(g: usize, threads: usize) -> Vec<usize> {
    let g = g.clamp(1, threads.max(1));
    let mut alts = Vec::new();
    if g > 1 {
        alts.push(g / 2);
    }
    if g.saturating_mul(2) <= threads {
        alts.push(g * 2);
    }
    alts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_mode_clamps_to_block() {
        assert_eq!(
            select_group_size(LocalLbMode::Fixed(32), 1024, 10, 100, 10),
            32
        );
        assert_eq!(
            select_group_size(LocalLbMode::Fixed(64), 32, 10, 100, 10),
            32
        );
        assert_eq!(select_group_size(LocalLbMode::Fixed(0), 32, 10, 100, 10), 1);
    }

    #[test]
    fn dynamic_tracks_average_row_length() {
        // Uniform rows: g starts at the average length and may shrink when
        // there are many rows per group (the paper prioritises low n_rows).
        let g8 = select_group_size(LocalLbMode::Dynamic, 256, 100, 800, 8);
        assert!((2..=8).contains(&g8), "g8={g8}");
        let g2 = select_group_size(LocalLbMode::Dynamic, 256, 400, 800, 2);
        assert!(g2 <= 2, "g2={g2}");
        // Longer average rows must not get a smaller g than shorter ones.
        let g32 = select_group_size(LocalLbMode::Dynamic, 256, 100, 3200, 32);
        assert!(g32 >= g8, "g32={g32} g8={g8}");
    }

    #[test]
    fn straggler_increases_g() {
        // avg 4, but one row of 4096: iter_max=1024 dwarfs n_rows -> grow g.
        let g_skew = select_group_size(LocalLbMode::Dynamic, 256, 100, 400 + 4096, 4096);
        let g_flat = select_group_size(LocalLbMode::Dynamic, 256, 100, 400, 4);
        assert!(g_skew > g_flat, "g_skew={g_skew} g_flat={g_flat}");
    }

    #[test]
    fn many_short_rows_shrink_g_for_more_groups() {
        // avg 32 with tons of rows: n_rows per group large, iter_max 1 ->
        // n_rows > 2*iter_max reduces g.
        let g = select_group_size(LocalLbMode::Dynamic, 64, 10_000, 320_000, 32);
        assert!(g <= 32);
    }

    #[test]
    fn never_more_groups_than_work() {
        // 4 NZ of A on a 256-thread block: k must be <= 4 -> g >= 64.
        let g = select_group_size(LocalLbMode::Dynamic, 256, 4, 16, 4);
        assert!(g >= 64, "g={g}");
    }

    #[test]
    fn result_is_power_of_two_within_block() {
        for &(nnz, prod, mx) in &[(7u64, 93u64, 40u64), (1000, 3000, 3), (5, 5000, 4000)] {
            let g = select_group_size(LocalLbMode::Dynamic, 512, nnz, prod, mx);
            assert!(g.is_power_of_two());
            assert!(g <= 512);
        }
    }

    #[test]
    fn empty_block_yields_one() {
        assert_eq!(select_group_size(LocalLbMode::Dynamic, 128, 0, 0, 0), 1);
    }

    #[test]
    fn dynamic_beats_fixed_32_on_short_rows() {
        // The Fig. 13 effect: rows of length 2 with g=32 waste 16x the
        // iterations' parallel width.
        let lens: Vec<u64> = vec![2; 512];
        let g_dyn = select_group_size(LocalLbMode::Dynamic, 256, 512, 1024, 2);
        let r_dyn = rounds_for_g(g_dyn, 256, &lens);
        let r_fix = rounds_for_g(32, 256, &lens);
        assert!(
            r_dyn * 4 <= r_fix,
            "dynamic rounds {r_dyn} vs fixed-32 rounds {r_fix}"
        );
    }

    #[test]
    fn group_size_boundaries_one_and_thread_cap() {
        // g pinned at the low boundary.
        assert_eq!(
            select_group_size(LocalLbMode::Fixed(1), 1024, 10, 100, 10),
            1
        );
        // Fixed g above the block size clamps to the thread-count cap.
        assert_eq!(
            select_group_size(LocalLbMode::Fixed(usize::MAX), 128, 10, 100, 10),
            128
        );
        // Dynamic with one giant row saturates at g == threads.
        assert_eq!(
            select_group_size(LocalLbMode::Dynamic, 64, 1, 1 << 20, 1 << 20),
            64
        );
        // Dynamic with uniform length-1 rows and ample work stays at g == 1.
        assert_eq!(
            select_group_size(LocalLbMode::Dynamic, 64, 4096, 4096, 1),
            1
        );
    }

    #[test]
    fn estimated_rounds_work_and_span_bounds() {
        // Empty block: one round by convention, like the selector's g=1.
        assert_eq!(estimated_rounds(32, 256, 0, 0, 0), 1);
        // Span-bound: one row of 4096 at g=32 needs 128 iterations.
        assert_eq!(estimated_rounds(32, 256, 1, 4096, 4096), 128);
        // Work-bound: 8 groups of g=32 over 2048 products -> 8 rounds.
        assert_eq!(estimated_rounds(32, 256, 64, 2048, 32), 8);
        // Oversized groups idle lanes: every task still needs at least
        // one round, and fewer groups serialise the tasks (the Fig. 1/13
        // waste the dynamic selector avoids).
        assert_eq!(estimated_rounds(256, 256, 64, 2048, 32), 64);
        // Undersized groups stretch the longest row (straggler span).
        assert_eq!(estimated_rounds(1, 256, 1, 4096, 4096), 4096);
    }

    #[test]
    fn alternative_group_sizes_are_neighbours_within_block() {
        assert_eq!(alternative_group_sizes(32, 256), vec![16, 64]);
        // At the boundaries only the inward neighbour survives.
        assert_eq!(alternative_group_sizes(1, 256), vec![2]);
        assert_eq!(alternative_group_sizes(256, 256), vec![128]);
        // Degenerate one-thread block has no alternatives at all.
        assert_eq!(alternative_group_sizes(1, 1), Vec::<usize>::new());
        for &(g, t) in &[(8usize, 64usize), (1, 32), (64, 64)] {
            for alt in alternative_group_sizes(g, t) {
                assert!(alt >= 1 && alt <= t && alt != g);
                assert!(alt.is_power_of_two());
            }
        }
    }

    #[test]
    fn dynamic_close_to_best_g() {
        // Sweep candidate g over mixed row lengths; dynamic should land
        // within 2x of the best (paper reports 1.02x on average).
        let lens: Vec<u64> = (0..200).map(|i| 1 + (i % 17) as u64).collect();
        let total: u64 = lens.iter().sum();
        let max = *lens.iter().max().unwrap();
        let g_dyn = select_group_size(LocalLbMode::Dynamic, 256, lens.len() as u64, total, max);
        let r_dyn = rounds_for_g(g_dyn, 256, &lens);
        let best = (0..=8)
            .map(|l| rounds_for_g(1 << l, 256, &lens))
            .min()
            .unwrap();
        assert!(r_dyn <= 2 * best, "dyn {r_dyn} vs best {best}");
    }
}
