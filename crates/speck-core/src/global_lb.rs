//! Global load balancing (paper §4.2): deciding *whether* to bin, binning
//! rows into the six kernel configurations by scratchpad demand, merging
//! the smallest bin, and producing the block plan each SpGEMM pass
//! executes.

use crate::analysis::AnalysisInfo;
use crate::block_merge::block_merge;
use crate::cascade::{numeric_entry_bytes, symbolic_entry_bytes, KernelCascade};
use crate::config::{GlobalLbMode, SpeckConfig};
use crate::denseacc::dense_iterations;
use crate::metrics::{LocalHistogram, MetricsSink};
use speck_simt::{launch, CostModel, DeviceConfig, KernelConfig, KernelReport};

/// Accumulation method chosen for a block (paper Fig. 2: Hash / Dense /
/// Direct in both passes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccMethod {
    /// Scratchpad hash map with linear probing.
    Hash,
    /// Chunked dense accumulation.
    Dense,
    /// Direct referencing for rows of A with at most one NZ.
    Direct,
}

/// One thread block of a SpGEMM pass.
#[derive(Clone, Debug)]
pub struct BlockPlan {
    /// Rows of A this block computes (1–32 for hash, 1 for dense, many for
    /// direct).
    pub rows: Vec<u32>,
    /// Kernel-cascade index the block runs at.
    pub cfg_idx: usize,
    /// Accumulator.
    pub method: AccMethod,
}

/// Which threshold set gated the decision (for reporting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThresholdSet {
    /// The base set (small kernels suffice).
    Base,
    /// The starred set for the largest kernels (Table 2 columns `*`).
    Large,
}

/// Everything the global-LB gate of one pass consulted, captured at
/// decision time (paper §5 / Table 2): the measured features that drove
/// the decision, the threshold values that fired, and the outcome. This
/// is the provenance record the decision-audit layer
/// ([`crate::audit`]) reconciles against measured execution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GateProvenance {
    /// Configured mode the decision ran under.
    pub mode: GlobalLbMode,
    /// Measured demand-variance ratio `m_max / m_avg` over the hash rows.
    pub ratio: f64,
    /// Row count the decision consulted.
    pub rows: usize,
    /// Whether the longest row already demanded one of the large kernels
    /// (selects the starred Table 2 column).
    pub needs_large_kernel: bool,
    /// Which threshold set gated the decision.
    pub threshold_set: ThresholdSet,
    /// Ratio threshold of the fired set.
    pub thr_ratio: f64,
    /// Min-rows threshold of the fired set.
    pub thr_rows: usize,
    /// The outcome: whether binning ran.
    pub used_global_lb: bool,
}

/// Plan for one SpGEMM pass.
#[derive(Clone, Debug)]
pub struct PassPlan {
    /// All blocks, grouped by (method, cfg) for launching.
    pub blocks: Vec<BlockPlan>,
    /// Whether the global load balancer (binning) ran.
    pub used_global_lb: bool,
    /// Which threshold set the Auto decision consulted.
    pub threshold_set: ThresholdSet,
    /// Simulated cost of binning / merging kernels (empty when skipped).
    pub lb_reports: Vec<KernelReport>,
    /// Device bytes allocated for load-balancing bookkeeping.
    pub lb_alloc_bytes: usize,
    /// The `m_max / m_avg` demand-variance ratio the decision consulted.
    pub decision_ratio: f64,
    /// The row count the decision consulted.
    pub decision_rows: usize,
    /// Full decision-time provenance of the gate (features + fired
    /// thresholds), for the audit layer.
    pub gate: GateProvenance,
}

/// Copyable decision summary of one pass plan — everything a
/// [`crate::MultiplyReport`] needs about the pass, without keeping the
/// full block list alive. Reusable multiplication plans
/// ([`crate::SpgemmPlan`]) retain one per pass.
#[derive(Clone, Copy, Debug)]
pub struct PassSummary {
    /// Whether the global load balancer (binning) ran.
    pub used_global_lb: bool,
    /// Which threshold set the Auto decision consulted.
    pub threshold_set: ThresholdSet,
    /// The `m_max / m_avg` demand-variance ratio the decision consulted.
    pub decision_ratio: f64,
    /// Blocks per method: (hash, dense, direct).
    pub method_counts: (usize, usize, usize),
}

impl PassPlan {
    /// The pass's copyable decision summary (for reports).
    pub fn summary(&self) -> PassSummary {
        PassSummary {
            used_global_lb: self.used_global_lb,
            threshold_set: self.threshold_set,
            decision_ratio: self.decision_ratio,
            method_counts: self.method_counts(),
        }
    }

    /// Number of blocks per method, for reports and tests.
    pub fn method_counts(&self) -> (usize, usize, usize) {
        let mut h = 0;
        let mut d = 0;
        let mut r = 0;
        for b in &self.blocks {
            match b.method {
                AccMethod::Hash => h += 1,
                AccMethod::Dense => d += 1,
                AccMethod::Direct => r += 1,
            }
        }
        (h, d, r)
    }

    /// Records the pass's load-balancing outcome under `sim/lb/<pass>/`:
    /// whether binning engaged, blocks per accumulation method, the rows
    /// the decision consulted, and a rows-per-block histogram. All values
    /// derive from the deterministic plan, so they belong to the canonical
    /// snapshot section.
    pub(crate) fn record_metrics(&self, m: &MetricsSink<'_>, pass: &str) {
        if m.registry().is_none() {
            return;
        }
        m.add(&format!("sim/lb/{pass}/decisions"), 1);
        if self.used_global_lb {
            m.add(&format!("sim/lb/{pass}/global_lb_used"), 1);
        }
        m.add(
            &format!("sim/lb/{pass}/decision_rows"),
            self.decision_rows as u64,
        );
        let (h, d, r) = self.method_counts();
        m.add(&format!("sim/lb/{pass}/blocks_hash"), h as u64);
        m.add(&format!("sim/lb/{pass}/blocks_dense"), d as u64);
        m.add(&format!("sim/lb/{pass}/blocks_direct"), r as u64);
        let mut rows = LocalHistogram::new();
        for b in &self.blocks {
            rows.record(b.rows.len() as u64);
        }
        m.record_local(&format!("sim/lb/{pass}/rows_per_block"), &rows);
    }
}

/// Rows per block of the bulk direct-referencing kernel — small enough
/// that a handful of direct blocks still spreads over the whole device
/// (hub rows can carry most of the matrix's data through this path).
pub const DIRECT_ROWS_PER_BLOCK: usize = 128;

/// The Table 2 threshold rule for one pass: global load balancing fires
/// when the demand-variance ratio `m_max / m_avg` reaches `thr_ratio`
/// *and* the matrix has at least `thr_rows` rows to amortise the binning
/// kernels. Shared by the pipeline's gate ([`plan_symbolic`] /
/// [`plan_numeric`]) and the auto-tuner's predictor
/// ([`crate::tuning::predict`]), so audits of the one are claims about
/// the other.
pub fn lb_threshold_fires(ratio: f64, rows: usize, thr_ratio: f64, thr_rows: usize) -> bool {
    ratio >= thr_ratio && rows >= thr_rows
}

/// Decides whether a pass should run the global load balancer.
///
/// The paper's rule (§5): run it when the demand variance `m_max / m_avg`
/// exceeds a threshold *and* the matrix has enough rows to amortise the
/// binning kernels, with a separate (starred) threshold set when the
/// longest row already demands one of the largest kernel sizes.
#[allow(clippy::too_many_arguments)]
fn decide_lb(
    mode: GlobalLbMode,
    ratio: f64,
    rows: usize,
    needs_large_kernel: bool,
    thr_ratio: f64,
    thr_rows: usize,
    thr_ratio_large: f64,
    thr_rows_large: usize,
) -> GateProvenance {
    let set = if needs_large_kernel {
        ThresholdSet::Large
    } else {
        ThresholdSet::Base
    };
    let (fired_ratio, fired_rows) = match set {
        ThresholdSet::Base => (thr_ratio, thr_rows),
        ThresholdSet::Large => (thr_ratio_large, thr_rows_large),
    };
    let on = match mode {
        GlobalLbMode::AlwaysOn => true,
        GlobalLbMode::AlwaysOff => false,
        GlobalLbMode::Auto => lb_threshold_fires(ratio, rows, fired_ratio, fired_rows),
    };
    GateProvenance {
        mode,
        ratio,
        rows,
        needs_large_kernel,
        threshold_set: set,
        thr_ratio: fired_ratio,
        thr_rows: fired_rows,
        used_global_lb: on,
    }
}

/// Charges the simulated cost of the order-preserving binning kernel
/// (local prefix sums per 1024-row block, one global append per bin).
fn charge_binning(
    dev: &DeviceConfig,
    cost: &CostModel,
    name: &'static str,
    rows: usize,
    bins: usize,
) -> KernelReport {
    let threads = dev.max_threads_per_block;
    let grid = rows.div_ceil(threads).max(1);
    launch(
        dev,
        cost,
        name,
        grid,
        KernelConfig::new(threads, 4096),
        |ctx| {
            let start = ctx.block_id() * threads;
            let n = threads.min(rows.saturating_sub(start));
            // Read demands, compute bin, prefix-scan per potentially non-empty
            // bin, append globally in one transaction per bin (paper §4.2).
            ctx.charge_gmem_stream(threads, n, 4);
            ctx.charge_smem((n * 2) as u64);
            // One Hillis-Steele scan per potentially non-empty bin; each scan
            // is ~log2(1024) warp-parallel steps over the block's warps, which
            // amortises to about one block round per bin.
            ctx.charge_rounds(bins as u64);
            ctx.charge_gmem_atomic(bins as u64);
            ctx.charge_gmem_stream(threads, n, 4); // write row ids to bins
            ctx.charge_sync();
        },
    )
}

/// Builds the per-row demand (in hash entries) of the symbolic pass: the
/// conservative no-compaction product count (paper §4.2).
pub fn symbolic_entries(info: &AnalysisInfo) -> Vec<u64> {
    info.rows.iter().map(|r| r.products).collect()
}

/// Builds the per-row demand (in hash entries) of the numeric pass from the
/// exact row sizes, inflated so the final fill rate stays below
/// `max_fill` (paper: 66 %).
pub fn numeric_entries(row_nnz: &[u32], max_fill: f64) -> Vec<u64> {
    row_nnz
        .iter()
        .map(|&n| ((n as f64 / max_fill).ceil()) as u64)
        .collect()
}

/// Common planner for both passes.
///
/// * `entries[r]` — hash entries row `r` needs.
/// * `entry_bytes` — bytes per hash entry in this pass.
/// * `dense_rows[r]` — `Some(cfg)` routes row `r` to the dense accumulator
///   at cascade index `cfg`.
/// * `direct_rows[r]` — rows taking the direct path.
#[allow(clippy::too_many_arguments)]
fn plan_pass(
    dev: &DeviceConfig,
    cost: &CostModel,
    cascade: &KernelCascade,
    mode: GlobalLbMode,
    entries: &[u64],
    entry_bytes: usize,
    dense_rows: &[Option<usize>],
    direct_rows: &[bool],
    pass_name: &'static str,
    thr: (f64, usize, f64, usize),
    large_kernel_cut: usize,
    block_merge_enabled: bool,
) -> PassPlan {
    let n = entries.len();
    let largest = cascade.largest();

    // Rows going through the hash path and their demand statistics.
    let mut hash_rows: Vec<u32> = Vec::new();
    let mut max_entries = 0u64;
    let mut sum_entries = 0u64;
    for r in 0..n {
        if direct_rows[r] || dense_rows[r].is_some() {
            continue;
        }
        hash_rows.push(r as u32);
        max_entries = max_entries.max(entries[r]);
        sum_entries += entries[r];
    }
    let avg = if hash_rows.is_empty() {
        0.0
    } else {
        sum_entries as f64 / hash_rows.len() as f64
    };
    let ratio = if avg <= 0.0 {
        1.0
    } else {
        max_entries as f64 / avg
    };
    let max_cfg = cascade
        .fit_hash(max_entries as usize, entry_bytes)
        .unwrap_or(largest);
    let needs_large = max_cfg >= large_kernel_cut;
    let gate = decide_lb(mode, ratio, n, needs_large, thr.0, thr.1, thr.2, thr.3);
    let (use_lb, set) = (gate.used_global_lb, gate.threshold_set);

    let mut blocks: Vec<BlockPlan> = Vec::new();
    let mut lb_reports = Vec::new();
    let mut lb_alloc_bytes = 0usize;

    // Direct blocks: many rows per block, no scratchpad.
    let directs: Vec<u32> = (0..n as u32).filter(|&r| direct_rows[r as usize]).collect();
    for chunk in directs.chunks(DIRECT_ROWS_PER_BLOCK) {
        blocks.push(BlockPlan {
            rows: chunk.to_vec(),
            cfg_idx: 0,
            method: AccMethod::Direct,
        });
    }

    // Dense blocks: one row each at the configuration sized for the row.
    for r in 0..n as u32 {
        if let Some(cfg_idx) = dense_rows[r as usize] {
            blocks.push(BlockPlan {
                rows: vec![r],
                cfg_idx,
                method: AccMethod::Dense,
            });
        }
    }

    if use_lb && !hash_rows.is_empty() {
        // Bin rows by the smallest configuration that fits them.
        let n_bins = cascade.len();
        let mut bins: Vec<Vec<u32>> = vec![Vec::new(); n_bins];
        for &r in &hash_rows {
            let need = entries[r as usize] as usize;
            let idx = cascade.fit_hash(need, entry_bytes).unwrap_or(largest);
            bins[idx].push(r);
        }
        lb_reports.push(charge_binning(dev, cost, pass_name, n, n_bins));
        lb_alloc_bytes += n * 4 + n_bins * 8;

        // Smallest non-empty bin: merge neighbouring rows into blocks.
        // Larger bins: one row per block.
        let mut merged_smallest = false;
        for (idx, bin) in bins.iter().enumerate() {
            if bin.is_empty() {
                continue;
            }
            if !merged_smallest {
                merged_smallest = true;
                let cap = (cascade.hash_capacity(idx, entry_bytes) as u64) * entry_bytes as u64;
                let demands: Vec<u64> = bin
                    .iter()
                    .map(|&r| entries[r as usize] * entry_bytes as u64)
                    .collect();
                let (segs, work) = block_merge(&demands, cap.max(1), block_merge_enabled);
                if work > 0 {
                    lb_reports.push(launch(
                        dev,
                        cost,
                        "block_merge",
                        (bin.len().div_ceil(dev.max_threads_per_block)).max(1),
                        KernelConfig::new(dev.max_threads_per_block, 0),
                        |ctx| {
                            ctx.charge_rounds(work / dev.max_threads_per_block.max(1) as u64 + 5);
                            ctx.charge_smem(work);
                        },
                    ));
                }
                for seg in segs {
                    blocks.push(BlockPlan {
                        rows: bin[seg.start..seg.start + seg.len].to_vec(),
                        cfg_idx: idx,
                        method: AccMethod::Hash,
                    });
                }
            } else {
                for &r in bin {
                    blocks.push(BlockPlan {
                        rows: vec![r],
                        cfg_idx: idx,
                        method: AccMethod::Hash,
                    });
                }
            }
        }
    } else if !hash_rows.is_empty() {
        // No load balancing: one kernel size that can hold the longest row
        // (paper §4.2 "No load balancing"), a fixed number of rows per
        // block, processing rows in CSR order.
        let cfg_idx = max_cfg;
        let cap = cascade.hash_capacity(cfg_idx, entry_bytes) as u64;
        let per_row = max_entries.max(1);
        let rows_per_block = ((cap / per_row).max(1) as usize).min(32);
        for chunk in hash_rows.chunks(rows_per_block) {
            blocks.push(BlockPlan {
                rows: chunk.to_vec(),
                cfg_idx,
                method: AccMethod::Hash,
            });
        }
    }

    PassPlan {
        blocks,
        used_global_lb: use_lb,
        threshold_set: set,
        lb_reports,
        lb_alloc_bytes,
        decision_ratio: ratio,
        decision_rows: n,
        gate,
    }
}

/// Plans the symbolic pass from the row analysis.
pub fn plan_symbolic(
    dev: &DeviceConfig,
    cost: &CostModel,
    cascade: &KernelCascade,
    cfg: &SpeckConfig,
    info: &AnalysisInfo,
    cols_b: usize,
) -> PassPlan {
    let n = info.rows.len();
    let entry_bytes = symbolic_entry_bytes(cols_b);
    let entries = symbolic_entries(info);
    let largest_cap = cascade.hash_capacity(cascade.largest(), entry_bytes) as f64;

    let direct: Vec<bool> = info
        .rows
        .iter()
        .map(|r| cfg.enable_direct && r.nnz_a <= 1)
        .collect();
    // Symbolic dense: only rows more than `symbolic_dense_factor` times the
    // largest hash capacity (paper §4.3 "Symbolic SpGEMM"); such rows run
    // at the largest configuration.
    let dense: Vec<Option<usize>> = (0..n)
        .map(|r| {
            (!direct[r]
                && cfg.enable_dense
                && entries[r] as f64 > cfg.symbolic_dense_factor * largest_cap)
                .then_some(cascade.largest())
        })
        .collect();

    let t = &cfg.thresholds;
    plan_pass(
        dev,
        cost,
        cascade,
        cfg.global_lb,
        &entries,
        entry_bytes,
        &dense,
        &direct,
        "symbolic_binning",
        (
            t.symbolic_ratio,
            t.symbolic_min_rows,
            t.symbolic_ratio_large,
            t.symbolic_min_rows_large,
        ),
        cascade.len() - 3, // starred set: three largest of six (Table 2)
        cfg.block_merge,
    )
}

/// Plans the numeric pass from the exact row sizes the symbolic pass
/// produced.
#[allow(clippy::too_many_arguments)]
pub fn plan_numeric(
    dev: &DeviceConfig,
    cost: &CostModel,
    cascade: &KernelCascade,
    cfg: &SpeckConfig,
    info: &AnalysisInfo,
    row_nnz: &[u32],
    cols_b: usize,
    val_bytes: usize,
) -> PassPlan {
    let n = row_nnz.len();
    let entry_bytes = numeric_entry_bytes(cols_b, val_bytes);
    let entries = numeric_entries(row_nnz, cfg.numeric_max_fill);
    let largest = cascade.largest();

    let direct: Vec<bool> = info
        .rows
        .iter()
        .map(|r| cfg.enable_direct && r.nnz_a <= 1)
        .collect();

    let mut dense: Vec<Option<usize>> = vec![None; n];
    if cfg.enable_dense {
        for r in 0..n {
            if direct[r] || row_nnz[r] == 0 {
                continue;
            }
            let need = entries[r] as usize;
            match cascade.fit_hash(need, entry_bytes) {
                None => {
                    // Doesn't fit even the largest hash map: always dense
                    // at the largest configuration (paper §4.3 "Numeric
                    // SpGEMM", last paragraph).
                    dense[r] = Some(largest);
                }
                Some(idx) => {
                    if idx == largest {
                        // Requires the largest kernel: always dense.
                        dense[r] = Some(largest);
                    } else {
                        // Medium rows: dense if the row is locally dense
                        // enough that at most three chunk iterations cover
                        // its column range (paper's 18 % rule), at the
                        // kernel size the row was binned for.
                        let range = info.rows[r].col_range();
                        let density = if range == 0 {
                            0.0
                        } else {
                            row_nnz[r] as f64 / range as f64
                        };
                        let slots = cascade.dense_numeric_slots(idx, val_bytes);
                        if density >= cfg.dense_min_density && dense_iterations(range, slots) <= 3 {
                            dense[r] = Some(idx);
                        }
                    }
                }
            }
        }
    }

    let t = &cfg.thresholds;
    plan_pass(
        dev,
        cost,
        cascade,
        cfg.global_lb,
        &entries,
        entry_bytes,
        &dense,
        &direct,
        "numeric_binning",
        (
            t.numeric_ratio,
            t.numeric_min_rows,
            t.numeric_ratio_large,
            t.numeric_min_rows_large,
        ),
        cascade.len() - 2, // starred set: two largest of six (Table 2)
        cfg.block_merge,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use speck_sparse::gen::{block_diagonal, rmat, uniform_random};
    use speck_sparse::Csr;

    fn setup(a: &Csr<f64>) -> (DeviceConfig, CostModel, KernelCascade, AnalysisInfo) {
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let cascade = KernelCascade::for_device(&dev);
        let info = analyze(&dev, &cost, a, a).0;
        (dev, cost, cascade, info)
    }

    fn rows_covered(plan: &PassPlan) -> Vec<u32> {
        let mut all: Vec<u32> = plan.blocks.iter().flat_map(|b| b.rows.clone()).collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn every_row_assigned_exactly_once() {
        let a = rmat(10, 8, 0.57, 0.19, 0.19, 3);
        let (dev, cost, cascade, info) = setup(&a);
        let cfg = SpeckConfig::default();
        let plan = plan_symbolic(&dev, &cost, &cascade, &cfg, &info, a.cols());
        assert_eq!(
            rows_covered(&plan),
            (0..a.rows() as u32).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniform_matrix_skips_lb_in_auto_mode() {
        let a = uniform_random(1000, 1000, 4, 4, 1);
        let (dev, cost, cascade, info) = setup(&a);
        let cfg = SpeckConfig::default();
        let plan = plan_symbolic(&dev, &cost, &cascade, &cfg, &info, a.cols());
        assert!(!plan.used_global_lb, "uniform rows must not be binned");
        assert!(plan.lb_reports.is_empty());
    }

    #[test]
    fn skewed_matrix_uses_lb_in_auto_mode() {
        // A few huge hub rows drive m_max/m_avg far beyond any threshold.
        let a = speck_sparse::gen::with_hub_rows(6_000, 1, 4, 3_000, 3);
        let (dev, cost, cascade, info) = setup(&a);
        let cfg = SpeckConfig::default();
        let plan = plan_symbolic(&dev, &cost, &cascade, &cfg, &info, a.cols());
        assert!(plan.used_global_lb, "skewed demands should trigger binning");
        assert!(!plan.lb_reports.is_empty());
        // Binned blocks use more than one configuration.
        let cfgs: std::collections::BTreeSet<usize> = plan
            .blocks
            .iter()
            .filter(|b| b.method == AccMethod::Hash)
            .map(|b| b.cfg_idx)
            .collect();
        assert!(cfgs.len() > 1, "expected multiple bins, got {cfgs:?}");
    }

    #[test]
    fn always_modes_override_auto() {
        let a = uniform_random(500, 500, 4, 4, 1);
        let (dev, cost, cascade, info) = setup(&a);
        let mut cfg = SpeckConfig {
            global_lb: GlobalLbMode::AlwaysOn,
            ..SpeckConfig::default()
        };
        assert!(plan_symbolic(&dev, &cost, &cascade, &cfg, &info, 500).used_global_lb);
        cfg.global_lb = GlobalLbMode::AlwaysOff;
        assert!(!plan_symbolic(&dev, &cost, &cascade, &cfg, &info, 500).used_global_lb);
    }

    #[test]
    fn single_nz_rows_take_direct_path() {
        let a: Csr<f64> = Csr::identity(5000);
        let (dev, cost, cascade, info) = setup(&a);
        let cfg = SpeckConfig::default();
        let plan = plan_symbolic(&dev, &cost, &cascade, &cfg, &info, a.cols());
        let (h, d, r) = plan.method_counts();
        assert_eq!(h, 0);
        assert_eq!(d, 0);
        assert_eq!(r, 5000usize.div_ceil(DIRECT_ROWS_PER_BLOCK));
        // Direct disabled: all rows through hash.
        let plan2 = plan_symbolic(
            &dev,
            &cost,
            &cascade,
            &SpeckConfig::hash_only(),
            &info,
            a.cols(),
        );
        let (h2, d2, r2) = plan2.method_counts();
        assert!(h2 > 0);
        assert_eq!((d2, r2), (0, 0));
    }

    #[test]
    fn huge_rows_go_dense_in_symbolic() {
        // One block of 200x200 dense: squaring gives rows with 40k products
        // > 2 * largest hash capacity (24576)? 200*200=40000 products.
        let a = block_diagonal(1, 200, 1.0, 5);
        let (dev, cost, cascade, info) = setup(&a);
        let cfg = SpeckConfig::default();
        let plan = plan_symbolic(&dev, &cost, &cascade, &cfg, &info, a.cols());
        // products per row = 200 * 200 = 40000 < 2*24576 = 49152 -> hash!
        let (_, d, _) = plan.method_counts();
        assert_eq!(d, 0, "40k products still fit twice the largest hash");

        let b = block_diagonal(1, 300, 1.0, 5); // 90k products > 49152
        let info_b = analyze(&dev, &cost, &b, &b).0;
        let plan_b = plan_symbolic(&dev, &cost, &cascade, &cfg, &info_b, b.cols());
        let (_, d_b, _) = plan_b.method_counts();
        assert_eq!(d_b, 300, "every row must go dense");
    }

    #[test]
    fn numeric_dense_for_dense_medium_rows() {
        // Dense block rows: output rows are 100% dense over their range.
        let a = block_diagonal(4, 64, 1.0, 5);
        let (dev, cost, cascade, info) = setup(&a);
        let cfg = SpeckConfig::default();
        let row_nnz = vec![64u32; 256];
        let plan = plan_numeric(&dev, &cost, &cascade, &cfg, &info, &row_nnz, a.cols(), 8);
        let (h, d, _) = plan.method_counts();
        assert_eq!(h, 0, "fully dense rows must use the dense accumulator");
        assert_eq!(d, 256);
        // With dense disabled they fall back to hash.
        let plan2 = plan_numeric(
            &dev,
            &cost,
            &cascade,
            &SpeckConfig::hash_only(),
            &info,
            &row_nnz,
            a.cols(),
            8,
        );
        let (h2, d2, _) = plan2.method_counts();
        assert!(h2 > 0);
        assert_eq!(d2, 0);
    }

    #[test]
    fn no_lb_blocks_share_one_config_and_pack_rows() {
        let a = uniform_random(2000, 2000, 3, 5, 2);
        let (dev, cost, cascade, info) = setup(&a);
        let cfg = SpeckConfig {
            global_lb: GlobalLbMode::AlwaysOff,
            enable_direct: false,
            ..SpeckConfig::default()
        };
        let plan = plan_symbolic(&dev, &cost, &cascade, &cfg, &info, a.cols());
        let cfgs: std::collections::BTreeSet<usize> =
            plan.blocks.iter().map(|b| b.cfg_idx).collect();
        assert_eq!(cfgs.len(), 1);
        // Rows are packed multiple per block (short rows).
        assert!(plan.blocks.iter().any(|b| b.rows.len() > 1));
        assert!(plan.blocks.iter().all(|b| b.rows.len() <= 32));
    }

    #[test]
    fn numeric_plan_covers_all_rows() {
        let a = rmat(9, 6, 0.57, 0.19, 0.19, 8);
        let (dev, cost, cascade, info) = setup(&a);
        let cfg = SpeckConfig::default();
        let c = speck_sparse::reference::spgemm_seq(&a, &a);
        let row_nnz: Vec<u32> = (0..c.rows()).map(|i| c.row_nnz(i) as u32).collect();
        let plan = plan_numeric(&dev, &cost, &cascade, &cfg, &info, &row_nnz, a.cols(), 8);
        assert_eq!(
            rows_covered(&plan),
            (0..a.rows() as u32).collect::<Vec<_>>()
        );
    }

    #[test]
    fn hash_blocks_never_exceed_32_rows() {
        let a = uniform_random(3000, 3000, 1, 2, 7);
        let (dev, cost, cascade, info) = setup(&a);
        let cfg = SpeckConfig {
            global_lb: GlobalLbMode::AlwaysOn,
            enable_direct: false,
            ..SpeckConfig::default()
        };
        let plan = plan_symbolic(&dev, &cost, &cascade, &cfg, &info, a.cols());
        for b in &plan.blocks {
            if b.method == AccMethod::Hash {
                assert!(b.rows.len() <= 32);
            }
        }
    }
}
