//! The six kernel configurations of paper §4.2 and their accumulator
//! capacities.
//!
//! "The first and largest uses the maximum available scratchpad memory
//! (48 KB on Titan V) and maximum kernel size (1024 threads) ... Each
//! successive kernel configuration uses half the amount of scratchpad
//! memory and half the number of threads ... We additionally use [the
//! 96 KB double-shared-memory] configuration ... resulting in six kernels
//! in total."

use speck_simt::{DeviceConfig, KernelConfig};

/// Bytes of a symbolic hash entry: a 32-bit compound key (5-bit local row +
/// 27-bit column, paper §4.3) when B's column count fits 2^27, else 64-bit.
pub fn symbolic_entry_bytes(cols_b: usize) -> usize {
    if cols_b < (1 << 27) {
        4
    } else {
        8
    }
}

/// Bytes of a numeric hash entry: key plus a value of `val_bytes`.
pub fn numeric_entry_bytes(cols_b: usize, val_bytes: usize) -> usize {
    symbolic_entry_bytes(cols_b) + val_bytes
}

/// Bytes per slot of the numeric dense accumulator: one value plus
/// presence/compaction bookkeeping (bitmask word share + prefix-sum slot).
pub fn dense_numeric_slot_bytes(val_bytes: usize) -> usize {
    // value + 1 bit presence (rounded into words) + u16-equivalent of the
    // compaction prefix sum, conservatively 2 extra bytes.
    val_bytes + 2
}

/// The ordered cascade of kernel configurations, smallest first.
#[derive(Clone, Debug)]
pub struct KernelCascade {
    configs: Vec<KernelConfig>,
}

impl KernelCascade {
    /// Builds the paper's cascade for a device: five halvings of
    /// (max threads, static scratch) plus the double-scratch configuration.
    pub fn for_device(dev: &DeviceConfig) -> Self {
        let mut configs = Vec::with_capacity(6);
        for i in (0..5).rev() {
            let threads = (dev.max_threads_per_block >> i).max(dev.warp_size);
            let scratch = dev.scratch_static_per_block >> i;
            configs.push(KernelConfig::new(threads, scratch));
        }
        configs.push(KernelConfig::new(
            dev.max_threads_per_block,
            dev.scratch_max_per_block,
        ));
        Self { configs }
    }

    /// Number of configurations (6 on the paper's device).
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True if the cascade is empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The configurations, smallest first.
    pub fn configs(&self) -> &[KernelConfig] {
        &self.configs
    }

    /// The configuration at cascade index `i`.
    pub fn config(&self, i: usize) -> KernelConfig {
        self.configs[i]
    }

    /// Index of the largest configuration.
    pub fn largest(&self) -> usize {
        self.configs.len() - 1
    }

    /// Hash-map entry capacity of configuration `i` at `entry_bytes` per
    /// entry.
    pub fn hash_capacity(&self, i: usize, entry_bytes: usize) -> usize {
        self.configs[i].scratch_bytes / entry_bytes
    }

    /// Bit capacity of the symbolic dense accumulator of configuration `i`.
    pub fn dense_symbolic_bits(&self, i: usize) -> usize {
        self.configs[i].scratch_bytes * 8
    }

    /// Slot capacity of the numeric dense accumulator of configuration `i`.
    pub fn dense_numeric_slots(&self, i: usize, val_bytes: usize) -> usize {
        self.configs[i].scratch_bytes / dense_numeric_slot_bytes(val_bytes)
    }

    /// Smallest configuration index whose hash map holds at least
    /// `entries` entries; `None` if even the largest cannot.
    pub fn fit_hash(&self, entries: usize, entry_bytes: usize) -> Option<usize> {
        (0..self.configs.len()).find(|&i| self.hash_capacity(i, entry_bytes) >= entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_v_cascade_matches_paper() {
        let c = KernelCascade::for_device(&DeviceConfig::titan_v());
        assert_eq!(c.len(), 6);
        let shapes: Vec<(usize, usize)> = c
            .configs()
            .iter()
            .map(|k| (k.threads, k.scratch_bytes))
            .collect();
        assert_eq!(
            shapes,
            vec![
                (64, 3 * 1024),
                (128, 6 * 1024),
                (256, 12 * 1024),
                (512, 24 * 1024),
                (1024, 48 * 1024),
                (1024, 96 * 1024),
            ]
        );
    }

    #[test]
    fn paper_capacity_claims_hold() {
        let c = KernelCascade::for_device(&DeviceConfig::titan_v());
        let i = c.largest();
        // §4.3: symbolic dense bitmask holds >500k entries at 96 KiB...
        assert!(c.dense_symbolic_bits(i) > 500_000);
        // ...versus "roughly 24 000 when using hashmaps".
        let hash = c.hash_capacity(i, symbolic_entry_bytes(1000));
        assert!((20_000..30_000).contains(&hash), "hash capacity {hash}");
    }

    #[test]
    fn entry_bytes_switch_at_2_pow_27() {
        assert_eq!(symbolic_entry_bytes((1 << 27) - 1), 4);
        assert_eq!(symbolic_entry_bytes(1 << 27), 8);
        assert_eq!(numeric_entry_bytes(100, 8), 12);
        assert_eq!(numeric_entry_bytes(1 << 28, 8), 16);
    }

    #[test]
    fn symbolic_stores_three_times_numeric() {
        // Paper §4.3: "the symbolic step can store three times as many
        // elements as the numeric step" (4 B vs 12 B entries).
        let c = KernelCascade::for_device(&DeviceConfig::titan_v());
        let s = c.hash_capacity(4, symbolic_entry_bytes(1000));
        let n = c.hash_capacity(4, numeric_entry_bytes(1000, 8));
        assert_eq!(s, 3 * n);
    }

    #[test]
    fn fit_hash_finds_smallest_sufficient() {
        let c = KernelCascade::for_device(&DeviceConfig::titan_v());
        // 3 KiB / 4 B = 768 entries in the smallest config.
        assert_eq!(c.fit_hash(700, 4), Some(0));
        assert_eq!(c.fit_hash(800, 4), Some(1));
        assert_eq!(c.fit_hash(20_000, 4), Some(5));
        assert_eq!(c.fit_hash(30_000, 4), None);
    }

    #[test]
    fn cascade_is_monotone() {
        let c = KernelCascade::for_device(&DeviceConfig::titan_v());
        for w in c.configs().windows(2) {
            assert!(w[0].scratch_bytes < w[1].scratch_bytes);
            assert!(w[0].threads <= w[1].threads);
        }
    }
}
