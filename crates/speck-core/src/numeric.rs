//! Numeric SpGEMM — value computation and output assembly (paper §4.3).
//!
//! Hash blocks accumulate `a_ik * b_kj` in the scratchpad map; the three
//! smallest configurations sort in scratchpad, larger ones defer to a
//! device-wide radix pass. Dense blocks sweep the column range in chunks
//! (already sorted). Direct blocks scale one row of B.
//!
//! Kernels borrow their accumulators from a [`WorkspacePool`] instead of
//! allocating per block, and blocks stage output as flat
//! (columns, values, per-row counts) triples that are copied straight into
//! the final CSR arrays (the symbolic pass's exact counts give every row's
//! offset up front).

use crate::analysis::AnalysisInfo;
use crate::cascade::{numeric_entry_bytes, KernelCascade};
use crate::config::SpeckConfig;
use crate::global_lb::PassPlan;
use crate::hashacc::{compound_key, split_key};
use crate::local_lb::select_group_size;
use crate::metrics::MetricsSink;
use crate::sort::{
    radix_sort_pass, scratch_sort_steps, MAX_SCRATCH_SORT_CFG, MAX_SCRATCH_SORT_ENTRIES,
};
use crate::workspace::{Workspace, WorkspacePool};
use speck_simt::{
    launch_map, simulate_group_rounds, BlockCtx, CostModel, DeviceConfig, KernelConfig,
    KernelReport,
};
use speck_sparse::{Csr, Scalar};
use std::collections::BTreeMap;

/// Flat output of one block: concatenated column indices and values of all
/// its rows (row-major), plus the per-row entry counts.
type BlockOut<V> = (Vec<u32>, Vec<V>, Vec<u32>);

/// Result of the numeric pass.
pub struct NumericOutput<V> {
    /// The final output matrix C (sorted CSR).
    pub c: Csr<V>,
    /// Reports of the numeric kernels.
    pub reports: Vec<KernelReport>,
    /// Report of the trailing radix sort pass, when one was needed.
    pub sort_report: Option<KernelReport>,
    /// Elements that had to be sorted globally (radix pass input size).
    pub radix_elems: usize,
    /// Blocks that fell back to a global hash map.
    pub spilled_blocks: usize,
}

impl<V> NumericOutput<V> {
    /// Records the pass's deterministic outputs under `sim/numeric/`:
    /// spilled-block count and elements routed through the global radix
    /// sort.
    pub(crate) fn record_metrics(&self, m: &MetricsSink<'_>) {
        m.add("sim/numeric/spilled_blocks", self.spilled_blocks as u64);
        m.add("sim/numeric/radix_elems", self.radix_elems as u64);
    }
}

/// Numeric hash kernel for one block of up to 32 rows.
#[allow(clippy::too_many_arguments)]
fn hash_block<V: Scalar>(
    ctx: &mut BlockCtx,
    ws: &mut Workspace<V>,
    a: &Csr<V>,
    b: &Csr<V>,
    info: &AnalysisInfo,
    rows: &[u32],
    capacity: usize,
    entry_bytes: usize,
    cfg: &SpeckConfig,
    scratch_sorted: bool,
) -> (BlockOut<V>, bool, bool) {
    // Returns the computed rows, whether the block spilled to a global
    // hash map, and whether its rows still need the global radix pass.
    let threads = ctx.threads();
    let nnz_a: u64 = rows
        .iter()
        .map(|&r| info.rows[r as usize].nnz_a as u64)
        .sum();
    let products: u64 = rows.iter().map(|&r| info.rows[r as usize].products).sum();
    let max_b: u64 = rows
        .iter()
        .map(|&r| info.rows[r as usize].max_b_row as u64)
        .max()
        .unwrap_or(0);
    let g = select_group_size(cfg.local_lb, threads, nnz_a, products, max_b);
    let k = (threads / g).max(1);

    ctx.scratch
        .reserve(capacity * entry_bytes, "numeric hash map");
    let Workspace {
        acc,
        iters,
        entries,
        ..
    } = ws;
    acc.reset(capacity);
    iters.clear();
    let mut tx = 0u64;

    for (li, &r) in rows.iter().enumerate() {
        let (a_cols, a_vals) = a.row(r as usize);
        for (&kc, &av) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(kc as usize);
            iters.push((b_cols.len() as u64).div_ceil(g as u64));
            // Numeric reads column + value of B (4 + val bytes).
            tx += ctx.stream_tx(g, b_cols.len(), entry_bytes);
            let mut pos = 0usize;
            while pos < b_cols.len() {
                let end = (pos + g).min(b_cols.len());
                acc.reserve_or_spill(end - pos);
                for i in pos..end {
                    acc.insert(compound_key(li as u32, b_cols[i]), av * b_vals[i]);
                }
                pos = end;
            }
        }
    }

    ctx.charge_rounds(simulate_group_rounds(k, iters.iter().copied()));
    ctx.charge_gmem_tx(tx);
    ctx.charge_gmem_scatter(nnz_a); // B row-offset pair per NZ of A (one sector)
                                    // Insert issue cost is part of the loop rounds; only contention
                                    // beyond the first probe is charged separately.
    ctx.charge_probes(acc.stats.probes);
    ctx.charge_spill(acc.stats.spilled);
    ctx.charge_gmem_atomic(acc.stats.gmem_inserts);
    ctx.charge_sync();

    let spilled = acc.spilled_to_global();
    acc.drain_sorted_into(entries);
    let n = entries.len();
    // Rank-sort in scratchpad only while the O(n^2) stays cheaper than a
    // radix pass over the rows; spilled or oversized maps defer to radix.
    let scratch_sorted = scratch_sorted && !spilled && n <= MAX_SCRATCH_SORT_ENTRIES;
    if scratch_sorted {
        ctx.charge_sort_steps(scratch_sort_steps(n, threads));
    }
    // Write n (col, val) pairs out, coalesced.
    ctx.charge_gmem_store(n, entry_bytes);
    ctx.charge_rounds((capacity as u64).div_ceil(threads as u64));

    // Split per local row (keys sort row-major, so the flat buffer is
    // already row-major).
    let mut cols = Vec::with_capacity(n);
    let mut vals = Vec::with_capacity(n);
    let mut counts = vec![0u32; rows.len()];
    for &(key, val) in entries.iter() {
        let (lr, col) = split_key(key);
        counts[lr as usize] += 1;
        cols.push(col);
        vals.push(val);
    }
    ((cols, vals, counts), spilled, !scratch_sorted)
}

/// Numeric dense kernel for one row (paper Fig. 5).
fn dense_block<V: Scalar>(
    ctx: &mut BlockCtx,
    ws: &mut Workspace<V>,
    a: &Csr<V>,
    b: &Csr<V>,
    info: &AnalysisInfo,
    row: u32,
    slots: usize,
) -> (Vec<u32>, Vec<V>) {
    let threads = ctx.threads();
    let ri = &info.rows[row as usize];
    let range = ri.col_range();
    if range == 0 {
        return (Vec::new(), Vec::new());
    }
    ctx.scratch.reserve(
        slots * crate::cascade::dense_numeric_slot_bytes(std::mem::size_of::<V>()),
        "dense row",
    );
    let Workspace { dense, cursors, .. } = ws;
    let (a_cols, a_vals) = a.row(row as usize);
    cursors.clear();
    cursors.extend(a_cols.iter().map(|&k| b.row_range(k as usize).start));
    let iterations = range.div_ceil(slots as u64);
    let width = (slots as u64).min(range) as usize;
    dense.reuse_numeric(ri.col_min, width);
    let mut cols_out = Vec::new();
    let mut vals_out = Vec::new();
    let cols_b = b.col_idx();
    let vals_b = b.vals();
    for it in 0..iterations {
        let base = ri.col_min as u64 + it * slots as u64;
        if it > 0 {
            let w = (range - it * slots as u64).min(slots as u64) as usize;
            dense.slide(base as u32, w);
        }
        let end = base + slots as u64;
        for (cur, (&k, &av)) in cursors.iter_mut().zip(a_cols.iter().zip(a_vals)) {
            let row_end = b.row_range(k as usize).end;
            // The one-iteration common case consumes whole rows; otherwise
            // split the sorted row at the window end.
            let stop = if iterations == 1 {
                row_end
            } else {
                *cur + cols_b[*cur..row_end].partition_point(|&c| (c as u64) < end)
            };
            dense.add_scaled_row(&cols_b[*cur..stop], &vals_b[*cur..stop], av);
            *cur = stop;
        }
        // Prefix-sum compaction + partial store after every iteration
        // (draining leaves the chunk clean for the next window).
        let start = cols_out.len();
        dense.drain_set(|c, v| {
            cols_out.push(c);
            vals_out.push(v);
        });
        let stored = cols_out.len() - start;
        ctx.charge_smem((dense.width() as u64) / 8);
        ctx.charge_rounds((dense.width() as u64).div_ceil(threads as u64));
        ctx.charge_gmem_store(stored, 12);
        ctx.charge_smem(a_cols.len() as u64);
        ctx.charge_sync();
    }
    let mut tx = 0u64;
    for &k in a_cols {
        tx += ctx.stream_tx(threads, b.row_nnz(k as usize), 12);
    }
    ctx.charge_gmem_tx(tx);
    ctx.charge_rounds(ri.products.div_ceil(threads as u64));
    ctx.charge_gmem_scatter(a_cols.len() as u64 + 1);
    (cols_out, vals_out)
}

/// Direct kernel: each row is one scaled row of B, already sorted
/// (paper §4.3 "Single entry rows of A").
fn direct_block<V: Scalar>(
    ctx: &mut BlockCtx,
    a: &Csr<V>,
    b: &Csr<V>,
    rows: &[u32],
) -> BlockOut<V> {
    let threads = ctx.threads();
    let mut cols_out = Vec::new();
    let mut vals_out = Vec::new();
    let mut counts = Vec::with_capacity(rows.len());
    let mut elems = 0usize;
    for &r in rows {
        let (a_cols, a_vals) = a.row(r as usize);
        if let (Some(&k), Some(&av)) = (a_cols.first(), a_vals.first()) {
            let (b_cols, b_vals) = b.row(k as usize);
            elems += b_cols.len();
            cols_out.extend_from_slice(b_cols);
            vals_out.extend(b_vals.iter().map(|&bv| av * bv));
            counts.push(b_cols.len() as u32);
        } else {
            counts.push(0);
        }
    }
    // Stream every referenced row in and out once, no accumulation.
    ctx.charge_gmem_scatter(4 * rows.len() as u64);
    let rounds_in = ctx.charge_gmem_stream(threads, elems, 12);
    ctx.charge_gmem_store(elems, 12);
    ctx.charge_rounds(rounds_in / 2);
    (cols_out, vals_out, counts)
}

/// Builds C's prefix-summed row offsets from the symbolic pass's exact
/// per-row counts (`row_nnz.len() + 1` entries; the last one is NNZ(C)).
pub fn row_ptr_from_nnz(row_nnz: &[u32]) -> Vec<usize> {
    let mut row_ptr = Vec::with_capacity(row_nnz.len() + 1);
    row_ptr.push(0usize);
    let mut total = 0usize;
    for &c in row_nnz {
        total += c as usize;
        row_ptr.push(total);
    }
    row_ptr
}

/// Precomputed, pattern-only inputs of the numeric pass: the block plan
/// with its launch groups and C's exact row structure.
///
/// Borrowed rather than owned so one [`crate::SpgemmPlan`] can drive any
/// number of executions; the cold path builds these fresh per call.
pub struct NumericJob<'a> {
    /// The numeric block plan.
    pub plan: &'a PassPlan,
    /// `plan`'s blocks grouped by (method, config) for launching — the
    /// output of [`crate::symbolic::group_blocks`].
    pub groups: &'a BTreeMap<(u8, usize), Vec<usize>>,
    /// Exact NNZ of every row of C (symbolic pass output).
    pub row_nnz: &'a [u32],
    /// Prefix-summed row offsets of C — [`row_ptr_from_nnz`] of
    /// `row_nnz`.
    pub row_ptr: &'a [usize],
}

/// Runs the numeric pass and assembles C.
#[allow(clippy::too_many_arguments)]
pub fn run_numeric<V: Scalar>(
    dev: &DeviceConfig,
    cost: &CostModel,
    cascade: &KernelCascade,
    cfg: &SpeckConfig,
    a: &Csr<V>,
    b: &Csr<V>,
    info: &AnalysisInfo,
    job: &NumericJob<'_>,
    pool: &WorkspacePool<V>,
) -> NumericOutput<V> {
    let entry_bytes = numeric_entry_bytes(b.cols(), std::mem::size_of::<V>());
    let plan = job.plan;
    let row_nnz = job.row_nnz;
    let row_ptr = job.row_ptr;
    let mut reports = Vec::new();
    let mut spilled_blocks = 0usize;
    let mut radix_elems = 0usize;

    // The symbolic counts are exact, so C's layout is known before the
    // numeric kernels run: the precomputed row offsets give every block's
    // flat output its final place directly.
    let n = a.rows();
    debug_assert_eq!(row_ptr.len(), n + 1);
    let total = *row_ptr.last().unwrap_or(&0);
    let mut col_idx = vec![0u32; total];
    let mut vals = vec![V::zero(); total];
    let mut rows_filled = 0usize;

    {
        let mut place = |rows: &[u32], bcols: &[u32], bvals: &[V], counts: &[u32]| {
            let mut off = 0usize;
            for (&r, &cnt) in rows.iter().zip(counts) {
                let cnt = cnt as usize;
                assert_eq!(
                    cnt, row_nnz[r as usize] as usize,
                    "numeric row {r} disagrees with the symbolic count"
                );
                let dst = row_ptr[r as usize];
                col_idx[dst..dst + cnt].copy_from_slice(&bcols[off..off + cnt]);
                vals[dst..dst + cnt].copy_from_slice(&bvals[off..off + cnt]);
                off += cnt;
                rows_filled += 1;
            }
        };

        for (&(method, cfg_idx), group) in job.groups {
            let kc = cascade.config(cfg_idx);
            let block = |i: usize| &plan.blocks[group[i]];
            match method {
                0 => {
                    let capacity = cascade.hash_capacity(cfg_idx, entry_bytes);
                    let scratch_sorted = cfg_idx <= MAX_SCRATCH_SORT_CFG;
                    let (report, outs) = launch_map(
                        dev,
                        cost,
                        format!("numeric_hash_c{cfg_idx}"),
                        group.len(),
                        kc,
                        |ctx| {
                            let bp = block(ctx.block_id());
                            let mut ws = pool.acquire();
                            hash_block(
                                ctx,
                                &mut ws,
                                a,
                                b,
                                info,
                                &bp.rows,
                                capacity,
                                entry_bytes,
                                cfg,
                                scratch_sorted,
                            )
                        },
                    );
                    for (&bi, ((bcols, bvals, counts), spilled, needs_radix)) in
                        group.iter().zip(outs)
                    {
                        spilled_blocks += usize::from(spilled);
                        if needs_radix {
                            radix_elems += bcols.len();
                        }
                        place(&plan.blocks[bi].rows, &bcols, &bvals, &counts);
                    }
                    reports.push(report);
                }
                1 => {
                    let slots = cascade.dense_numeric_slots(cfg_idx, std::mem::size_of::<V>());
                    let (report, outs) = launch_map(
                        dev,
                        cost,
                        format!("numeric_dense_c{cfg_idx}"),
                        group.len(),
                        kc,
                        |ctx| {
                            let bp = block(ctx.block_id());
                            let mut ws = pool.acquire();
                            dense_block(ctx, &mut ws, a, b, info, bp.rows[0], slots)
                        },
                    );
                    for (&bi, (bcols, bvals)) in group.iter().zip(outs) {
                        let count = bcols.len() as u32;
                        place(&plan.blocks[bi].rows[..1], &bcols, &bvals, &[count]);
                    }
                    reports.push(report);
                }
                _ => {
                    let dk = KernelConfig::new(256.min(dev.max_threads_per_block), 0);
                    let (report, outs) =
                        launch_map(dev, cost, "numeric_direct", group.len(), dk, |ctx| {
                            let bp = block(ctx.block_id());
                            direct_block(ctx, a, b, &bp.rows)
                        });
                    for (&bi, (bcols, bvals, counts)) in group.iter().zip(outs) {
                        place(&plan.blocks[bi].rows, &bcols, &bvals, &counts);
                    }
                    reports.push(report);
                }
            }
        }
    }
    assert_eq!(rows_filled, n, "some rows were never computed");

    // Trailing radix sort pass for rows the hash kernels left unsorted.
    // (Functionally our accumulator already emits sorted entries; the pass
    // exists to charge its cost, like the real implementation's CUB pass.)
    let sort_report = radix_sort_pass(dev, cost, radix_elems, entry_bytes);

    let c = Csr::from_parts_unchecked(n, b.cols(), row_ptr.to_vec(), col_idx, vals);

    NumericOutput {
        c,
        reports,
        sort_report,
        radix_elems,
        spilled_blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::global_lb::{plan_numeric, plan_symbolic};
    use crate::symbolic::{group_blocks, run_symbolic};
    use speck_sparse::gen::{block_diagonal, rmat, uniform_random};
    use speck_sparse::reference::spgemm_seq;

    fn full_multiply(a: &Csr<f64>, cfg: &SpeckConfig) -> NumericOutput<f64> {
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let cascade = KernelCascade::for_device(&dev);
        let pool = WorkspacePool::new();
        let (info, _) = analyze(&dev, &cost, a, a);
        let splan = plan_symbolic(&dev, &cost, &cascade, cfg, &info, a.cols());
        let sym = run_symbolic(&dev, &cost, &cascade, cfg, a, a, &info, &splan, &pool);
        let nplan = plan_numeric(&dev, &cost, &cascade, cfg, &info, &sym.row_nnz, a.cols(), 8);
        let groups = group_blocks(&nplan);
        let row_ptr = row_ptr_from_nnz(&sym.row_nnz);
        run_numeric(
            &dev,
            &cost,
            &cascade,
            cfg,
            a,
            a,
            &info,
            &NumericJob {
                plan: &nplan,
                groups: &groups,
                row_nnz: &sym.row_nnz,
                row_ptr: &row_ptr,
            },
            &pool,
        )
    }

    fn check(a: &Csr<f64>, cfg: &SpeckConfig) -> NumericOutput<f64> {
        let out = full_multiply(a, cfg);
        let expect = spgemm_seq(a, a);
        out.c.validate().unwrap();
        assert!(
            out.c.approx_eq(&expect, 1e-10, 1e-12),
            "numeric result mismatch"
        );
        out
    }

    #[test]
    fn values_match_reference_uniform() {
        let a = uniform_random(300, 300, 2, 8, 21);
        check(&a, &SpeckConfig::default());
    }

    #[test]
    fn values_match_reference_skewed() {
        let a = rmat(9, 8, 0.57, 0.19, 0.19, 6);
        check(&a, &SpeckConfig::default());
    }

    #[test]
    fn values_match_dense_path() {
        let a = block_diagonal(2, 128, 1.0, 3);
        let out = check(&a, &SpeckConfig::default());
        // All rows are 100% dense: the dense accumulator handles them and
        // nothing needs the radix pass.
        assert_eq!(out.radix_elems, 0);
    }

    #[test]
    fn values_match_direct_path() {
        let a: Csr<f64> = Csr::identity(500);
        let out = check(&a, &SpeckConfig::default());
        assert!(out.reports.iter().any(|r| r.name == "numeric_direct"));
    }

    #[test]
    fn values_match_hash_only() {
        // One output row with 30 000 distinct columns exceeds the largest
        // numeric hash capacity (98 304 B / 12 B = 8 192 entries): hash-only
        // must spill to the global map yet stay exact.
        let n = 30_000u32;
        let mut coo = speck_sparse::Coo::<f64>::new(n as usize, n as usize);
        for j in 0..n {
            coo.push(0, j, 0.5 + (j % 7) as f64);
        }
        for i in 1..n {
            coo.push(i, i, 1.0);
        }
        let a = coo.to_csr();
        let out = check(&a, &SpeckConfig::hash_only());
        assert!(out.spilled_blocks > 0, "expected global hash fallback");
        assert!(out.radix_elems > 0, "spilled rows must be radix-sorted");
    }

    #[test]
    fn values_match_fixed_local_lb() {
        let a = uniform_random(256, 256, 1, 10, 13);
        check(&a, &SpeckConfig::fixed_local_lb());
    }

    #[test]
    fn values_match_lb_always_on_and_off() {
        let a = rmat(8, 8, 0.57, 0.19, 0.19, 14);
        for mode in [
            crate::GlobalLbMode::AlwaysOn,
            crate::GlobalLbMode::AlwaysOff,
        ] {
            let cfg = SpeckConfig {
                global_lb: mode,
                ..SpeckConfig::default()
            };
            check(&a, &cfg);
        }
    }

    #[test]
    fn empty_matrix_produces_empty_c() {
        let a: Csr<f64> = Csr::empty(20, 20);
        let out = check(&a, &SpeckConfig::default());
        assert_eq!(out.c.nnz(), 0);
    }

    #[test]
    fn f32_values_supported() {
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let cascade = KernelCascade::for_device(&dev);
        let cfg = SpeckConfig::default();
        let pool = WorkspacePool::new();
        let a64 = uniform_random(128, 128, 1, 6, 8);
        // Rebuild as f32.
        let a: Csr<f32> = Csr::from_parts_unchecked(
            a64.rows(),
            a64.cols(),
            a64.row_ptr().to_vec(),
            a64.col_idx().to_vec(),
            a64.vals().iter().map(|&v| v as f32).collect(),
        );
        let (info, _) = analyze(&dev, &cost, &a, &a);
        let splan = plan_symbolic(&dev, &cost, &cascade, &cfg, &info, a.cols());
        let sym = run_symbolic(&dev, &cost, &cascade, &cfg, &a, &a, &info, &splan, &pool);
        let nplan = plan_numeric(
            &dev,
            &cost,
            &cascade,
            &cfg,
            &info,
            &sym.row_nnz,
            a.cols(),
            4,
        );
        let groups = group_blocks(&nplan);
        let row_ptr = row_ptr_from_nnz(&sym.row_nnz);
        let out = run_numeric(
            &dev,
            &cost,
            &cascade,
            &cfg,
            &a,
            &a,
            &info,
            &NumericJob {
                plan: &nplan,
                groups: &groups,
                row_nnz: &sym.row_nnz,
                row_ptr: &row_ptr,
            },
            &pool,
        );
        let expect64 = spgemm_seq(&a64, &a64);
        assert_eq!(out.c.nnz(), expect64.nnz());
    }
}
