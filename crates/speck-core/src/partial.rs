//! Partial (partitioned) multiplication of large matrices — the paper's
//! stated future work (§7: "We plan to solve that in future work with
//! partial multiplications of large matrices on single GPUs").
//!
//! spECK keeps `A`, `B` and `C` resident for the whole multiplication, so
//! device memory bounds the largest solvable problem. This module splits
//! `A` into horizontal bands, multiplies one band at a time (only the band
//! of `A`, all of `B`, and the band of `C` are resident together), and
//! concatenates the band results — trading extra kernel launches and
//! repeated reads of `B` for a peak footprint the caller controls.
//!
//! [`multiply_multi_gpu`] covers the second half of §7 ("shared matrix
//! storage in multi-GPU setups"): `B` is replicated on every device, the
//! bands of `A` are distributed by product count, the devices run
//! independently, and the multiplication finishes when the slowest one
//! does.

use crate::config::SpeckConfig;
use crate::pipeline::{multiply, MultiplyReport};
use speck_simt::{CostModel, DeviceConfig, Timeline};
use speck_sparse::{Csr, Scalar};

/// Result of a partitioned multiplication.
#[derive(Clone, Debug)]
pub struct PartialReport {
    /// Number of bands the multiplication was split into.
    pub bands: usize,
    /// Total simulated time over all bands.
    pub sim_time_s: f64,
    /// Peak simulated device memory over any single band (plus the
    /// resident `B`).
    pub peak_mem_bytes: usize,
    /// Stage timeline summed over bands.
    pub timeline: Timeline,
}

/// Extracts rows `[start, end)` of `m` as a standalone matrix.
fn row_band<V: Scalar>(m: &Csr<V>, start: usize, end: usize) -> Csr<V> {
    let base = m.row_ptr()[start];
    let stop = m.row_ptr()[end];
    let row_ptr: Vec<usize> = m.row_ptr()[start..=end].iter().map(|&p| p - base).collect();
    Csr::from_parts_unchecked(
        end - start,
        m.cols(),
        row_ptr,
        m.col_idx()[base..stop].to_vec(),
        m.vals()[base..stop].to_vec(),
    )
}

/// Vertically concatenates band results (shapes must agree on columns).
fn vcat<V: Scalar>(bands: &[Csr<V>]) -> Csr<V> {
    let cols = bands.first().map_or(0, |b| b.cols());
    let rows: usize = bands.iter().map(|b| b.rows()).sum();
    let nnz: usize = bands.iter().map(|b| b.nnz()).sum();
    let mut row_ptr = Vec::with_capacity(rows + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for b in bands {
        let off = col_idx.len();
        col_idx.extend_from_slice(b.col_idx());
        vals.extend_from_slice(b.vals());
        for &p in &b.row_ptr()[1..] {
            row_ptr.push(off + p);
        }
    }
    Csr::from_parts_unchecked(rows, cols, row_ptr, col_idx, vals)
}

/// Estimated device bytes one band's multiplication needs (band of A,
/// resident B, band of C at the conservative no-compaction bound).
fn band_footprint<V: Scalar>(a: &Csr<V>, b: &Csr<V>, start: usize, end: usize) -> usize {
    let elem = 4 + std::mem::size_of::<V>();
    let nnz_a = a.row_ptr()[end] - a.row_ptr()[start];
    let products: u64 = a.col_idx()[a.row_ptr()[start]..a.row_ptr()[end]]
        .iter()
        .map(|&k| b.row_nnz(k as usize) as u64)
        .sum();
    b.size_bytes() + nnz_a * elem + (products as usize) * elem
}

/// Multiplies `A · B` in row bands of `A`, each chosen so the estimated
/// footprint stays below `mem_budget_bytes`. Returns the full `C` and an
/// aggregate report.
///
/// Bands are greedy: rows are appended while the conservative footprint
/// (resident `B` + band of `A` + uncompacted band of `C`) fits the budget;
/// a single row whose footprint alone exceeds the budget still gets its
/// own band (the device's spill paths handle it, as in the monolithic
/// case).
pub fn multiply_partitioned<V: Scalar>(
    dev: &DeviceConfig,
    cost: &CostModel,
    cfg: &SpeckConfig,
    a: &Csr<V>,
    b: &Csr<V>,
    mem_budget_bytes: usize,
) -> (Csr<V>, PartialReport) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "multiply_partitioned: dimension mismatch"
    );
    let n = a.rows();
    let mut bands: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    while start < n {
        let mut end = start + 1;
        while end < n && band_footprint(a, b, start, end + 1) <= mem_budget_bytes {
            end += 1;
        }
        bands.push((start, end));
        start = end;
    }
    if bands.is_empty() {
        bands.push((0, 0));
    }

    let mut results: Vec<Csr<V>> = Vec::with_capacity(bands.len());
    let mut timeline = Timeline::new();
    let mut total = 0.0f64;
    let mut peak = 0usize;
    for &(s, e) in &bands {
        let band = row_band(a, s, e);
        let (c, report): (Csr<V>, MultiplyReport) = multiply(dev, cost, cfg, &band, b);
        total += report.sim_time_s;
        peak = peak.max(report.peak_mem_bytes + b.size_bytes() + band.size_bytes());
        timeline.merge(&report.timeline);
        results.push(c);
    }
    let c = vcat(&results);
    (
        c,
        PartialReport {
            bands: bands.len(),
            sim_time_s: total,
            peak_mem_bytes: peak,
            timeline,
        },
    )
}

/// Result of a simulated multi-GPU multiplication.
#[derive(Clone, Debug)]
pub struct MultiGpuReport {
    /// Simulated time of each device's band (the multiplication finishes
    /// at the maximum).
    pub device_times_s: Vec<f64>,
    /// Makespan: the slowest device.
    pub sim_time_s: f64,
    /// Speedup over running the same work on one device.
    pub speedup: f64,
    /// Peak memory of any single device (its band + replicated B).
    pub peak_mem_bytes: usize,
}

/// Multiplies `A · B` across `n_devices` identical simulated GPUs:
/// `B` is replicated, rows of `A` are split into contiguous bands of
/// roughly equal *product* count (the work measure the paper's analysis
/// uses), and each device computes its band independently.
pub fn multiply_multi_gpu<V: Scalar>(
    dev: &DeviceConfig,
    cost: &CostModel,
    cfg: &SpeckConfig,
    n_devices: usize,
    a: &Csr<V>,
    b: &Csr<V>,
) -> (Csr<V>, MultiGpuReport) {
    assert!(
        n_devices >= 1,
        "multiply_multi_gpu: need at least one device"
    );
    assert_eq!(a.cols(), b.rows(), "multiply_multi_gpu: dimension mismatch");
    let n = a.rows();

    // Contiguous banding by cumulative products.
    let per_row: Vec<u64> = (0..n)
        .map(|i| {
            a.row(i)
                .0
                .iter()
                .map(|&k| b.row_nnz(k as usize) as u64)
                .sum()
        })
        .collect();
    let total: u64 = per_row.iter().sum();
    let target = total / n_devices as u64 + 1;
    let mut bands: Vec<(usize, usize)> = Vec::with_capacity(n_devices);
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &p) in per_row.iter().enumerate() {
        acc += p;
        if acc >= target && bands.len() + 1 < n_devices {
            bands.push((start, i + 1));
            start = i + 1;
            acc = 0;
        }
    }
    bands.push((start, n));

    let mut results = Vec::with_capacity(bands.len());
    let mut device_times_s = Vec::with_capacity(bands.len());
    let mut peak = 0usize;
    for &(s, e) in &bands {
        let band = row_band(a, s, e);
        let (c, report) = multiply(dev, cost, cfg, &band, b);
        device_times_s.push(report.sim_time_s);
        peak = peak.max(report.peak_mem_bytes + b.size_bytes() + band.size_bytes());
        results.push(c);
    }
    let c = vcat(&results);
    let makespan = device_times_s.iter().cloned().fold(0.0f64, f64::max);
    let single = multiply(dev, cost, cfg, a, b).1.sim_time_s;
    (
        c,
        MultiGpuReport {
            sim_time_s: makespan,
            speedup: if makespan > 0.0 {
                single / makespan
            } else {
                1.0
            },
            device_times_s,
            peak_mem_bytes: peak,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use speck_sparse::gen::{rmat, uniform_random};
    use speck_sparse::reference::spgemm_seq;

    fn setup() -> (DeviceConfig, CostModel, SpeckConfig) {
        (
            DeviceConfig::titan_v(),
            CostModel::default(),
            SpeckConfig::default(),
        )
    }

    #[test]
    fn partitioned_matches_monolithic() {
        let (dev, cost, cfg) = setup();
        let a = uniform_random(800, 800, 2, 10, 61);
        let expect = spgemm_seq(&a, &a);
        // Budget small enough to force several bands.
        let budget = a.size_bytes() + 64 * 1024;
        let (c, report) = multiply_partitioned(&dev, &cost, &cfg, &a, &a, budget);
        assert!(report.bands > 1, "expected banding, got {}", report.bands);
        c.validate().unwrap();
        assert!(c.approx_eq(&expect, 1e-9, 1e-12));
    }

    #[test]
    fn huge_budget_gives_single_band() {
        let (dev, cost, cfg) = setup();
        let a = uniform_random(300, 300, 1, 6, 62);
        let (c, report) = multiply_partitioned(&dev, &cost, &cfg, &a, &a, usize::MAX);
        assert_eq!(report.bands, 1);
        assert!(c.approx_eq(&spgemm_seq(&a, &a), 1e-9, 1e-12));
    }

    #[test]
    fn oversized_single_rows_still_complete() {
        let (dev, cost, cfg) = setup();
        let a = rmat(9, 8, 0.57, 0.19, 0.19, 63);
        // Budget below even B's footprint: every row becomes its own band.
        let (c, report) = multiply_partitioned(&dev, &cost, &cfg, &a, &a, 1);
        assert_eq!(report.bands, a.rows());
        assert!(c.approx_eq(&spgemm_seq(&a, &a), 1e-9, 1e-12));
    }

    #[test]
    fn banding_costs_extra_time_but_caps_memory() {
        let (dev, cost, cfg) = setup();
        let a = uniform_random(1_000, 1_000, 4, 8, 64);
        let (_, mono) = multiply_partitioned(&dev, &cost, &cfg, &a, &a, usize::MAX);
        let budget = a.size_bytes() * 2;
        let (_, banded) = multiply_partitioned(&dev, &cost, &cfg, &a, &a, budget);
        assert!(banded.bands > 1);
        assert!(banded.sim_time_s > mono.sim_time_s);
        assert!(banded.peak_mem_bytes <= mono.peak_mem_bytes);
    }

    #[test]
    fn multi_gpu_matches_single_and_scales() {
        let (dev, cost, cfg) = setup();
        // Large enough that kernel bodies dominate the per-device fixed
        // overheads (launches, allocations), like the paper's matrices.
        let a = uniform_random(30_000, 30_000, 4, 10, 65);
        let expect = spgemm_seq(&a, &a);
        let (c1, r1) = multiply_multi_gpu(&dev, &cost, &cfg, 1, &a, &a);
        let (c4, r4) = multiply_multi_gpu(&dev, &cost, &cfg, 4, &a, &a);
        assert!(c1.approx_eq(&expect, 1e-9, 1e-12));
        assert!(c4.approx_eq(&expect, 1e-9, 1e-12));
        assert_eq!(r4.device_times_s.len(), 4);
        // Four devices must clearly beat one, though not perfectly (fixed
        // per-device overheads and band imbalance).
        assert!(r4.speedup > 2.0, "speedup {}", r4.speedup);
        assert!(r4.speedup <= 4.2);
        assert!(r1.speedup > 0.9 && r1.speedup < 1.1);
    }

    #[test]
    fn multi_gpu_band_work_is_balanced() {
        let (dev, cost, cfg) = setup();
        let a = uniform_random(6_000, 6_000, 4, 8, 66);
        let (_, r) = multiply_multi_gpu(&dev, &cost, &cfg, 3, &a, &a);
        let max = r.device_times_s.iter().cloned().fold(0.0f64, f64::max);
        let min = r
            .device_times_s
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(max / min < 2.0, "device imbalance {max}/{min}");
    }

    #[test]
    fn more_devices_than_rows_still_works() {
        let (dev, cost, cfg) = setup();
        let a = uniform_random(3, 3, 1, 2, 67);
        let (c, r) = multiply_multi_gpu(&dev, &cost, &cfg, 8, &a, &a);
        assert!(c.approx_eq(&spgemm_seq(&a, &a), 1e-9, 1e-12));
        assert!(r.device_times_s.len() <= 8);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let (dev, cost, cfg) = setup();
        let a: Csr<f64> = Csr::empty(10, 10);
        let (c, report) = multiply_partitioned(&dev, &cost, &cfg, &a, &a, 1 << 20);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.rows(), 10);
        assert!(report.bands >= 1);
    }
}
