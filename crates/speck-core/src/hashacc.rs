//! The adaptable hash accumulator (paper §4.3, Fig. 4).
//!
//! A scratchpad hash map with linear probing. Keys are compound "local row
//! | column" indices (5 + 27 bits when B's columns fit 2^27, 64-bit
//! otherwise — the arithmetic is done in `u64` either way; the width only
//! changes the *capacity* via the entry size in [`crate::cascade`]).
//!
//! When the local map can no longer guarantee that a whole group insert
//! succeeds, all entries move to a *global* hash map and accumulation
//! continues there — the paper's global fallback pool (§4.3). Every probe,
//! insert and spilled element is counted so the cost model can price it.

use speck_sparse::Scalar;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier of the hash function: the paper multiplies the element index
/// by a prime and takes the modulo of the map size. 2^32 - 5 is prime.
const HASH_PRIME: u64 = 4_294_967_291;

/// Sentinel for an empty slot.
const EMPTY: u64 = u64::MAX;

/// Builds the compound key for (local row, column) — 5 bits of row, the
/// rest column (paper limits blocks to 32 rows so 5 bits suffice).
#[inline]
pub fn compound_key(local_row: u32, col: u32) -> u64 {
    debug_assert!(local_row < 32, "blocks hold at most 32 rows");
    ((local_row as u64) << 59) | col as u64
}

/// Splits a compound key back into (local row, column).
#[inline]
pub fn split_key(key: u64) -> (u32, u32) {
    ((key >> 59) as u32, (key & ((1u64 << 59) - 1)) as u32)
}

/// Counters the kernels feed into the cost model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccStats {
    /// Scratchpad insert attempts (each a shared-memory atomic).
    pub smem_inserts: u64,
    /// Linear-probe steps beyond the first slot.
    pub probes: u64,
    /// Entries moved from the local to the global map.
    pub spilled: u64,
    /// Inserts performed directly in the global map (each a global atomic).
    pub gmem_inserts: u64,
}

/// Deterministic trivial hasher for the global fallback map (keys are
/// already well-mixed compound indices; avoid SipHash overhead).
#[derive(Default)]
pub struct KeyHasher(u64);

impl Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("KeyHasher only hashes u64 keys");
    }
    fn write_u64(&mut self, i: u64) {
        self.0 = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type GlobalMap<V> = HashMap<u64, V, BuildHasherDefault<KeyHasher>>;

/// Hash accumulator with scratchpad storage and global spill.
#[derive(Debug)]
pub struct Accumulator<V> {
    keys: Vec<u64>,
    vals: Vec<V>,
    capacity: usize,
    /// `ceil(2^64 / capacity)` — lets [`Accumulator::slot_of`] reduce the
    /// hash with two multiplies instead of a hardware divide (exact for
    /// any 32-bit hash and capacity; Lemire's fastmod).
    mod_magic: u64,
    local_len: usize,
    global: Option<GlobalMap<V>>,
    /// Event counters for the cost model.
    pub stats: AccStats,
}

/// `ceil(2^64 / cap)` for the multiply-based modulo in
/// [`Accumulator::slot_of`].
fn mod_magic(cap: usize) -> u64 {
    assert!(cap > 0 && cap <= u32::MAX as usize);
    // Wraps to 0 for cap == 1, where the product below is 0 == x % 1.
    (u64::MAX / cap as u64).wrapping_add(1)
}

impl<V: Scalar> Accumulator<V> {
    /// A local map with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Accumulator: capacity must be positive");
        Self {
            keys: vec![EMPTY; capacity],
            vals: vec![V::zero(); capacity],
            capacity,
            mod_magic: mod_magic(capacity),
            local_len: 0,
            global: None,
            stats: AccStats::default(),
        }
    }

    /// Re-arms the accumulator for a fresh block at `capacity` slots,
    /// reusing the key/value allocations. Equivalent to
    /// `*self = Accumulator::new(capacity)` but without the heap traffic:
    /// stale values are never read (an insert writes the slot before any
    /// read), so only the keys need clearing. The statistics reset too —
    /// they feed the cost model, and a reused accumulator must charge
    /// exactly what a fresh one would.
    pub fn reset(&mut self, capacity: usize) {
        assert!(capacity > 0, "Accumulator: capacity must be positive");
        if capacity != self.capacity {
            // A shrinking resize would keep a stale prefix: rebuild whole.
            self.keys.clear();
            self.keys.resize(capacity, EMPTY);
            self.vals.clear();
            self.vals.resize(capacity, V::zero());
            self.capacity = capacity;
            self.mod_magic = mod_magic(capacity);
        } else if self.local_len != 0 {
            // `local_len` counts the non-EMPTY keys exactly (each local
            // insert of a new key increments it; drain and spill zero it
            // after clearing), so a drained accumulator skips the O(n)
            // sweep.
            self.keys.fill(EMPTY);
        }
        self.local_len = 0;
        self.global = None;
        self.stats = AccStats::default();
    }

    /// Number of distinct keys stored (local + global).
    pub fn len(&self) -> usize {
        self.local_len + self.global.as_ref().map_or(0, |g| g.len())
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Local slot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True once the accumulator has fallen back to global memory.
    pub fn spilled_to_global(&self) -> bool {
        self.global.is_some()
    }

    /// Current local fill rate in `[0, 1]`.
    pub fn fill(&self) -> f64 {
        self.local_len as f64 / self.capacity as f64
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        // Multiply-shift before the modulo: `(key * prime) % capacity`
        // alone keeps only the *low* bits of the product, which depend
        // only on the low bits of the key — the compound key's local-row
        // field (bits 59+) would never influence the slot and all rows of
        // a merged block would collide on the same probe clusters. Taking
        // the product's high half first mixes every key bit into the slot.
        let h = key.wrapping_mul(HASH_PRIME).rotate_right(32) ^ key;
        let x = h.wrapping_mul(HASH_PRIME) >> 32;
        // `x % capacity` by Lemire's multiply-based reduction (exact for
        // 32-bit `x`): the hardware divide would dominate the probe loop.
        let m = ((self.mod_magic.wrapping_mul(x) as u128 * self.capacity as u128) >> 64) as usize;
        debug_assert_eq!(m, x as usize % self.capacity);
        m
    }

    /// Ensures `headroom` more inserts can all land locally; if not,
    /// moves everything to the global map (the paper spills *before*
    /// threads race on the last slots, then continues globally).
    pub fn reserve_or_spill(&mut self, headroom: usize) {
        if self.global.is_some() {
            return;
        }
        if self.local_len + headroom > self.capacity {
            self.spill();
        }
    }

    fn spill(&mut self) {
        let mut g: GlobalMap<V> =
            HashMap::with_capacity_and_hasher(self.capacity * 2, BuildHasherDefault::default());
        for (i, &k) in self.keys.iter().enumerate() {
            if k != EMPTY {
                g.insert(k, self.vals[i]);
            }
        }
        self.stats.spilled += self.local_len as u64;
        self.keys.fill(EMPTY);
        self.local_len = 0;
        self.global = Some(g);
    }

    /// Inserts `key` adding `val`; returns `true` when the key is new.
    ///
    /// Call [`Accumulator::reserve_or_spill`] with the group width before
    /// batched inserts; a completely full local map spills automatically
    /// as a safety net.
    pub fn insert(&mut self, key: u64, val: V) -> bool {
        if let Some(g) = self.global.as_mut() {
            self.stats.gmem_inserts += 1;
            return match g.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    *e.get_mut() += val;
                    false
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(val);
                    true
                }
            };
        }
        self.stats.smem_inserts += 1;
        let mut slot = self.slot_of(key);
        let mut probes = 0u64;
        loop {
            let k = self.keys[slot];
            if k == key {
                self.stats.probes += probes;
                self.vals[slot] += val;
                return false;
            }
            if k == EMPTY {
                self.stats.probes += probes;
                self.keys[slot] = key;
                self.vals[slot] = val;
                self.local_len += 1;
                return true;
            }
            probes += 1;
            slot += 1;
            if slot == self.capacity {
                slot = 0;
            }
            if probes as usize > self.capacity {
                // Local map completely full: spill and retry globally.
                self.stats.probes += probes;
                self.spill();
                return self.insert(key, val);
            }
        }
    }

    /// Symbolic insert: records the key only; returns `true` when new.
    ///
    /// Skips the value array entirely — the slot's stale value is fine
    /// because a later *numeric* insert always writes a new slot before
    /// reading it, and the symbolic pass never reads values at all.
    pub fn insert_key(&mut self, key: u64) -> bool {
        if self.global.is_some() {
            return self.insert(key, V::zero());
        }
        self.stats.smem_inserts += 1;
        let mut slot = self.slot_of(key);
        let mut probes = 0u64;
        loop {
            let k = self.keys[slot];
            if k == key {
                self.stats.probes += probes;
                return false;
            }
            if k == EMPTY {
                self.stats.probes += probes;
                self.keys[slot] = key;
                self.local_len += 1;
                return true;
            }
            probes += 1;
            slot += 1;
            if slot == self.capacity {
                slot = 0;
            }
            if probes as usize > self.capacity {
                // Local map completely full: spill and retry globally.
                self.stats.probes += probes;
                self.spill();
                return self.insert(key, V::zero());
            }
        }
    }

    /// Extracts all `(key, value)` pairs, sorted by key. (Compound keys
    /// sort by local row then column, exactly the output order the
    /// numeric kernel needs.)
    pub fn drain_sorted(&mut self) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        self.drain_sorted_into(&mut out);
        out
    }

    /// [`Accumulator::drain_sorted`] into a caller-provided buffer
    /// (cleared first), so a reused workspace pays no allocation.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<(u64, V)>) {
        out.clear();
        out.reserve(self.len());
        for (i, &k) in self.keys.iter().enumerate() {
            if k != EMPTY {
                out.push((k, self.vals[i]));
            }
        }
        if let Some(g) = self.global.take() {
            out.extend(g);
        }
        out.sort_unstable_by_key(|&(k, _)| k);
        self.keys.fill(EMPTY);
        self.local_len = 0;
    }

    /// Counts stored keys per local row (symbolic extraction for blocks of
    /// up to 32 rows).
    pub fn counts_per_local_row(&self, n_rows: usize) -> Vec<u32> {
        let mut counts = vec![0u32; n_rows];
        for &k in &self.keys {
            if k != EMPTY {
                counts[split_key(k).0 as usize] += 1;
            }
        }
        if let Some(g) = &self.global {
            for &k in g.keys() {
                counts[split_key(k).0 as usize] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compound_key_roundtrip() {
        for row in [0u32, 1, 17, 31] {
            for col in [0u32, 1, 12345, (1 << 27) - 1, u32::MAX >> 5] {
                let (r, c) = split_key(compound_key(row, col));
                assert_eq!((r, c), (row, col));
            }
        }
    }

    #[test]
    fn compound_keys_sort_row_major() {
        let a = compound_key(0, u32::MAX >> 5);
        let b = compound_key(1, 0);
        assert!(a < b);
        let c = compound_key(1, 5);
        let d = compound_key(1, 6);
        assert!(c < d);
    }

    #[test]
    fn insert_accumulates_values() {
        let mut acc: Accumulator<f64> = Accumulator::new(16);
        assert!(acc.insert(compound_key(0, 3), 1.0));
        assert!(!acc.insert(compound_key(0, 3), 2.5));
        assert!(acc.insert(compound_key(0, 4), 1.0));
        assert_eq!(acc.len(), 2);
        let out = acc.drain_sorted();
        assert_eq!(out[0], (compound_key(0, 3), 3.5));
        assert_eq!(out[1], (compound_key(0, 4), 1.0));
    }

    #[test]
    fn probes_counted_on_collision() {
        // Capacity 2: two distinct keys with same slot must probe.
        let mut acc: Accumulator<f64> = Accumulator::new(2);
        acc.insert(0, 1.0);
        acc.insert(2, 1.0); // 0 and 2 both even * prime % 2 -> same parity slot
        assert!(acc.stats.probes >= 1 || acc.len() == 2);
        assert_eq!(acc.len(), 2);
    }

    #[test]
    fn reserve_or_spill_moves_to_global() {
        let mut acc: Accumulator<f64> = Accumulator::new(8);
        for i in 0..6 {
            acc.insert(i, 1.0);
        }
        assert!(!acc.spilled_to_global());
        acc.reserve_or_spill(4); // 6 + 4 > 8 -> spill
        assert!(acc.spilled_to_global());
        assert_eq!(acc.stats.spilled, 6);
        // Continue inserting globally; old values survive.
        acc.insert(0, 1.0);
        assert_eq!(acc.stats.gmem_inserts, 1);
        let out = acc.drain_sorted();
        assert_eq!(out.len(), 6);
        assert_eq!(out[0], (0, 2.0));
    }

    #[test]
    fn full_local_map_spills_as_safety_net() {
        let mut acc: Accumulator<f64> = Accumulator::new(4);
        for i in 0..10 {
            acc.insert(i, 1.0);
        }
        assert!(acc.spilled_to_global());
        assert_eq!(acc.len(), 10);
        let out = acc.drain_sorted();
        let keys: Vec<u64> = out.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn counts_per_local_row() {
        let mut acc: Accumulator<f64> = Accumulator::new(32);
        acc.insert_key(compound_key(0, 1));
        acc.insert_key(compound_key(0, 2));
        acc.insert_key(compound_key(2, 1));
        acc.insert_key(compound_key(2, 1)); // duplicate
        let counts = acc.counts_per_local_row(3);
        assert_eq!(counts, vec![2, 0, 1]);
    }

    #[test]
    fn counts_include_global_entries() {
        let mut acc: Accumulator<f64> = Accumulator::new(4);
        for c in 0..10u32 {
            acc.insert_key(compound_key(1, c));
        }
        assert!(acc.spilled_to_global());
        let counts = acc.counts_per_local_row(2);
        assert_eq!(counts, vec![0, 10]);
    }

    #[test]
    fn drain_matches_btreemap_oracle() {
        use std::collections::BTreeMap;
        let mut acc: Accumulator<f64> = Accumulator::new(64);
        let mut oracle: BTreeMap<u64, f64> = BTreeMap::new();
        let mut state = 99u64;
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = compound_key(((state >> 40) % 32) as u32, ((state >> 8) % 50) as u32);
            let val = ((state % 17) as f64) - 8.0;
            acc.insert(key, val);
            *oracle.entry(key).or_insert(0.0) += val;
        }
        let out = acc.drain_sorted();
        assert_eq!(out.len(), oracle.len());
        for ((k, v), (ok, ov)) in out.iter().zip(oracle.iter()) {
            assert_eq!(k, ok);
            assert!((v - ov).abs() < 1e-9);
        }
    }

    #[test]
    fn fill_rate_reported() {
        let mut acc: Accumulator<f64> = Accumulator::new(10);
        for i in 0..5 {
            acc.insert(i, 1.0);
        }
        assert!((acc.fill() - 0.5).abs() < 1e-12);
    }
}
