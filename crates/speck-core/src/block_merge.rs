//! Parallel block merging — paper Algorithm 2 / Fig. 3 (§4.2).
//!
//! Rows of the smallest bin are often too short to utilise even the
//! smallest kernel, so neighbouring rows are merged into one block while
//! their combined scratchpad demand stays below the capacity. The merge is
//! a reduction tree: at every level, adjacent segments *of equal row
//! count* combine when they fit (Fig. 3), which bounds the result to
//! `2^levels` rows per block and guarantees at least 50 % utilisation for
//! any pair that fails to merge.
//!
//! We run 5 levels, so a block holds at most 32 rows — the limit imposed
//! by the 5-bit local-row field of the compound hash keys. (The paper's
//! Algorithm 2 header reads "for i ← 0 to 5" while the text says the
//! accumulator "can handle up to 32 rows per block"; we follow the 32-row
//! constraint.)

/// Maximum merge levels: 2^5 = 32 rows per block.
pub const MERGE_LEVELS: usize = 5;

/// A merged run of consecutive bin entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergeSeg {
    /// Index of the first row in the bin's row list.
    pub start: usize,
    /// Number of consecutive bin rows merged into this block.
    pub len: usize,
    /// Combined scratchpad demand in bytes.
    pub demand: u64,
}

/// Merges neighbouring rows (given their per-row demands, in bin order)
/// into blocks whose demand stays below `capacity`. Returns the segments
/// plus the total work items touched (for kernel cost accounting).
pub fn block_merge(demands: &[u64], capacity: u64, enabled: bool) -> (Vec<MergeSeg>, u64) {
    let mut segs: Vec<MergeSeg> = demands
        .iter()
        .enumerate()
        .map(|(i, &d)| MergeSeg {
            start: i,
            len: 1,
            demand: d,
        })
        .collect();
    if !enabled {
        return (segs, 0);
    }
    let mut work = 0u64;
    for _level in 0..MERGE_LEVELS {
        if segs.len() < 2 {
            break;
        }
        work += segs.len() as u64;
        let mut next: Vec<MergeSeg> = Vec::with_capacity(segs.len().div_ceil(2));
        let mut i = 0;
        while i < segs.len() {
            if i + 1 < segs.len() {
                // Fixed positional pairing, like the parallel reduction of
                // Fig. 3: a failed pair keeps both segments but the cursor
                // still advances past them (`k <- k + 2*step` in Alg. 2).
                let (a, b) = (segs[i], segs[i + 1]);
                if a.len == b.len && a.demand + b.demand < capacity {
                    next.push(MergeSeg {
                        start: a.start,
                        len: a.len + b.len,
                        demand: a.demand + b.demand,
                    });
                } else {
                    next.push(a);
                    next.push(b);
                }
                i += 2;
            } else {
                next.push(segs[i]);
                i += 1;
            }
        }
        if next.len() == segs.len() {
            break; // fixed point
        }
        segs = next;
    }
    (segs, work)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demands_of(segs: &[MergeSeg]) -> Vec<u64> {
        segs.iter().map(|s| s.demand).collect()
    }

    #[test]
    fn paper_figure_3_example() {
        // Demands 7 8 3 0 1 5 4 3 with capacity 16 -> [15, 3, 13]
        // (the optimum [15, 16] is out of reach, as the paper notes).
        let (segs, _) = block_merge(&[7, 8, 3, 0, 1, 5, 4, 3], 16, true);
        assert_eq!(demands_of(&segs), vec![15, 3, 13]);
        assert_eq!(
            segs[0],
            MergeSeg {
                start: 0,
                len: 2,
                demand: 15
            }
        );
        assert_eq!(
            segs[1],
            MergeSeg {
                start: 2,
                len: 2,
                demand: 3
            }
        );
        assert_eq!(
            segs[2],
            MergeSeg {
                start: 4,
                len: 4,
                demand: 13
            }
        );
    }

    #[test]
    fn paper_figure_3_second_example() {
        // 5 2 2 3 0 0 1 2 cap 16 -> level1 [7,5,0,3] -> level2 [12,3] -> [15]
        let (segs, _) = block_merge(&[5, 2, 2, 3, 0, 0, 1, 2], 16, true);
        assert_eq!(demands_of(&segs), vec![15]);
        assert_eq!(segs[0].len, 8);
    }

    #[test]
    fn disabled_keeps_singletons() {
        let (segs, work) = block_merge(&[1, 1, 1, 1], 100, false);
        assert_eq!(segs.len(), 4);
        assert_eq!(work, 0);
    }

    #[test]
    fn never_exceeds_capacity() {
        let demands: Vec<u64> = (0..100).map(|i| (i * 37) % 23 + 1).collect();
        let (segs, _) = block_merge(&demands, 50, true);
        for s in &segs {
            assert!(s.demand < 50);
        }
        // Coverage: segments tile the input exactly.
        let mut pos = 0;
        for s in &segs {
            assert_eq!(s.start, pos);
            pos += s.len;
        }
        assert_eq!(pos, 100);
        // Demand conservation.
        let total: u64 = demands.iter().sum();
        assert_eq!(segs.iter().map(|s| s.demand).sum::<u64>(), total);
    }

    #[test]
    fn rows_per_block_capped_at_32() {
        let demands = vec![0u64; 1000];
        let (segs, _) = block_merge(&demands, 100, true);
        for s in &segs {
            assert!(s.len <= 32, "segment of {} rows", s.len);
        }
        // Most segments reach the full 32 rows.
        assert!(segs.iter().filter(|s| s.len == 32).count() >= 31);
    }

    #[test]
    fn fifty_percent_utilisation_bound() {
        // Paper: if two neighbours cannot merge, their average utilisation
        // exceeds 50%. Check on the final segmentation for equal-length
        // neighbours (the pairs the algorithm actually considered).
        let demands: Vec<u64> = (0..64).map(|i| 30 + (i % 41)).collect();
        let cap = 100u64;
        let (segs, _) = block_merge(&demands, cap, true);
        for w in segs.windows(2) {
            if w[0].len == w[1].len {
                assert!(w[0].demand + w[1].demand >= cap);
            }
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let (segs, _) = block_merge(&[], 10, true);
        assert!(segs.is_empty());
        let (segs, _) = block_merge(&[5], 10, true);
        assert_eq!(
            segs,
            vec![MergeSeg {
                start: 0,
                len: 1,
                demand: 5
            }]
        );
    }

    #[test]
    fn oversized_rows_stay_alone() {
        let (segs, _) = block_merge(&[200, 200, 1, 1], 100, true);
        assert_eq!(segs[0].len, 1);
        assert_eq!(segs[1].len, 1);
        assert_eq!(segs[2].len, 2);
    }
}
