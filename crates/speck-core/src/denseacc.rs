//! The dense accumulator (paper §4.3, Fig. 5).
//!
//! For large, dense output rows hashing is inefficient: dense arrays avoid
//! hash calculation, collision handling and sorting. The accumulator covers
//! the output row's column range `[col_min, col_max]` in chunks of the
//! scratchpad slot capacity; after each chunk the occupied slots are
//! compacted with a prefix sum and appended to the output (already in
//! column order).
//!
//! In the symbolic pass only a bit mask is needed (1 bit per column —
//! paper: >500k entries in 96 KiB vs ~24k for a hash map); the numeric
//! pass stores one value per slot plus the mask.

use speck_sparse::Scalar;

/// One chunk-sized window of a dense accumulation.
#[derive(Debug)]
pub struct DenseChunk<V> {
    base: u32,
    width: usize,
    mask: Vec<u64>,
    vals: Vec<V>,
    touched: usize,
    /// True while mask/values may hold non-zero data; a clean chunk can be
    /// re-armed by resizing instead of refilling.
    dirty: bool,
    /// Bit-set/add operations performed (scratchpad atomics for the model).
    pub ops: u64,
}

impl<V: Scalar> DenseChunk<V> {
    /// A numeric chunk of `width` value slots starting at column `base`.
    pub fn numeric(base: u32, width: usize) -> Self {
        assert!(width > 0);
        Self {
            base,
            width,
            mask: vec![0u64; width.div_ceil(64)],
            vals: vec![V::zero(); width],
            touched: 0,
            dirty: false,
            ops: 0,
        }
    }

    /// A symbolic chunk of `width` bits starting at column `base` (no
    /// value array).
    pub fn symbolic(base: u32, width: usize) -> Self {
        assert!(width > 0);
        Self {
            base,
            width,
            mask: vec![0u64; width.div_ceil(64)],
            vals: Vec::new(),
            touched: 0,
            dirty: false,
            ops: 0,
        }
    }

    /// First column covered by the chunk.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of columns covered.
    pub fn width(&self) -> usize {
        self.width
    }

    /// One-past-last column covered.
    pub fn end(&self) -> u64 {
        self.base as u64 + self.width as u64
    }

    /// True when `col` falls inside this chunk.
    #[inline]
    pub fn contains(&self, col: u32) -> bool {
        (col as u64) >= self.base as u64 && (col as u64) < self.end()
    }

    /// Count of distinct columns touched in this chunk.
    pub fn touched(&self) -> usize {
        self.touched
    }

    #[inline]
    fn set_bit(&mut self, off: usize) -> bool {
        let (w, b) = (off / 64, off % 64);
        let was = self.mask[w] & (1u64 << b) != 0;
        self.mask[w] |= 1u64 << b;
        self.dirty = true;
        if !was {
            self.touched += 1;
        }
        !was
    }

    /// Symbolic: marks `col`; returns `true` when new. Panics outside the
    /// chunk (kernels clip with [`DenseChunk::contains`]).
    pub fn mark(&mut self, col: u32) -> bool {
        debug_assert!(self.contains(col));
        self.ops += 1;
        self.set_bit((col - self.base) as usize)
    }

    /// Numeric: adds `val` at `col`; returns `true` when the slot is new.
    pub fn add(&mut self, col: u32, val: V) -> bool {
        debug_assert!(self.contains(col));
        self.ops += 1;
        let off = (col - self.base) as usize;
        let new = self.set_bit(off);
        self.vals[off] += val;
        new
    }

    /// Bulk [`DenseChunk::mark`] of a sorted column slice that lies fully
    /// inside the window — the hot symbolic merge loop, without the
    /// per-element call and window checks.
    pub fn mark_all(&mut self, cols: &[u32]) {
        self.ops += cols.len() as u64;
        for &c in cols {
            debug_assert!(self.contains(c));
            let off = (c - self.base) as usize;
            let (w, b) = (off / 64, off % 64);
            let m = 1u64 << b;
            let word = self.mask[w];
            self.touched += usize::from(word & m == 0);
            self.mask[w] = word | m;
        }
        self.dirty |= !cols.is_empty();
    }

    /// Bulk [`DenseChunk::add`] of `scale * vals[i]` at `cols[i]` for a
    /// column slice that lies fully inside the window — the hot numeric
    /// merge loop.
    pub fn add_scaled_row(&mut self, cols: &[u32], vals: &[V], scale: V) {
        self.ops += cols.len() as u64;
        for (&c, &v) in cols.iter().zip(vals) {
            debug_assert!(self.contains(c));
            let off = (c - self.base) as usize;
            let (w, b) = (off / 64, off % 64);
            let m = 1u64 << b;
            let word = self.mask[w];
            self.touched += usize::from(word & m == 0);
            self.mask[w] = word | m;
            self.vals[off] += scale * v;
        }
        self.dirty |= !cols.is_empty();
    }

    /// Extracts the occupied slots in column order (the compaction +
    /// store of Fig. 5). Symbolic chunks yield `V::zero()` values.
    pub fn extract_sorted(&self) -> Vec<(u32, V)> {
        let mut out = Vec::with_capacity(self.touched);
        self.for_each_set(|col, v| out.push((col, v)));
        out
    }

    /// Re-arms the chunk as a numeric window `[base, base + width)`,
    /// reusing the mask/value allocations (equivalent to
    /// [`DenseChunk::numeric`] without the heap traffic).
    pub fn reuse_numeric(&mut self, base: u32, width: usize) {
        assert!(width > 0);
        self.base = base;
        self.width = width;
        if self.dirty {
            self.mask.clear();
            self.vals.clear();
            self.dirty = false;
        }
        // A clean chunk holds only zeros: resizing keeps the prefix as-is.
        self.mask.resize(width.div_ceil(64), 0);
        self.vals.resize(width, V::zero());
        self.touched = 0;
        self.ops = 0;
    }

    /// Re-arms the chunk as a symbolic window `[base, base + width)`,
    /// reusing the mask allocation (equivalent to
    /// [`DenseChunk::symbolic`] without the heap traffic).
    pub fn reuse_symbolic(&mut self, base: u32, width: usize) {
        assert!(width > 0);
        self.base = base;
        self.width = width;
        if self.dirty {
            self.mask.clear();
            self.dirty = false;
        }
        self.mask.resize(width.div_ceil(64), 0);
        self.vals.clear();
        self.touched = 0;
        self.ops = 0;
    }

    /// Visits the occupied slots in column order without allocating
    /// (the zero-copy variant of [`DenseChunk::extract_sorted`]).
    pub fn for_each_set(&self, mut f: impl FnMut(u32, V)) {
        for (w, &word) in self.mask.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                let off = w * 64 + b;
                let v = if self.vals.is_empty() {
                    V::zero()
                } else {
                    self.vals[off]
                };
                f(self.base + off as u32, v);
                bits &= bits - 1;
            }
        }
    }

    /// Resets the chunk for the next window starting at `base`.
    pub fn reset(&mut self, base: u32) {
        self.base = base;
        self.mask.fill(0);
        if !self.vals.is_empty() {
            self.vals.fill(V::zero());
        }
        self.touched = 0;
        self.dirty = false;
    }

    /// [`DenseChunk::for_each_set`] fused with the clear: visits the
    /// occupied slots in column order while zeroing them, leaving the chunk
    /// clean at `O(touched)` cost instead of [`DenseChunk::reset`]'s
    /// `O(width)` refill.
    pub fn drain_set(&mut self, mut f: impl FnMut(u32, V)) {
        let numeric = !self.vals.is_empty();
        for (w, word) in self.mask.iter_mut().enumerate() {
            let mut bits = *word;
            if bits == 0 {
                continue;
            }
            *word = 0;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                let off = w * 64 + b;
                let v = if numeric {
                    std::mem::replace(&mut self.vals[off], V::zero())
                } else {
                    V::zero()
                };
                f(self.base + off as u32, v);
                bits &= bits - 1;
            }
        }
        self.touched = 0;
        self.dirty = false;
    }

    /// Slides a drained chunk to the window `[base, base + width)` without
    /// touching its (all-zero) contents. `width` must not exceed the
    /// current width; call [`DenseChunk::drain_set`] (or
    /// [`DenseChunk::reset`]) first.
    pub fn slide(&mut self, base: u32, width: usize) {
        assert!(width > 0 && width <= self.width);
        debug_assert!(!self.dirty, "slide requires a drained chunk");
        self.base = base;
        self.width = width;
        self.mask.truncate(width.div_ceil(64));
        if !self.vals.is_empty() {
            self.vals.truncate(width);
        }
    }
}

/// Number of chunk iterations a dense accumulation of `range` columns
/// needs at `slots` per chunk — the quantity the paper's 18 % density
/// rule bounds at three (§4.3).
pub fn dense_iterations(range: u64, slots: usize) -> u64 {
    if range == 0 {
        0
    } else {
        range.div_ceil(slots as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_add_and_extract_in_order() {
        let mut c: DenseChunk<f64> = DenseChunk::numeric(10, 20);
        assert!(c.add(15, 1.0));
        assert!(c.add(12, 2.0));
        assert!(!c.add(15, 0.5));
        assert_eq!(c.touched(), 2);
        let out = c.extract_sorted();
        assert_eq!(out, vec![(12, 2.0), (15, 1.5)]);
        assert_eq!(c.ops, 3);
    }

    #[test]
    fn symbolic_marks_without_values() {
        let mut c: DenseChunk<f64> = DenseChunk::symbolic(0, 100);
        assert!(c.mark(99));
        assert!(c.mark(0));
        assert!(!c.mark(0));
        assert_eq!(c.touched(), 2);
        let cols: Vec<u32> = c.extract_sorted().iter().map(|&(c, _)| c).collect();
        assert_eq!(cols, vec![0, 99]);
    }

    #[test]
    fn contains_respects_window() {
        let c: DenseChunk<f64> = DenseChunk::numeric(100, 50);
        assert!(!c.contains(99));
        assert!(c.contains(100));
        assert!(c.contains(149));
        assert!(!c.contains(150));
    }

    #[test]
    fn reset_slides_the_window() {
        let mut c: DenseChunk<f64> = DenseChunk::numeric(0, 10);
        c.add(5, 3.0);
        c.reset(10);
        assert_eq!(c.touched(), 0);
        assert!(c.contains(15));
        assert!(!c.contains(5));
        c.add(15, 1.0);
        assert_eq!(c.extract_sorted(), vec![(15, 1.0)]);
    }

    #[test]
    fn iterations_formula() {
        assert_eq!(dense_iterations(0, 100), 0);
        assert_eq!(dense_iterations(100, 100), 1);
        assert_eq!(dense_iterations(101, 100), 2);
        assert_eq!(dense_iterations(300, 100), 3);
        // The paper's rule: density >= 18% implies <= 3 iterations when
        // slots are sized to nnz/0.18 of the range... checked in numeric.rs.
    }

    #[test]
    fn chunk_boundary_bits() {
        // Widths not multiple of 64 still work at the last word.
        let mut c: DenseChunk<f64> = DenseChunk::symbolic(0, 65);
        assert!(c.mark(64));
        assert!(c.mark(63));
        assert_eq!(c.touched(), 2);
        let cols: Vec<u32> = c.extract_sorted().iter().map(|&(x, _)| x).collect();
        assert_eq!(cols, vec![63, 64]);
    }
}
