//! Structured observability: a lock-free metrics registry, hierarchical
//! wall-clock spans, and deterministic snapshots with CI-gateable diffs.
//!
//! spECK is a *decision system* — analysis, binning, accumulator
//! selection — and an end-to-end time cannot tell which decision a
//! regression came from. This module gives every layer of the stack a
//! place to report what it did:
//!
//! * [`MetricsRegistry`] — a sharded map of named [`Counter`]s,
//!   [`Gauge`]s, and [`Histogram`]s. Registration takes a brief per-shard
//!   lock; every update afterwards is a plain atomic, so concurrently
//!   executing blocks and batched multiplies record without contention.
//! * [`Span`] — hierarchical wall-clock timing (`plan/analysis`,
//!   `execute/numeric`, …). Each span records a deterministic entry
//!   counter (`span/<path>/count`) and a volatile wall-time gauge
//!   (`wall/span/<path>/seconds`).
//! * [`MetricsSink`] — a copyable `Option<&MetricsRegistry>` wrapper the
//!   pipeline threads through its stages; with no registry attached every
//!   call is a no-op, so the free functions ([`crate::multiply`]) stay
//!   metrics-free while [`crate::SpeckSpgemm`] records everything.
//! * [`MetricsSnapshot`] — a point-in-time copy with two serialisations:
//!   [`MetricsSnapshot::canonical_json`] holds only the deterministic
//!   metrics (counters + histograms, all integers, sorted keys) and is
//!   byte-identical across repeated runs of the same multiply;
//!   [`MetricsSnapshot::full_json`] adds the volatile gauges (wall times,
//!   pool occupancy). [`compare_snapshots`] diffs a run against a
//!   committed baseline — deterministic metrics exactly, `wall/` gauges
//!   within a declared tolerance — which is what `ci.sh --metrics` gates
//!   on.
//!
//! ## Determinism contract
//!
//! Everything recorded as a counter or histogram must be a pure function
//! of the multiply sequence (simulated-cost counters, launch counts,
//! cache hits): the canonical snapshot of a fresh engine running a fixed
//! workload is byte-stable, regardless of host thread count. Anything
//! wall-clock- or scheduling-dependent (span times, workspace-pool
//! occupancy) must be a gauge. `tests/metrics_determinism.rs` enforces
//! the contract by property test on both the cold and the plan-reuse
//! path.
//!
//! ## Naming scheme
//!
//! Metric names are `/`-separated paths. The conventional prefixes:
//!
//! | prefix         | content                                            |
//! |----------------|----------------------------------------------------|
//! | `sim/stage/*`  | per-pipeline-stage launches, cycles, cost counters |
//! | `sim/kernel/*` | the same keyed by kernel name                      |
//! | `sim/lb/*`     | load-balancer bins, methods, rows per block        |
//! | `sim/symbolic/*`, `sim/numeric/*` | pass-level outputs (spills, radix elements) |
//! | `span/*`       | span entry counts (deterministic)                  |
//! | `engine/*`     | engine call counts (multiply, reuse)               |
//! | `plan_cache/*` | hit/miss/eviction counters (snapshot-injected)     |
//! | `wall/*`       | wall-clock gauges — tolerance-gated in CI          |
//! | `pool/*`       | occupancy gauges — informational, never gated      |

use speck_simt::KernelReport;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Snapshot-format identifier embedded in every serialised snapshot.
pub const SNAPSHOT_FORMAT: &str = "speck-metrics-v1";

/// Default relative tolerance for `wall/` gauges when the baseline does
/// not declare one (see [`compare_snapshots`]).
pub const DEFAULT_WALL_TOLERANCE: f64 = 0.10;

/// Absolute floor under which `wall/` gauge differences always pass —
/// sub-10ms wall times are dominated by scheduler noise and would make a
/// relative gate flaky.
pub const WALL_ABS_FLOOR_S: f64 = 0.01;

/// A monotonically increasing integer metric (lock-free).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `v` to the counter.
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A floating-point level metric (lock-free; last-write/accumulate
/// semantics). Gauges are *volatile*: they never participate in the
/// canonical snapshot.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `v` to the gauge (atomic read-modify-write loop).
    pub fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Raises the gauge to `v` if `v` is larger.
    pub fn max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(cur) >= v {
                return;
            }
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: bucket 0 holds the value 0; bucket `i`
/// (1..=64) holds values of bit-width `i`, i.e. `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Power-of-two histogram over `u64` values (lock-free).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// Bucket index of a value: 0 for 0, else its bit width.
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation of `v`.
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` observations of `v` at once.
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_of(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.wrapping_mul(n), Ordering::Relaxed);
    }

    /// Merges a [`LocalHistogram`] accumulated without atomics — the
    /// cheap way for a hot loop to histogram per-row quantities with one
    /// registry interaction.
    pub fn merge_local(&self, local: &LocalHistogram) {
        for (i, &n) in local.buckets.iter().enumerate() {
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(local.count, Ordering::Relaxed);
        self.sum.fetch_add(local.sum, Ordering::Relaxed);
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u32, n))
                })
                .collect(),
        }
    }
}

/// Plain (non-atomic) histogram scratch for single-threaded accumulation;
/// flush with [`Histogram::merge_local`].
#[derive(Clone, Debug)]
pub struct LocalHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        LocalHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl LocalHistogram {
    /// An empty scratch histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `v`.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
    }
}

/// One registered metric (type-tagged).
#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

const SHARD_COUNT: usize = 16;

fn shard_of(name: &str) -> usize {
    // FNV-1a over the name; shards only need a rough spread.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h as usize) % SHARD_COUNT
}

/// Sharded registry of named metrics.
///
/// Lookup/registration locks one of 16 shards briefly; the returned
/// handles are `Arc`s whose updates are lock-free atomics. Handles stay
/// valid for the registry's lifetime, so hot paths may cache them.
#[derive(Default)]
pub struct MetricsRegistry {
    shards: [Mutex<HashMap<String, Metric>>; SHARD_COUNT],
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn entry<T, F: FnOnce() -> Metric, G: Fn(&Metric) -> Option<T>>(
        &self,
        name: &str,
        make: F,
        cast: G,
    ) -> T {
        let mut shard = self.shards[shard_of(name)].lock().unwrap();
        let metric = shard.entry(name.to_string()).or_insert_with(make).clone();
        drop(shard);
        cast(&metric).unwrap_or_else(|| panic!("metric '{name}' registered with another kind"))
    }

    /// The counter named `name`, registered on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.entry(
            name,
            || Metric::Counter(Arc::new(Counter::default())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// The gauge named `name`, registered on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.entry(
            name,
            || Metric::Gauge(Arc::new(Gauge::default())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// The histogram named `name`, registered on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.entry(
            name,
            || Metric::Histogram(Arc::new(Histogram::default())),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Starts a root wall-clock span named `name` (see [`Span`]).
    pub fn span(&self, name: &str) -> Span<'_> {
        Span {
            reg: self,
            path: name.to_string(),
            start: Instant::now(),
        }
    }

    /// Point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for shard in &self.shards {
            for (name, metric) in shard.lock().unwrap().iter() {
                match metric {
                    Metric::Counter(c) => {
                        snap.counters.insert(name.clone(), c.get());
                    }
                    Metric::Gauge(g) => {
                        snap.gauges.insert(name.clone(), g.get());
                    }
                    Metric::Histogram(h) => {
                        snap.histograms.insert(name.clone(), h.snapshot());
                    }
                }
            }
        }
        snap
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n: usize = self.shards.iter().map(|s| s.lock().unwrap().len()).sum();
        f.debug_struct("MetricsRegistry")
            .field("metrics", &n)
            .finish()
    }
}

/// A hierarchical wall-clock span. Dropping the span records
/// `span/<path>/count` (+1, deterministic) and adds the elapsed seconds
/// to the `wall/span/<path>/seconds` gauge (volatile).
pub struct Span<'a> {
    reg: &'a MetricsRegistry,
    path: String,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Starts a child span `"<parent path>/<name>"`.
    pub fn child(&self, name: &str) -> Span<'a> {
        Span {
            reg: self.reg,
            path: format!("{}/{name}", self.path),
            start: Instant::now(),
        }
    }

    /// The span's full path.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.reg
            .counter(&format!("span/{}/count", self.path))
            .add(1);
        self.reg
            .gauge(&format!("wall/span/{}/seconds", self.path))
            .add(self.start.elapsed().as_secs_f64());
    }
}

/// A child of a [`MaybeSpan`]: either live or a no-op.
pub struct MaybeSpan<'a>(Option<Span<'a>>);

impl<'a> MaybeSpan<'a> {
    /// Starts a child span (no-op when the parent is a no-op).
    pub fn child(&self, name: &str) -> MaybeSpan<'a> {
        MaybeSpan(self.0.as_ref().map(|s| s.child(name)))
    }
}

/// Copyable handle the pipeline threads through its stages: either a live
/// registry reference or a no-op. Every method is safe to call on the
/// no-op sink, so instrumentation sites need no `if let`.
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricsSink<'a> {
    reg: Option<&'a MetricsRegistry>,
}

impl<'a> MetricsSink<'a> {
    /// A sink recording into `reg`.
    pub fn new(reg: &'a MetricsRegistry) -> Self {
        MetricsSink { reg: Some(reg) }
    }

    /// The no-op sink.
    pub fn none() -> Self {
        MetricsSink { reg: None }
    }

    /// The underlying registry, when one is attached.
    pub fn registry(&self) -> Option<&'a MetricsRegistry> {
        self.reg
    }

    /// Adds `v` to the counter `name`.
    pub fn add(&self, name: &str, v: u64) {
        if let Some(reg) = self.reg {
            reg.counter(name).add(v);
        }
    }

    /// Records `v` into the histogram `name`.
    pub fn record(&self, name: &str, v: u64) {
        if let Some(reg) = self.reg {
            reg.histogram(name).record(v);
        }
    }

    /// Merges a locally accumulated histogram into `name`.
    pub fn record_local(&self, name: &str, local: &LocalHistogram) {
        if let Some(reg) = self.reg {
            reg.histogram(name).merge_local(local);
        }
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(reg) = self.reg {
            reg.gauge(name).set(v);
        }
    }

    /// Starts a span (no-op without a registry).
    pub fn span(&self, name: &str) -> MaybeSpan<'a> {
        MaybeSpan(self.reg.map(|r| r.span(name)))
    }

    /// Records one simulated kernel launch under a pipeline stage: launch
    /// count, simulated cycles (millicycle resolution), every non-zero
    /// cost-model counter, and grid-size / cycle histograms — both per
    /// stage and per kernel name.
    pub fn record_kernel(&self, stage: &str, report: &KernelReport) {
        let Some(reg) = self.reg else { return };
        let cycles_milli = (report.sim_cycles * 1e3).round() as u64;
        reg.counter(&format!("sim/stage/{stage}/launches")).add(1);
        reg.counter(&format!("sim/stage/{stage}/cycles_milli"))
            .add(cycles_milli);
        for (cname, v) in report.total_cost.counters() {
            if v > 0 {
                reg.counter(&format!("sim/stage/{stage}/{cname}")).add(v);
            }
        }
        reg.histogram(&format!("sim/stage/{stage}/grid"))
            .record(report.grid as u64);
        let kname = report.name.as_ref();
        reg.counter(&format!("sim/kernel/{kname}/launches")).add(1);
        reg.counter(&format!("sim/kernel/{kname}/cycles_milli"))
            .add(cycles_milli);
        reg.histogram("sim/launch/cycles_milli")
            .record(cycles_milli);
    }
}

/// Point-in-time copy of one histogram: total count, sum, and the
/// non-empty power-of-two buckets as `(bucket index, count)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of recorded values (wrapping).
    pub sum: u64,
    /// Non-empty buckets as `(bucket index, count)`, ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Point-in-time copy of a [`MetricsRegistry`], optionally annotated with
/// a declared `wall/` gauge tolerance for baseline gating.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name (deterministic section).
    pub counters: BTreeMap<String, u64>,
    /// All histograms, sorted by name (deterministic section).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// All gauges, sorted by name (volatile section).
    pub gauges: BTreeMap<String, f64>,
    /// Relative tolerance this snapshot declares for its `wall/` gauges
    /// when used as a comparison baseline.
    pub wall_tolerance: Option<f64>,
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl MetricsSnapshot {
    fn write_counters(&self, out: &mut String) {
        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_json_string(out, name);
            let _ = write!(out, ": {v}");
        }
        out.push_str("\n  }");
    }

    fn write_histograms(&self, out: &mut String) {
        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_json_string(out, name);
            let _ = write!(
                out,
                ": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                h.count, h.sum
            );
            for (j, (b, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{b}, {n}]");
            }
            out.push_str("]}");
        }
        out.push_str("\n  }");
    }

    /// Canonical serialisation of the *deterministic* section (counters +
    /// histograms): integers only, keys sorted, fixed layout. Two runs of
    /// the same multiply sequence on a fresh registry produce
    /// byte-identical canonical JSON regardless of host parallelism.
    pub fn canonical_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"format\": \"{SNAPSHOT_FORMAT}\",");
        self.write_counters(&mut out);
        out.push_str(",\n");
        self.write_histograms(&mut out);
        out.push_str("\n}\n");
        out
    }

    /// Full serialisation: the canonical section plus the volatile gauges
    /// and the declared `wall/` tolerance. This is the `BENCH_metrics.json`
    /// format.
    pub fn full_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"format\": \"{SNAPSHOT_FORMAT}\",");
        if let Some(t) = self.wall_tolerance {
            let _ = writeln!(out, "  \"wall_tolerance\": {t},");
        }
        self.write_counters(&mut out);
        out.push_str(",\n");
        self.write_histograms(&mut out);
        out.push_str(",\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_json_string(&mut out, name);
            let _ = write!(out, ": {v}");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Human-readable table of every metric, for terminals and CI job
    /// summaries.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<58} {:>16}", "counter", "value");
        let _ = writeln!(out, "{:-<58} {:-<16}", "", "");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name:<58} {v:>16}");
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "{:<58} {:>10} {:>16} {:>12}",
                "histogram", "count", "sum", "mean"
            );
            let _ = writeln!(out, "{:-<58} {:-<10} {:-<16} {:-<12}", "", "", "", "");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{name:<58} {:>10} {:>16} {:>12.1}",
                    h.count,
                    h.sum,
                    h.mean()
                );
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "{:<58} {:>16}", "gauge (volatile)", "value");
            let _ = writeln!(out, "{:-<58} {:-<16}", "", "");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "{name:<58} {v:>16.6}");
            }
        }
        out
    }

    /// Parses a snapshot previously written by [`Self::full_json`] or
    /// [`Self::canonical_json`]. Unknown top-level keys are skipped, so
    /// baselines survive additive format evolution.
    pub fn parse_json(text: &str) -> Result<MetricsSnapshot, String> {
        Parser {
            b: text.as_bytes(),
            pos: 0,
        }
        .parse_snapshot()
    }
}

/// Minimal recursive-descent parser for the snapshot's JSON subset.
struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("metrics json: {what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.b.len() && self.b[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.pos).copied()
    }

    fn expect(&mut self, ch: u8) -> Result<(), String> {
        if self.peek() == Some(ch) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", ch as char))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(&c) = self.b.get(self.pos) else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(&e) = self.b.get(self.pos) else {
                        return self.err("dangling escape");
                    };
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                c => s.push(c as char),
            }
        }
    }

    /// Returns the raw text of a number token.
    fn parse_number_text(&mut self) -> Result<&str, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .b
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if start == self.pos {
            return self.err("expected a number");
        }
        std::str::from_utf8(&self.b[start..self.pos]).map_err(|e| e.to_string())
    }

    fn parse_u64(&mut self) -> Result<u64, String> {
        let pos = self.pos;
        let t = self.parse_number_text()?;
        t.parse::<u64>()
            .map_err(|e| format!("metrics json: bad integer '{t}' at byte {pos}: {e}"))
    }

    fn parse_f64(&mut self) -> Result<f64, String> {
        let pos = self.pos;
        let t = self.parse_number_text()?;
        t.parse::<f64>()
            .map_err(|e| format!("metrics json: bad number '{t}' at byte {pos}: {e}"))
    }

    /// Skips one JSON value of any shape (for unknown keys).
    fn skip_value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'"') => {
                self.parse_string()?;
            }
            Some(b'{') => {
                self.expect(b'{')?;
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.parse_string()?;
                    self.expect(b':')?;
                    self.skip_value()?;
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return self.err("expected ',' or '}'"),
                    }
                }
            }
            Some(b'[') => {
                self.expect(b'[')?;
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.skip_value()?;
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return self.err("expected ',' or ']'"),
                    }
                }
            }
            Some(c) if c == b't' || c == b'f' || c == b'n' => {
                while self.b.get(self.pos).is_some_and(u8::is_ascii_alphabetic) {
                    self.pos += 1;
                }
            }
            _ => {
                self.parse_number_text()?;
            }
        }
        Ok(())
    }

    /// Parses `{ "k": ... , ... }` invoking `on_key` per key.
    fn parse_object(
        &mut self,
        mut on_key: impl FnMut(&mut Self, &str) -> Result<(), String>,
    ) -> Result<(), String> {
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            on_key(self, &key)?;
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn parse_histogram(&mut self) -> Result<HistogramSnapshot, String> {
        let mut h = HistogramSnapshot::default();
        self.parse_object(|p, key| {
            match key {
                "count" => h.count = p.parse_u64()?,
                "sum" => h.sum = p.parse_u64()?,
                "buckets" => {
                    p.expect(b'[')?;
                    if p.peek() == Some(b']') {
                        p.pos += 1;
                        return Ok(());
                    }
                    loop {
                        p.expect(b'[')?;
                        let b = p.parse_u64()? as u32;
                        p.expect(b',')?;
                        let n = p.parse_u64()?;
                        p.expect(b']')?;
                        h.buckets.push((b, n));
                        match p.peek() {
                            Some(b',') => p.pos += 1,
                            Some(b']') => {
                                p.pos += 1;
                                break;
                            }
                            _ => return p.err("expected ',' or ']'"),
                        }
                    }
                }
                _ => p.skip_value()?,
            }
            Ok(())
        })?;
        Ok(h)
    }

    fn parse_snapshot(&mut self) -> Result<MetricsSnapshot, String> {
        let mut snap = MetricsSnapshot::default();
        let mut format = None;
        self.parse_object(|p, key| {
            match key {
                "format" => format = Some(p.parse_string()?),
                "wall_tolerance" => snap.wall_tolerance = Some(p.parse_f64()?),
                "counters" => p.parse_object(|p, name| {
                    let v = p.parse_u64()?;
                    snap.counters.insert(name.to_string(), v);
                    Ok(())
                })?,
                "gauges" => p.parse_object(|p, name| {
                    let v = p.parse_f64()?;
                    snap.gauges.insert(name.to_string(), v);
                    Ok(())
                })?,
                "histograms" => p.parse_object(|p, name| {
                    let h = p.parse_histogram()?;
                    snap.histograms.insert(name.to_string(), h);
                    Ok(())
                })?,
                _ => p.skip_value()?,
            }
            Ok(())
        })?;
        match format.as_deref() {
            Some(SNAPSHOT_FORMAT) => Ok(snap),
            Some(other) => Err(format!("unknown metrics format '{other}'")),
            None => Err("missing \"format\" field".into()),
        }
    }
}

/// Diffs `current` against a committed `baseline`:
///
/// * counters and histograms (the deterministic section) must match
///   **exactly** — missing, extra, or drifted entries are all reported;
/// * gauges with the `wall/` prefix must agree within the tolerance the
///   baseline declares (falling back to `default_wall_tol`), with an
///   absolute floor of [`WALL_ABS_FLOOR_S`] so sub-10ms noise never
///   gates;
/// * all other gauges (`pool/` occupancy etc.) are informational and
///   never compared.
///
/// Returns human-readable drift descriptions; empty means the gate
/// passes.
pub fn compare_snapshots(
    current: &MetricsSnapshot,
    baseline: &MetricsSnapshot,
    default_wall_tol: f64,
) -> Vec<String> {
    let mut drift = Vec::new();
    for (name, base) in &baseline.counters {
        match current.counters.get(name) {
            None => drift.push(format!("counter '{name}' missing (baseline {base})")),
            Some(cur) if cur != base => {
                drift.push(format!("counter '{name}': {cur} != baseline {base}"))
            }
            Some(_) => {}
        }
    }
    for (name, cur) in &current.counters {
        if !baseline.counters.contains_key(name) {
            drift.push(format!(
                "counter '{name}' not in baseline (value {cur}) — re-record BENCH_metrics.json"
            ));
        }
    }
    for (name, base) in &baseline.histograms {
        match current.histograms.get(name) {
            None => drift.push(format!("histogram '{name}' missing")),
            Some(cur) if cur != base => drift.push(format!(
                "histogram '{name}': count {}/sum {} != baseline count {}/sum {}",
                cur.count, cur.sum, base.count, base.sum
            )),
            Some(_) => {}
        }
    }
    for name in current.histograms.keys() {
        if !baseline.histograms.contains_key(name) {
            drift.push(format!(
                "histogram '{name}' not in baseline — re-record BENCH_metrics.json"
            ));
        }
    }
    let tol = baseline.wall_tolerance.unwrap_or(default_wall_tol);
    for (name, base) in &baseline.gauges {
        if !name.starts_with("wall/") {
            continue;
        }
        match current.gauges.get(name) {
            None => drift.push(format!("wall gauge '{name}' missing")),
            Some(cur) => {
                let abs = (cur - base).abs();
                let rel = abs / base.abs().max(cur.abs()).max(f64::MIN_POSITIVE);
                if abs > WALL_ABS_FLOOR_S && rel > tol {
                    drift.push(format!(
                        "wall gauge '{name}': {cur:.4} vs baseline {base:.4} \
                         ({:.0}% > {:.0}% tolerance)",
                        rel * 100.0,
                        tol * 100.0
                    ));
                }
            }
        }
    }
    drift
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn counters_aggregate_under_parallel_updates() {
        // Rayon-parallel block execution is the hot recording context:
        // many workers adding to the same named counters concurrently must
        // lose nothing.
        let reg = MetricsRegistry::new();
        let _: Vec<()> = (0..10_000usize)
            .into_par_iter()
            .map(|i| {
                reg.counter("par/total").add(1);
                reg.counter(&format!("par/mod{}", i % 7)).add(i as u64);
                reg.histogram("par/hist").record(i as u64 % 97);
            })
            .collect();
        let snap = reg.snapshot();
        assert_eq!(snap.counters["par/total"], 10_000);
        let per_mod: u64 = (0..7).map(|m| snap.counters[&format!("par/mod{m}")]).sum();
        assert_eq!(per_mod, (0..10_000u64).sum::<u64>());
        let h = &snap.histograms["par/hist"];
        assert_eq!(h.count, 10_000);
        assert_eq!(h.sum, (0..10_000u64).map(|i| i % 97).sum::<u64>());
    }

    #[test]
    fn gauge_ops() {
        let g = Gauge::default();
        g.set(1.5);
        g.add(2.5);
        assert_eq!(g.get(), 4.0);
        g.max(3.0);
        assert_eq!(g.get(), 4.0);
        g.max(5.0);
        assert_eq!(g.get(), 5.0);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        let h = Histogram::default();
        h.record(0);
        h.record_n(3, 2);
        h.record(1024);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1030);
        assert_eq!(s.buckets, vec![(0, 1), (2, 2), (11, 1)]);
        assert!((s.mean() - 257.5).abs() < 1e-12);
    }

    #[test]
    fn local_histogram_merges_like_direct_records() {
        let a = Histogram::default();
        let b = Histogram::default();
        let mut local = LocalHistogram::new();
        for v in [0u64, 5, 5, 9, 1 << 40] {
            a.record(v);
            local.record(v);
        }
        b.merge_local(&local);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let reg = MetricsRegistry::new();
        reg.counter("a/b").add(42);
        reg.counter("weird \"name\"\\with escapes").add(7);
        reg.gauge("wall/x").set(0.125);
        reg.histogram("h").record(100);
        let mut snap = reg.snapshot();
        snap.wall_tolerance = Some(0.25);
        let parsed = MetricsSnapshot::parse_json(&snap.full_json()).unwrap();
        assert_eq!(parsed, snap);
        // The canonical form parses too (gauges absent).
        let canon = MetricsSnapshot::parse_json(&snap.canonical_json()).unwrap();
        assert_eq!(canon.counters, snap.counters);
        assert_eq!(canon.histograms, snap.histograms);
        assert!(canon.gauges.is_empty());
    }

    #[test]
    fn canonical_json_is_stable_across_insertion_order() {
        let r1 = MetricsRegistry::new();
        r1.counter("b").add(2);
        r1.counter("a").add(1);
        r1.gauge("wall/noise").set(123.456);
        let r2 = MetricsRegistry::new();
        r2.counter("a").add(1);
        r2.counter("b").add(2);
        r2.gauge("wall/noise").set(654.321);
        assert_eq!(
            r1.snapshot().canonical_json(),
            r2.snapshot().canonical_json()
        );
    }

    #[test]
    fn compare_flags_exact_counter_drift_and_tolerates_wall() {
        let mk = |c: u64, wall: f64| {
            let reg = MetricsRegistry::new();
            reg.counter("sim/x").add(c);
            reg.gauge("wall/t").set(wall);
            reg.gauge("pool/idle").set(999.0);
            reg.snapshot()
        };
        let base = mk(10, 1.0);
        // Identical: passes.
        assert!(compare_snapshots(&mk(10, 1.0), &base, 0.10).is_empty());
        // Wall within 10%: passes; pool/ gauge never compared.
        assert!(compare_snapshots(&mk(10, 1.05), &base, 0.10).is_empty());
        // Wall beyond tolerance: flagged.
        assert_eq!(compare_snapshots(&mk(10, 2.0), &base, 0.10).len(), 1);
        // Baseline-declared tolerance wins over the default.
        let mut loose = base.clone();
        loose.wall_tolerance = Some(0.75);
        assert!(compare_snapshots(&mk(10, 1.6), &loose, 0.10).is_empty());
        // Counter drift is always flagged.
        let drift = compare_snapshots(&mk(11, 1.0), &base, 0.10);
        assert_eq!(drift.len(), 1);
        assert!(drift[0].contains("sim/x"));
        // Sub-floor absolute wall differences never gate.
        let tiny_base = mk(1, 0.001);
        assert!(compare_snapshots(&mk(1, 0.004), &tiny_base, 0.10).is_empty());
    }

    #[test]
    fn compare_flags_missing_and_extra_entries() {
        let reg = MetricsRegistry::new();
        reg.counter("only/current").add(1);
        let cur = reg.snapshot();
        let reg2 = MetricsRegistry::new();
        reg2.counter("only/baseline").add(1);
        let base = reg2.snapshot();
        let drift = compare_snapshots(&cur, &base, 0.10);
        assert_eq!(drift.len(), 2, "{drift:?}");
    }

    #[test]
    fn spans_record_counts_and_wall_gauges() {
        let reg = MetricsRegistry::new();
        {
            let root = reg.span("multiply");
            let _child = root.child("analysis");
            assert_eq!(root.path(), "multiply");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counters["span/multiply/count"], 1);
        assert_eq!(snap.counters["span/multiply/analysis/count"], 1);
        assert!(snap.gauges.contains_key("wall/span/multiply/seconds"));
        assert!(
            *snap
                .gauges
                .get("wall/span/multiply/analysis/seconds")
                .unwrap()
                >= 0.0
        );
    }

    #[test]
    fn noop_sink_records_nothing() {
        let sink = MetricsSink::none();
        sink.add("x", 1);
        sink.record("y", 2);
        sink.gauge_set("z", 3.0);
        let _span = sink.span("s").child("c");
        assert!(sink.registry().is_none());
    }

    #[test]
    fn render_table_mentions_every_metric() {
        let reg = MetricsRegistry::new();
        reg.counter("c/one").add(1);
        reg.histogram("h/two").record(5);
        reg.gauge("wall/three").set(0.5);
        let table = reg.snapshot().render_table();
        for name in ["c/one", "h/two", "wall/three"] {
            assert!(table.contains(name), "missing {name} in\n{table}");
        }
    }
}
