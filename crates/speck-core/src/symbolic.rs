//! Symbolic SpGEMM — exact output-size counting (paper §4.3).
//!
//! Executes the pass plan from [`crate::global_lb`]: hash blocks count
//! distinct columns in a scratchpad map, dense blocks count bits in a
//! chunked bitmask, and direct blocks read row lengths straight from B's
//! offsets.

use crate::analysis::AnalysisInfo;
use crate::cascade::{symbolic_entry_bytes, KernelCascade};
use crate::config::SpeckConfig;
use crate::global_lb::{AccMethod, PassPlan};
use crate::hashacc::compound_key;
use crate::local_lb::select_group_size;
use crate::metrics::{LocalHistogram, MetricsSink};
use crate::workspace::{Workspace, WorkspacePool};
use speck_simt::{
    launch_map, simulate_group_rounds, BlockCtx, CostModel, DeviceConfig, KernelConfig,
    KernelReport,
};
use speck_sparse::{Csr, Scalar};
use std::collections::BTreeMap;

/// Result of the symbolic pass.
#[derive(Clone, Debug)]
pub struct SymbolicOutput {
    /// Exact NNZ of every row of C.
    pub row_nnz: Vec<u32>,
    /// One report per kernel launch.
    pub reports: Vec<KernelReport>,
    /// Blocks that fell back to a global hash map.
    pub spilled_blocks: usize,
}

impl SymbolicOutput {
    /// Records the pass's deterministic outputs under `sim/symbolic/`:
    /// spilled-block count and the exact C row-size distribution.
    pub(crate) fn record_metrics(&self, m: &MetricsSink<'_>) {
        if m.registry().is_none() {
            return;
        }
        m.add("sim/symbolic/spilled_blocks", self.spilled_blocks as u64);
        let mut h = LocalHistogram::new();
        for &n in &self.row_nnz {
            h.record(n as u64);
        }
        m.record_local("sim/symbolic/row_nnz", &h);
    }
}

/// Groups plan blocks into launches of identical (method, config). The
/// groups hold indices into `plan.blocks` — the plans (with their row
/// lists) stay where they are instead of being cloned per launch. The
/// method key is 0 = hash, 1 = dense, 2 = direct.
///
/// Public so callers that drive [`crate::numeric::run_numeric`] directly
/// (reusable plans, the nsparse-style baseline) can precompute the
/// launch groups once and reuse them across executions.
pub fn group_blocks(plan: &PassPlan) -> BTreeMap<(u8, usize), Vec<usize>> {
    let mut groups: BTreeMap<(u8, usize), Vec<usize>> = BTreeMap::new();
    for (i, b) in plan.blocks.iter().enumerate() {
        let m = match b.method {
            AccMethod::Hash => 0u8,
            AccMethod::Dense => 1,
            AccMethod::Direct => 2,
        };
        groups.entry((m, b.cfg_idx)).or_default().push(i);
    }
    groups
}

/// Per-block symbolic hash kernel: counts distinct output columns of up to
/// 32 rows in one scratchpad map.
#[allow(clippy::too_many_arguments)]
fn hash_block<V: Scalar>(
    ctx: &mut BlockCtx,
    ws: &mut Workspace<V>,
    a: &Csr<V>,
    b: &Csr<V>,
    info: &AnalysisInfo,
    rows: &[u32],
    capacity: usize,
    entry_bytes: usize,
    cfg: &SpeckConfig,
) -> (Vec<u32>, bool) {
    let threads = ctx.threads();
    let nnz_a: u64 = rows
        .iter()
        .map(|&r| info.rows[r as usize].nnz_a as u64)
        .sum();
    let products: u64 = rows.iter().map(|&r| info.rows[r as usize].products).sum();
    let max_b: u64 = rows
        .iter()
        .map(|&r| info.rows[r as usize].max_b_row as u64)
        .max()
        .unwrap_or(0);
    let g = select_group_size(cfg.local_lb, threads, nnz_a, products, max_b);
    let k = (threads / g).max(1);

    ctx.scratch
        .reserve(capacity * entry_bytes, "symbolic hash map");
    let acc = &mut ws.acc;
    acc.reset(capacity);
    let iters = &mut ws.iters;
    iters.clear();
    let mut tx = 0u64;
    let mut counts = vec![0u32; rows.len()];

    for (li, &r) in rows.iter().enumerate() {
        let (a_cols, _) = a.row(r as usize);
        let mut row_count = 0u32;
        for &kc in a_cols {
            let (b_cols, _) = b.row(kc as usize);
            iters.push((b_cols.len() as u64).div_ceil(g as u64));
            tx += ctx.stream_tx(g, b_cols.len(), 4);
            for batch in b_cols.chunks(g.max(1)) {
                acc.reserve_or_spill(batch.len());
                for &j in batch {
                    row_count += u32::from(acc.insert_key(compound_key(li as u32, j)));
                }
            }
        }
        counts[li] = row_count;
    }

    ctx.charge_rounds(simulate_group_rounds(k, iters.iter().copied()));
    ctx.charge_gmem_tx(tx);
    ctx.charge_gmem_scatter(nnz_a); // B row-offset pair per NZ of A (one sector)
                                    // Insert issue cost is part of the loop rounds; only contention
                                    // beyond the first probe is charged separately.
    ctx.charge_probes(acc.stats.probes);
    ctx.charge_spill(acc.stats.spilled);
    ctx.charge_gmem_atomic(acc.stats.gmem_inserts);
    ctx.charge_sync();
    // Extraction: the per-row counters were bumped at insert time (folded
    // into the iteration's instruction bundle, i.e. the issue rounds), so
    // no map rescan is needed — just write the counts out.
    ctx.charge_gmem_scatter(rows.len() as u64);

    (counts, acc.spilled_to_global())
}

/// Per-block symbolic dense kernel: one (huge) row counted with a chunked
/// bitmask (paper Fig. 5, symbolic variant).
fn dense_block<V: Scalar>(
    ctx: &mut BlockCtx,
    ws: &mut Workspace<V>,
    a: &Csr<V>,
    b: &Csr<V>,
    info: &AnalysisInfo,
    row: u32,
    bits: usize,
) -> u32 {
    let threads = ctx.threads();
    let ri = &info.rows[row as usize];
    let range = ri.col_range();
    if range == 0 {
        return 0;
    }
    ctx.scratch.reserve(bits / 8, "symbolic dense bitmask");
    let (a_cols, _) = a.row(row as usize);
    let cursors = &mut ws.cursors;
    cursors.clear();
    cursors.extend(a_cols.iter().map(|&k| b.row_range(k as usize).start));
    let iterations = range.div_ceil(bits as u64);
    let width = (bits as u64).min(range) as usize;
    let chunk = &mut ws.dense;
    chunk.reuse_symbolic(ri.col_min, width);
    let mut count = 0u32;
    let cols_b = b.col_idx();
    for it in 0..iterations {
        let base = ri.col_min as u64 + it * bits as u64;
        if it > 0 {
            let w = (range - it * bits as u64).min(bits as u64) as usize;
            if w != chunk.width() {
                chunk.reuse_symbolic(base as u32, w);
            } else {
                chunk.reset(base as u32);
            }
        }
        let end = base + bits as u64;
        for (cur, &k) in cursors.iter_mut().zip(a_cols) {
            let row_end = b.row_range(k as usize).end;
            // The one-iteration common case consumes whole rows; otherwise
            // split the sorted row at the window end.
            let stop = if iterations == 1 {
                row_end
            } else {
                *cur + cols_b[*cur..row_end].partition_point(|&c| (c as u64) < end)
            };
            chunk.mark_all(&cols_b[*cur..stop]);
            *cur = stop;
        }
        count += chunk.touched() as u32;
        // Per-chunk cost: cursor bookkeeping and the bit-count reduction.
        ctx.charge_smem(a_cols.len() as u64);
        ctx.charge_rounds((width as u64 / 64).div_ceil(threads as u64) + 1);
        ctx.charge_sync();
    }
    // Streaming cost: every element of every referenced row is visited
    // exactly once across all chunks (the cursors make the sweep linear).
    let mut tx = 0u64;
    for &k in a_cols {
        tx += ctx.stream_tx(threads, b.row_nnz(k as usize), 4);
    }
    ctx.charge_gmem_tx(tx);
    ctx.charge_rounds(ri.products.div_ceil(threads as u64));
    ctx.charge_gmem_scatter(a_cols.len() as u64 + 1);
    count
}

/// Per-block direct kernel: rows with at most one NZ of A need only B's
/// row offsets (paper §4.3 "Single entry rows of A").
fn direct_block<V: Scalar>(ctx: &mut BlockCtx, a: &Csr<V>, b: &Csr<V>, rows: &[u32]) -> Vec<u32> {
    let threads = ctx.threads();
    let mut counts = Vec::with_capacity(rows.len());
    for &r in rows {
        let (a_cols, _) = a.row(r as usize);
        debug_assert!(a_cols.len() <= 1, "direct path requires <= 1 NZ per row");
        let c = if let Some(&k) = a_cols.first() {
            b.row_nnz(k as usize) as u32
        } else {
            0
        };
        counts.push(c);
    }
    // Two offset reads of A and two of B per row, one count written.
    ctx.charge_rounds((rows.len() as u64).div_ceil(threads as u64) * 2);
    ctx.charge_gmem_scatter(4 * rows.len() as u64);
    ctx.charge_gmem_scatter(rows.len() as u64);
    counts
}

/// Runs the symbolic pass over the plan.
#[allow(clippy::too_many_arguments)]
pub fn run_symbolic<V: Scalar>(
    dev: &DeviceConfig,
    cost: &CostModel,
    cascade: &KernelCascade,
    cfg: &SpeckConfig,
    a: &Csr<V>,
    b: &Csr<V>,
    info: &AnalysisInfo,
    plan: &PassPlan,
    pool: &WorkspacePool<V>,
) -> SymbolicOutput {
    let entry_bytes = symbolic_entry_bytes(b.cols());
    let mut row_nnz = vec![0u32; a.rows()];
    let mut reports = Vec::new();
    let mut spilled_blocks = 0usize;

    for ((method, cfg_idx), group) in group_blocks(plan) {
        let kc = cascade.config(cfg_idx);
        let block = |i: usize| &plan.blocks[group[i]];
        match method {
            0 => {
                let capacity = cascade.hash_capacity(cfg_idx, entry_bytes);
                let (report, outs) = launch_map(
                    dev,
                    cost,
                    format!("symbolic_hash_c{cfg_idx}"),
                    group.len(),
                    kc,
                    |ctx| {
                        let bp = block(ctx.block_id());
                        let mut ws = pool.acquire();
                        hash_block(
                            ctx,
                            &mut ws,
                            a,
                            b,
                            info,
                            &bp.rows,
                            capacity,
                            entry_bytes,
                            cfg,
                        )
                    },
                );
                for (&bi, (counts, spilled)) in group.iter().zip(outs) {
                    spilled_blocks += usize::from(spilled);
                    for (&r, c) in plan.blocks[bi].rows.iter().zip(counts) {
                        row_nnz[r as usize] = c;
                    }
                }
                reports.push(report);
            }
            1 => {
                let bits = cascade.dense_symbolic_bits(cfg_idx);
                let (report, outs) = launch_map(
                    dev,
                    cost,
                    format!("symbolic_dense_c{cfg_idx}"),
                    group.len(),
                    kc,
                    |ctx| {
                        let bp = block(ctx.block_id());
                        let mut ws = pool.acquire();
                        dense_block(ctx, &mut ws, a, b, info, bp.rows[0], bits)
                    },
                );
                for (&bi, count) in group.iter().zip(outs) {
                    row_nnz[plan.blocks[bi].rows[0] as usize] = count;
                }
                reports.push(report);
            }
            _ => {
                let dk = KernelConfig::new(256.min(dev.max_threads_per_block), 0);
                let (report, outs) =
                    launch_map(dev, cost, "symbolic_direct", group.len(), dk, |ctx| {
                        let bp = block(ctx.block_id());
                        direct_block(ctx, a, b, &bp.rows)
                    });
                for (&bi, counts) in group.iter().zip(outs) {
                    for (&r, c) in plan.blocks[bi].rows.iter().zip(counts) {
                        row_nnz[r as usize] = c;
                    }
                }
                reports.push(report);
            }
        }
    }

    SymbolicOutput {
        row_nnz,
        reports,
        spilled_blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::global_lb::plan_symbolic;
    use speck_sparse::gen::{block_diagonal, rmat, uniform_random};
    use speck_sparse::reference::spgemm_row_nnz;

    fn check_counts(a: &Csr<f64>, cfg: &SpeckConfig) -> SymbolicOutput {
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let cascade = KernelCascade::for_device(&dev);
        let (info, _) = analyze(&dev, &cost, a, a);
        let plan = plan_symbolic(&dev, &cost, &cascade, cfg, &info, a.cols());
        let pool = WorkspacePool::new();
        let out = run_symbolic(&dev, &cost, &cascade, cfg, a, a, &info, &plan, &pool);
        let expect = spgemm_row_nnz(a, a);
        for (i, (&got, &want)) in out.row_nnz.iter().zip(expect.iter()).enumerate() {
            assert_eq!(got as usize, want, "row {i}");
        }
        out
    }

    #[test]
    fn counts_match_reference_uniform() {
        let a = uniform_random(400, 400, 2, 8, 11);
        check_counts(&a, &SpeckConfig::default());
    }

    #[test]
    fn counts_match_reference_skewed() {
        let a = rmat(9, 8, 0.57, 0.19, 0.19, 4);
        check_counts(&a, &SpeckConfig::default());
    }

    #[test]
    fn counts_match_reference_identity() {
        let a: Csr<f64> = Csr::identity(300);
        let out = check_counts(&a, &SpeckConfig::default());
        assert!(out.row_nnz.iter().all(|&c| c == 1));
    }

    #[test]
    fn counts_match_with_dense_path() {
        // Big dense block rows force the symbolic dense accumulator.
        let a = block_diagonal(1, 300, 1.0, 9);
        let out = check_counts(&a, &SpeckConfig::default());
        assert_eq!(out.row_nnz[0], 300);
    }

    #[test]
    fn counts_match_hash_only_ablation() {
        // A single row whose output has more distinct columns than even the
        // largest hash map (24 576 symbolic entries) holds: identity plus a
        // full first row of width 30 000. Hash-only (dense disabled) must
        // fall back to the global map and still count exactly.
        let n = 30_000u32;
        let mut coo = speck_sparse::Coo::<f64>::new(n as usize, n as usize);
        for j in 0..n {
            coo.push(0, j, 1.0);
        }
        for i in 1..n {
            coo.push(i, i, 1.0);
        }
        let a = coo.to_csr();
        let out = check_counts(&a, &SpeckConfig::hash_only());
        assert!(out.spilled_blocks > 0, "expected global hash fallback");
        assert_eq!(out.row_nnz[0], n);
    }

    #[test]
    fn counts_match_all_lb_modes() {
        let a = rmat(8, 6, 0.57, 0.19, 0.19, 2);
        for mode in [
            crate::GlobalLbMode::Auto,
            crate::GlobalLbMode::AlwaysOn,
            crate::GlobalLbMode::AlwaysOff,
        ] {
            let cfg = SpeckConfig {
                global_lb: mode,
                ..SpeckConfig::default()
            };
            check_counts(&a, &cfg);
        }
    }

    #[test]
    fn empty_matrix_counts_zero() {
        let a: Csr<f64> = Csr::empty(50, 50);
        let out = check_counts(&a, &SpeckConfig::default());
        assert!(out.row_nnz.iter().all(|&c| c == 0));
    }

    #[test]
    fn fixed_local_lb_still_correct() {
        let a = uniform_random(300, 300, 1, 12, 5);
        check_counts(&a, &SpeckConfig::fixed_local_lb());
    }
}
