//! Lightweight row analysis — paper Algorithm 1 (§4.1).
//!
//! For every row of A, gather in one O(NNZ(A)) pass: (a) the total number
//! of products, (b) the longest referenced row of B, and (c) the minimum
//! and maximum column index over all referenced rows of B. The global
//! maximum product count over rows is also extracted. This is all the
//! information the global and local load balancers and the accumulator
//! selection consume.

use crate::cascade::{symbolic_entry_bytes, KernelCascade};
use speck_simt::{launch_map, BlockCtx, CostModel, DeviceConfig, KernelConfig, KernelReport};
use speck_sparse::{Csr, Scalar};

/// Per-row analysis record.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RowInfo {
    /// Total products of this row: sum of referenced B row lengths
    /// (upper bound on temporary elements; `prod_r` in Alg. 1).
    pub products: u64,
    /// Length of the longest referenced row of B (`prod_{r,max}`).
    pub max_b_row: u32,
    /// Smallest column index reachable in this output row.
    pub col_min: u32,
    /// Largest column index reachable in this output row (inclusive).
    pub col_max: u32,
    /// NNZ of this row of A.
    pub nnz_a: u32,
}

impl RowInfo {
    /// Width of the reachable column range (0 for empty rows).
    pub fn col_range(&self) -> u64 {
        if self.products == 0 {
            0
        } else {
            (self.col_max - self.col_min) as u64 + 1
        }
    }
}

/// Whole-matrix analysis result.
#[derive(Clone, Debug)]
pub struct AnalysisInfo {
    /// Per-row records, `a.rows()` entries.
    pub rows: Vec<RowInfo>,
    /// Maximum products over all rows (`prod_max` in Alg. 1).
    pub max_products: u64,
    /// Total products of the multiplication.
    pub total_products: u64,
    /// Rows whose conservative product count exceeds even the largest
    /// symbolic hash map of the device's kernel cascade — the rows that
    /// can force a global hash-map fallback (paper §4.3). Counted once
    /// here so the pipeline's overflow-pool sizing (cold path and plan
    /// reuse alike) doesn't re-scan all rows per call.
    pub overflow_rows: usize,
}

impl AnalysisInfo {
    /// Mean products per row (0 for an empty matrix).
    pub fn avg_products(&self) -> f64 {
        if self.rows.is_empty() {
            0.0
        } else {
            self.total_products as f64 / self.rows.len() as f64
        }
    }

    /// The paper's `m_max / m_avg` load-variance measure over the
    /// conservative scratchpad demands (§5). Returns 1.0 for degenerate
    /// inputs so the "uniform" branch is taken.
    pub fn demand_ratio(&self) -> f64 {
        let avg = self.avg_products();
        if avg <= 0.0 {
            1.0
        } else {
            self.max_products as f64 / avg
        }
    }
}

/// Runs the row analysis as a simulated kernel; returns the analysis and
/// the kernel report for stage accounting.
pub fn analyze<V: Scalar>(
    dev: &DeviceConfig,
    cost: &CostModel,
    a: &Csr<V>,
    b: &Csr<V>,
) -> (AnalysisInfo, KernelReport) {
    assert_eq!(a.cols(), b.rows(), "analyze: dimension mismatch");
    let n = a.rows();
    let threads = 256usize.min(dev.max_threads_per_block);
    // The pass parallelises over the NZ of A (paper §4.1): size the grid to
    // saturate the device, keeping blocks at least a warp's worth of rows
    // but no more than ~1k NZ each (matrices with few, heavy rows would
    // otherwise leave most SMs idle).
    let by_rows = n.div_ceil(dev.num_sms * dev.blocks_per_sm(threads, 0));
    let by_nnz = (n * 1024).div_ceil(a.nnz().max(1));
    let rows_per_block = by_rows.min(by_nnz).clamp(1, 4096).max(1);
    let grid = n.div_ceil(rows_per_block);
    let cfg = KernelConfig::new(threads, 0);

    let (report, per_block): (KernelReport, Vec<Vec<RowInfo>>) = launch_map(
        dev,
        cost,
        "row_analysis",
        grid,
        cfg,
        |ctx: &mut BlockCtx| {
            let start = ctx.block_id() * rows_per_block;
            let end = (start + rows_per_block).min(n);
            let mut out = Vec::with_capacity(end - start);
            let mut nnz_in_block = 0usize;
            for i in start..end {
                let (a_cols, _) = a.row(i);
                let mut info = RowInfo {
                    products: 0,
                    max_b_row: 0,
                    col_min: u32::MAX,
                    col_max: 0,
                    nnz_a: a_cols.len() as u32,
                };
                for &k in a_cols {
                    let k = k as usize;
                    let len = b.row_nnz(k) as u64;
                    info.products += len;
                    info.max_b_row = info.max_b_row.max(len as u32);
                    if len > 0 {
                        let (b_cols, _) = b.row(k);
                        info.col_min = info.col_min.min(b_cols[0]);
                        info.col_max = info.col_max.max(*b_cols.last().unwrap());
                    }
                }
                if info.products == 0 {
                    info.col_min = 0;
                    info.col_max = 0;
                }
                nnz_in_block += a_cols.len();
                out.push(info);
            }
            // Cost: stream A's columns once (coalesced, 4 B each); per NZ of
            // A, fetch the B row-offset pair plus the first and last column
            // of the referenced row — amortised to ~1 scattered sector per
            // NZ, since clustered references (the common case, cf. paper
            // Fig. 8) hit cache (Alg. 1 lines 5-7). The block-level
            // prod_max reduction is a couple of scratchpad ops per row.
            ctx.charge_gmem_stream(ctx.threads(), end - start + 1, 8); // A row_ptr
            ctx.charge_gmem_stream(ctx.threads(), nnz_in_block, 4); // A cols
            ctx.charge_gmem_scatter(nnz_in_block as u64);
            ctx.charge_smem(2 * (end - start) as u64);
            out
        },
    );

    let mut rows = Vec::with_capacity(n);
    for block in per_block {
        rows.extend(block);
    }
    let max_products = rows.iter().map(|r| r.products).max().unwrap_or(0);
    let total_products = rows.iter().map(|r| r.products).sum();
    // Host-side bookkeeping folded into the analysis sweep: it charges
    // nothing (the simulated kernel above already paid for reading the
    // per-row products).
    let cascade = KernelCascade::for_device(dev);
    let overflow_cap = cascade.hash_capacity(cascade.largest(), symbolic_entry_bytes(b.cols()));
    let overflow_rows = rows
        .iter()
        .filter(|r| r.products as usize > overflow_cap)
        .count();
    (
        AnalysisInfo {
            rows,
            max_products,
            total_products,
            overflow_rows,
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use speck_sparse::gen::{rmat, uniform_random};

    fn run(a: &Csr<f64>, b: &Csr<f64>) -> AnalysisInfo {
        analyze(&DeviceConfig::tiny(), &CostModel::default(), a, b).0
    }

    #[test]
    fn matches_direct_computation_small() {
        let a =
            Csr::from_parts(3, 3, vec![0, 2, 2, 3], vec![0, 2, 1], vec![1.0, 1.0, 1.0]).unwrap();
        let b =
            Csr::from_parts(3, 4, vec![0, 2, 3, 6], vec![1, 3, 0, 0, 1, 2], vec![1.0; 6]).unwrap();
        let info = run(&a, &b);
        // Row 0 references B rows 0 (len 2, cols 1..3) and 2 (len 3, cols 0..2).
        assert_eq!(info.rows[0].products, 5);
        assert_eq!(info.rows[0].max_b_row, 3);
        assert_eq!(info.rows[0].col_min, 0);
        assert_eq!(info.rows[0].col_max, 3);
        assert_eq!(info.rows[0].nnz_a, 2);
        // Row 1 is empty.
        assert_eq!(info.rows[1].products, 0);
        assert_eq!(info.rows[1].col_range(), 0);
        // Row 2 references B row 1 (len 1, col 0).
        assert_eq!(info.rows[2].products, 1);
        assert_eq!(info.rows[2].col_min, 0);
        assert_eq!(info.rows[2].col_max, 0);
        assert_eq!(info.max_products, 5);
        assert_eq!(info.total_products, 6);
    }

    #[test]
    fn total_products_matches_csr_products() {
        let a = uniform_random(300, 300, 1, 8, 3);
        let info = run(&a, &a);
        assert_eq!(info.total_products, a.products(&a));
        assert_eq!(info.rows.len(), 300);
    }

    #[test]
    fn demand_ratio_distinguishes_uniform_from_skewed() {
        let uniform = uniform_random(500, 500, 4, 4, 1);
        let skewed = rmat(9, 8, 0.57, 0.19, 0.19, 1);
        let ru = run(&uniform, &uniform).demand_ratio();
        let rs = run(&skewed, &skewed).demand_ratio();
        assert!(ru < 3.0, "uniform ratio {ru}");
        assert!(rs > 5.0, "skewed ratio {rs}");
    }

    #[test]
    fn col_range_covers_reachable_columns() {
        let a = uniform_random(100, 100, 1, 5, 9);
        let info = run(&a, &a);
        let c = speck_sparse::reference::spgemm_seq(&a, &a);
        for i in 0..100 {
            let (cols, _) = c.row(i);
            if let (Some(&first), Some(&last)) = (cols.first(), cols.last()) {
                assert!(info.rows[i].col_min <= first);
                assert!(info.rows[i].col_max >= last);
            }
        }
    }

    #[test]
    fn analysis_cost_scales_with_nnz() {
        let small = uniform_random(200, 200, 2, 2, 5);
        let big = uniform_random(200, 200, 16, 16, 5);
        let dev = DeviceConfig::tiny();
        let cm = CostModel::default();
        let (_, r_small) = analyze(&dev, &cm, &small, &small);
        let (_, r_big) = analyze(&dev, &cm, &big, &big);
        assert!(r_big.sim_cycles > r_small.sim_cycles);
    }

    #[test]
    fn empty_matrix_analysis() {
        let a: Csr<f64> = Csr::empty(10, 10);
        let info = run(&a, &a);
        assert_eq!(info.total_products, 0);
        assert_eq!(info.max_products, 0);
        assert_eq!(info.demand_ratio(), 1.0);
    }
}
