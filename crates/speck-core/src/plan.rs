//! Reusable multiplication plans and the pattern-keyed plan cache.
//!
//! spECK's two-pass design computes everything about C's *structure* —
//! row analysis, load-balancer bins, per-block accumulator choices, exact
//! row sizes — before a single output value exists. When a caller
//! multiplies the same sparsity pattern repeatedly with fresh values (AMG
//! Galerkin products, iterative graph kernels, repeated inference over a
//! fixed topology), all of that setup is pattern-only and can be computed
//! once. This module provides:
//!
//! * [`SpgemmPlan`] — the self-contained result of the setup stages
//!   (analysis, symbolic load balancing, symbolic pass, numeric load
//!   balancing), enough to run the numeric pass directly. Built by
//!   [`crate::pipeline::plan_with_pool`] / [`crate::SpeckSpgemm::plan`],
//!   consumed by [`crate::pipeline::execute_plan_with_pool`] /
//!   [`crate::SpeckSpgemm::execute_plan`].
//! * [`PatternKey`] + [`pattern_fingerprint`] — a cheap FNV-1a fingerprint
//!   of `(dims, row_ptr, col_idx)` of both operands, so
//!   [`crate::SpeckSpgemm::multiply`] can transparently detect a repeated
//!   pattern.
//! * [`PlanCache`] — a bounded LRU map from [`PatternKey`] to a
//!   type-erased [`SpgemmPlan`], shared by engine clones.
//!
//! This mirrors the reuse APIs of production SpGEMM libraries (cuSPARSE's
//! `cusparseSpGEMMreuse`, KokkosKernels' symbolic/numeric split): the
//! setup cost is amortised across executions, which is an *algorithmic*
//! win — the reused call launches no analysis, binning, or symbolic
//! kernels at all, so its simulated time drops along with the wall clock.

use crate::analysis::AnalysisInfo;
use crate::global_lb::{GateProvenance, PassPlan, PassSummary};
use speck_simt::Timeline;
use speck_sparse::{Csr, Scalar};
use std::any::{Any, TypeId};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::sync::Arc;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;
/// Seed of the secondary (verification) fingerprint — any odd constant
/// different from the FNV offset basis works.
const CHECK_OFFSET: u64 = 0x9e37_79b9_7f4a_7c15;

/// FNV-1a over a byte stream (used for the engine's environment digest).
pub(crate) fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Streams one matrix pattern (dims, `row_ptr`, `col_idx`) into two
/// FNV-1a accumulators at once.
fn mix_pattern<V: Scalar>(m: &Csr<V>, h: &mut (u64, u64)) {
    let mut step = |w: u64| {
        h.0 ^= w;
        h.0 = h.0.wrapping_mul(FNV_PRIME);
        h.1 ^= w;
        h.1 = h.1.wrapping_mul(FNV_PRIME);
    };
    step(m.rows() as u64);
    step(m.cols() as u64);
    for &p in m.row_ptr() {
        step(p as u64);
    }
    // Pack two u32 columns per word; the odd tail is padded with a marker
    // that cannot be a column index pair.
    for pair in m.col_idx().chunks(2) {
        let w = if pair.len() == 2 {
            ((pair[0] as u64) << 32) | pair[1] as u64
        } else {
            (pair[0] as u64) | (1 << 63)
        };
        step(w);
    }
}

/// The primary 64-bit FNV-1a fingerprint of an `(A, B)` sparsity-pattern
/// pair: dimensions, `row_ptr`, and `col_idx` of both operands. Values are
/// deliberately excluded — a plan depends only on the pattern.
pub fn pattern_fingerprint<V: Scalar>(a: &Csr<V>, b: &Csr<V>) -> u64 {
    let mut h = (FNV_OFFSET, CHECK_OFFSET);
    mix_pattern(a, &mut h);
    mix_pattern(b, &mut h);
    h.0
}

/// Cache key identifying one `(A, B)` pattern under one engine
/// environment (device + cost model + configuration) and scalar type.
///
/// Equality compares the primary *and* a secondary fingerprint plus exact
/// dimensions and NNZ counts, so a collision of the primary hash alone
/// never aliases two patterns. `Hash` intentionally covers only the
/// primary fingerprint: colliding primaries land in the same bucket and
/// are separated by `Eq` (exercised by the collision tests below).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PatternKey {
    pub(crate) primary: u64,
    pub(crate) check: u64,
    pub(crate) a_rows: usize,
    pub(crate) a_cols: usize,
    pub(crate) b_cols: usize,
    pub(crate) a_nnz: usize,
    pub(crate) b_nnz: usize,
    pub(crate) env: u64,
    pub(crate) vtype: TypeId,
}

#[allow(clippy::derived_hash_with_manual_eq)]
impl Hash for PatternKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.primary.hash(state);
    }
}

impl PatternKey {
    /// Builds the key for multiplying `a · b` with scalar type `V` under
    /// the environment digest `env` (see
    /// [`crate::SpeckSpgemm`]'s cache: device + cost + config).
    pub fn new<V: Scalar>(a: &Csr<V>, b: &Csr<V>, env: u64) -> Self {
        let mut h = (FNV_OFFSET, CHECK_OFFSET);
        mix_pattern(a, &mut h);
        mix_pattern(b, &mut h);
        PatternKey {
            primary: h.0,
            check: h.1,
            a_rows: a.rows(),
            a_cols: a.cols(),
            b_cols: b.cols(),
            a_nnz: a.nnz(),
            b_nnz: b.nnz(),
            env,
            vtype: TypeId::of::<V>(),
        }
    }
}

/// A reusable multiplication plan: everything the setup stages (row
/// analysis, symbolic load balancing, symbolic SpGEMM, numeric load
/// balancing) produce for one `(A, B)` sparsity pattern.
///
/// Executing a plan ([`crate::SpeckSpgemm::execute_plan`]) runs only the
/// numeric pass and the trailing sort; the plan supplies the analysis
/// records, the numeric block plan with its launch groups, C's exact row
/// structure, and the cached setup timeline/memory so a cold
/// plan-then-execute reproduces [`crate::multiply`] bit-for-bit.
#[derive(Clone, Debug)]
pub struct SpgemmPlan<V> {
    pub(crate) a_rows: usize,
    pub(crate) a_cols: usize,
    pub(crate) b_cols: usize,
    pub(crate) a_nnz: usize,
    pub(crate) b_nnz: usize,
    /// Per-row analysis records (paper Alg. 1) the numeric kernels read.
    pub(crate) info: AnalysisInfo,
    /// Decision summary of the symbolic pass (for reporting).
    pub(crate) symbolic: PassSummary,
    /// Gate provenance of the symbolic pass (the numeric pass's lives in
    /// `nplan.gate`) — the decision audit reconstructs the global-LB
    /// counterfactual from it.
    pub(crate) sym_gate: GateProvenance,
    /// Decision summary of the numeric pass (for reporting).
    pub(crate) numeric: PassSummary,
    /// The numeric block plan (bins, methods, kernel configurations).
    pub(crate) nplan: PassPlan,
    /// `nplan`'s blocks grouped into launches of identical
    /// (method, config), precomputed once.
    pub(crate) ngroups: BTreeMap<(u8, usize), Vec<usize>>,
    /// Exact NNZ of every row of C (symbolic pass output).
    pub(crate) row_nnz: Vec<u32>,
    /// Prefix-summed row offsets of C (`row_nnz` scanned; len `rows+1`).
    pub(crate) row_ptr: Vec<usize>,
    /// Simulated timeline of the setup stages (analysis through numeric
    /// load balancing, including their allocation overheads).
    pub(crate) setup_timeline: Timeline,
    /// Simulated device bytes the setup stages allocated (analysis
    /// records, LB bookkeeping, row counts, the global overflow-map
    /// pool). Held by the plan, so reused executions still account them.
    pub(crate) setup_mem_bytes: usize,
    /// Blocks that spilled to a global hash map during the symbolic pass.
    pub(crate) sym_spilled_blocks: usize,
    /// Execution trace of the setup stages, captured only when the plan
    /// was built by a tracing engine — a cold execute resumes from it so
    /// the combined trace covers the whole pipeline.
    pub(crate) setup_trace: Option<crate::trace::ExecutionTrace>,
    pub(crate) _values: PhantomData<fn() -> V>,
}

impl<V: Scalar> SpgemmPlan<V> {
    /// Exact NNZ of the output matrix C.
    pub fn nnz_c(&self) -> usize {
        *self.row_ptr.last().unwrap_or(&0)
    }

    /// Exact NNZ of every row of C, as counted by the symbolic pass.
    pub fn row_nnz(&self) -> &[u32] {
        &self.row_nnz
    }

    /// Prefix-summed row offsets of C (length `rows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Per-row analysis records the plan was built from.
    pub fn analysis(&self) -> &AnalysisInfo {
        &self.info
    }

    /// Simulated seconds of the setup stages this plan amortises
    /// (analysis + symbolic load + symbolic pass + numeric load).
    pub fn setup_sim_time_s(&self) -> f64 {
        self.setup_timeline.total_seconds()
    }

    /// Checks that `(a, b)` structurally match the plan's dimensions and
    /// NNZ counts; panics otherwise. Column-index equality is the
    /// caller's contract (the engine's cache verifies it by fingerprint).
    pub(crate) fn check_shape(&self, a: &Csr<V>, b: &Csr<V>) {
        assert!(
            a.rows() == self.a_rows
                && a.cols() == self.a_cols
                && b.rows() == self.a_cols
                && b.cols() == self.b_cols
                && a.nnz() == self.a_nnz
                && b.nnz() == self.b_nnz,
            "execute_plan: operands do not match the plan \
             (plan: A {}x{}/{} nnz, B {}x{}/{} nnz; got A {}x{}/{} nnz, B {}x{}/{} nnz)",
            self.a_rows,
            self.a_cols,
            self.a_nnz,
            self.a_cols,
            self.b_cols,
            self.b_nnz,
            a.rows(),
            a.cols(),
            a.nnz(),
            b.rows(),
            b.cols(),
            b.nnz(),
        );
    }
}

struct CacheSlot {
    plan: Arc<dyn Any + Send + Sync>,
    last_used: u64,
}

/// Bounded LRU cache mapping [`PatternKey`]s to type-erased
/// [`SpgemmPlan`]s.
///
/// Capacity 0 disables caching entirely (lookups miss, inserts are
/// dropped). Eviction is strict least-recently-used by lookup/insert
/// order.
pub struct PlanCache {
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    entries: HashMap<PatternKey, CacheSlot>,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            entries: HashMap::new(),
        }
    }

    /// Maximum number of plans retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of plans currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` counters over the cache's lifetime.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of plans evicted by the LRU policy over the cache's
    /// lifetime (replacements and `clear` do not count).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: &PatternKey) -> Option<Arc<dyn Any + Send + Sync>> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(slot) => {
                slot.last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&slot.plan))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) the plan under `key`, evicting the
    /// least-recently-used entry when full. A zero-capacity cache drops
    /// the insert.
    pub fn insert(&mut self, key: PatternKey, plan: Arc<dyn Any + Send + Sync>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            CacheSlot {
                plan,
                last_used: self.tick,
            },
        );
    }

    /// Drops every cached plan (counters keep running).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("len", &self.entries.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("evictions", &self.evictions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speck_sparse::Coo;

    fn key_with(primary: u64, check: u64, env: u64) -> PatternKey {
        PatternKey {
            primary,
            check,
            a_rows: 4,
            a_cols: 4,
            b_cols: 4,
            a_nnz: 4,
            b_nnz: 4,
            env,
            vtype: TypeId::of::<f64>(),
        }
    }

    fn plan_token(id: usize) -> Arc<dyn Any + Send + Sync> {
        Arc::new(id)
    }

    fn token_id(a: &Arc<dyn Any + Send + Sync>) -> usize {
        *a.clone().downcast::<usize>().unwrap()
    }

    #[test]
    fn fingerprint_separates_same_shape_patterns() {
        // Same dims, same NNZ, different column structure.
        let mut c1: Coo<f64> = Coo::new(4, 4);
        let mut c2: Coo<f64> = Coo::new(4, 4);
        for i in 0..4u32 {
            c1.push(i, i, 1.0);
            c2.push(i, 3 - i, 1.0);
        }
        let (m1, m2) = (c1.to_csr(), c2.to_csr());
        assert_ne!(pattern_fingerprint(&m1, &m1), pattern_fingerprint(&m2, &m2));
        assert_ne!(
            PatternKey::new(&m1, &m1, 0),
            PatternKey::new(&m2, &m2, 0),
            "keys must differ when only col_idx differs"
        );
        // Values do not participate: scaling every value leaves the key.
        let m1s = speck_sparse::Csr::from_parts_unchecked(
            m1.rows(),
            m1.cols(),
            m1.row_ptr().to_vec(),
            m1.col_idx().to_vec(),
            m1.vals().iter().map(|&v| v * 3.25).collect(),
        );
        assert_eq!(PatternKey::new(&m1, &m1, 0), PatternKey::new(&m1s, &m1s, 0));
    }

    #[test]
    fn colliding_primaries_stay_distinct_entries() {
        // Two keys built to share the primary fingerprint (the only part
        // `Hash` sees) while differing in the secondary: they collide in
        // the map bucket by construction, and Eq must keep them apart.
        let k1 = key_with(0xdead_beef, 1, 0);
        let k2 = key_with(0xdead_beef, 2, 0);
        assert_ne!(k1, k2);
        let mut cache = PlanCache::new(4);
        cache.insert(k1, plan_token(1));
        cache.insert(k2, plan_token(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(token_id(&cache.get(&k1).unwrap()), 1);
        assert_eq!(token_id(&cache.get(&k2).unwrap()), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (k1, k2, k3) = (key_with(1, 1, 0), key_with(2, 2, 0), key_with(3, 3, 0));
        let mut cache = PlanCache::new(2);
        cache.insert(k1, plan_token(1));
        cache.insert(k2, plan_token(2));
        // Touch k1 so k2 becomes the LRU entry.
        assert!(cache.get(&k1).is_some());
        cache.insert(k3, plan_token(3));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&k2).is_none(), "LRU entry must be evicted");
        assert!(cache.get(&k1).is_some());
        assert!(cache.get(&k3).is_some());
    }

    #[test]
    fn changed_pattern_misses() {
        // Cache invalidation is structural: a pattern change yields a new
        // key, so the stale plan is simply never returned (and ages out).
        let mut a: Coo<f64> = Coo::new(3, 3);
        a.push(0, 0, 1.0);
        a.push(1, 2, 1.0);
        let a = a.to_csr();
        let mut cache = PlanCache::new(4);
        cache.insert(PatternKey::new(&a, &a, 7), plan_token(1));
        // Same matrix, same env: hit.
        assert!(cache.get(&PatternKey::new(&a, &a, 7)).is_some());
        // Pattern changed (one extra entry): miss.
        let mut a2: Coo<f64> = Coo::new(3, 3);
        a2.push(0, 0, 1.0);
        a2.push(1, 2, 1.0);
        a2.push(2, 1, 1.0);
        let a2 = a2.to_csr();
        assert!(cache.get(&PatternKey::new(&a2, &a2, 7)).is_none());
        // Environment changed (device/cost/config digest): miss.
        assert!(cache.get(&PatternKey::new(&a, &a, 8)).is_none());
        // Scalar type changed: miss.
        let a32 = speck_sparse::Csr::<f32>::from_parts_unchecked(
            a.rows(),
            a.cols(),
            a.row_ptr().to_vec(),
            a.col_idx().to_vec(),
            a.vals().iter().map(|&v| v as f32).collect(),
        );
        assert!(cache.get(&PatternKey::new(&a32, &a32, 7)).is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = PlanCache::new(0);
        let k = key_with(1, 1, 0);
        cache.insert(k, plan_token(1));
        assert!(cache.is_empty());
        assert!(cache.get(&k).is_none());
        assert_eq!(cache.stats(), (0, 1));
    }
}
