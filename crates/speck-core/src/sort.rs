//! Sorting of hash-accumulated rows (paper §4.3 "Numeric SpGEMM").
//!
//! The three smallest kernel configurations sort their results inside
//! scratchpad by rank ("counting the number of elements in the hashmap
//! with smaller indices" — O(n²) work shared by the block's threads).
//! Larger hash kernels write unsorted output and a device-wide radix sort
//! pass fixes the order afterwards. Dense and direct rows need no sorting.

use speck_simt::{launch, CostModel, DeviceConfig, KernelConfig, KernelReport};

/// Largest cascade index (inclusive) that sorts in scratchpad.
pub const MAX_SCRATCH_SORT_CFG: usize = 2;

/// Largest block map for which the quadratic rank sort beats handing the
/// rows to the radix pass (the paper's small-kernel sizes keep `n` in this
/// range; beyond it O(n^2) loses to O(n)-per-pass radix).
pub const MAX_SCRATCH_SORT_ENTRIES: usize = 512;

/// Rank-sort cost for `n` entries on a `threads`-wide block, in warp-op
/// units: each entry compares against all others (`n^2` comparisons
/// total), the block's `T` lanes work in parallel (`ceil(n^2/T)` steps),
/// and each step issues one op per resident warp (`T/32`).
pub fn scratch_sort_steps(n: usize, threads: usize) -> u64 {
    if n <= 1 {
        return 0;
    }
    let warps = (threads as u64).div_ceil(32).max(1);
    ((n as u64) * (n as u64)).div_ceil(threads as u64) * warps
}

/// Radix passes: 11-bit digits over 32-bit keys, CUB-style.
const RADIX_PASSES: u64 = 3;

/// Simulated device-wide radix sort over `elems` key/value pairs of
/// `elem_bytes` each; returns `None` when nothing needs sorting.
pub fn radix_sort_pass(
    dev: &DeviceConfig,
    cost: &CostModel,
    elems: usize,
    elem_bytes: usize,
) -> Option<KernelReport> {
    if elems == 0 {
        return None;
    }
    let threads = dev.max_threads_per_block;
    let per_block = threads * 8;
    let grid = elems.div_ceil(per_block).max(1);
    let report = launch(
        dev,
        cost,
        "radix_sort",
        grid,
        KernelConfig::new(threads, 8 * 1024),
        |ctx| {
            let start = ctx.block_id() * per_block;
            let n = per_block.min(elems.saturating_sub(start));
            for _ in 0..RADIX_PASSES {
                // Read keys+values, histogram in scratchpad, scatter out.
                ctx.charge_gmem_stream(threads, n, elem_bytes);
                ctx.charge_smem_atomic(n as u64);
                ctx.charge_gmem_scatter(n as u64 / 4); // partially coalesced scatter
                ctx.charge_sync();
            }
        },
    );
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_sort_work_is_quadratic() {
        assert_eq!(scratch_sort_steps(0, 64), 0);
        assert_eq!(scratch_sort_steps(1, 64), 0);
        assert_eq!(scratch_sort_steps(64, 64), 128); // 64 steps x 2 warps
        assert_eq!(scratch_sort_steps(128, 64), 512);
        // Formula is ceil(n^2/T) * warps.
        assert_eq!(
            scratch_sort_steps(144, 128),
            (144u64 * 144).div_ceil(128) * 4
        );
        // Growing n 2x grows work 4x once past the thread count.
        let a = scratch_sort_steps(1000, 64);
        let b = scratch_sort_steps(2000, 64);
        assert!(b > 3 * a && b < 5 * a);
    }

    #[test]
    fn radix_cost_scales_linearly() {
        let dev = DeviceConfig::titan_v();
        let cm = CostModel::default();
        // Sizes large enough to saturate the device's block slots, so the
        // makespan becomes throughput-bound and scales with the input.
        let r1 = radix_sort_pass(&dev, &cm, 2_000_000, 12).unwrap();
        let r2 = radix_sort_pass(&dev, &cm, 4_000_000, 12).unwrap();
        let body1 = r1.sim_cycles - dev.launch_overhead_cycles;
        let body2 = r2.sim_cycles - dev.launch_overhead_cycles;
        assert!(
            body2 > 1.4 * body1 && body2 < 3.0 * body1,
            "body1={body1} body2={body2}"
        );
    }

    #[test]
    fn empty_sort_is_free() {
        let dev = DeviceConfig::titan_v();
        assert!(radix_sort_pass(&dev, &CostModel::default(), 0, 12).is_none());
    }

    #[test]
    fn scratch_sort_cutoff_matches_paper() {
        // Three smallest of six kernels sort in scratchpad.
        assert_eq!(MAX_SCRATCH_SORT_CFG, 2);
    }
}
