//! Reusable per-block kernel workspaces.
//!
//! Every simulated block used to allocate its accumulator and iteration
//! buffers from scratch — on the host that is pure allocator traffic, since
//! the *simulated* cost of the scratchpad is charged separately through
//! [`speck_simt::Scratchpad`]. A [`Workspace`] owns those buffers once and
//! re-arms them per block ("clear-on-reuse"): the hash accumulator resets
//! its keys and statistics, the dense chunk its mask, and the scratch
//! vectors just clear while keeping capacity.
//!
//! [`WorkspacePool`] hands workspaces to concurrently running blocks (one
//! checkout per block, returned on drop), and [`SharedWorkspaces`] keeps
//! one pool per scalar type so an engine can reuse them across `multiply`
//! calls — including the concurrent multiplies of
//! [`crate::SpeckSpgemm::multiply_batch`], which all draw from the same
//! registry.
//!
//! **Invariant — host-side reuse never changes simulated cost.** Whatever
//! a kernel charges through [`speck_simt::BlockCtx`] must be identical
//! whether its buffers are freshly allocated or reused; every `reset`
//! below therefore restores the exact logical state (including cost
//! counters) of a fresh buffer.

use crate::denseacc::DenseChunk;
use crate::hashacc::Accumulator;
use speck_sparse::Scalar;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Reusable buffers for one simulated block.
#[derive(Debug)]
pub struct Workspace<V> {
    /// Hash accumulator (key/value arrays); re-arm with
    /// [`Accumulator::reset`] before use.
    pub acc: Accumulator<V>,
    /// Dense accumulator window (mask/value arrays); re-arm with
    /// [`DenseChunk::reuse_numeric`] / [`DenseChunk::reuse_symbolic`].
    pub dense: DenseChunk<V>,
    /// Per-NZ iteration counts of the current block (clear before use).
    pub iters: Vec<u64>,
    /// Per-A-column cursors into B's rows (clear before use).
    pub cursors: Vec<usize>,
    /// Sorted (key, value) staging for accumulator drains.
    pub entries: Vec<(u64, V)>,
}

impl<V: Scalar> Workspace<V> {
    /// A workspace with minimal buffers; they grow on first use and stay
    /// grown.
    pub fn new() -> Self {
        Self {
            acc: Accumulator::new(1),
            dense: DenseChunk::symbolic(0, 1),
            iters: Vec::new(),
            cursors: Vec::new(),
            entries: Vec::new(),
        }
    }
}

impl<V: Scalar> Default for Workspace<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// A pool of [`Workspace`]s shared by concurrently executing blocks.
///
/// `acquire` pops an idle workspace (or creates one when all are checked
/// out); the guard returns it on drop. The pool therefore holds at most
/// one workspace per peak-concurrent block, regardless of grid size.
#[derive(Debug, Default)]
pub struct WorkspacePool<V> {
    idle: Mutex<Vec<Workspace<V>>>,
    in_use: AtomicUsize,
    peak_in_use: AtomicUsize,
}

impl<V: Scalar> WorkspacePool<V> {
    /// An empty pool.
    pub fn new() -> Self {
        Self {
            idle: Mutex::new(Vec::new()),
            in_use: AtomicUsize::new(0),
            peak_in_use: AtomicUsize::new(0),
        }
    }

    /// Checks a workspace out; it returns to the pool when the guard
    /// drops.
    pub fn acquire(&self) -> WorkspaceGuard<'_, V> {
        let ws = self.idle.lock().unwrap().pop().unwrap_or_default();
        let now = self.in_use.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_in_use.fetch_max(now, Ordering::Relaxed);
        WorkspaceGuard {
            pool: self,
            ws: Some(ws),
        }
    }

    /// Number of idle workspaces currently pooled.
    pub fn idle_count(&self) -> usize {
        self.idle.lock().unwrap().len()
    }

    /// Number of workspaces currently checked out.
    pub fn in_use_count(&self) -> usize {
        self.in_use.load(Ordering::Relaxed)
    }

    /// Highest number of simultaneously checked-out workspaces seen — the
    /// pool's occupancy high-water mark (block concurrency actually
    /// reached, as opposed to grid size).
    pub fn peak_in_use(&self) -> usize {
        self.peak_in_use.load(Ordering::Relaxed)
    }
}

/// RAII checkout of a [`Workspace`]; dereferences to the workspace.
pub struct WorkspaceGuard<'a, V: Scalar> {
    pool: &'a WorkspacePool<V>,
    ws: Option<Workspace<V>>,
}

impl<V: Scalar> std::ops::Deref for WorkspaceGuard<'_, V> {
    type Target = Workspace<V>;
    fn deref(&self) -> &Workspace<V> {
        self.ws.as_ref().unwrap()
    }
}

impl<V: Scalar> std::ops::DerefMut for WorkspaceGuard<'_, V> {
    fn deref_mut(&mut self) -> &mut Workspace<V> {
        self.ws.as_mut().unwrap()
    }
}

impl<V: Scalar> Drop for WorkspaceGuard<'_, V> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            self.pool.idle.lock().unwrap().push(ws);
            self.pool.in_use.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// One registered pool plus monomorphised probes for its occupancy, so
/// the type-erased registry can report totals without knowing `V`.
struct PoolEntry {
    pool: Arc<dyn Any + Send + Sync>,
    idle: fn(&(dyn Any + Send + Sync)) -> usize,
    peak: fn(&(dyn Any + Send + Sync)) -> usize,
}

fn idle_of<V: Scalar>(any: &(dyn Any + Send + Sync)) -> usize {
    any.downcast_ref::<WorkspacePool<V>>()
        .map_or(0, |p| p.idle_count())
}

fn peak_of<V: Scalar>(any: &(dyn Any + Send + Sync)) -> usize {
    any.downcast_ref::<WorkspacePool<V>>()
        .map_or(0, |p| p.peak_in_use())
}

/// Type-erased registry of one [`WorkspacePool`] per scalar type, letting
/// [`crate::SpeckSpgemm`] (whose `multiply` is generic) keep its pools
/// alive across calls.
#[derive(Default)]
pub struct SharedWorkspaces {
    pools: Mutex<HashMap<TypeId, PoolEntry>>,
}

impl SharedWorkspaces {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The pool for scalar type `V`, created on first request.
    pub fn pool<V: Scalar>(&self) -> Arc<WorkspacePool<V>> {
        let mut pools = self.pools.lock().unwrap();
        let entry = pools.entry(TypeId::of::<V>()).or_insert_with(|| PoolEntry {
            pool: Arc::new(WorkspacePool::<V>::new()) as Arc<dyn Any + Send + Sync>,
            idle: idle_of::<V>,
            peak: peak_of::<V>,
        });
        Arc::clone(&entry.pool)
            .downcast::<WorkspacePool<V>>()
            .expect("workspace pool type mismatch")
    }

    /// Total idle workspaces across every scalar type's pool — a coarse
    /// gauge of peak block concurrency seen so far (batched multiplies
    /// grow it toward the rayon width times per-call concurrency).
    pub fn total_idle(&self) -> usize {
        let pools = self.pools.lock().unwrap();
        pools.values().map(|e| (e.idle)(e.pool.as_ref())).sum()
    }

    /// Sum of every pool's occupancy high-water mark (see
    /// [`WorkspacePool::peak_in_use`]).
    pub fn total_peak_in_use(&self) -> usize {
        let pools = self.pools.lock().unwrap();
        pools.values().map(|e| (e.peak)(e.pool.as_ref())).sum()
    }
}

impl std::fmt::Debug for SharedWorkspaces {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedWorkspaces")
            .field("pools", &self.pools.lock().unwrap().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashacc::compound_key;

    #[test]
    fn pool_recycles_workspaces() {
        let pool: WorkspacePool<f64> = WorkspacePool::new();
        {
            let mut a = pool.acquire();
            let mut b = pool.acquire();
            a.iters.push(1);
            b.iters.push(2);
            assert_eq!(pool.idle_count(), 0);
            assert_eq!(pool.in_use_count(), 2);
        }
        assert_eq!(pool.idle_count(), 2);
        assert_eq!(pool.in_use_count(), 0);
        assert_eq!(pool.peak_in_use(), 2);
        let c = pool.acquire();
        assert_eq!(pool.idle_count(), 1);
        // The recycled buffer keeps its capacity; kernels clear it.
        assert!(c.iters.capacity() >= 1);
    }

    #[test]
    fn accumulator_reset_matches_fresh() {
        let pool: WorkspacePool<f64> = WorkspacePool::new();
        let insert_and_snapshot = |acc: &mut Accumulator<f64>| {
            for i in 0..20u32 {
                acc.insert(compound_key(0, i % 7), 1.5);
            }
            (acc.stats, acc.drain_sorted())
        };
        let (fresh_stats, fresh_out) = {
            let mut acc = Accumulator::new(16);
            insert_and_snapshot(&mut acc)
        };
        // Dirty a pooled accumulator at a different capacity, then reset.
        let mut ws = pool.acquire();
        ws.acc.reset(64);
        for i in 0..64u32 {
            ws.acc.insert(compound_key(1, i), 2.0);
        }
        ws.acc.reset(16);
        let (reused_stats, reused_out) = insert_and_snapshot(&mut ws.acc);
        assert_eq!(fresh_stats, reused_stats);
        assert_eq!(fresh_out, reused_out);
    }

    #[test]
    fn dense_reuse_matches_fresh() {
        let mut fresh: DenseChunk<f64> = DenseChunk::numeric(10, 30);
        fresh.add(12, 1.0);
        fresh.add(29, 2.0);

        let mut ws: Workspace<f64> = Workspace::new();
        ws.dense.reuse_symbolic(100, 200);
        ws.dense.mark(150);
        ws.dense.reuse_numeric(10, 30);
        ws.dense.add(12, 1.0);
        ws.dense.add(29, 2.0);

        assert_eq!(fresh.extract_sorted(), ws.dense.extract_sorted());
        assert_eq!(fresh.ops, ws.dense.ops);
        assert_eq!(fresh.touched(), ws.dense.touched());
    }

    #[test]
    fn shared_workspaces_one_pool_per_type() {
        let shared = SharedWorkspaces::new();
        let p1 = shared.pool::<f64>();
        let p2 = shared.pool::<f64>();
        let p3 = shared.pool::<f32>();
        assert!(Arc::ptr_eq(&p1, &p2));
        drop(p3);
        {
            let _g = p1.acquire();
        }
        assert_eq!(shared.pool::<f64>().idle_count(), 1);
    }
}
