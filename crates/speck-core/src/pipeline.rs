//! The end-to-end spECK pipeline (paper Fig. 2) and its public API.
//!
//! The pipeline is factored into two halves around the pattern/value
//! boundary of the algorithm:
//!
//! * [`plan_with_pool`] runs the *setup* stages — row analysis, symbolic
//!   load balancing, the symbolic pass, numeric load balancing — which
//!   depend only on the sparsity patterns of A and B, and packages their
//!   outputs as a self-contained [`SpgemmPlan`].
//! * [`execute_plan_with_pool`] runs the *execution* stages — the numeric
//!   pass and the trailing sort — against a plan and the operand values.
//!
//! [`multiply`] is plan-then-execute in one call (the cold path, bit
//! identical to the unfactored pipeline), and [`SpeckSpgemm::multiply`]
//! additionally caches plans by pattern fingerprint so repeated patterns
//! transparently skip the setup stages entirely (see [`crate::plan`]).

use crate::analysis::analyze;
use crate::cascade::KernelCascade;
use crate::config::SpeckConfig;
use crate::global_lb::{plan_numeric, plan_symbolic, ThresholdSet};
use crate::metrics::{MetricsRegistry, MetricsSink, MetricsSnapshot};
use crate::numeric::{row_ptr_from_nnz, run_numeric, NumericJob};
use crate::plan::{fnv1a_bytes, PatternKey, PlanCache, SpgemmPlan};
use crate::symbolic::{group_blocks, run_symbolic};
use crate::trace::{pass_annotations, ExecutionTrace, TraceBuilder};
use crate::workspace::{SharedWorkspaces, WorkspacePool};
use rayon::prelude::*;
use speck_simt::{CostModel, DeviceConfig, MemTracker, Timeline};
use speck_sparse::{Csr, Scalar};
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};

/// Stage names used in the timeline, matching paper Fig. 11.
pub mod stage {
    /// Row analysis (Alg. 1).
    pub const ANALYSIS: &str = "analysis";
    /// Global load balancing before the symbolic pass.
    pub const SYMBOLIC_LOAD: &str = "symb. load";
    /// Symbolic SpGEMM.
    pub const SYMBOLIC: &str = "symb. SpGEMM";
    /// Global load balancing before the numeric pass.
    pub const NUMERIC_LOAD: &str = "num. load";
    /// Numeric SpGEMM.
    pub const NUMERIC: &str = "num. SpGEMM";
    /// Trailing radix sort.
    pub const SORTING: &str = "sorting";
}

/// Everything the caller may want to know about one multiplication.
#[derive(Clone, Debug)]
pub struct MultiplyReport {
    /// Per-stage simulated durations (Fig. 11). For a reused plan this
    /// holds only the stages that actually ran (numeric + sorting).
    pub timeline: Timeline,
    /// Total simulated time in seconds.
    pub sim_time_s: f64,
    /// Peak simulated device memory (inputs excluded, output C included —
    /// the paper's Table 3/Fig. 10 convention). Plan-held setup structures
    /// are counted whether the call built them or reused them.
    pub peak_mem_bytes: usize,
    /// Whether the symbolic pass used the global load balancer.
    pub symbolic_used_lb: bool,
    /// Whether the numeric pass used the global load balancer.
    pub numeric_used_lb: bool,
    /// Threshold set consulted for the symbolic decision.
    pub symbolic_threshold_set: ThresholdSet,
    /// Threshold set consulted for the numeric decision.
    pub numeric_threshold_set: ThresholdSet,
    /// Demand-variance ratio `m_max/m_avg` seen by the symbolic decision.
    pub symbolic_ratio: f64,
    /// Demand-variance ratio seen by the numeric decision.
    pub numeric_ratio: f64,
    /// Blocks per method in the numeric pass: (hash, dense, direct).
    pub numeric_methods: (usize, usize, usize),
    /// Blocks that spilled to global hash maps across both passes (the
    /// symbolic figure comes from the plan when it was reused).
    pub spilled_blocks: usize,
    /// Elements routed through the global radix sort.
    pub radix_elems: usize,
    /// Total intermediate products of the multiplication.
    pub products: u64,
    /// Whether this call reused a precomputed [`SpgemmPlan`] and skipped
    /// the analysis/symbolic setup stages.
    pub reused_plan: bool,
    /// Full execution trace of the call, present only when the engine was
    /// built [`SpeckSpgemm::with_tracing`]. Cold calls cover the whole
    /// pipeline (setup + execution); reused calls cover only the stages
    /// that ran. `Arc` so cloning reports stays cheap.
    pub trace: Option<Arc<ExecutionTrace>>,
    /// Decision-provenance report reconciling every pipeline decision
    /// (gating, binning, merge, accumulator, group size) against measured
    /// per-block cycles and shadow-cost estimates of the rejected
    /// alternatives. Present only when the engine was built
    /// [`SpeckSpgemm::with_auditing`]; reused calls audit only the
    /// decisions whose kernels actually ran (the numeric half).
    pub audit: Option<Arc<crate::audit::DecisionReport>>,
}

impl MultiplyReport {
    /// GFLOPS at the paper's 2-ops-per-product convention.
    pub fn gflops(&self) -> f64 {
        if self.sim_time_s <= 0.0 {
            0.0
        } else {
            (2 * self.products) as f64 / self.sim_time_s / 1e9
        }
    }
}

/// Default number of reusable plans a [`SpeckSpgemm`] caches (LRU).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

/// Reusable engine: device + cost model + configuration.
///
/// The engine owns a [`SharedWorkspaces`] registry, so repeated `multiply`
/// calls reuse the same host-side accumulator buffers instead of
/// reallocating them (a host optimisation only — simulated cost is
/// unchanged), and a [`PlanCache`] keyed by pattern fingerprint, so
/// `multiply` on a repeated sparsity pattern transparently skips the
/// analysis and symbolic stages (an algorithmic win — simulated time
/// drops too; the report records `reused_plan: true`). Clones share both.
#[derive(Clone, Debug)]
pub struct SpeckSpgemm {
    /// Simulated device.
    pub device: DeviceConfig,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Algorithm configuration.
    pub config: SpeckConfig,
    workspaces: Arc<SharedWorkspaces>,
    plans: Arc<Mutex<PlanCache>>,
    metrics: Arc<MetricsRegistry>,
    tracing: bool,
    auditing: bool,
}

impl Default for SpeckSpgemm {
    fn default() -> Self {
        Self {
            device: DeviceConfig::titan_v(),
            cost: CostModel::default(),
            config: SpeckConfig::default(),
            workspaces: Arc::new(SharedWorkspaces::new()),
            plans: Arc::new(Mutex::new(PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY))),
            metrics: Arc::new(MetricsRegistry::new()),
            tracing: false,
            auditing: false,
        }
    }
}

impl SpeckSpgemm {
    /// Engine with a custom configuration on the default device.
    pub fn with_config(config: SpeckConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// Replaces the plan cache with one holding at most `capacity` plans.
    /// Capacity 0 disables plan reuse entirely: every `multiply` runs the
    /// full cold pipeline (useful for simulation-neutrality checks).
    pub fn with_plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.plans = Arc::new(Mutex::new(PlanCache::new(capacity)));
        self
    }

    /// Enables (or disables) execution tracing: every multiply through
    /// this engine captures per-block schedules in the simulator (a
    /// [`speck_simt::CaptureGuard`] spans the call) and attaches a full
    /// [`ExecutionTrace`] to its report. Tracing never changes simulated
    /// results — only the reports grow. Off by default; the disabled path
    /// costs one atomic load per kernel launch.
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Whether execution tracing is enabled.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Enables (or disables) decision auditing: every multiply through
    /// this engine captures per-block schedules (like tracing) and
    /// attaches a [`crate::audit::DecisionReport`] reconciling each
    /// pipeline decision against measured cycles and shadow-cost
    /// estimates of the rejected alternatives. Auditing never changes
    /// simulated results — the report is built read-only from the
    /// finished trace. Off by default, and the disabled path adds no
    /// work beyond tracing's one atomic load per launch.
    pub fn with_auditing(mut self, on: bool) -> Self {
        self.auditing = on;
        self
    }

    /// Whether decision auditing is enabled.
    pub fn auditing(&self) -> bool {
        self.auditing
    }

    /// Shares a metrics registry: every multiply through this engine (and
    /// its clones) records stage counters, kernel launches, and span
    /// timings into `registry`. Engines already share their registry with
    /// clones; this builder additionally lets several engines feed one
    /// registry (e.g. a digest engine and a caching engine in one bench).
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = registry;
        self
    }

    /// The engine's metrics registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Point-in-time snapshot of the engine's metrics, augmented with the
    /// plan-cache counters (`plan_cache/hits|misses|evictions` — counted
    /// inside the cache, injected here) and workspace-pool occupancy
    /// gauges (`pool/*` — volatile, never baseline-gated).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        let cache = self.plans.lock().unwrap();
        let (hits, misses) = cache.stats();
        snap.counters.insert("plan_cache/hits".into(), hits);
        snap.counters.insert("plan_cache/misses".into(), misses);
        snap.counters
            .insert("plan_cache/evictions".into(), cache.evictions());
        snap.gauges
            .insert("pool/plan_cache_len".into(), cache.len() as f64);
        drop(cache);
        snap.gauges.insert(
            "pool/workspace_idle".into(),
            self.workspaces.total_idle() as f64,
        );
        snap.gauges.insert(
            "pool/workspace_peak_in_use".into(),
            self.workspaces.total_peak_in_use() as f64,
        );
        snap
    }

    /// The engine's workspace registry (one buffer pool per scalar type).
    pub fn workspaces(&self) -> &Arc<SharedWorkspaces> {
        &self.workspaces
    }

    /// Lifetime `(hits, misses)` of the plan cache.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        self.plans.lock().unwrap().stats()
    }

    /// Number of plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.plans.lock().unwrap().len()
    }

    /// Drops every cached plan.
    pub fn clear_plan_cache(&self) {
        self.plans.lock().unwrap().clear()
    }

    /// Fingerprint of everything besides the operands that determines a
    /// plan: device, cost model, and configuration. Part of the cache key,
    /// so mutating the engine's public fields never revives a stale plan.
    fn env_digest(&self) -> u64 {
        // Tracing and auditing are part of the key: an observing engine
        // must not revive a plan that carries no setup trace (and vice
        // versa).
        let env = format!(
            "{:?}|{:?}|{:?}|trace={}|audit={}",
            self.device, self.cost, self.config, self.tracing, self.auditing
        );
        fnv1a_bytes(env.as_bytes())
    }

    /// Computes `C = A · B`; returns the result and the full report.
    ///
    /// When the `(A, B)` sparsity pattern (and scalar type, device, cost
    /// model, and configuration) matches a cached plan, the setup stages
    /// are skipped and the report's `reused_plan` is true; otherwise the
    /// full pipeline runs and the new plan is cached.
    pub fn multiply<V: Scalar>(&self, a: &Csr<V>, b: &Csr<V>) -> (Csr<V>, MultiplyReport) {
        let m = MetricsSink::new(&self.metrics);
        m.add("engine/multiply_calls", 1);
        let observe = self.tracing || self.auditing;
        let _capture = observe.then(speck_simt::CaptureGuard::new);
        let pool = self.workspaces.pool::<V>();
        if self.plans.lock().unwrap().capacity() == 0 {
            let plan = plan_inner(
                &self.device,
                &self.cost,
                &self.config,
                a,
                b,
                &pool,
                observe,
                m,
            );
            return execute_inner(
                &self.device,
                &self.cost,
                &self.config,
                &plan,
                a,
                b,
                &pool,
                false,
                self.tracing,
                self.auditing,
                m,
            );
        }
        let key = PatternKey::new(a, b, self.env_digest());
        if let Some(hit) = self.plans.lock().unwrap().get(&key) {
            if let Ok(plan) = hit.downcast::<SpgemmPlan<V>>() {
                return execute_inner(
                    &self.device,
                    &self.cost,
                    &self.config,
                    &plan,
                    a,
                    b,
                    &pool,
                    true,
                    self.tracing,
                    self.auditing,
                    m,
                );
            }
        }
        let plan = Arc::new(plan_inner(
            &self.device,
            &self.cost,
            &self.config,
            a,
            b,
            &pool,
            observe,
            m,
        ));
        let out = execute_inner(
            &self.device,
            &self.cost,
            &self.config,
            &plan,
            a,
            b,
            &pool,
            false,
            self.tracing,
            self.auditing,
            m,
        );
        self.plans.lock().unwrap().insert(key, plan);
        out
    }

    /// Runs the setup stages only (analysis, symbolic load balancing,
    /// symbolic pass, numeric load balancing) and returns the reusable
    /// plan. Pair with [`SpeckSpgemm::execute_plan`] to amortise the setup
    /// across many multiplications of the same pattern.
    pub fn plan<V: Scalar>(&self, a: &Csr<V>, b: &Csr<V>) -> SpgemmPlan<V> {
        let observe = self.tracing || self.auditing;
        let _capture = observe.then(speck_simt::CaptureGuard::new);
        let pool = self.workspaces.pool::<V>();
        plan_inner(
            &self.device,
            &self.cost,
            &self.config,
            a,
            b,
            &pool,
            observe,
            MetricsSink::new(&self.metrics),
        )
    }

    /// Executes a plan against operands with the *same sparsity pattern*
    /// it was built from (values may differ): numeric pass + sort only.
    /// The report's timeline holds just those stages and `reused_plan` is
    /// true. Panics when the operands' shape or NNZ disagree with the
    /// plan; matching column structure is the caller's contract (the
    /// cached [`SpeckSpgemm::multiply`] verifies it by fingerprint).
    pub fn execute_plan<V: Scalar>(
        &self,
        plan: &SpgemmPlan<V>,
        a: &Csr<V>,
        b: &Csr<V>,
    ) -> (Csr<V>, MultiplyReport) {
        let _capture = (self.tracing || self.auditing).then(speck_simt::CaptureGuard::new);
        let pool = self.workspaces.pool::<V>();
        execute_inner(
            &self.device,
            &self.cost,
            &self.config,
            plan,
            a,
            b,
            &pool,
            true,
            self.tracing,
            self.auditing,
            MetricsSink::new(&self.metrics),
        )
    }

    /// Multiplies every `(A, B)` pair, running independent multiplies
    /// across the rayon pool. All calls share the engine's workspace
    /// registry and plan cache, so repeated patterns inside (or across)
    /// batches hit the reuse fast path. Results are returned in input
    /// order.
    pub fn multiply_batch<V: Scalar>(
        &self,
        pairs: &[(&Csr<V>, &Csr<V>)],
    ) -> Vec<(Csr<V>, MultiplyReport)> {
        pairs
            .par_iter()
            .map(|&(a, b)| self.multiply(a, b))
            .collect()
    }
}

/// Computes `C = A · B` with spECK on the simulator.
///
/// Panics when `a.cols() != b.rows()` (matching the reference
/// implementations in `speck-sparse`).
pub fn multiply<V: Scalar>(
    dev: &DeviceConfig,
    cost: &CostModel,
    cfg: &SpeckConfig,
    a: &Csr<V>,
    b: &Csr<V>,
) -> (Csr<V>, MultiplyReport) {
    multiply_with_pool(dev, cost, cfg, a, b, &WorkspacePool::new())
}

/// Like [`multiply`], but borrowing kernel workspaces from `pool` (and
/// leaving them there for later calls). The pool never affects the report —
/// only host-side allocation traffic.
pub fn multiply_with_pool<V: Scalar>(
    dev: &DeviceConfig,
    cost: &CostModel,
    cfg: &SpeckConfig,
    a: &Csr<V>,
    b: &Csr<V>,
    pool: &WorkspacePool<V>,
) -> (Csr<V>, MultiplyReport) {
    let plan = plan_with_pool(dev, cost, cfg, a, b, pool);
    execute_inner(
        dev,
        cost,
        cfg,
        &plan,
        a,
        b,
        pool,
        false,
        false,
        false,
        MetricsSink::none(),
    )
}

/// Runs the setup stages (analysis + symbolic load balancing + symbolic
/// pass + numeric load balancing) and returns the self-contained
/// [`SpgemmPlan`]. The plan captures the setup stages' simulated timeline
/// and device-memory footprint, so executing it cold reproduces
/// [`multiply`] bit for bit.
pub fn plan_with_pool<V: Scalar>(
    dev: &DeviceConfig,
    cost: &CostModel,
    cfg: &SpeckConfig,
    a: &Csr<V>,
    b: &Csr<V>,
    pool: &WorkspacePool<V>,
) -> SpgemmPlan<V> {
    plan_inner(dev, cost, cfg, a, b, pool, false, MetricsSink::none())
}

/// [`plan_with_pool`] with a metrics sink attached: every kernel launch,
/// load-balancing decision, and stage span is recorded. Recording reads
/// finished [`speck_simt::KernelReport`]s only, so simulated results are
/// bit-identical with or without a registry.
#[allow(clippy::too_many_arguments)]
fn plan_inner<V: Scalar>(
    dev: &DeviceConfig,
    cost: &CostModel,
    cfg: &SpeckConfig,
    a: &Csr<V>,
    b: &Csr<V>,
    pool: &WorkspacePool<V>,
    observe: bool,
    m: MetricsSink<'_>,
) -> SpgemmPlan<V> {
    assert_eq!(a.cols(), b.rows(), "spECK multiply: dimension mismatch");
    let span = m.span("plan");
    let cascade = KernelCascade::for_device(dev);
    let mut timeline = Timeline::new();
    // The tracer mirrors every timeline call below, in the same order, so
    // the finished trace reconciles with the timeline bit-for-bit.
    // `observe` is tracing OR auditing: the audit layer reads the same
    // setup trace a cold execute resumes from.
    let mut tracer = observe.then(|| TraceBuilder::new(dev));
    let mut setup_mem_bytes = 0usize;
    let alloc_s = |n: usize| dev.cycles_to_seconds(dev.alloc_overhead_cycles) * n as f64;

    // Stage 1: row analysis.
    let (info, analysis_report) = {
        let _s = span.child("analysis");
        analyze(dev, cost, a, b)
    };
    timeline.add_kernel(stage::ANALYSIS, &analysis_report);
    m.record_kernel(stage::ANALYSIS, &analysis_report);
    if let Some(t) = tracer.as_mut() {
        t.add_kernel(stage::ANALYSIS, &analysis_report, None, None, None);
    }
    setup_mem_bytes += info.rows.len() * std::mem::size_of::<crate::analysis::RowInfo>();
    timeline.add_fixed(stage::ANALYSIS, alloc_s(1));
    if let Some(t) = tracer.as_mut() {
        t.add_fixed(stage::ANALYSIS, "alloc", alloc_s(1));
    }

    // Stage 2: symbolic load balancing.
    let splan = {
        let _s = span.child("symbolic_lb");
        plan_symbolic(dev, cost, &cascade, cfg, &info, b.cols())
    };
    for r in &splan.lb_reports {
        timeline.add_kernel(stage::SYMBOLIC_LOAD, r);
        m.record_kernel(stage::SYMBOLIC_LOAD, r);
        if let Some(t) = tracer.as_mut() {
            t.add_kernel(stage::SYMBOLIC_LOAD, r, None, None, None);
        }
    }
    splan.record_metrics(&m, "symbolic");
    if splan.lb_alloc_bytes > 0 {
        setup_mem_bytes += splan.lb_alloc_bytes;
        timeline.add_fixed(stage::SYMBOLIC_LOAD, alloc_s(1));
        if let Some(t) = tracer.as_mut() {
            t.add_fixed(stage::SYMBOLIC_LOAD, "alloc", alloc_s(1));
        }
    }

    // Stage 3: symbolic SpGEMM.
    let sym = {
        let _s = span.child("symbolic");
        run_symbolic(dev, cost, &cascade, cfg, a, b, &info, &splan, pool)
    };
    for r in &sym.reports {
        timeline.add_kernel(stage::SYMBOLIC, r);
        m.record_kernel(stage::SYMBOLIC, r);
    }
    if let Some(t) = tracer.as_mut() {
        // One report per (method, config) group, in group order — stamp
        // each with its bin, accumulator, rows, and group size.
        let anns = pass_annotations(dev, &cascade, cfg, &info, &splan, &group_blocks(&splan));
        for (r, (acc, cfg_idx, ann)) in sym.reports.iter().zip(anns) {
            t.add_kernel(stage::SYMBOLIC, r, Some(cfg_idx), Some(acc), Some(ann));
        }
    }
    sym.record_metrics(&m);
    // Row-count array + prefix sum for C's offsets.
    setup_mem_bytes += (a.rows() + 1) * 8;
    timeline.add_fixed(stage::SYMBOLIC, alloc_s(1));
    if let Some(t) = tracer.as_mut() {
        t.add_fixed(stage::SYMBOLIC, "alloc", alloc_s(1));
    }

    // Stage 4: numeric load balancing on exact sizes.
    let nplan = {
        let _s = span.child("numeric_lb");
        plan_numeric(
            dev,
            cost,
            &cascade,
            cfg,
            &info,
            &sym.row_nnz,
            b.cols(),
            std::mem::size_of::<V>(),
        )
    };
    for r in &nplan.lb_reports {
        timeline.add_kernel(stage::NUMERIC_LOAD, r);
        m.record_kernel(stage::NUMERIC_LOAD, r);
        if let Some(t) = tracer.as_mut() {
            t.add_kernel(stage::NUMERIC_LOAD, r, None, None, None);
        }
    }
    nplan.record_metrics(&m, "numeric");
    if nplan.lb_alloc_bytes > 0 {
        setup_mem_bytes += nplan.lb_alloc_bytes;
        timeline.add_fixed(stage::NUMERIC_LOAD, alloc_s(1));
        if let Some(t) = tracer.as_mut() {
            t.add_fixed(stage::NUMERIC_LOAD, "alloc", alloc_s(1));
        }
    }

    // Global hash-map fallback pool: as many maps as can be live at once
    // (paper §4.3), sized by the largest conceivable overflow row. The
    // overflow-row count was hoisted into the analysis sweep.
    if info.overflow_rows > 0 {
        let largest_cfg = cascade.config(cascade.largest());
        let live = info
            .overflow_rows
            .min(dev.max_concurrent_blocks(largest_cfg.threads, largest_cfg.scratch_bytes));
        let per_map = info.max_products as usize * (8 + std::mem::size_of::<V>());
        setup_mem_bytes += live * per_map;
        timeline.add_fixed(stage::NUMERIC_LOAD, alloc_s(1));
        if let Some(t) = tracer.as_mut() {
            t.add_fixed(stage::NUMERIC_LOAD, "alloc overflow pool", alloc_s(1));
        }
    }

    let row_ptr = row_ptr_from_nnz(&sym.row_nnz);
    let ngroups = group_blocks(&nplan);
    SpgemmPlan {
        a_rows: a.rows(),
        a_cols: a.cols(),
        b_cols: b.cols(),
        a_nnz: a.nnz(),
        b_nnz: b.nnz(),
        symbolic: splan.summary(),
        sym_gate: splan.gate,
        numeric: nplan.summary(),
        info,
        nplan,
        ngroups,
        row_nnz: sym.row_nnz,
        row_ptr,
        setup_timeline: timeline,
        setup_mem_bytes,
        sym_spilled_blocks: sym.spilled_blocks,
        setup_trace: tracer.map(TraceBuilder::finish),
        _values: PhantomData,
    }
}

/// Executes `plan` against `(a, b)` as a *reused* plan: only the numeric
/// pass and the trailing sort run; the report's timeline holds just those
/// stages and `reused_plan` is true. See
/// [`SpeckSpgemm::execute_plan`] for the operand contract.
pub fn execute_plan_with_pool<V: Scalar>(
    dev: &DeviceConfig,
    cost: &CostModel,
    cfg: &SpeckConfig,
    plan: &SpgemmPlan<V>,
    a: &Csr<V>,
    b: &Csr<V>,
    pool: &WorkspacePool<V>,
) -> (Csr<V>, MultiplyReport) {
    execute_inner(
        dev,
        cost,
        cfg,
        plan,
        a,
        b,
        pool,
        true,
        false,
        false,
        MetricsSink::none(),
    )
}

/// The execution half of the pipeline. Cold calls (`reused == false`)
/// start from the plan's setup timeline so the combined report is bit
/// identical to the unfactored pipeline; reused calls start from an empty
/// timeline. Device memory is accounted identically either way — the
/// setup structures the numeric kernels read (analysis records, row
/// counts, the overflow pool) are resident whether this call built them
/// or a previous one did.
#[allow(clippy::too_many_arguments)]
fn execute_inner<V: Scalar>(
    dev: &DeviceConfig,
    cost: &CostModel,
    cfg: &SpeckConfig,
    plan: &SpgemmPlan<V>,
    a: &Csr<V>,
    b: &Csr<V>,
    pool: &WorkspacePool<V>,
    reused: bool,
    tracing: bool,
    auditing: bool,
    m: MetricsSink<'_>,
) -> (Csr<V>, MultiplyReport) {
    plan.check_shape(a, b);
    let span = m.span("execute");
    if reused {
        m.add("engine/plan_reuses", 1);
    }
    let cascade = KernelCascade::for_device(dev);
    let alloc_s = |n: usize| dev.cycles_to_seconds(dev.alloc_overhead_cycles) * n as f64;
    let mut timeline = if reused {
        Timeline::new()
    } else {
        plan.setup_timeline.clone()
    };
    // Mirrors the timeline exactly: a reused call traces only the stages
    // that run; a cold call resumes from the plan's setup trace so the
    // combined trace covers the whole pipeline. Auditing rides on the
    // same trace even when the caller asked for no trace in the report.
    let mut tracer = (tracing || auditing).then(|| {
        if reused {
            TraceBuilder::new(dev)
        } else {
            TraceBuilder::resume(dev, plan.setup_trace.as_ref())
        }
    });
    let mut mem = MemTracker::new();
    mem.alloc(plan.setup_mem_bytes);
    // Output matrix C: counted for memory, not for time (paper §6: "the
    // memory allocation of the output matrix is not measured").
    mem.alloc(plan.nnz_c() * (4 + std::mem::size_of::<V>()));

    // Stage 5: numeric SpGEMM.
    let job = NumericJob {
        plan: &plan.nplan,
        groups: &plan.ngroups,
        row_nnz: &plan.row_nnz,
        row_ptr: &plan.row_ptr,
    };
    let num = {
        let _s = span.child("numeric");
        run_numeric(dev, cost, &cascade, cfg, a, b, &plan.info, &job, pool)
    };
    for r in &num.reports {
        timeline.add_kernel(stage::NUMERIC, r);
        m.record_kernel(stage::NUMERIC, r);
    }
    if let Some(t) = tracer.as_mut() {
        let anns = pass_annotations(dev, &cascade, cfg, &plan.info, &plan.nplan, &plan.ngroups);
        for (r, (acc, cfg_idx, ann)) in num.reports.iter().zip(anns) {
            t.add_kernel(stage::NUMERIC, r, Some(cfg_idx), Some(acc), Some(ann));
        }
    }
    num.record_metrics(&m);

    // Stage 6: sorting.
    if let Some(r) = &num.sort_report {
        let _s = span.child("sorting");
        timeline.add_kernel(stage::SORTING, r);
        m.record_kernel(stage::SORTING, r);
        if let Some(t) = tracer.as_mut() {
            t.add_kernel(stage::SORTING, r, None, None, None);
        }
        // Radix double-buffer.
        mem.alloc(num.radix_elems * (4 + std::mem::size_of::<V>()));
        timeline.add_fixed(stage::SORTING, alloc_s(1));
        if let Some(t) = tracer.as_mut() {
            t.add_fixed(stage::SORTING, "alloc", alloc_s(1));
        }
    }

    // The audit is built read-only from the finished trace *after* every
    // kernel ran: it never changes simulated results.
    let finished = tracer.map(TraceBuilder::finish);
    let audit = if auditing {
        finished.as_ref().map(|tr| {
            Arc::new(crate::audit::build_report(
                dev,
                cost,
                cfg,
                &plan.info,
                &plan.row_nnz,
                &plan.sym_gate,
                &plan.nplan.gate,
                plan.b_cols,
                std::mem::size_of::<V>(),
                tr,
            ))
        })
    } else {
        None
    };
    let report = MultiplyReport {
        sim_time_s: timeline.total_seconds(),
        peak_mem_bytes: mem.peak(),
        symbolic_used_lb: plan.symbolic.used_global_lb,
        numeric_used_lb: plan.numeric.used_global_lb,
        symbolic_threshold_set: plan.symbolic.threshold_set,
        numeric_threshold_set: plan.numeric.threshold_set,
        symbolic_ratio: plan.symbolic.decision_ratio,
        numeric_ratio: plan.numeric.decision_ratio,
        numeric_methods: plan.numeric.method_counts,
        spilled_blocks: plan.sym_spilled_blocks + num.spilled_blocks,
        radix_elems: num.radix_elems,
        products: plan.info.total_products,
        reused_plan: reused,
        trace: if tracing {
            finished.map(Arc::new)
        } else {
            None
        },
        audit,
        timeline,
    };
    (num.c, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use speck_sparse::gen::{banded, block_diagonal, rectangular_lp, rmat, uniform_random};
    use speck_sparse::reference::spgemm_seq;
    use speck_sparse::transpose::transpose;

    fn verify(a: &Csr<f64>, b: &Csr<f64>) -> MultiplyReport {
        let engine = SpeckSpgemm::default();
        let (c, report) = engine.multiply(a, b);
        c.validate().unwrap();
        let expect = spgemm_seq(a, b);
        assert!(c.approx_eq(&expect, 1e-10, 1e-12), "result mismatch");
        report
    }

    /// Same pattern, deterministically perturbed values.
    fn perturb(m: &Csr<f64>, salt: u64) -> Csr<f64> {
        Csr::from_parts_unchecked(
            m.rows(),
            m.cols(),
            m.row_ptr().to_vec(),
            m.col_idx().to_vec(),
            m.vals()
                .iter()
                .enumerate()
                .map(|(i, &v)| v * (1.0 + ((i as u64 + salt) % 13) as f64 * 1e-3))
                .collect(),
        )
    }

    #[test]
    fn end_to_end_banded() {
        let a = banded(2000, 2, 1.0, 3);
        let r = verify(&a, &a);
        assert!(r.sim_time_s > 0.0);
        assert!(r.products > 0);
    }

    #[test]
    fn end_to_end_skewed_graph() {
        let a = rmat(10, 8, 0.57, 0.19, 0.19, 4);
        let r = verify(&a, &a);
        // The analysis must see the degree skew even if the (tuned)
        // decision judges this matrix too small to bin profitably.
        assert!(r.symbolic_ratio > 5.0);

        // With pronounced hub rows the load balancer must engage.
        let hub = speck_sparse::gen::with_hub_rows(6_000, 1, 4, 3_000, 5);
        let r = verify(&hub, &hub);
        assert!(r.symbolic_used_lb || r.numeric_used_lb);
    }

    #[test]
    fn end_to_end_rectangular_a_at() {
        let a = rectangular_lp(300, 5000, 20, 40, 5);
        let at = transpose(&a);
        verify(&a, &at);
    }

    #[test]
    fn end_to_end_dense_blocks() {
        let a = block_diagonal(3, 100, 1.0, 6);
        let r = verify(&a, &a);
        let (_, dense, _) = r.numeric_methods;
        assert!(dense > 0, "dense accumulator should engage");
    }

    #[test]
    fn stage_shares_sum_to_one() {
        let a = uniform_random(1000, 1000, 2, 10, 7);
        let r = verify(&a, &a);
        let total: f64 = [
            stage::ANALYSIS,
            stage::SYMBOLIC_LOAD,
            stage::SYMBOLIC,
            stage::NUMERIC_LOAD,
            stage::NUMERIC,
            stage::SORTING,
        ]
        .iter()
        .map(|s| r.timeline.share(s))
        .sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }

    #[test]
    fn analysis_is_cheap_relative_to_numeric() {
        // Paper Fig. 11: row analysis is <10% in most cases.
        let a = banded(4000, 8, 1.0, 8);
        let r = verify(&a, &a);
        assert!(
            r.timeline.share(stage::ANALYSIS) < 0.35,
            "analysis share {}",
            r.timeline.share(stage::ANALYSIS)
        );
    }

    #[test]
    fn gflops_is_positive_and_finite() {
        let a = banded(1000, 4, 1.0, 9);
        let r = verify(&a, &a);
        assert!(r.gflops().is_finite() && r.gflops() > 0.0);
    }

    #[test]
    fn peak_memory_includes_output() {
        let a = uniform_random(500, 500, 4, 8, 10);
        let r = verify(&a, &a);
        let c = spgemm_seq(&a, &a);
        assert!(r.peak_mem_bytes >= c.nnz() * 12);
    }

    #[test]
    fn deterministic_report() {
        let a = rmat(8, 6, 0.57, 0.19, 0.19, 11);
        let e = SpeckSpgemm::default();
        let (c1, r1) = e.multiply(&a, &a);
        let (c2, r2) = e.multiply(&a, &a);
        // The second call transparently reuses the cached plan: identical
        // result and memory, strictly less simulated time (no setup).
        assert!(!r1.reused_plan);
        assert!(r2.reused_plan);
        assert!(c1.approx_eq(&c2, 0.0, 0.0));
        assert_eq!(r1.peak_mem_bytes, r2.peak_mem_bytes);
        assert!(r2.sim_time_s < r1.sim_time_s);
        // Warm calls are bit-stable among themselves.
        let (_, r3) = e.multiply(&a, &a);
        assert_eq!(r2.sim_time_s, r3.sim_time_s);
        // With the cache disabled every call runs cold and is bit-stable.
        let e0 = SpeckSpgemm::default().with_plan_cache_capacity(0);
        let (_, q1) = e0.multiply(&a, &a);
        let (_, q2) = e0.multiply(&a, &a);
        assert!(!q1.reused_plan && !q2.reused_plan);
        assert_eq!(q1.sim_time_s, q2.sim_time_s);
        assert_eq!(q1.sim_time_s, r1.sim_time_s);
        assert_eq!(q1.peak_mem_bytes, r1.peak_mem_bytes);
    }

    #[test]
    fn reused_call_skips_setup_stages() {
        let a = uniform_random(800, 800, 2, 8, 19);
        let e = SpeckSpgemm::default();
        let (_, cold) = e.multiply(&a, &a);
        let (_, warm) = e.multiply(&a, &a);
        assert!(warm.reused_plan);
        // Warm timeline holds only the executed stages...
        for (name, st) in warm.timeline.stages() {
            assert!(
                name == stage::NUMERIC || name == stage::SORTING,
                "unexpected stage {name} in a reused call"
            );
            // ...and each is bit-identical to its cold counterpart.
            let cold_s = cold
                .timeline
                .stages()
                .find(|(n, _)| *n == name)
                .map(|(_, s)| s.seconds)
                .unwrap();
            assert_eq!(st.seconds.to_bits(), cold_s.to_bits());
        }
        assert!(warm.sim_time_s < cold.sim_time_s);
    }

    #[test]
    fn explicit_plan_execute_roundtrip() {
        let a = rmat(8, 8, 0.57, 0.19, 0.19, 77);
        let e = SpeckSpgemm::default().with_plan_cache_capacity(0);
        let (c_cold, cold) = e.multiply(&a, &a);
        let plan = e.plan(&a, &a);
        assert_eq!(plan.nnz_c(), c_cold.nnz());
        assert!(plan.setup_sim_time_s() > 0.0);
        let (c1, r1) = e.execute_plan(&plan, &a, &a);
        assert!(r1.reused_plan);
        assert!(c1.approx_eq(&c_cold, 0.0, 0.0));
        assert_eq!(r1.peak_mem_bytes, cold.peak_mem_bytes);
        // Setup + execution covers the whole cold pipeline.
        let total = plan.setup_sim_time_s() + r1.sim_time_s;
        assert!((total - cold.sim_time_s).abs() <= 1e-12 * cold.sim_time_s.abs());
        // Executions are bit-stable.
        let (_, r2) = e.execute_plan(&plan, &a, &a);
        assert_eq!(r1.sim_time_s, r2.sim_time_s);
    }

    #[test]
    fn reused_plan_accepts_fresh_values() {
        let a = uniform_random(400, 400, 2, 6, 23);
        let e = SpeckSpgemm::default();
        let _ = e.multiply(&a, &a);
        let a2 = perturb(&a, 5);
        let (c, r) = e.multiply(&a2, &a2);
        assert!(r.reused_plan, "same pattern must hit the cache");
        let expect = spgemm_seq(&a2, &a2);
        assert!(c.approx_eq(&expect, 1e-10, 1e-12), "fresh values wrong");
    }

    #[test]
    fn multiply_batch_matches_individual_and_reuses() {
        let ms = [
            uniform_random(300, 300, 2, 8, 31),
            rmat(8, 6, 0.57, 0.19, 0.19, 32),
            banded(500, 3, 1.0, 33),
        ];
        let e = SpeckSpgemm::default();
        let pairs: Vec<(&Csr<f64>, &Csr<f64>)> = ms.iter().map(|m| (m, m)).collect();
        let outs = e.multiply_batch(&pairs);
        assert_eq!(outs.len(), ms.len());
        for ((c, r), m) in outs.iter().zip(&ms) {
            assert!(!r.reused_plan);
            let expect = spgemm_seq(m, m);
            assert!(c.approx_eq(&expect, 1e-10, 1e-12));
        }
        // A second batch over the same patterns is fully warm and agrees
        // bit for bit.
        let outs2 = e.multiply_batch(&pairs);
        for ((c2, r2), (c1, _)) in outs2.iter().zip(&outs) {
            assert!(r2.reused_plan);
            assert!(c2.approx_eq(c1, 0.0, 0.0));
        }
        assert_eq!(e.cached_plans(), ms.len());
    }

    #[test]
    fn config_change_invalidates_cached_plans() {
        let a = uniform_random(200, 200, 2, 6, 41);
        let e = SpeckSpgemm::default();
        let _ = e.multiply(&a, &a);
        // A clone shares the cache: its first call is already warm.
        let mut clone = e.clone();
        let (_, r) = clone.multiply(&a, &a);
        assert!(r.reused_plan);
        // Mutating the configuration changes the environment digest, so
        // the stale plan is never reused.
        clone.config.numeric_max_fill *= 0.5;
        let (_, r2) = clone.multiply(&a, &a);
        assert!(
            !r2.reused_plan,
            "stale plan must not survive a config change"
        );
    }

    #[test]
    fn lru_capacity_bounds_cached_plans() {
        let e = SpeckSpgemm::default().with_plan_cache_capacity(2);
        let ms: Vec<Csr<f64>> = (0..4)
            .map(|s| uniform_random(60 + s, 60 + s, 2, 4, s as u64))
            .collect();
        for m in &ms {
            let _ = e.multiply(m, m);
        }
        assert_eq!(e.cached_plans(), 2);
        // The most recent pattern is still warm.
        let (_, r) = e.multiply(&ms[3], &ms[3]);
        assert!(r.reused_plan);
        // The oldest was evicted.
        let (_, r0) = e.multiply(&ms[0], &ms[0]);
        assert!(!r0.reused_plan);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a: Csr<f64> = Csr::identity(3);
        let b: Csr<f64> = Csr::identity(4);
        let _ = SpeckSpgemm::default().multiply(&a, &b);
    }

    #[test]
    #[should_panic(expected = "do not match the plan")]
    fn execute_plan_rejects_wrong_shape() {
        let a = uniform_random(50, 50, 2, 4, 3);
        let e = SpeckSpgemm::default();
        let plan = e.plan(&a, &a);
        let other = uniform_random(60, 60, 2, 4, 3);
        let _ = e.execute_plan(&plan, &other, &other);
    }

    #[test]
    fn tracing_is_neutral_and_reconciles_with_timeline() {
        let a = rmat(8, 6, 0.57, 0.19, 0.19, 51);
        let plain = SpeckSpgemm::default().with_plan_cache_capacity(0);
        let traced = SpeckSpgemm::default()
            .with_plan_cache_capacity(0)
            .with_tracing(true);
        let (_, r0) = plain.multiply(&a, &a);
        let (_, r1) = traced.multiply(&a, &a);
        assert!(r0.trace.is_none());
        let tr = r1.trace.as_ref().expect("tracing engine attaches a trace");

        // Tracing never changes simulated results.
        assert_eq!(r0.sim_time_s.to_bits(), r1.sim_time_s.to_bits());
        // The trace reconciles with the timeline bit-for-bit.
        assert_eq!(tr.total_seconds().to_bits(), r1.sim_time_s.to_bits());
        for (name, st) in r1.timeline.stages() {
            let ts = tr.per_stage_seconds()[name];
            assert_eq!(ts.to_bits(), st.seconds.to_bits(), "stage {name}");
        }
        // Every kernel record carries its per-block schedule.
        for (_, k) in tr.kernels() {
            let bt = k.blocks.as_ref().expect("capture was on");
            assert_eq!(bt.events.len(), k.grid);
        }
        // The export is byte-deterministic across engines.
        let (_, r2) = SpeckSpgemm::default()
            .with_plan_cache_capacity(0)
            .with_tracing(true)
            .multiply(&a, &a);
        let j1 = tr.chrome_trace_json();
        assert_eq!(j1, r2.trace.as_ref().unwrap().chrome_trace_json());
        let back = crate::trace::ExecutionTrace::from_chrome_trace(&j1).unwrap();
        assert_eq!(back.chrome_trace_json(), j1);
    }

    #[test]
    fn warm_trace_covers_only_executed_stages() {
        let a = uniform_random(500, 500, 2, 6, 52);
        let e = SpeckSpgemm::default().with_tracing(true);
        let (_, cold) = e.multiply(&a, &a);
        let (_, warm) = e.multiply(&a, &a);
        assert!(warm.reused_plan);
        let cold_tr = cold.trace.as_ref().unwrap();
        let warm_tr = warm.trace.as_ref().unwrap();
        // Cold trace spans the full pipeline, warm only the execute half.
        let cold_stages = cold_tr.per_stage_seconds();
        assert!(cold_stages.contains_key(stage::ANALYSIS));
        assert!(cold_stages.contains_key(stage::NUMERIC));
        for s in warm_tr.per_stage_seconds().keys() {
            assert!(s == stage::NUMERIC || s == stage::SORTING, "stage {s}");
        }
        assert_eq!(warm_tr.total_seconds().to_bits(), warm.sim_time_s.to_bits());
        // The diff pins exactly what plan reuse skipped.
        let d = crate::profile::diff_traces(cold_tr, warm_tr);
        assert!(d.total_delta_s < 0.0);
        assert_eq!(d.stages[stage::ANALYSIS].1, 0.0);
        // Hot-row profiling sees real rows.
        let p = crate::profile::profile_trace(cold_tr, 10);
        assert!(!p.top_rows.is_empty());
        assert!((p.top_rows[0].row as usize) < a.rows());
    }

    #[test]
    fn ablation_configs_all_correct() {
        let a = rmat(8, 8, 0.57, 0.19, 0.19, 12);
        for cfg in [
            SpeckConfig::hash_only(),
            SpeckConfig::hash_dense(),
            SpeckConfig::fixed_local_lb(),
        ] {
            let engine = SpeckSpgemm::with_config(cfg);
            let (c, _) = engine.multiply(&a, &a);
            let expect = spgemm_seq(&a, &a);
            assert!(c.approx_eq(&expect, 1e-10, 1e-12));
        }
    }
}
