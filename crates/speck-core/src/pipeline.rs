//! The end-to-end spECK pipeline (paper Fig. 2) and its public API.

use crate::analysis::analyze;
use crate::cascade::KernelCascade;
use crate::config::SpeckConfig;
use crate::global_lb::{plan_numeric, plan_symbolic, ThresholdSet};
use crate::numeric::run_numeric;
use crate::symbolic::run_symbolic;
use crate::workspace::{SharedWorkspaces, WorkspacePool};
use speck_simt::{CostModel, DeviceConfig, MemTracker, Timeline};
use speck_sparse::{Csr, Scalar};
use std::sync::Arc;

/// Stage names used in the timeline, matching paper Fig. 11.
pub mod stage {
    /// Row analysis (Alg. 1).
    pub const ANALYSIS: &str = "analysis";
    /// Global load balancing before the symbolic pass.
    pub const SYMBOLIC_LOAD: &str = "symb. load";
    /// Symbolic SpGEMM.
    pub const SYMBOLIC: &str = "symb. SpGEMM";
    /// Global load balancing before the numeric pass.
    pub const NUMERIC_LOAD: &str = "num. load";
    /// Numeric SpGEMM.
    pub const NUMERIC: &str = "num. SpGEMM";
    /// Trailing radix sort.
    pub const SORTING: &str = "sorting";
}

/// Everything the caller may want to know about one multiplication.
#[derive(Clone, Debug)]
pub struct MultiplyReport {
    /// Per-stage simulated durations (Fig. 11).
    pub timeline: Timeline,
    /// Total simulated time in seconds.
    pub sim_time_s: f64,
    /// Peak simulated device memory (inputs excluded, output C included —
    /// the paper's Table 3/Fig. 10 convention).
    pub peak_mem_bytes: usize,
    /// Whether the symbolic pass used the global load balancer.
    pub symbolic_used_lb: bool,
    /// Whether the numeric pass used the global load balancer.
    pub numeric_used_lb: bool,
    /// Threshold set consulted for the symbolic decision.
    pub symbolic_threshold_set: ThresholdSet,
    /// Threshold set consulted for the numeric decision.
    pub numeric_threshold_set: ThresholdSet,
    /// Demand-variance ratio `m_max/m_avg` seen by the symbolic decision.
    pub symbolic_ratio: f64,
    /// Demand-variance ratio seen by the numeric decision.
    pub numeric_ratio: f64,
    /// Blocks per method in the numeric pass: (hash, dense, direct).
    pub numeric_methods: (usize, usize, usize),
    /// Blocks that spilled to global hash maps across both passes.
    pub spilled_blocks: usize,
    /// Elements routed through the global radix sort.
    pub radix_elems: usize,
    /// Total intermediate products of the multiplication.
    pub products: u64,
}

impl MultiplyReport {
    /// GFLOPS at the paper's 2-ops-per-product convention.
    pub fn gflops(&self) -> f64 {
        if self.sim_time_s <= 0.0 {
            0.0
        } else {
            (2 * self.products) as f64 / self.sim_time_s / 1e9
        }
    }
}

/// Reusable engine: device + cost model + configuration.
///
/// The engine also owns a [`SharedWorkspaces`] registry, so repeated
/// `multiply` calls reuse the same host-side accumulator buffers instead of
/// reallocating them. Reuse is a host optimisation only: the simulated cost
/// of every call is identical to a fresh engine's (see
/// [`crate::workspace`]). Clones share the registry.
#[derive(Clone, Debug)]
pub struct SpeckSpgemm {
    /// Simulated device.
    pub device: DeviceConfig,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Algorithm configuration.
    pub config: SpeckConfig,
    workspaces: Arc<SharedWorkspaces>,
}

impl Default for SpeckSpgemm {
    fn default() -> Self {
        Self {
            device: DeviceConfig::titan_v(),
            cost: CostModel::default(),
            config: SpeckConfig::default(),
            workspaces: Arc::new(SharedWorkspaces::new()),
        }
    }
}

impl SpeckSpgemm {
    /// Engine with a custom configuration on the default device.
    pub fn with_config(config: SpeckConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// The engine's workspace registry (one buffer pool per scalar type).
    pub fn workspaces(&self) -> &Arc<SharedWorkspaces> {
        &self.workspaces
    }

    /// Computes `C = A · B`; returns the result and the full report.
    pub fn multiply<V: Scalar>(&self, a: &Csr<V>, b: &Csr<V>) -> (Csr<V>, MultiplyReport) {
        let pool = self.workspaces.pool::<V>();
        multiply_with_pool(&self.device, &self.cost, &self.config, a, b, &pool)
    }
}

/// Computes `C = A · B` with spECK on the simulator.
///
/// Panics when `a.cols() != b.rows()` (matching the reference
/// implementations in `speck-sparse`).
pub fn multiply<V: Scalar>(
    dev: &DeviceConfig,
    cost: &CostModel,
    cfg: &SpeckConfig,
    a: &Csr<V>,
    b: &Csr<V>,
) -> (Csr<V>, MultiplyReport) {
    multiply_with_pool(dev, cost, cfg, a, b, &WorkspacePool::new())
}

/// Like [`multiply`], but borrowing kernel workspaces from `pool` (and
/// leaving them there for later calls). The pool never affects the report —
/// only host-side allocation traffic.
pub fn multiply_with_pool<V: Scalar>(
    dev: &DeviceConfig,
    cost: &CostModel,
    cfg: &SpeckConfig,
    a: &Csr<V>,
    b: &Csr<V>,
    pool: &WorkspacePool<V>,
) -> (Csr<V>, MultiplyReport) {
    assert_eq!(a.cols(), b.rows(), "spECK multiply: dimension mismatch");
    let cascade = KernelCascade::for_device(dev);
    let mut timeline = Timeline::new();
    let mut mem = MemTracker::new();
    let alloc_s = |n: usize| dev.cycles_to_seconds(dev.alloc_overhead_cycles) * n as f64;

    // Stage 1: row analysis.
    let (info, analysis_report) = analyze(dev, cost, a, b);
    timeline.add_kernel(stage::ANALYSIS, &analysis_report);
    mem.alloc(info.rows.len() * std::mem::size_of::<crate::analysis::RowInfo>());
    timeline.add_fixed(stage::ANALYSIS, alloc_s(1));

    // Stage 2: symbolic load balancing.
    let splan = plan_symbolic(dev, cost, &cascade, cfg, &info, b.cols());
    for r in &splan.lb_reports {
        timeline.add_kernel(stage::SYMBOLIC_LOAD, r);
    }
    if splan.lb_alloc_bytes > 0 {
        mem.alloc(splan.lb_alloc_bytes);
        timeline.add_fixed(stage::SYMBOLIC_LOAD, alloc_s(1));
    }

    // Stage 3: symbolic SpGEMM.
    let sym = run_symbolic(dev, cost, &cascade, cfg, a, b, &info, &splan, pool);
    for r in &sym.reports {
        timeline.add_kernel(stage::SYMBOLIC, r);
    }
    // Row-count array + prefix sum for C's offsets.
    mem.alloc((a.rows() + 1) * 8);
    timeline.add_fixed(stage::SYMBOLIC, alloc_s(1));

    // Output matrix C: counted for memory, not for time (paper §6: "the
    // memory allocation of the output matrix is not measured").
    let nnz_c: usize = sym.row_nnz.iter().map(|&x| x as usize).sum();
    mem.alloc(nnz_c * (4 + std::mem::size_of::<V>()));

    // Stage 4: numeric load balancing on exact sizes.
    let nplan = plan_numeric(
        dev,
        cost,
        &cascade,
        cfg,
        &info,
        &sym.row_nnz,
        b.cols(),
        std::mem::size_of::<V>(),
    );
    for r in &nplan.lb_reports {
        timeline.add_kernel(stage::NUMERIC_LOAD, r);
    }
    if nplan.lb_alloc_bytes > 0 {
        mem.alloc(nplan.lb_alloc_bytes);
        timeline.add_fixed(stage::NUMERIC_LOAD, alloc_s(1));
    }

    // Global hash-map fallback pool: as many maps as can be live at once
    // (paper §4.3), sized by the largest conceivable overflow row.
    let largest_cfg = cascade.config(cascade.largest());
    let overflow_rows = info
        .rows
        .iter()
        .filter(|r| {
            r.products as usize
                > cascade.hash_capacity(
                    cascade.largest(),
                    crate::cascade::symbolic_entry_bytes(b.cols()),
                )
        })
        .count();
    if overflow_rows > 0 {
        let pool = overflow_rows
            .min(dev.max_concurrent_blocks(largest_cfg.threads, largest_cfg.scratch_bytes));
        let per_map = info.max_products as usize * (8 + std::mem::size_of::<V>());
        mem.alloc(pool * per_map);
        timeline.add_fixed(stage::NUMERIC_LOAD, alloc_s(1));
    }

    // Stage 5: numeric SpGEMM.
    let num = run_numeric(
        dev,
        cost,
        &cascade,
        cfg,
        a,
        b,
        &info,
        &nplan,
        &sym.row_nnz,
        pool,
    );
    for r in &num.reports {
        timeline.add_kernel(stage::NUMERIC, r);
    }

    // Stage 6: sorting.
    if let Some(r) = &num.sort_report {
        timeline.add_kernel(stage::SORTING, r);
        // Radix double-buffer.
        mem.alloc(num.radix_elems * (4 + std::mem::size_of::<V>()));
        timeline.add_fixed(stage::SORTING, alloc_s(1));
    }

    let report = MultiplyReport {
        sim_time_s: timeline.total_seconds(),
        peak_mem_bytes: mem.peak(),
        symbolic_used_lb: splan.used_global_lb,
        numeric_used_lb: nplan.used_global_lb,
        symbolic_threshold_set: splan.threshold_set,
        numeric_threshold_set: nplan.threshold_set,
        symbolic_ratio: splan.decision_ratio,
        numeric_ratio: nplan.decision_ratio,
        numeric_methods: nplan.method_counts(),
        spilled_blocks: sym.spilled_blocks + num.spilled_blocks,
        radix_elems: num.radix_elems,
        products: info.total_products,
        timeline,
    };
    (num.c, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use speck_sparse::gen::{banded, block_diagonal, rectangular_lp, rmat, uniform_random};
    use speck_sparse::reference::spgemm_seq;
    use speck_sparse::transpose::transpose;

    fn verify(a: &Csr<f64>, b: &Csr<f64>) -> MultiplyReport {
        let engine = SpeckSpgemm::default();
        let (c, report) = engine.multiply(a, b);
        c.validate().unwrap();
        let expect = spgemm_seq(a, b);
        assert!(c.approx_eq(&expect, 1e-10, 1e-12), "result mismatch");
        report
    }

    #[test]
    fn end_to_end_banded() {
        let a = banded(2000, 2, 1.0, 3);
        let r = verify(&a, &a);
        assert!(r.sim_time_s > 0.0);
        assert!(r.products > 0);
    }

    #[test]
    fn end_to_end_skewed_graph() {
        let a = rmat(10, 8, 0.57, 0.19, 0.19, 4);
        let r = verify(&a, &a);
        // The analysis must see the degree skew even if the (tuned)
        // decision judges this matrix too small to bin profitably.
        assert!(r.symbolic_ratio > 5.0);

        // With pronounced hub rows the load balancer must engage.
        let hub = speck_sparse::gen::with_hub_rows(6_000, 1, 4, 3_000, 5);
        let r = verify(&hub, &hub);
        assert!(r.symbolic_used_lb || r.numeric_used_lb);
    }

    #[test]
    fn end_to_end_rectangular_a_at() {
        let a = rectangular_lp(300, 5000, 20, 40, 5);
        let at = transpose(&a);
        verify(&a, &at);
    }

    #[test]
    fn end_to_end_dense_blocks() {
        let a = block_diagonal(3, 100, 1.0, 6);
        let r = verify(&a, &a);
        let (_, dense, _) = r.numeric_methods;
        assert!(dense > 0, "dense accumulator should engage");
    }

    #[test]
    fn stage_shares_sum_to_one() {
        let a = uniform_random(1000, 1000, 2, 10, 7);
        let r = verify(&a, &a);
        let total: f64 = [
            stage::ANALYSIS,
            stage::SYMBOLIC_LOAD,
            stage::SYMBOLIC,
            stage::NUMERIC_LOAD,
            stage::NUMERIC,
            stage::SORTING,
        ]
        .iter()
        .map(|s| r.timeline.share(s))
        .sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }

    #[test]
    fn analysis_is_cheap_relative_to_numeric() {
        // Paper Fig. 11: row analysis is <10% in most cases.
        let a = banded(4000, 8, 1.0, 8);
        let r = verify(&a, &a);
        assert!(
            r.timeline.share(stage::ANALYSIS) < 0.35,
            "analysis share {}",
            r.timeline.share(stage::ANALYSIS)
        );
    }

    #[test]
    fn gflops_is_positive_and_finite() {
        let a = banded(1000, 4, 1.0, 9);
        let r = verify(&a, &a);
        assert!(r.gflops().is_finite() && r.gflops() > 0.0);
    }

    #[test]
    fn peak_memory_includes_output() {
        let a = uniform_random(500, 500, 4, 8, 10);
        let r = verify(&a, &a);
        let c = spgemm_seq(&a, &a);
        assert!(r.peak_mem_bytes >= c.nnz() * 12);
    }

    #[test]
    fn deterministic_report() {
        let a = rmat(8, 6, 0.57, 0.19, 0.19, 11);
        let e = SpeckSpgemm::default();
        let (_, r1) = e.multiply(&a, &a);
        let (_, r2) = e.multiply(&a, &a);
        assert_eq!(r1.sim_time_s, r2.sim_time_s);
        assert_eq!(r1.peak_mem_bytes, r2.peak_mem_bytes);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a: Csr<f64> = Csr::identity(3);
        let b: Csr<f64> = Csr::identity(4);
        let _ = SpeckSpgemm::default().multiply(&a, &b);
    }

    #[test]
    fn ablation_configs_all_correct() {
        let a = rmat(8, 8, 0.57, 0.19, 0.19, 12);
        for cfg in [
            SpeckConfig::hash_only(),
            SpeckConfig::hash_dense(),
            SpeckConfig::fixed_local_lb(),
        ] {
            let engine = SpeckSpgemm::with_config(cfg);
            let (c, _) = engine.multiply(&a, &a);
            let expect = spgemm_seq(&a, &a);
            assert!(c.approx_eq(&expect, 1e-10, 1e-12));
        }
    }
}
