//! Per-multiply execution traces: spECK-annotated kernel timelines with
//! per-block schedules, exported as Chrome Trace Event JSON.
//!
//! The simulator's [`speck_simt::trace`] module captures *where each block
//! ran* (SM, resident slot, start/end cycles, cost breakdown). This module
//! adds the spECK semantics the profiler needs — which pipeline stage a
//! kernel belongs to, which cascade bin and accumulator a block used,
//! which output rows it computed, and the dynamic group size `g` it chose
//! — and serialises the whole multiply as Chrome Trace Event JSON loadable
//! in Perfetto or `chrome://tracing` (SM slots as tracks, kernels and
//! stages as frames).
//!
//! # Event model
//!
//! An [`ExecutionTrace`] is an ordered list of [`TraceRecord`]s on a
//! multiply-local clock, one per `Timeline::add_kernel` /
//! `Timeline::add_fixed` call the pipeline makes, in the same order.
//! Folding record durations per stage therefore reconciles *bit-for-bit*
//! with the `Timeline` stage seconds (and, scaled to `cycles_milli`, with
//! the `sim/stage/*` metrics counters) — pinned by the reconciliation
//! proptests.
//!
//! # Determinism classes
//!
//! Everything recorded here derives from the deterministic simulation:
//! exported JSON is byte-identical across runs and rayon schedules. No
//! volatile wall-clock fields exist in a trace (unlike metrics snapshots,
//! which segregate `wall/` gauges).

use crate::analysis::AnalysisInfo;
use crate::cascade::KernelCascade;
use crate::config::SpeckConfig;
use crate::global_lb::{AccMethod, PassPlan};
use crate::local_lb::select_group_size;
use speck_simt::{BlockCost, BlockEvent, DeviceConfig, KernelBlockTrace, KernelReport};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Format tag embedded in exported traces (`otherData.format`).
pub const TRACE_FORMAT: &str = "speck-trace-v1";

/// spECK semantics of one block of a SpGEMM kernel launch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockAnnotation {
    /// Output rows of C this block computes (the bin's row list — not
    /// necessarily contiguous).
    pub rows: Vec<u32>,
    /// Dynamic group size `g` chosen by the local load balancer (hash
    /// blocks only; dense/direct blocks have no group cooperation knob).
    pub group_size: Option<u32>,
}

/// One kernel launch inside an [`ExecutionTrace`].
#[derive(Clone, Debug)]
pub struct KernelTraceRecord {
    /// Kernel name (e.g. `numeric_hash_c3`).
    pub name: String,
    /// Number of blocks launched.
    pub grid: usize,
    /// Threads per block.
    pub threads: usize,
    /// Dynamic scratchpad bytes per block.
    pub scratch_bytes: usize,
    /// Resident blocks per SM at this shape.
    pub blocks_per_sm: usize,
    /// Kernel body makespan in cycles (excluding launch overhead).
    pub body_cycles: f64,
    /// Cascade bin (kernel-configuration index) for SpGEMM kernels.
    pub bin: Option<usize>,
    /// Accumulator kind for SpGEMM kernels.
    pub acc: Option<AccMethod>,
    /// Per-block schedule from the simulator (grid order), when block
    /// capture was on during the launch.
    pub blocks: Option<Arc<KernelBlockTrace>>,
    /// Per-block spECK annotations (grid order), for SpGEMM kernels.
    pub annotations: Option<Vec<BlockAnnotation>>,
}

/// Payload of a [`TraceRecord`].
#[derive(Clone, Debug)]
pub enum TraceRecordKind {
    /// A kernel launch.
    Kernel(KernelTraceRecord),
    /// A fixed-duration host-side step (e.g. a device allocation).
    Fixed {
        /// Human-readable label (e.g. `alloc`).
        label: String,
    },
}

/// One step of the multiply on the trace clock.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// Pipeline stage this record is attributed to (see
    /// [`crate::pipeline::stage`]).
    pub stage: String,
    /// Start offset on the multiply-local clock, seconds.
    pub start_s: f64,
    /// Duration, seconds. For kernels this is `sim_time_s` (launch
    /// overhead included), exactly what the `Timeline` accumulated.
    pub dur_s: f64,
    /// What happened.
    pub kind: TraceRecordKind,
}

/// A full per-multiply execution trace.
#[derive(Clone, Debug)]
pub struct ExecutionTrace {
    /// Device name the multiply ran on.
    pub device_name: String,
    /// Number of SMs of the device.
    pub num_sms: usize,
    /// Device cap on resident blocks per SM (fixes the SM-slot track
    /// numbering in the export).
    pub max_blocks_per_sm: usize,
    /// Core clock in GHz (converts cycles to trace timestamps).
    pub clock_ghz: f64,
    /// Fixed launch overhead per kernel, cycles.
    pub launch_overhead_cycles: f64,
    /// All records in clock order.
    pub records: Vec<TraceRecord>,
    /// Clock value after the last record (sum of all durations in call
    /// order).
    pub end_s: f64,
}

fn acc_name(a: AccMethod) -> &'static str {
    match a {
        AccMethod::Hash => "hash",
        AccMethod::Dense => "dense",
        AccMethod::Direct => "direct",
    }
}

fn acc_from_name(s: &str) -> Option<AccMethod> {
    match s {
        "hash" => Some(AccMethod::Hash),
        "dense" => Some(AccMethod::Dense),
        "direct" => Some(AccMethod::Direct),
        _ => None,
    }
}

fn acc_from_group_key(m: u8) -> AccMethod {
    match m {
        0 => AccMethod::Hash,
        1 => AccMethod::Dense,
        _ => AccMethod::Direct,
    }
}

impl ExecutionTrace {
    /// Seconds per stage, folded in record order — bit-identical to the
    /// `Timeline` stage seconds of the same multiply (both accumulate the
    /// same f64 sequence onto 0.0).
    pub fn per_stage_seconds(&self) -> BTreeMap<String, f64> {
        let mut out: BTreeMap<String, f64> = BTreeMap::new();
        for r in &self.records {
            *out.entry(r.stage.clone()).or_insert(0.0) += r.dur_s;
        }
        out
    }

    /// Kernel launches per stage (fixed records excluded) — equals the
    /// `sim/stage/<stage>/launches` metrics counters.
    pub fn per_stage_launches(&self) -> BTreeMap<String, u64> {
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        for r in &self.records {
            if matches!(r.kind, TraceRecordKind::Kernel(_)) {
                *out.entry(r.stage.clone()).or_insert(0) += 1;
            }
        }
        out
    }

    /// Total simulated seconds: stage sums added in sorted-stage order,
    /// matching `Timeline::total_seconds` bit-for-bit.
    pub fn total_seconds(&self) -> f64 {
        self.per_stage_seconds().values().sum()
    }

    /// Iterates the kernel records in clock order.
    pub fn kernels(&self) -> impl Iterator<Item = (&TraceRecord, &KernelTraceRecord)> {
        self.records.iter().filter_map(|r| match &r.kind {
            TraceRecordKind::Kernel(k) => Some((r, k)),
            TraceRecordKind::Fixed { .. } => None,
        })
    }
}

/// Builds an [`ExecutionTrace`] alongside the pipeline's `Timeline`: the
/// pipeline calls [`TraceBuilder::add_kernel`] / [`TraceBuilder::add_fixed`]
/// adjacent to every `Timeline::add_kernel` / `add_fixed`, in the same
/// order, so the finished trace reconciles with the timeline exactly.
#[derive(Clone, Debug)]
pub struct TraceBuilder {
    device_name: String,
    num_sms: usize,
    max_blocks_per_sm: usize,
    clock_ghz: f64,
    launch_overhead_cycles: f64,
    clock_s: f64,
    records: Vec<TraceRecord>,
}

impl TraceBuilder {
    /// An empty trace for `dev`, clock at zero.
    pub fn new(dev: &DeviceConfig) -> Self {
        TraceBuilder {
            device_name: dev.name.to_string(),
            num_sms: dev.num_sms,
            max_blocks_per_sm: dev.max_blocks_per_sm,
            clock_ghz: dev.clock_ghz,
            launch_overhead_cycles: dev.launch_overhead_cycles,
            clock_s: 0.0,
            records: Vec::new(),
        }
    }

    /// A builder resuming after `setup` (a plan's setup-stage trace): its
    /// records are replayed verbatim and the clock continues from its end
    /// — mirroring how a cold execute starts from the plan's setup
    /// timeline.
    pub fn resume(dev: &DeviceConfig, setup: Option<&ExecutionTrace>) -> Self {
        let mut b = Self::new(dev);
        if let Some(s) = setup {
            b.records = s.records.clone();
            b.clock_s = s.end_s;
        }
        b
    }

    /// Appends one kernel launch, advancing the clock by its
    /// `sim_time_s`. `bin`/`acc`/`annotations` carry the spECK semantics
    /// for SpGEMM kernels and are `None` for helper kernels (analysis,
    /// binning, merging, sorting).
    pub fn add_kernel(
        &mut self,
        stage: &str,
        report: &KernelReport,
        bin: Option<usize>,
        acc: Option<AccMethod>,
        annotations: Option<Vec<BlockAnnotation>>,
    ) {
        let body_cycles = (report.sim_cycles - self.launch_overhead_cycles).max(0.0);
        let rec = KernelTraceRecord {
            name: report.name.to_string(),
            grid: report.grid,
            threads: report.cfg.threads,
            scratch_bytes: report.cfg.scratch_bytes,
            blocks_per_sm: report.blocks_per_sm,
            body_cycles,
            bin,
            acc,
            blocks: report.trace.clone(),
            annotations,
        };
        self.records.push(TraceRecord {
            stage: stage.to_string(),
            start_s: self.clock_s,
            dur_s: report.sim_time_s,
            kind: TraceRecordKind::Kernel(rec),
        });
        self.clock_s += report.sim_time_s;
    }

    /// Appends a fixed-duration step (allocation overheads), advancing the
    /// clock by `seconds`.
    pub fn add_fixed(&mut self, stage: &str, label: &str, seconds: f64) {
        self.records.push(TraceRecord {
            stage: stage.to_string(),
            start_s: self.clock_s,
            dur_s: seconds,
            kind: TraceRecordKind::Fixed {
                label: label.to_string(),
            },
        });
        self.clock_s += seconds;
    }

    /// Finishes the trace.
    pub fn finish(self) -> ExecutionTrace {
        ExecutionTrace {
            device_name: self.device_name,
            num_sms: self.num_sms,
            max_blocks_per_sm: self.max_blocks_per_sm,
            clock_ghz: self.clock_ghz,
            launch_overhead_cycles: self.launch_overhead_cycles,
            records: self.records,
            end_s: self.clock_s,
        }
    }
}

/// Per-launch spECK annotations for one pass, in the launch order
/// [`crate::symbolic::group_blocks`] produces (BTreeMap iteration order —
/// the same order `run_symbolic`/`run_numeric` push their reports).
/// Returns `(method, cfg_idx, annotations)` per launch.
pub(crate) fn pass_annotations(
    dev: &DeviceConfig,
    cascade: &KernelCascade,
    cfg: &SpeckConfig,
    info: &AnalysisInfo,
    plan: &PassPlan,
    groups: &BTreeMap<(u8, usize), Vec<usize>>,
) -> Vec<(AccMethod, usize, Vec<BlockAnnotation>)> {
    groups
        .iter()
        .map(|(&(method, cfg_idx), group)| {
            let acc = acc_from_group_key(method);
            let threads = match acc {
                AccMethod::Direct => 256.min(dev.max_threads_per_block),
                _ => cascade.config(cfg_idx).threads,
            };
            let anns = group
                .iter()
                .map(|&bi| {
                    let rows = plan.blocks[bi].rows.clone();
                    let group_size = (acc == AccMethod::Hash).then(|| {
                        let nnz_a: u64 = rows
                            .iter()
                            .map(|&r| info.rows[r as usize].nnz_a as u64)
                            .sum();
                        let products: u64 =
                            rows.iter().map(|&r| info.rows[r as usize].products).sum();
                        let max_b: u64 = rows
                            .iter()
                            .map(|&r| info.rows[r as usize].max_b_row as u64)
                            .max()
                            .unwrap_or(0);
                        select_group_size(cfg.local_lb, threads, nnz_a, products, max_b) as u32
                    });
                    BlockAnnotation { rows, group_size }
                })
                .collect();
            (acc, cfg_idx, anns)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Chrome Trace Event export
// ---------------------------------------------------------------------------

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an f64 as a JSON number (Rust's shortest-roundtrip `Display` —
/// deterministic, and re-parsing recovers the exact value).
fn push_num(out: &mut String, v: f64) {
    if v == v.trunc() && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

impl ExecutionTrace {
    /// Seconds → trace microseconds.
    fn us(&self, s: f64) -> f64 {
        s * 1e6
    }

    /// Device cycles → trace microseconds.
    fn cycles_us(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e3)
    }

    /// Chrome-trace thread id of an SM resident slot.
    fn slot_tid(&self, sm: u32, slot: u32) -> u64 {
        sm as u64 * self.max_blocks_per_sm as u64 + slot as u64
    }

    /// Serialises the trace as Chrome Trace Event JSON (object format),
    /// loadable in Perfetto / `chrome://tracing`:
    ///
    /// * **pid 0** — per-block events, one track per `(SM, resident
    ///   slot)`;
    /// * **pid 1** — kernel launches and fixed steps as one sequential
    ///   track;
    /// * **pid 2** — pipeline stages as coalesced frames.
    ///
    /// All durations are trace microseconds; exact cycle values ride in
    /// `args` so parsing a trace back loses nothing the profiler needs.
    /// Output is byte-deterministic.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"format\": ");
        push_json_string(&mut out, TRACE_FORMAT);
        out.push_str(", \"device\": ");
        push_json_string(&mut out, &self.device_name);
        let _ = write!(
            out,
            ", \"num_sms\": {}, \"max_blocks_per_sm\": {}, \"clock_ghz\": ",
            self.num_sms, self.max_blocks_per_sm
        );
        push_num(&mut out, self.clock_ghz);
        out.push_str(", \"launch_overhead_cycles\": ");
        push_num(&mut out, self.launch_overhead_cycles);
        out.push_str(", \"end_s\": ");
        let _ = write!(out, "{}", self.end_s);
        out.push_str("},\n\"traceEvents\": [\n");

        let mut first = true;
        let mut event = |out: &mut String, body: &str| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(body);
        };

        // Process metadata.
        let mut meta = String::new();
        let _ = write!(
            meta,
            "{{\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": \"process_name\", \
             \"args\": {{\"name\": "
        );
        push_json_string(&mut meta, &format!("SM slots ({})", self.device_name));
        meta.push_str("}}");
        event(&mut out, &meta);
        event(
            &mut out,
            "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \
             \"args\": {\"name\": \"kernels\"}}",
        );
        event(
            &mut out,
            "{\"ph\": \"M\", \"pid\": 2, \"tid\": 0, \"name\": \"process_name\", \
             \"args\": {\"name\": \"stages\"}}",
        );

        // Thread names for every used (SM, slot) track, sorted.
        let mut used: std::collections::BTreeSet<(u32, u32)> = std::collections::BTreeSet::new();
        for (_, k) in self.kernels() {
            if let Some(bt) = &k.blocks {
                for e in &bt.events {
                    used.insert((e.sm, e.slot));
                }
            }
        }
        for &(sm, slot) in &used {
            let mut m = String::new();
            let _ = write!(
                m,
                "{{\"ph\": \"M\", \"pid\": 0, \"tid\": {}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": \"SM {:02} slot {}\"}}}}",
                self.slot_tid(sm, slot),
                sm,
                slot
            );
            event(&mut out, &m);
        }

        // Stage frames: coalesce consecutive records of the same stage.
        let mut i = 0usize;
        while i < self.records.len() {
            let stage = &self.records[i].stage;
            let start = self.records[i].start_s;
            let mut end = start + self.records[i].dur_s;
            let mut j = i + 1;
            while j < self.records.len() && self.records[j].stage == *stage {
                end = self.records[j].start_s + self.records[j].dur_s;
                j += 1;
            }
            let mut f = String::new();
            f.push_str("{\"ph\": \"X\", \"pid\": 2, \"tid\": 0, \"name\": ");
            push_json_string(&mut f, stage);
            f.push_str(", \"cat\": \"stage\", \"ts\": ");
            push_num(&mut f, self.us(start));
            f.push_str(", \"dur\": ");
            push_num(&mut f, self.us(end - start));
            f.push('}');
            event(&mut out, &f);
            i = j;
        }

        // Kernel / fixed records and their blocks.
        for (seq, r) in self.records.iter().enumerate() {
            let mut k = String::new();
            match &r.kind {
                TraceRecordKind::Fixed { label } => {
                    k.push_str("{\"ph\": \"X\", \"pid\": 1, \"tid\": 0, \"name\": ");
                    push_json_string(&mut k, label);
                    k.push_str(", \"cat\": ");
                    push_json_string(&mut k, &r.stage);
                    k.push_str(", \"ts\": ");
                    push_num(&mut k, self.us(r.start_s));
                    k.push_str(", \"dur\": ");
                    push_num(&mut k, self.us(r.dur_s));
                    let _ = write!(k, ", \"args\": {{\"kind\": \"fixed\", \"seq\": {seq}");
                    k.push_str(", \"start_s\": ");
                    let _ = write!(k, "{}", r.start_s);
                    k.push_str(", \"dur_s\": ");
                    let _ = write!(k, "{}", r.dur_s);
                    k.push_str("}}");
                    event(&mut out, &k);
                }
                TraceRecordKind::Kernel(kr) => {
                    k.push_str("{\"ph\": \"X\", \"pid\": 1, \"tid\": 0, \"name\": ");
                    push_json_string(&mut k, &kr.name);
                    k.push_str(", \"cat\": ");
                    push_json_string(&mut k, &r.stage);
                    k.push_str(", \"ts\": ");
                    push_num(&mut k, self.us(r.start_s));
                    k.push_str(", \"dur\": ");
                    push_num(&mut k, self.us(r.dur_s));
                    let _ = write!(
                        k,
                        ", \"args\": {{\"kind\": \"kernel\", \"seq\": {seq}, \"grid\": {}, \
                         \"threads\": {}, \"scratch_bytes\": {}, \"blocks_per_sm\": {}",
                        kr.grid, kr.threads, kr.scratch_bytes, kr.blocks_per_sm
                    );
                    k.push_str(", \"body_cycles\": ");
                    let _ = write!(k, "{}", kr.body_cycles);
                    k.push_str(", \"start_s\": ");
                    let _ = write!(k, "{}", r.start_s);
                    k.push_str(", \"dur_s\": ");
                    let _ = write!(k, "{}", r.dur_s);
                    if let Some(bin) = kr.bin {
                        let _ = write!(k, ", \"bin\": {bin}");
                    }
                    if let Some(acc) = kr.acc {
                        let _ = write!(k, ", \"acc\": \"{}\"", acc_name(acc));
                    }
                    k.push_str("}}");
                    event(&mut out, &k);

                    if let Some(bt) = &kr.blocks {
                        let base_us =
                            self.us(r.start_s) + self.cycles_us(self.launch_overhead_cycles);
                        for e in &bt.events {
                            let ann = kr
                                .annotations
                                .as_ref()
                                .and_then(|a| a.get(e.grid_idx as usize));
                            let mut b = String::new();
                            b.push_str("{\"ph\": \"X\", \"pid\": 0, \"tid\": ");
                            let _ = write!(b, "{}", self.slot_tid(e.sm, e.slot));
                            b.push_str(", \"name\": ");
                            match ann {
                                Some(a) if a.rows.len() == 1 => {
                                    push_json_string(&mut b, &format!("row {}", a.rows[0]));
                                }
                                Some(a) if !a.rows.is_empty() => {
                                    push_json_string(
                                        &mut b,
                                        &format!(
                                            "rows[{}] {}..{}",
                                            a.rows.len(),
                                            a.rows.first().unwrap(),
                                            a.rows.last().unwrap()
                                        ),
                                    );
                                }
                                _ => push_json_string(&mut b, &format!("b{}", e.grid_idx)),
                            }
                            b.push_str(", \"cat\": ");
                            push_json_string(&mut b, &kr.name);
                            b.push_str(", \"ts\": ");
                            push_num(&mut b, base_us + self.cycles_us(e.start_cycles));
                            b.push_str(", \"dur\": ");
                            push_num(&mut b, self.cycles_us(e.end_cycles - e.start_cycles));
                            let _ = write!(
                                b,
                                ", \"args\": {{\"seq\": {seq}, \"grid\": {}, \"sm\": {}, \
                                 \"slot\": {}",
                                e.grid_idx, e.sm, e.slot
                            );
                            b.push_str(", \"start_cycles\": ");
                            let _ = write!(b, "{}", e.start_cycles);
                            b.push_str(", \"compute_cycles\": ");
                            let _ = write!(b, "{}", e.compute_cycles);
                            b.push_str(", \"memory_cycles\": ");
                            let _ = write!(b, "{}", e.memory_cycles);
                            if let Some(a) = ann {
                                if !a.rows.is_empty() {
                                    b.push_str(", \"rows\": ");
                                    let list = a
                                        .rows
                                        .iter()
                                        .map(|r| r.to_string())
                                        .collect::<Vec<_>>()
                                        .join(",");
                                    push_json_string(&mut b, &list);
                                }
                                if let Some(g) = a.group_size {
                                    let _ = write!(b, ", \"g\": {g}");
                                }
                            }
                            for (cname, v) in e.cost.counters() {
                                if v != 0 {
                                    let _ = write!(b, ", \"cost/{cname}\": {v}");
                                }
                            }
                            b.push_str("}}");
                            event(&mut out, &b);
                        }
                    }
                }
            }
        }

        out.push_str("\n]\n}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Dependency-free Chrome Trace Event parser + trace reconstruction
// ---------------------------------------------------------------------------

/// A parsed JSON value (the subset Chrome traces use).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as usize, if a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Num(v) if *v >= 0.0 && *v == v.trunc() => Some(*v as usize),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn err<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("trace json: {what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.b.len() && self.b[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.pos).copied()
    }

    fn expect(&mut self, ch: u8) -> Result<(), String> {
        if self.peek() == Some(ch) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", ch as char))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(&c) = self.b.get(self.pos) else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(&e) = self.b.get(self.pos) else {
                        return self.err("dangling escape");
                    };
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                c if c < 0x80 => s.push(c as char),
                c => {
                    // Re-decode a multi-byte UTF-8 sequence.
                    let start = self.pos - 1;
                    let len = if c >= 0xf0 {
                        4
                    } else if c >= 0xe0 {
                        3
                    } else {
                        2
                    };
                    let chunk = self
                        .b
                        .get(start..start + len)
                        .ok_or("truncated utf-8 sequence")?;
                    s.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b'{') => {
                self.expect(b'{')?;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                loop {
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let v = self.parse_value()?;
                    fields.push((key, v));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(JsonValue::Obj(fields));
                        }
                        _ => return self.err("expected ',' or '}'"),
                    }
                }
            }
            Some(b'[') => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Arr(items));
                        }
                        _ => return self.err("expected ',' or ']'"),
                    }
                }
            }
            Some(b't') => {
                if self.b[self.pos..].starts_with(b"true") {
                    self.pos += 4;
                    Ok(JsonValue::Bool(true))
                } else {
                    self.err("bad literal")
                }
            }
            Some(b'f') => {
                if self.b[self.pos..].starts_with(b"false") {
                    self.pos += 5;
                    Ok(JsonValue::Bool(false))
                } else {
                    self.err("bad literal")
                }
            }
            Some(b'n') => {
                if self.b[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(JsonValue::Null)
                } else {
                    self.err("bad literal")
                }
            }
            Some(c) if c.is_ascii_digit() || c == b'-' || c == b'+' => {
                let start = self.pos;
                while self.b.get(self.pos).is_some_and(|c| {
                    c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                let t = std::str::from_utf8(&self.b[start..self.pos]).map_err(|e| e.to_string())?;
                t.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|e| format!("trace json: bad number '{t}': {e}"))
            }
            _ => self.err("expected a value"),
        }
    }
}

/// Parses one JSON document (any value shape). Dependency-free — this is
/// the in-repo validator for exported Chrome traces.
pub fn parse_json_value(text: &str) -> Result<JsonValue, String> {
    let mut p = JsonParser {
        b: text.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return p.err("trailing data");
    }
    Ok(v)
}

impl ExecutionTrace {
    /// Reconstructs a trace from its Chrome Trace Event JSON export.
    ///
    /// Exact cycle/second values ride in the event `args`, so profiling a
    /// reconstructed trace gives the same report as profiling the
    /// original. Stage/kernel structure, per-block schedules, costs, and
    /// annotations all round-trip.
    pub fn from_chrome_trace(text: &str) -> Result<ExecutionTrace, String> {
        let root = parse_json_value(text)?;
        let other = root
            .get("otherData")
            .ok_or("trace json: missing otherData")?;
        if other.get("format").and_then(|v| v.as_str()) != Some(TRACE_FORMAT) {
            return Err(format!(
                "trace json: not a {TRACE_FORMAT} trace (otherData.format mismatch)"
            ));
        }
        let num = |key: &str| -> Result<f64, String> {
            other
                .get(key)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("trace json: missing otherData.{key}"))
        };
        let events = root
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .ok_or("trace json: missing traceEvents")?;

        // Pass 1: records by seq.
        let mut by_seq: BTreeMap<usize, TraceRecord> = BTreeMap::new();
        for ev in events {
            if ev.get("ph").and_then(|v| v.as_str()) != Some("X")
                || ev.get("pid").and_then(|v| v.as_usize()) != Some(1)
            {
                continue;
            }
            let args = ev.get("args").ok_or("trace json: record without args")?;
            let seq = args
                .get("seq")
                .and_then(|v| v.as_usize())
                .ok_or("trace json: record without seq")?;
            let stage = ev
                .get("cat")
                .and_then(|v| v.as_str())
                .ok_or("trace json: record without cat")?
                .to_string();
            let name = ev
                .get("name")
                .and_then(|v| v.as_str())
                .ok_or("trace json: record without name")?
                .to_string();
            let start_s = args
                .get("start_s")
                .and_then(|v| v.as_f64())
                .ok_or("trace json: record without start_s")?;
            let dur_s = args
                .get("dur_s")
                .and_then(|v| v.as_f64())
                .ok_or("trace json: record without dur_s")?;
            let kind = match args.get("kind").and_then(|v| v.as_str()) {
                Some("fixed") => TraceRecordKind::Fixed { label: name },
                Some("kernel") => TraceRecordKind::Kernel(KernelTraceRecord {
                    name,
                    grid: args.get("grid").and_then(|v| v.as_usize()).unwrap_or(0),
                    threads: args.get("threads").and_then(|v| v.as_usize()).unwrap_or(0),
                    scratch_bytes: args
                        .get("scratch_bytes")
                        .and_then(|v| v.as_usize())
                        .unwrap_or(0),
                    blocks_per_sm: args
                        .get("blocks_per_sm")
                        .and_then(|v| v.as_usize())
                        .unwrap_or(1),
                    body_cycles: args
                        .get("body_cycles")
                        .and_then(|v| v.as_f64())
                        .unwrap_or(0.0),
                    bin: args.get("bin").and_then(|v| v.as_usize()),
                    acc: args
                        .get("acc")
                        .and_then(|v| v.as_str())
                        .and_then(acc_from_name),
                    blocks: None,
                    annotations: None,
                }),
                _ => return Err("trace json: record with unknown kind".into()),
            };
            by_seq.insert(
                seq,
                TraceRecord {
                    stage,
                    start_s,
                    dur_s,
                    kind,
                },
            );
        }

        // Pass 2: per-block events, attached to their kernel by seq.
        let mut blocks_by_seq: BTreeMap<usize, Vec<(BlockEvent, Option<BlockAnnotation>)>> =
            BTreeMap::new();
        for ev in events {
            if ev.get("ph").and_then(|v| v.as_str()) != Some("X")
                || ev.get("pid").and_then(|v| v.as_usize()) != Some(0)
            {
                continue;
            }
            let args = ev.get("args").ok_or("trace json: block without args")?;
            let seq = args
                .get("seq")
                .and_then(|v| v.as_usize())
                .ok_or("trace json: block without seq")?;
            let getf = |key: &str| args.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0);
            let start_cycles = getf("start_cycles");
            let compute_cycles = getf("compute_cycles");
            let memory_cycles = getf("memory_cycles");
            let mut cost = BlockCost::default();
            if let JsonValue::Obj(fields) = args {
                for (k, v) in fields {
                    if let Some(cname) = k.strip_prefix("cost/") {
                        if let Some(n) = v.as_f64() {
                            cost.set_counter(cname, n as u64);
                        }
                    }
                }
            }
            let ann = args.get("rows").and_then(|v| v.as_str()).map(|list| {
                let rows = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .filter_map(|s| s.parse::<u32>().ok())
                    .collect();
                BlockAnnotation {
                    rows,
                    group_size: args.get("g").and_then(|v| v.as_usize()).map(|g| g as u32),
                }
            });
            let e = BlockEvent {
                grid_idx: args.get("grid").and_then(|v| v.as_usize()).unwrap_or(0) as u32,
                sm: args.get("sm").and_then(|v| v.as_usize()).unwrap_or(0) as u32,
                slot: args.get("slot").and_then(|v| v.as_usize()).unwrap_or(0) as u32,
                start_cycles,
                end_cycles: start_cycles + compute_cycles.max(memory_cycles),
                compute_cycles,
                memory_cycles,
                cost,
            };
            blocks_by_seq.entry(seq).or_default().push((e, ann));
        }

        let mut records: Vec<TraceRecord> = Vec::with_capacity(by_seq.len());
        for (seq, mut rec) in by_seq {
            if let TraceRecordKind::Kernel(kr) = &mut rec.kind {
                if let Some(mut evs) = blocks_by_seq.remove(&seq) {
                    evs.sort_by_key(|(e, _)| e.grid_idx);
                    let has_ann = evs.iter().any(|(_, a)| a.is_some());
                    if has_ann {
                        kr.annotations = Some(
                            evs.iter()
                                .map(|(_, a)| {
                                    a.clone().unwrap_or(BlockAnnotation {
                                        rows: Vec::new(),
                                        group_size: None,
                                    })
                                })
                                .collect(),
                        );
                    }
                    kr.blocks = Some(Arc::new(KernelBlockTrace {
                        body_cycles: kr.body_cycles,
                        events: evs.into_iter().map(|(e, _)| e).collect(),
                    }));
                }
            }
            records.push(rec);
        }

        let end_s = records
            .last()
            .map(|r| r.start_s + r.dur_s)
            .unwrap_or(0.0)
            .max(num("end_s")?);
        Ok(ExecutionTrace {
            device_name: other
                .get("device")
                .and_then(|v| v.as_str())
                .unwrap_or("unknown")
                .to_string(),
            num_sms: num("num_sms")? as usize,
            max_blocks_per_sm: num("max_blocks_per_sm")? as usize,
            clock_ghz: num("clock_ghz")?,
            launch_overhead_cycles: num("launch_overhead_cycles")?,
            records,
            end_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speck_simt::{CostModel, KernelConfig};

    fn sample_trace() -> ExecutionTrace {
        let dev = DeviceConfig::tiny();
        let cost = CostModel::default();
        let _g = speck_simt::CaptureGuard::new();
        let report = speck_simt::launch(&dev, &cost, "k0", 6, KernelConfig::new(64, 0), |ctx| {
            ctx.charge_rounds((ctx.block_id() as u64 % 3) * 7 + 1);
            ctx.charge_gmem_tx(5 * ctx.block_id() as u64);
        });
        let mut tb = TraceBuilder::new(&dev);
        tb.add_kernel(
            "symb. SpGEMM",
            &report,
            Some(2),
            Some(AccMethod::Hash),
            Some(
                (0..6)
                    .map(|i| BlockAnnotation {
                        rows: vec![i as u32, (i + 10) as u32],
                        group_size: Some(4),
                    })
                    .collect(),
            ),
        );
        tb.add_fixed("symb. SpGEMM", "alloc", 1e-6);
        tb.add_kernel("sorting", &report, None, None, None);
        tb.finish()
    }

    #[test]
    fn export_is_deterministic_and_parses() {
        let tr = sample_trace();
        let j1 = tr.chrome_trace_json();
        let j2 = tr.chrome_trace_json();
        assert_eq!(j1, j2);
        let v = parse_json_value(&j1).expect("valid json");
        let events = v.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        // 3 process metas + slot metas + stage frames + records + blocks.
        assert!(events.len() > 3 + 2 + 3 + 12);
        for ev in events {
            let ph = ev.get("ph").and_then(|p| p.as_str()).unwrap();
            assert!(ph == "X" || ph == "M", "unexpected phase {ph}");
            if ph == "X" {
                assert!(ev.get("ts").and_then(|t| t.as_f64()).is_some());
                assert!(ev.get("dur").and_then(|t| t.as_f64()).unwrap() >= 0.0);
            }
        }
    }

    #[test]
    fn chrome_roundtrip_preserves_structure() {
        let tr = sample_trace();
        let json = tr.chrome_trace_json();
        let back = ExecutionTrace::from_chrome_trace(&json).expect("roundtrip");
        assert_eq!(back.records.len(), tr.records.len());
        assert_eq!(back.num_sms, tr.num_sms);
        assert_eq!(back.end_s, tr.end_s);
        for (a, b) in tr.records.iter().zip(&back.records) {
            assert_eq!(a.stage, b.stage);
            assert_eq!(a.start_s.to_bits(), b.start_s.to_bits());
            assert_eq!(a.dur_s.to_bits(), b.dur_s.to_bits());
            match (&a.kind, &b.kind) {
                (TraceRecordKind::Fixed { label: la }, TraceRecordKind::Fixed { label: lb }) => {
                    assert_eq!(la, lb)
                }
                (TraceRecordKind::Kernel(ka), TraceRecordKind::Kernel(kb)) => {
                    assert_eq!(ka.name, kb.name);
                    assert_eq!(ka.grid, kb.grid);
                    assert_eq!(ka.bin, kb.bin);
                    assert_eq!(ka.acc, kb.acc);
                    assert_eq!(ka.annotations, kb.annotations);
                    let (ba, bb) = (ka.blocks.as_ref().unwrap(), kb.blocks.as_ref().unwrap());
                    assert_eq!(ba.events.len(), bb.events.len());
                    for (ea, eb) in ba.events.iter().zip(&bb.events) {
                        assert_eq!(ea, eb);
                    }
                }
                _ => panic!("record kind changed in roundtrip"),
            }
        }
        // Byte-identical re-export.
        assert_eq!(back.chrome_trace_json(), json);
    }

    #[test]
    fn stage_seconds_fold_in_record_order() {
        let tr = sample_trace();
        let per = tr.per_stage_seconds();
        assert_eq!(per.len(), 2);
        let k0 = tr.records[0].dur_s;
        assert_eq!(per["symb. SpGEMM"].to_bits(), (k0 + 1e-6).to_bits());
        assert_eq!(per["sorting"].to_bits(), k0.to_bits());
        assert_eq!(tr.per_stage_launches()["symb. SpGEMM"], 1);
        assert_eq!(tr.total_seconds(), tr.end_s);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json_value("{").is_err());
        assert!(parse_json_value("[1, 2,]").is_err());
        assert!(parse_json_value("{\"a\": }").is_err());
        assert!(parse_json_value("12 34").is_err());
        assert!(ExecutionTrace::from_chrome_trace("{\"traceEvents\": []}").is_err());
    }

    #[test]
    fn parser_accepts_standard_json_shapes() {
        let v = parse_json_value(
            "{\"a\": [1, -2.5, 3e2], \"b\": {\"c\": null, \"d\": true}, \"e\": \"x\\ny\"}",
        )
        .unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }
}
