//! Folds an [`ExecutionTrace`] into load-imbalance and hot-row reports.
//!
//! Answers the profiler questions the raw trace only implies: which output
//! rows cost the most cycles, how each cascade bin/accumulator contributes
//! per stage, how evenly work spread over SMs, and which block is on each
//! kernel's critical path.

use crate::global_lb::AccMethod;
use crate::trace::{ExecutionTrace, KernelTraceRecord, TraceRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of buckets in the SM-utilization histogram.
pub const UTIL_BUCKETS: usize = 10;

/// One entry of the hot-row ranking.
#[derive(Clone, Debug)]
pub struct HotRow {
    /// Output row of C.
    pub row: u32,
    /// Serial block cycles attributed to this row (a block's serial
    /// cycles divided equally across the rows it computes, summed over
    /// all kernels).
    pub cycles: f64,
    /// Number of block events that touched the row.
    pub events: usize,
}

/// One entry of the hot-block ranking.
#[derive(Clone, Debug)]
pub struct HotBlock {
    /// Kernel name the block ran in.
    pub kernel: String,
    /// Record sequence index of that kernel in the trace.
    pub seq: usize,
    /// Grid index of the block.
    pub grid_idx: u32,
    /// Serial cycles of the block.
    pub cycles: f64,
    /// Rows the block computed (empty for helper kernels).
    pub rows: Vec<u32>,
}

/// Per-kernel load-imbalance summary.
#[derive(Clone, Debug)]
pub struct KernelImbalance {
    /// Kernel name.
    pub name: String,
    /// Record sequence index in the trace.
    pub seq: usize,
    /// Pipeline stage.
    pub stage: String,
    /// Number of blocks launched.
    pub grid: usize,
    /// Body makespan in cycles.
    pub body_cycles: f64,
    /// Load-imbalance index: max per-SM busy cycles over the mean across
    /// *all* SMs (1.0 = perfectly balanced; large values mean a few SMs
    /// carried the kernel).
    pub imbalance: f64,
    /// Grid index of the tail block — the block with the latest slot-clock
    /// end (lowest grid index on ties): the critical path of the launch.
    pub tail_block: u32,
    /// Serial cycles of the tail block.
    pub tail_cycles: f64,
}

/// Aggregate cycles of one `(stage, accumulator, bin)` attribution cell.
#[derive(Clone, Debug, Default)]
pub struct BinCycles {
    /// Kernel launches in this cell.
    pub launches: usize,
    /// Blocks scheduled in this cell.
    pub blocks: usize,
    /// Summed serial block cycles.
    pub block_cycles: f64,
    /// Summed kernel wall seconds (launch overhead included).
    pub seconds: f64,
}

/// Attribution-cell key: `(stage, accumulator, bin)`; helper kernels use
/// `(stage, None, None)`.
pub type BinKey = (String, Option<AccMethod>, Option<usize>);

/// Everything [`profile_trace`] computes.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Simulated seconds of the whole trace.
    pub total_s: f64,
    /// Seconds per pipeline stage (record-order fold — matches the
    /// `Timeline` bitwise).
    pub stages: BTreeMap<String, f64>,
    /// Cycle attribution per `(stage, accumulator, bin)` for SpGEMM
    /// kernels; helper kernels land in `(stage, None, None)`.
    pub bins: BTreeMap<BinKey, BinCycles>,
    /// Hottest output rows by attributed cycles (descending; row index
    /// ascending on ties).
    pub top_rows: Vec<HotRow>,
    /// Hottest single blocks by serial cycles.
    pub top_blocks: Vec<HotBlock>,
    /// Per-kernel imbalance, trace order.
    pub kernels: Vec<KernelImbalance>,
    /// Per-SM utilization, averaged over kernels weighted by body cycles:
    /// `util_i = Σ_k (busy_i,k / bpsm_k) / Σ_k body_k`.
    pub sm_util: Vec<f64>,
    /// Histogram of `sm_util` over [`UTIL_BUCKETS`] equal buckets of
    /// `[0, 1]`.
    pub util_histogram: [usize; UTIL_BUCKETS],
}

fn traced_kernels(tr: &ExecutionTrace) -> Vec<(usize, &TraceRecord, &KernelTraceRecord)> {
    tr.records
        .iter()
        .enumerate()
        .filter_map(|(seq, r)| match &r.kind {
            crate::trace::TraceRecordKind::Kernel(k) => Some((seq, r, k)),
            _ => None,
        })
        .collect()
}

/// Folds a trace into a [`ProfileReport`]. `top_k` caps the hot-row and
/// hot-block rankings.
pub fn profile_trace(tr: &ExecutionTrace, top_k: usize) -> ProfileReport {
    let stages = tr.per_stage_seconds();
    let total_s = tr.total_seconds();

    let mut bins: BTreeMap<BinKey, BinCycles> = BTreeMap::new();
    let mut row_cycles: BTreeMap<u32, (f64, usize)> = BTreeMap::new();
    let mut blocks: Vec<HotBlock> = Vec::new();
    let mut kernels: Vec<KernelImbalance> = Vec::new();
    // Per-SM: busy/bpsm summed over kernels; weight = body cycles.
    let mut sm_busy = vec![0.0f64; tr.num_sms.max(1)];
    let mut body_total = 0.0f64;

    for (seq, rec, k) in traced_kernels(tr) {
        let cell = bins.entry((rec.stage.clone(), k.acc, k.bin)).or_default();
        cell.launches += 1;
        cell.seconds += rec.dur_s;

        let Some(bt) = &k.blocks else { continue };
        cell.blocks += bt.events.len();

        let bpsm = k.blocks_per_sm.max(1) as f64;
        let mut busy = vec![0.0f64; tr.num_sms.max(1)];
        let mut tail: Option<(f64, u32, f64)> = None; // (end, grid_idx, serial)
        for e in &bt.events {
            let serial = e.serial_cycles();
            cell.block_cycles += serial;
            if let Some(sm) = busy.get_mut(e.sm as usize) {
                *sm += serial;
            }
            let ann = k
                .annotations
                .as_ref()
                .and_then(|a| a.get(e.grid_idx as usize));
            let rows: &[u32] = ann.map(|a| a.rows.as_slice()).unwrap_or(&[]);
            if !rows.is_empty() {
                let share = serial / rows.len() as f64;
                for &r in rows {
                    let ent = row_cycles.entry(r).or_insert((0.0, 0));
                    ent.0 += share;
                    ent.1 += 1;
                }
            }
            blocks.push(HotBlock {
                kernel: k.name.clone(),
                seq,
                grid_idx: e.grid_idx,
                cycles: serial,
                rows: rows.to_vec(),
            });
            let better = match tail {
                None => true,
                Some((end, gi, _)) => {
                    e.end_cycles > end || (e.end_cycles == end && e.grid_idx < gi)
                }
            };
            if better {
                tail = Some((e.end_cycles, e.grid_idx, serial));
            }
        }

        let max_busy = busy.iter().cloned().fold(0.0f64, f64::max);
        let mean_busy = busy.iter().sum::<f64>() / busy.len() as f64;
        let imbalance = if mean_busy > 0.0 {
            max_busy / mean_busy
        } else {
            1.0
        };
        let (_, tail_block, tail_cycles) = tail.unwrap_or((0.0, 0, 0.0));
        kernels.push(KernelImbalance {
            name: k.name.clone(),
            seq,
            stage: rec.stage.clone(),
            grid: k.grid,
            body_cycles: k.body_cycles,
            imbalance,
            tail_block,
            tail_cycles,
        });

        if k.body_cycles > 0.0 {
            body_total += k.body_cycles;
            for (acc, b) in sm_busy.iter_mut().zip(&busy) {
                *acc += b / bpsm;
            }
        }
    }

    let sm_util: Vec<f64> = if body_total > 0.0 {
        sm_busy
            .iter()
            .map(|b| (b / body_total).clamp(0.0, 1.0))
            .collect()
    } else {
        vec![0.0; sm_busy.len()]
    };
    let mut util_histogram = [0usize; UTIL_BUCKETS];
    for &u in &sm_util {
        let b = ((u * UTIL_BUCKETS as f64) as usize).min(UTIL_BUCKETS - 1);
        util_histogram[b] += 1;
    }

    let mut top_rows: Vec<HotRow> = row_cycles
        .into_iter()
        .map(|(row, (cycles, events))| HotRow {
            row,
            cycles,
            events,
        })
        .collect();
    top_rows.sort_by(|a, b| b.cycles.total_cmp(&a.cycles).then(a.row.cmp(&b.row)));
    top_rows.truncate(top_k);

    blocks.sort_by(|a, b| {
        b.cycles
            .total_cmp(&a.cycles)
            .then(a.seq.cmp(&b.seq))
            .then(a.grid_idx.cmp(&b.grid_idx))
    });
    blocks.truncate(top_k);

    ProfileReport {
        total_s,
        stages,
        bins,
        top_rows,
        top_blocks: blocks,
        kernels,
        sm_util,
        util_histogram,
    }
}

fn acc_label(a: Option<AccMethod>) -> &'static str {
    match a {
        Some(AccMethod::Hash) => "hash",
        Some(AccMethod::Dense) => "dense",
        Some(AccMethod::Direct) => "direct",
        None => "-",
    }
}

fn fmt_rows(rows: &[u32]) -> String {
    match rows.len() {
        0 => "-".to_string(),
        1 => rows[0].to_string(),
        n => format!("{} rows [{}..{}]", n, rows[0], rows[n - 1]),
    }
}

impl ProfileReport {
    /// Renders the report as aligned text tables.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "total simulated time: {:.3} us", self.total_s * 1e6);

        let _ = writeln!(out, "\nper-stage time:");
        let _ = writeln!(out, "  {:<14} {:>12} {:>7}", "stage", "us", "%");
        for (stage, s) in &self.stages {
            let pct = if self.total_s > 0.0 {
                100.0 * s / self.total_s
            } else {
                0.0
            };
            let _ = writeln!(out, "  {:<14} {:>12.3} {:>6.1}%", stage, s * 1e6, pct);
        }

        let _ = writeln!(out, "\nper-bin cycle attribution:");
        let _ = writeln!(
            out,
            "  {:<14} {:<7} {:>4} {:>9} {:>8} {:>14}",
            "stage", "acc", "bin", "launches", "blocks", "block cycles"
        );
        for ((stage, acc, bin), c) in &self.bins {
            let bin_s = bin.map(|b| b.to_string()).unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "  {:<14} {:<7} {:>4} {:>9} {:>8} {:>14.0}",
                stage,
                acc_label(*acc),
                bin_s,
                c.launches,
                c.blocks,
                c.block_cycles
            );
        }

        if !self.top_rows.is_empty() {
            let _ = writeln!(out, "\nhottest rows (by attributed serial cycles):");
            let _ = writeln!(out, "  {:>8} {:>14} {:>7}", "row", "cycles", "events");
            for r in &self.top_rows {
                let _ = writeln!(out, "  {:>8} {:>14.1} {:>7}", r.row, r.cycles, r.events);
            }
        }

        if !self.top_blocks.is_empty() {
            let _ = writeln!(out, "\nhottest blocks:");
            let _ = writeln!(
                out,
                "  {:<22} {:>5} {:>14}  rows",
                "kernel", "blk", "cycles"
            );
            for b in &self.top_blocks {
                let _ = writeln!(
                    out,
                    "  {:<22} {:>5} {:>14.1}  {}",
                    b.kernel,
                    b.grid_idx,
                    b.cycles,
                    fmt_rows(&b.rows)
                );
            }
        }

        if !self.kernels.is_empty() {
            let _ = writeln!(out, "\nper-kernel load imbalance:");
            let _ = writeln!(
                out,
                "  {:<22} {:<14} {:>6} {:>12} {:>9} {:>9}",
                "kernel", "stage", "grid", "body cyc", "imbal", "tail blk"
            );
            for k in &self.kernels {
                let _ = writeln!(
                    out,
                    "  {:<22} {:<14} {:>6} {:>12.0} {:>9.3} {:>9}",
                    k.name, k.stage, k.grid, k.body_cycles, k.imbalance, k.tail_block
                );
            }
        }

        let used: usize = self.util_histogram.iter().sum();
        if used > 0 {
            let mean = self.sm_util.iter().sum::<f64>() / self.sm_util.len() as f64;
            let _ = writeln!(
                out,
                "\nSM utilization ({} SMs, mean {:.1}%):",
                self.sm_util.len(),
                mean * 100.0
            );
            for (i, &n) in self.util_histogram.iter().enumerate() {
                let lo = i * 100 / UTIL_BUCKETS;
                let hi = (i + 1) * 100 / UTIL_BUCKETS;
                let bar = "#".repeat(n.min(60));
                let _ = writeln!(out, "  {:>3}-{:>3}% {:>4} {}", lo, hi, n, bar);
            }
        }
        out
    }

    /// Serialises the report as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = write!(out, "  \"total_s\": {},\n  \"stages\": {{", self.total_s);
        for (i, (stage, s)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{:?}: {}", stage, s);
        }
        out.push_str("},\n  \"bins\": [");
        for (i, ((stage, acc, bin), c)) in self.bins.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"stage\": {:?}, \"acc\": {:?}, \"bin\": {}, \"launches\": {}, \
                 \"blocks\": {}, \"block_cycles\": {}, \"seconds\": {}}}",
                stage,
                acc_label(*acc),
                bin.map(|b| b.to_string()).unwrap_or_else(|| "null".into()),
                c.launches,
                c.blocks,
                c.block_cycles,
                c.seconds
            );
        }
        out.push_str("\n  ],\n  \"top_rows\": [");
        for (i, r) in self.top_rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"row\": {}, \"cycles\": {}, \"events\": {}}}",
                r.row, r.cycles, r.events
            );
        }
        out.push_str("\n  ],\n  \"top_blocks\": [");
        for (i, b) in self.top_blocks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"kernel\": {:?}, \"seq\": {}, \"grid_idx\": {}, \"cycles\": {}, \
                 \"rows\": {}}}",
                b.kernel,
                b.seq,
                b.grid_idx,
                b.cycles,
                b.rows.len()
            );
        }
        out.push_str("\n  ],\n  \"kernels\": [");
        for (i, k) in self.kernels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": {:?}, \"stage\": {:?}, \"grid\": {}, \"body_cycles\": {}, \
                 \"imbalance\": {}, \"tail_block\": {}, \"tail_cycles\": {}}}",
                k.name, k.stage, k.grid, k.body_cycles, k.imbalance, k.tail_block, k.tail_cycles
            );
        }
        out.push_str("\n  ],\n  \"sm_util\": [");
        for (i, u) in self.sm_util.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{u}");
        }
        out.push_str("],\n  \"util_histogram\": [");
        for (i, n) in self.util_histogram.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{n}");
        }
        out.push_str("]\n}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Trace diff (cold vs warm plan)
// ---------------------------------------------------------------------------

/// Per-stage and per-bin deltas between two traces of the *same* multiply
/// — typically a cold (plan + execute) run against a warm (plan-reuse)
/// run, quantifying exactly which stages and bins the cached plan skips.
#[derive(Clone, Debug)]
pub struct TraceDiff {
    /// `new - old` total seconds.
    pub total_delta_s: f64,
    /// Per-stage `(old, new)` seconds; stages missing on one side read 0.
    pub stages: BTreeMap<String, (f64, f64)>,
    /// Per-`(stage, acc, bin)` `(old, new)` serial block cycles.
    pub bins: BTreeMap<BinKey, (f64, f64)>,
}

/// Diffs two traces (see [`TraceDiff`]).
pub fn diff_traces(old: &ExecutionTrace, new: &ExecutionTrace) -> TraceDiff {
    let po = profile_trace(old, 0);
    let pn = profile_trace(new, 0);
    let mut stages: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    for (s, v) in &po.stages {
        stages.entry(s.clone()).or_insert((0.0, 0.0)).0 = *v;
    }
    for (s, v) in &pn.stages {
        stages.entry(s.clone()).or_insert((0.0, 0.0)).1 = *v;
    }
    let mut bins: BTreeMap<BinKey, (f64, f64)> = BTreeMap::new();
    for (k, c) in &po.bins {
        bins.entry(k.clone()).or_insert((0.0, 0.0)).0 = c.block_cycles;
    }
    for (k, c) in &pn.bins {
        bins.entry(k.clone()).or_insert((0.0, 0.0)).1 = c.block_cycles;
    }
    TraceDiff {
        total_delta_s: pn.total_s - po.total_s,
        stages,
        bins,
    }
}

impl TraceDiff {
    /// Renders the diff as an aligned text table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "total delta: {:+.3} us", self.total_delta_s * 1e6);
        let _ = writeln!(
            out,
            "\n  {:<14} {:>12} {:>12} {:>12}",
            "stage", "old us", "new us", "delta us"
        );
        for (stage, (o, n)) in &self.stages {
            let _ = writeln!(
                out,
                "  {:<14} {:>12.3} {:>12.3} {:>+12.3}",
                stage,
                o * 1e6,
                n * 1e6,
                (n - o) * 1e6
            );
        }
        let any_bins = self.bins.keys().any(|(_, acc, _)| acc.is_some());
        if any_bins {
            let _ = writeln!(
                out,
                "\n  {:<14} {:<7} {:>4} {:>14} {:>14} {:>14}",
                "stage", "acc", "bin", "old cycles", "new cycles", "delta"
            );
            for ((stage, acc, bin), (o, n)) in &self.bins {
                let bin_s = bin.map(|b| b.to_string()).unwrap_or_else(|| "-".into());
                let _ = writeln!(
                    out,
                    "  {:<14} {:<7} {:>4} {:>14.0} {:>14.0} {:>+14.0}",
                    stage,
                    acc_label(*acc),
                    bin_s,
                    o,
                    n,
                    n - o
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{BlockAnnotation, TraceBuilder};
    use speck_simt::{launch, CostModel, DeviceConfig, KernelConfig};

    fn traced_report(
        dev: &DeviceConfig,
        name: &'static str,
        grid: usize,
    ) -> speck_simt::KernelReport {
        let cost = CostModel::default();
        let _g = speck_simt::CaptureGuard::new();
        launch(dev, &cost, name, grid, KernelConfig::new(64, 0), |ctx| {
            ctx.charge_rounds((ctx.block_id() as u64 % 4) * 11 + 2);
        })
    }

    fn sample() -> ExecutionTrace {
        let dev = DeviceConfig::tiny();
        let rep = traced_report(&dev, "numeric_hash_c1", 8);
        let mut tb = TraceBuilder::new(&dev);
        tb.add_kernel(
            "num. SpGEMM",
            &rep,
            Some(1),
            Some(AccMethod::Hash),
            Some(
                (0..8)
                    .map(|i| BlockAnnotation {
                        rows: vec![i as u32],
                        group_size: Some(8),
                    })
                    .collect(),
            ),
        );
        tb.finish()
    }

    #[test]
    fn hot_rows_rank_by_cycles() {
        let p = profile_trace(&sample(), 5);
        assert_eq!(p.top_rows.len(), 5);
        // Rows 3 and 7 charge (3 % 4) * 11 + 2 = 35 rounds — the hottest.
        assert_eq!(p.top_rows[0].row, 3);
        assert_eq!(p.top_rows[1].row, 7);
        assert!(p.top_rows[0].cycles >= p.top_rows[1].cycles);
        for w in p.top_rows.windows(2) {
            assert!(w[0].cycles >= w[1].cycles);
        }
    }

    #[test]
    fn bins_attribute_blocks_and_kernels() {
        let p = profile_trace(&sample(), 3);
        let key = ("num. SpGEMM".to_string(), Some(AccMethod::Hash), Some(1));
        let cell = &p.bins[&key];
        assert_eq!(cell.launches, 1);
        assert_eq!(cell.blocks, 8);
        assert!(cell.block_cycles > 0.0);
        assert_eq!(p.kernels.len(), 1);
        assert!(p.kernels[0].imbalance >= 1.0);
    }

    #[test]
    fn utilization_is_bounded_and_histogrammed() {
        let p = profile_trace(&sample(), 3);
        assert_eq!(p.sm_util.len(), 4); // tiny device: 4 SMs
        for &u in &p.sm_util {
            assert!((0.0..=1.0).contains(&u));
        }
        assert_eq!(p.util_histogram.iter().sum::<usize>(), 4);
        let t = p.render_table();
        assert!(t.contains("hottest rows"));
        assert!(t.contains("SM utilization"));
        assert!(t.contains("per-bin cycle attribution"));
        let j = p.to_json();
        assert!(crate::trace::parse_json_value(&j).is_ok());
    }

    #[test]
    fn diff_reports_stage_deltas() {
        let dev = DeviceConfig::tiny();
        let rep = traced_report(&dev, "numeric_direct", 4);
        let mut cold = TraceBuilder::new(&dev);
        cold.add_fixed("analysis", "alloc", 2e-6);
        cold.add_kernel("num. SpGEMM", &rep, None, Some(AccMethod::Direct), None);
        let cold = cold.finish();
        let mut warm = TraceBuilder::new(&dev);
        warm.add_kernel("num. SpGEMM", &rep, None, Some(AccMethod::Direct), None);
        let warm = warm.finish();

        let d = diff_traces(&cold, &warm);
        assert!(d.total_delta_s < 0.0);
        let (o, n) = d.stages["analysis"];
        assert_eq!(o, 2e-6);
        assert_eq!(n, 0.0);
        let (ko, kn) = d.stages["num. SpGEMM"];
        assert_eq!(ko.to_bits(), kn.to_bits());
        let t = d.render_table();
        assert!(t.contains("total delta"));
        assert!(t.contains("analysis"));
    }
}
