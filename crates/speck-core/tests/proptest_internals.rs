//! Property-based tests of spECK's internal data structures and
//! heuristics: the hash accumulator against a BTreeMap oracle, the dense
//! chunk against direct accumulation, Algorithm 2's invariants, and the
//! local load balancer's contracts.

use proptest::prelude::*;
use speck_core::block_merge::{block_merge, MERGE_LEVELS};
use speck_core::denseacc::{dense_iterations, DenseChunk};
use speck_core::hashacc::{compound_key, split_key, Accumulator};
use speck_core::local_lb::{rounds_for_g, select_group_size};
use speck_core::LocalLbMode;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn accumulator_matches_btreemap_oracle(
        capacity in 1usize..64,
        ops in proptest::collection::vec((0u32..32, 0u32..200, -100i32..100), 0..400),
    ) {
        let mut acc: Accumulator<f64> = Accumulator::new(capacity);
        let mut oracle: BTreeMap<u64, f64> = BTreeMap::new();
        for (row, col, v) in ops {
            let key = compound_key(row, col);
            let val = v as f64 / 4.0;
            let new = acc.insert(key, val);
            let was_new = !oracle.contains_key(&key);
            prop_assert_eq!(new, was_new);
            *oracle.entry(key).or_insert(0.0) += val;
        }
        prop_assert_eq!(acc.len(), oracle.len());
        let drained = acc.drain_sorted();
        prop_assert_eq!(drained.len(), oracle.len());
        for ((k, v), (ok, ov)) in drained.iter().zip(oracle.iter()) {
            prop_assert_eq!(k, ok);
            prop_assert!((v - ov).abs() < 1e-9);
        }
        // Drained output is sorted row-major.
        for w in drained.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn compound_key_roundtrip_and_order(
        r1 in 0u32..32, c1 in 0u32..(1 << 27),
        r2 in 0u32..32, c2 in 0u32..(1 << 27),
    ) {
        prop_assert_eq!(split_key(compound_key(r1, c1)), (r1, c1));
        // Keys order row-major (row, col) lexicographically.
        let ord_key = compound_key(r1, c1).cmp(&compound_key(r2, c2));
        let ord_pair = (r1, c1).cmp(&(r2, c2));
        prop_assert_eq!(ord_key, ord_pair);
    }

    #[test]
    fn counts_per_row_partition_the_map(
        entries in proptest::collection::vec((0u32..8, 0u32..100), 0..200),
    ) {
        let mut acc: Accumulator<f64> = Accumulator::new(64);
        for &(r, c) in &entries {
            acc.insert_key(compound_key(r, c));
        }
        let counts = acc.counts_per_local_row(8);
        prop_assert_eq!(counts.iter().map(|&c| c as usize).sum::<usize>(), acc.len());
    }

    #[test]
    fn block_merge_invariants(
        demands in proptest::collection::vec(0u64..1000, 0..300),
        capacity in 1u64..2000,
    ) {
        let (segs, _) = block_merge(&demands, capacity, true);
        // Tiling: segments cover the input contiguously, in order.
        let mut pos = 0usize;
        for s in &segs {
            prop_assert_eq!(s.start, pos);
            prop_assert!(s.len >= 1);
            prop_assert!(s.len <= 1 << MERGE_LEVELS);
            pos += s.len;
        }
        prop_assert_eq!(pos, demands.len());
        // Conservation and capacity: merged (len > 1) segments fit.
        for s in &segs {
            let sum: u64 = demands[s.start..s.start + s.len].iter().sum();
            prop_assert_eq!(s.demand, sum);
            if s.len > 1 {
                prop_assert!(s.demand < capacity);
            }
        }
    }

    #[test]
    fn merge_never_worse_than_no_merge(
        demands in proptest::collection::vec(1u64..100, 1..200),
    ) {
        let (merged, _) = block_merge(&demands, 256, true);
        let (plain, _) = block_merge(&demands, 256, false);
        prop_assert!(merged.len() <= plain.len());
    }

    #[test]
    fn local_lb_contracts(
        threads_log in 5u32..11,
        nnz_a in 0u64..100_000,
        avg_len in 1u64..200,
        max_factor in 1u64..50,
    ) {
        let threads = 1usize << threads_log;
        let products = nnz_a.saturating_mul(avg_len);
        let max_b = (avg_len * max_factor).min(products.max(1));
        let g = select_group_size(LocalLbMode::Dynamic, threads, nnz_a, products, max_b);
        prop_assert!(g >= 1 && g <= threads);
        prop_assert!(g.is_power_of_two());
        if nnz_a > 0 && products > 0 {
            // No more groups than work items.
            prop_assert!((threads / g).max(1) as u64 <= nnz_a.max(1) || g == threads);
        }
    }

    #[test]
    fn dynamic_g_not_catastrophic(
        lens in proptest::collection::vec(1u64..300, 1..150),
    ) {
        let total: u64 = lens.iter().sum();
        let max = *lens.iter().max().unwrap();
        let threads = 256;
        let g = select_group_size(LocalLbMode::Dynamic, threads, lens.len() as u64, total, max);
        let dynamic = rounds_for_g(g, threads, &lens);
        let best = (0..=8).map(|l| rounds_for_g(1 << l, threads, &lens)).min().unwrap();
        // Paper: dynamic g averages 1.02x of the optimum; allow 3x on any
        // single adversarial instance.
        prop_assert!(dynamic <= 3 * best.max(1), "dynamic {} vs best {}", dynamic, best);
    }

    #[test]
    fn dense_chunk_matches_direct_accumulation(
        base in 0u32..1000,
        width in 1usize..300,
        ops in proptest::collection::vec((0usize..300, -50i32..50), 0..300),
    ) {
        let mut chunk: DenseChunk<f64> = DenseChunk::numeric(base, width);
        let mut oracle: BTreeMap<u32, f64> = BTreeMap::new();
        for (off, v) in ops {
            if off < width {
                let col = base + off as u32;
                chunk.add(col, v as f64);
                *oracle.entry(col).or_insert(0.0) += v as f64;
            }
        }
        let out = chunk.extract_sorted();
        prop_assert_eq!(out.len(), oracle.len());
        for ((c, v), (oc, ov)) in out.iter().zip(oracle.iter()) {
            prop_assert_eq!(c, oc);
            prop_assert!((v - ov).abs() < 1e-9);
        }
    }

    #[test]
    fn dense_iterations_covers_range(range in 0u64..1_000_000, slots in 1usize..10_000) {
        let it = dense_iterations(range, slots);
        prop_assert!(it * (slots as u64) >= range);
        if it > 0 {
            prop_assert!((it - 1).saturating_mul(slots as u64) < range);
        }
    }
}
