//! nsparse-style SpGEMM (Nagasaka et al., ICPP 2017).
//!
//! Hash-based with two analysis steps (temporary-product counting and a
//! symbolic pass), *unconditional* binning by product counts with per-row
//! atomic scatter, a fixed 32 threads per row of B, hash maps sized to the
//! next power of two (fill approaching 1), and sorting of all hash output.
//! The differences from spECK are exactly the ones the paper calls out:
//! no conditional analysis (≈30 % overhead on uniform matrices), no local
//! load balancing (idle threads on short rows), no dense accumulator
//! (expensive sorting and global hashing for long rows).

use crate::common::{charge_count_kernel, charge_scatter_binning, csr_bytes, RunAccounting};
use crate::{MethodResult, SpgemmMethod};
use speck_core::analysis::analyze;
use speck_core::cascade::{numeric_entry_bytes, symbolic_entry_bytes, KernelCascade};
use speck_core::config::{GlobalLbMode, LocalLbMode, SpeckConfig};
use speck_core::global_lb::{AccMethod, BlockPlan, GateProvenance, PassPlan, ThresholdSet};
use speck_core::numeric::{row_ptr_from_nnz, run_numeric, NumericJob};
use speck_core::symbolic::{group_blocks, run_symbolic};
use speck_core::WorkspacePool;
use speck_simt::{CostModel, DeviceConfig};
use speck_sparse::Csr;

/// The nsparse-style method.
pub struct NsparseLike;

/// Rows packed per block in the smallest (PWARP-style) bin.
const SMALL_BIN_PACK: usize = 32;

fn nsparse_config() -> SpeckConfig {
    SpeckConfig {
        local_lb: LocalLbMode::Fixed(32),
        enable_dense: false,
        enable_direct: false,
        ..SpeckConfig::default()
    }
}

/// Builds nsparse's unconditional product-count binning plan.
#[doc(hidden)]
pub fn debug_plan(cascade: &KernelCascade, entries: &[u64], entry_bytes: usize) -> PassPlan {
    plan(cascade, entries, entry_bytes)
}

fn plan(cascade: &KernelCascade, entries: &[u64], entry_bytes: usize) -> PassPlan {
    let largest = cascade.largest();
    let mut bins: Vec<Vec<u32>> = vec![Vec::new(); cascade.len()];
    for (r, &e) in entries.iter().enumerate() {
        let idx = cascade.fit_hash(e as usize, entry_bytes).unwrap_or(largest);
        bins[idx].push(r as u32);
    }
    let mut blocks = Vec::new();
    for (idx, bin) in bins.iter().enumerate() {
        if idx == 0 {
            // PWARP-style small bin: sequential fill up to the shared map
            // capacity (but no demand-aware neighbour merging like spECK's
            // Alg. 2 — order is whatever the scatter binning produced).
            let cap = cascade.hash_capacity(idx, entry_bytes) as u64;
            let mut cur: Vec<u32> = Vec::new();
            let mut used = 0u64;
            for &r in bin {
                let e = entries[r as usize];
                if !cur.is_empty() && (used + e > cap || cur.len() >= SMALL_BIN_PACK) {
                    blocks.push(BlockPlan {
                        rows: std::mem::take(&mut cur),
                        cfg_idx: idx,
                        method: AccMethod::Hash,
                    });
                    used = 0;
                }
                cur.push(r);
                used += e;
            }
            if !cur.is_empty() {
                blocks.push(BlockPlan {
                    rows: cur,
                    cfg_idx: idx,
                    method: AccMethod::Hash,
                });
            }
        } else {
            for &r in bin {
                blocks.push(BlockPlan {
                    rows: vec![r],
                    cfg_idx: idx,
                    method: AccMethod::Hash,
                });
            }
        }
    }
    PassPlan {
        blocks,
        used_global_lb: true,
        threshold_set: ThresholdSet::Base,
        lb_reports: Vec::new(),
        lb_alloc_bytes: entries.len() * 4 + cascade.len() * 8,
        decision_ratio: 0.0,
        decision_rows: entries.len(),
        // nsparse bins unconditionally — there is no gate decision, so
        // the provenance records an always-on gate with no thresholds.
        gate: GateProvenance {
            mode: GlobalLbMode::AlwaysOn,
            ratio: 0.0,
            rows: entries.len(),
            needs_large_kernel: false,
            threshold_set: ThresholdSet::Base,
            thr_ratio: 0.0,
            thr_rows: 0,
            used_global_lb: true,
        },
    }
}

impl SpgemmMethod for NsparseLike {
    fn name(&self) -> &'static str {
        "nsparse"
    }

    fn multiply(
        &self,
        dev: &DeviceConfig,
        cost: &CostModel,
        a: &Csr<f64>,
        b: &Csr<f64>,
    ) -> MethodResult {
        let cascade = KernelCascade::for_device(dev);
        let cfg = nsparse_config();
        let mut acct = RunAccounting::new(dev);

        // Step 1: count temporary products per row (first analysis).
        acct.kernel(&charge_count_kernel(
            dev,
            cost,
            "nsparse_count",
            a.rows(),
            a.nnz(),
        ));
        // Host-side: we also need the full analysis record to drive the
        // shared kernels, but charge only what nsparse actually reads.
        let (info, _) = analyze(dev, cost, a, b);
        acct.alloc(a.rows() * 8);

        // Step 2: unconditional scatter binning for the symbolic pass.
        acct.kernel(&charge_scatter_binning(
            dev,
            cost,
            "nsparse_bin_sym",
            a.rows(),
        ));
        let sym_entry = symbolic_entry_bytes(b.cols());
        let sym_entries: Vec<u64> = info.rows.iter().map(|r| r.products).collect();
        let splan = plan(&cascade, &sym_entries, sym_entry);
        acct.alloc(splan.lb_alloc_bytes);

        // Eager global hash tables for every row of the overflow bin.
        let overflow: u64 = info
            .rows
            .iter()
            .map(|r| r.products)
            .filter(|&p| p as usize > cascade.hash_capacity(cascade.largest(), sym_entry))
            .sum();
        if overflow > 0 {
            acct.alloc(overflow as usize * (8 + 8));
        }

        // Step 3: symbolic pass.
        let pool = WorkspacePool::new();
        let sym = run_symbolic(dev, cost, &cascade, &cfg, a, b, &info, &splan, &pool);
        for r in &sym.reports {
            acct.kernel(r);
        }
        acct.alloc((a.rows() + 1) * 8);

        let nnz_c: usize = sym.row_nnz.iter().map(|&x| x as usize).sum();
        acct.alloc_output(csr_bytes(a.rows(), nnz_c));

        // Step 4: numeric binning (scatter again) on exact sizes; hash maps
        // are the next power of two of the row size (fill up to ~1.0).
        acct.kernel(&charge_scatter_binning(
            dev,
            cost,
            "nsparse_bin_num",
            a.rows(),
        ));
        let num_entry = numeric_entry_bytes(b.cols(), 8);
        let num_entries: Vec<u64> = sym
            .row_nnz
            .iter()
            .map(|&n| (n.max(1) as u64).next_power_of_two())
            .collect();
        let nplan = plan(&cascade, &num_entries, num_entry);
        acct.alloc(nplan.lb_alloc_bytes);

        // Step 5: numeric pass + sorting (run_numeric charges the trailing
        // radix pass for the larger bins).
        let ngroups = group_blocks(&nplan);
        let row_ptr = row_ptr_from_nnz(&sym.row_nnz);
        let job = NumericJob {
            plan: &nplan,
            groups: &ngroups,
            row_nnz: &sym.row_nnz,
            row_ptr: &row_ptr,
        };
        let num = run_numeric(dev, cost, &cascade, &cfg, a, b, &info, &job, &pool);
        for r in &num.reports {
            acct.kernel(r);
        }
        if let Some(r) = &num.sort_report {
            acct.kernel(r);
            acct.alloc(num.radix_elems * 12);
        }

        if let Err(e) = acct.check_memory() {
            return MethodResult::failure(e);
        }
        MethodResult {
            c: Some(num.c),
            sim_time_s: acct.seconds(),
            peak_mem_bytes: acct.mem.peak(),
            sorted_output: true,
            failed: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speck_sparse::gen::{banded, rmat};
    use speck_sparse::reference::spgemm_seq;

    #[test]
    fn correct_on_mesh_and_graph() {
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        for a in [banded(800, 3, 1.0, 1), rmat(9, 6, 0.57, 0.19, 0.19, 2)] {
            let r = NsparseLike.multiply(&dev, &cost, &a, &a);
            assert!(r.ok());
            assert!(r.c.unwrap().approx_eq(&spgemm_seq(&a, &a), 1e-10, 1e-12));
        }
    }

    #[test]
    fn slower_than_speck_on_uniform_short_rows() {
        // The stat96v2 effect (paper §6.2): short rows of B + fixed g=32
        // waste most threads; spECK picks a small g. Plus nsparse's
        // unconditional binning overhead on a uniform matrix.
        let a = banded(60_000, 1, 1.0, 5); // ~3 NZ/row
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let n = NsparseLike.multiply(&dev, &cost, &a, &a);
        let s = crate::speck_method::SpeckMethod::default().multiply(&dev, &cost, &a, &a);
        assert!(n.ok() && s.ok());
        assert!(
            n.sim_time_s > 1.3 * s.sim_time_s,
            "nsparse {} vs speck {}",
            n.sim_time_s,
            s.sim_time_s
        );
    }
}
