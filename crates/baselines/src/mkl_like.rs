//! Intel-MKL-style CPU SpGEMM comparator.
//!
//! A well-implemented multicore Gustavson (we *actually run* the rayon
//! version from `speck-sparse` for the result) with a simple calibrated
//! CPU time model: no device-launch overhead, modest parallel width. Its
//! role in the paper is to locate the CPU/GPU crossover — Fig. 6 puts it
//! at ~15k products, below which MKL beats every GPU method.

use crate::{MethodResult, SpgemmMethod};
use speck_simt::{CostModel, DeviceConfig};
use speck_sparse::reference::spgemm_cpu_parallel;
use speck_sparse::Csr;

/// MKL-style CPU method.
#[derive(Clone, Debug)]
pub struct MklLike {
    /// Fixed dispatch overhead in seconds (thread wake-up, no cudaLaunch).
    pub base_overhead_s: f64,
    /// Seconds per intermediate product at full parallelism. The default
    /// yields a ~2.5 GFLOPS plateau (2 flops/product), matching the
    /// paper's Fig. 6 MKL trend on a quad-core i7.
    pub seconds_per_product: f64,
}

impl Default for MklLike {
    fn default() -> Self {
        Self {
            base_overhead_s: 8e-6,
            seconds_per_product: 0.8e-9,
        }
    }
}

impl SpgemmMethod for MklLike {
    fn name(&self) -> &'static str {
        "mkl"
    }

    fn multiply(
        &self,
        _dev: &DeviceConfig,
        _cost: &CostModel,
        a: &Csr<f64>,
        b: &Csr<f64>,
    ) -> MethodResult {
        let c = spgemm_cpu_parallel(a, b);
        let products = a.products(b);
        // Output size term models the symbolic + copy passes.
        let t = self.base_overhead_s
            + products as f64 * self.seconds_per_product
            + c.nnz() as f64 * 0.3e-9;
        let mem = crate::common::csr_bytes(a.rows(), c.nnz());
        MethodResult {
            c: Some(c),
            sim_time_s: t,
            peak_mem_bytes: mem,
            sorted_output: true,
            failed: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speck_sparse::gen::{banded, uniform_random};
    use speck_sparse::reference::spgemm_seq;

    #[test]
    fn correct_result() {
        let a = uniform_random(300, 300, 1, 8, 3);
        let dev = DeviceConfig::titan_v();
        let r = MklLike::default().multiply(&dev, &CostModel::default(), &a, &a);
        assert!(r.c.unwrap().approx_eq(&spgemm_seq(&a, &a), 1e-10, 1e-12));
    }

    #[test]
    fn wins_below_the_crossover_loses_above() {
        // Paper Fig. 6: ~15k products is the CPU/GPU boundary.
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let speck = crate::speck_method::SpeckMethod::default();
        let mkl = MklLike::default();

        let small = banded(300, 1, 1.0, 1); // ~2.6k products
        assert!(small.products(&small) < 15_000);
        let t_mkl = mkl.multiply(&dev, &cost, &small, &small).sim_time_s;
        let t_spk = speck.multiply(&dev, &cost, &small, &small).sim_time_s;
        assert!(t_mkl < t_spk, "mkl {t_mkl} vs speck {t_spk} (small)");

        let large = banded(20_000, 6, 1.0, 2); // ~3.3M products
        assert!(large.products(&large) > 1_000_000);
        let t_mkl = mkl.multiply(&dev, &cost, &large, &large).sim_time_s;
        let t_spk = speck.multiply(&dev, &cost, &large, &large).sim_time_s;
        assert!(t_spk < t_mkl, "speck {t_spk} vs mkl {t_mkl} (large)");
    }
}
