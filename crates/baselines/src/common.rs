//! Shared helpers for the baseline implementations.

use speck_simt::{launch, CostModel, DeviceConfig, KernelConfig, KernelReport, MemTracker};
use speck_sparse::Csr;

/// Per-row product counts (`sum of referenced B row lengths`) — the upper
/// bound every baseline's first analysis step computes.
pub fn products_per_row(a: &Csr<f64>, b: &Csr<f64>) -> Vec<u64> {
    (0..a.rows())
        .map(|i| {
            a.row(i)
                .0
                .iter()
                .map(|&k| b.row_nnz(k as usize) as u64)
                .sum()
        })
        .collect()
}

/// Charges the analysis kernel common to hash-based baselines: one pass
/// over NNZ(A) summing B row extents.
pub fn charge_count_kernel(
    dev: &DeviceConfig,
    cost: &CostModel,
    name: &'static str,
    rows: usize,
    nnz_a: usize,
) -> KernelReport {
    let threads = 256;
    let rows_per_block = rows
        .div_ceil(dev.num_sms * dev.blocks_per_sm(threads, 0))
        .clamp(dev.warp_size, 4096);
    let grid = rows.div_ceil(rows_per_block).max(1);
    let per_block_nnz = nnz_a.div_ceil(grid.max(1));
    launch(
        dev,
        cost,
        name,
        grid,
        KernelConfig::new(threads, 0),
        |ctx| {
            ctx.charge_gmem_stream(threads, rows_per_block, 8);
            ctx.charge_gmem_stream(threads, per_block_nnz, 4);
            ctx.charge_gmem_scatter(per_block_nnz as u64);
        },
    )
}

/// Charges the scatter-style binning kernel used by nsparse/bhSPARSE: one
/// global atomic *per row* (the paper contrasts this with spECK's
/// order-preserving batched binning, §4.2).
pub fn charge_scatter_binning(
    dev: &DeviceConfig,
    cost: &CostModel,
    name: &'static str,
    rows: usize,
) -> KernelReport {
    let threads = 256;
    let per_block = threads * 16;
    let grid = rows.div_ceil(per_block).max(1);
    launch(
        dev,
        cost,
        name,
        grid,
        KernelConfig::new(threads, 0),
        |ctx| {
            let n = per_block.min(rows.saturating_sub(ctx.block_id() * per_block));
            ctx.charge_gmem_stream(threads, n, 4);
            ctx.charge_gmem_atomic(n as u64); // per-row atomic append
            ctx.charge_gmem_scatter(n as u64); // scattered row-id store
        },
    )
}

/// Simple accumulator of kernel reports + fixed costs into a total time,
/// with a memory tracker and the device-memory failure check.
pub struct RunAccounting {
    dev: DeviceConfig,
    seconds: f64,
    /// Device-memory tracker (peak is reported to the harness).
    pub mem: MemTracker,
}

impl RunAccounting {
    /// New accounting context for `dev`.
    pub fn new(dev: &DeviceConfig) -> Self {
        Self {
            dev: dev.clone(),
            seconds: 0.0,
            mem: MemTracker::new(),
        }
    }

    /// Adds a kernel's simulated time.
    pub fn kernel(&mut self, r: &KernelReport) {
        self.seconds += r.sim_time_s;
    }

    /// Adds one allocation's fixed overhead and tracks its bytes.
    pub fn alloc(&mut self, bytes: usize) {
        self.mem.alloc(bytes);
        self.seconds += self.dev.cycles_to_seconds(self.dev.alloc_overhead_cycles);
    }

    /// Tracks the output matrix: memory counted, allocation time not
    /// (paper §6 convention).
    pub fn alloc_output(&mut self, bytes: usize) {
        self.mem.alloc(bytes);
    }

    /// Adds raw seconds (host-side steps).
    pub fn fixed(&mut self, seconds: f64) {
        self.seconds += seconds;
    }

    /// Total simulated seconds so far.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// Err(reason) when the peak allocation exceeded device memory.
    pub fn check_memory(&self) -> Result<(), String> {
        if self.mem.peak() > self.dev.memory_bytes {
            Err(format!(
                "out of device memory: needs {} MiB, device has {} MiB",
                self.mem.peak() >> 20,
                self.dev.memory_bytes >> 20
            ))
        } else {
            Ok(())
        }
    }
}

/// Output-matrix bytes in CSR (offsets + columns + f64 values).
pub fn csr_bytes(rows: usize, nnz: usize) -> usize {
    (rows + 1) * 8 + nnz * 12
}

#[cfg(test)]
mod tests {
    use super::*;
    use speck_sparse::gen::uniform_random;

    #[test]
    fn products_per_row_matches_total() {
        let a = uniform_random(100, 100, 1, 6, 3);
        let per_row = products_per_row(&a, &a);
        assert_eq!(per_row.iter().sum::<u64>(), a.products(&a));
    }

    #[test]
    fn accounting_accumulates_and_checks_memory() {
        let dev = DeviceConfig::tiny();
        let mut acc = RunAccounting::new(&dev);
        acc.fixed(1e-3);
        acc.alloc(1024);
        assert!(acc.seconds() > 1e-3);
        assert!(acc.check_memory().is_ok());
        acc.alloc(dev.memory_bytes);
        assert!(acc.check_memory().is_err());
    }

    #[test]
    fn scatter_binning_costs_scale_with_rows() {
        let dev = DeviceConfig::titan_v();
        let cm = CostModel::default();
        // Large enough that the device's block slots saturate and the
        // makespan becomes throughput-bound.
        let small = charge_scatter_binning(&dev, &cm, "bin", 500_000);
        let large = charge_scatter_binning(&dev, &cm, "bin", 5_000_000);
        assert!(large.sim_cycles > small.sim_cycles);
    }

    #[test]
    fn csr_bytes_formula() {
        assert_eq!(csr_bytes(10, 100), 11 * 8 + 1200);
    }
}
