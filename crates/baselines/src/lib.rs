//! Baseline GPU SpGEMM methods, re-implemented on the same SIMT simulator
//! as spECK so the paper's comparisons (Table 1/3, Figs. 6–10) can be
//! regenerated on one substrate.
//!
//! | Module | Stands in for | Strategy |
//! |---|---|---|
//! | [`nsparse`] | nsparse \[16\] | hash, bins by products, fixed 32 threads/row |
//! | [`cusp_esc`] | CUSP \[3\] | global expand–sort–compress |
//! | [`ac_spgemm`] | AC-SpGEMM \[19\] | chunked local ESC, adaptive, over-allocating |
//! | [`rmerge`] | RMerge \[10\] | iterative pairwise row merging |
//! | [`bhsparse`] | bhSPARSE \[14\] | hybrid binning (heap / bitonic / global merge) |
//! | [`cusparse_like`] | cuSPARSE \[17\] | two-phase global-memory hashing |
//! | [`kokkos_like`] | KokkosKernels \[7\] | portable hashing, unsorted output |
//! | [`mkl_like`] | Intel MKL (CPU) | multicore Gustavson, no device launch cost |
//! | [`speck_method`] | spECK (this repo) | adapter over `speck-core` |
//!
//! Each method is an *algorithmic skeleton* faithful to the published
//! approach: the same accumulator type, the same analysis/binning
//! overheads, the same memory footprint scaling — executed functionally
//! (outputs are validated against the sequential reference) with costs
//! accounted by the shared simulator.

#![warn(missing_docs)]

pub mod ac_spgemm;
pub mod bhsparse;
pub mod common;
pub mod cusp_esc;
pub mod cusparse_like;
pub mod kokkos_like;
pub mod mkl_like;
pub mod nsparse;
pub mod rmerge;
pub mod speck_method;

use speck_simt::{CostModel, DeviceConfig};
use speck_sparse::Csr;

/// Outcome of one method on one multiplication.
#[derive(Clone, Debug)]
pub struct MethodResult {
    /// The computed matrix (canonicalised to sorted CSR by the harness
    /// even when `sorted_output` is false).
    pub c: Option<Csr<f64>>,
    /// Simulated execution time in seconds (excluding the output-matrix
    /// allocation, per the paper's measurement convention).
    pub sim_time_s: f64,
    /// Peak simulated device memory in bytes (output matrix included).
    pub peak_mem_bytes: usize,
    /// Whether the method returns CSR-compliant sorted columns
    /// (KokkosKernels does not — paper §6).
    pub sorted_output: bool,
    /// Failure reason, when the method could not complete (out of device
    /// memory, unsupported row size, ...) — the paper's "#inv." row.
    pub failed: Option<String>,
}

impl MethodResult {
    /// A failure result with zeroed measurements.
    pub fn failure(reason: impl Into<String>) -> Self {
        MethodResult {
            c: None,
            sim_time_s: f64::INFINITY,
            peak_mem_bytes: 0,
            sorted_output: true,
            failed: Some(reason.into()),
        }
    }

    /// True when the method produced a (possibly unsorted) result.
    pub fn ok(&self) -> bool {
        self.failed.is_none()
    }
}

/// A SpGEMM implementation under comparison.
pub trait SpgemmMethod: Send + Sync {
    /// Short name used in tables (matching the paper's abbreviations).
    fn name(&self) -> &'static str;
    /// Computes `C = A · B` and reports simulated time and memory.
    fn multiply(
        &self,
        dev: &DeviceConfig,
        cost: &CostModel,
        a: &Csr<f64>,
        b: &Csr<f64>,
    ) -> MethodResult;
}

/// All methods in the paper's comparison order: cuSPARSE, AC-SpGEMM,
/// nsparse, RMerge, bhSPARSE, spECK, KokkosKernels, MKL.
pub fn all_methods() -> Vec<Box<dyn SpgemmMethod>> {
    vec![
        Box::new(cusparse_like::CusparseLike),
        Box::new(ac_spgemm::AcSpgemm::default()),
        Box::new(nsparse::NsparseLike),
        Box::new(rmerge::RMergeLike),
        Box::new(bhsparse::BhSparse),
        Box::new(speck_method::SpeckMethod::default()),
        Box::new(kokkos_like::KokkosLike),
        Box::new(mkl_like::MklLike::default()),
    ]
}

/// The GPU-only subset (excludes the CPU comparator).
pub fn gpu_methods() -> Vec<Box<dyn SpgemmMethod>> {
    all_methods()
        .into_iter()
        .filter(|m| m.name() != "mkl")
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use speck_sparse::gen::uniform_random;
    use speck_sparse::reference::spgemm_seq;

    #[test]
    fn registry_matches_paper_lineup() {
        let names: Vec<&str> = all_methods().iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec!["cusparse", "ac", "nsparse", "rmerge", "bhsparse", "speck", "kokkos", "mkl"]
        );
        assert_eq!(gpu_methods().len(), 7);
    }

    #[test]
    fn every_method_is_numerically_correct_on_a_smoke_input() {
        let a = uniform_random(200, 200, 1, 6, 42);
        let expect = spgemm_seq(&a, &a);
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        for m in all_methods() {
            let r = m.multiply(&dev, &cost, &a, &a);
            assert!(r.ok(), "{} failed: {:?}", m.name(), r.failed);
            let mut c = r.c.unwrap();
            if !r.sorted_output {
                c.sort_rows();
            }
            assert!(
                c.approx_eq(&expect, 1e-10, 1e-12),
                "{} produced a wrong result",
                m.name()
            );
            assert!(r.sim_time_s > 0.0 && r.sim_time_s.is_finite());
            assert!(r.peak_mem_bytes > 0, "{} reported no memory", m.name());
        }
    }
}
