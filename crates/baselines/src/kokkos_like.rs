//! KokkosKernels-style portable SpGEMM (Deveci et al., IPDPSW 2017).
//!
//! A performance-portable two-level hash accumulator with one fixed team
//! configuration. Two deliberate behaviours from the paper's evaluation
//! (§6): (a) the returned columns are **unsorted**, skipping "one of the
//! most expensive steps in SpGEMM"; (b) large/irregular inputs fail
//! outright (815 of 2672 matrices in the paper) — modelled here as rows
//! whose product count exceeds the portable accumulator's bound.

use crate::common::{charge_count_kernel, csr_bytes, RunAccounting};
use crate::{MethodResult, SpgemmMethod};
use speck_core::hashacc::Accumulator;
use speck_simt::{launch_map, CostModel, DeviceConfig, KernelConfig};
use speck_sparse::Csr;

/// KokkosKernels-style method.
pub struct KokkosLike;

/// Fixed team configuration.
const THREADS: usize = 256;
const SCRATCH: usize = 16 * 1024;
/// Rows per team block.
const ROWS_PER_BLOCK: usize = 16;
/// A row above this product count makes the whole multiplication fail
/// (calibrated so roughly the paper's share of irregular matrices fails —
/// KokkosKernels could not complete 815 of 2672, §6.1).
const MAX_ROW_PRODUCTS: u64 = 1 << 15;

/// Rows computed by one block: (columns, values) per row.
type RowList = Vec<(Vec<u32>, Vec<f64>)>;

impl SpgemmMethod for KokkosLike {
    fn name(&self) -> &'static str {
        "kokkos"
    }

    fn multiply(
        &self,
        dev: &DeviceConfig,
        cost: &CostModel,
        a: &Csr<f64>,
        b: &Csr<f64>,
    ) -> MethodResult {
        let mut acct = RunAccounting::new(dev);
        let n = a.rows();
        let products = crate::common::products_per_row(a, b);
        acct.kernel(&charge_count_kernel(dev, cost, "kk_count", n, a.nnz()));

        if let Some(p) = products.iter().find(|&&p| p > MAX_ROW_PRODUCTS) {
            return MethodResult::failure(format!(
                "row with {p} products exceeds the portable accumulator bound"
            ));
        }

        // Global second-level tables sized by products.
        let total: u64 = products.iter().sum();
        acct.alloc(total as usize * 12);
        if let Err(e) = acct.check_memory() {
            return MethodResult::failure(e);
        }

        let grid = n.div_ceil(ROWS_PER_BLOCK).max(1);
        let kc = KernelConfig::new(THREADS, SCRATCH);
        let scratch_cap = SCRATCH / 12;
        let (report, rows): (_, Vec<RowList>) = launch_map(dev, cost, "kk_hash", grid, kc, |ctx| {
            let start = ctx.block_id() * ROWS_PER_BLOCK;
            let end = (start + ROWS_PER_BLOCK).min(n);
            let mut out = Vec::with_capacity(end - start);
            for r in start..end {
                let (a_cols, a_vals) = a.row(r);
                let mut acc: Accumulator<f64> = Accumulator::new(scratch_cap.max(4));
                let mut tx = 0u64;
                let mut p = 0u64;
                for (&k, &av) in a_cols.iter().zip(a_vals) {
                    let (bc, bv) = b.row(k as usize);
                    tx += ctx.stream_tx(16, bc.len(), 12);
                    for (&c, &v) in bc.iter().zip(bv) {
                        acc.insert(c as u64, av * v);
                        p += 1;
                    }
                }
                ctx.charge_gmem_tx(tx);
                ctx.charge_gmem_scatter(2 * a_cols.len() as u64);
                ctx.charge_probes(acc.stats.probes);
                ctx.charge_gmem_atomic(acc.stats.gmem_inserts);
                ctx.charge_spill(acc.stats.spilled);
                // Portable team overhead: extra bookkeeping rounds per
                // row regardless of size.
                ctx.charge_rounds(p.div_ceil(16) + 8);
                let entries = acc.drain_sorted();
                ctx.charge_gmem_store(entries.len(), 12);
                // Emit UNSORTED (insertion-order-ish): deterministically
                // rotate the sorted list so downstream consumers notice.
                let m = entries.len();
                let rot = if m > 1 { (r % (m - 1)) + 1 } else { 0 };
                let mut cols: Vec<u32> = Vec::with_capacity(m);
                let mut vals: Vec<f64> = Vec::with_capacity(m);
                for i in 0..m {
                    let (k, v) = entries[(i + rot) % m];
                    cols.push(k as u32);
                    vals.push(v);
                }
                out.push((cols, vals));
            }
            ctx.charge_sync();
            out
        });
        acct.kernel(&report);
        // KokkosKernels is two-phase like every hash method: a symbolic
        // count pass precedes the numeric pass, with essentially the same
        // cost profile (we charge the numeric kernel's simulated time once
        // more, minus nothing — the symbolic pass walks the same data).
        acct.kernel(&report);
        acct.alloc((n + 1) * 8);

        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        for block in rows {
            for (c, v) in block {
                col_idx.extend_from_slice(&c);
                vals.extend_from_slice(&v);
                row_ptr.push(col_idx.len());
            }
        }
        // NOT sorted CSR — flagged to the harness.
        let c = Csr::from_parts_unsorted(n, b.cols(), row_ptr, col_idx, vals);
        acct.alloc_output(csr_bytes(n, c.nnz()));

        if let Err(e) = acct.check_memory() {
            return MethodResult::failure(e);
        }
        MethodResult {
            c: Some(c),
            sim_time_s: acct.seconds(),
            peak_mem_bytes: acct.mem.peak(),
            sorted_output: false,
            failed: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speck_sparse::gen::uniform_random;
    use speck_sparse::reference::spgemm_seq;
    use speck_sparse::Coo;

    #[test]
    fn correct_after_host_side_sort() {
        let a = uniform_random(200, 200, 2, 6, 31);
        let dev = DeviceConfig::titan_v();
        let r = KokkosLike.multiply(&dev, &CostModel::default(), &a, &a);
        assert!(r.ok());
        assert!(!r.sorted_output);
        let mut c = r.c.unwrap();
        c.sort_rows();
        assert!(c.approx_eq(&spgemm_seq(&a, &a), 1e-10, 1e-12));
    }

    #[test]
    fn output_is_actually_unsorted() {
        let a = uniform_random(100, 100, 4, 8, 7);
        let dev = DeviceConfig::titan_v();
        let r = KokkosLike.multiply(&dev, &CostModel::default(), &a, &a);
        assert!(!r.c.unwrap().is_sorted(), "kokkos must violate CSR order");
    }

    #[test]
    fn fails_on_huge_rows() {
        // One row referencing everything: products >> bound.
        let n = 2000u32;
        let mut coo = Coo::<f64>::new(n as usize, n as usize);
        for j in 0..n {
            coo.push(0, j, 1.0);
            coo.push(j, (j + 1) % n, 1.0);
        }
        for i in 0..n {
            for d in 0..100u32 {
                coo.push(i, (i * 7 + d * 13) % n, 0.5);
            }
        }
        let a = coo.to_csr();
        // Row 0 references ~2000 rows of ~100 -> ~200k products > bound.
        let dev = DeviceConfig::titan_v();
        let r = KokkosLike.multiply(&dev, &CostModel::default(), &a, &a);
        assert!(!r.ok());
    }
}
