//! bhSPARSE-style hybrid SpGEMM (Liu & Vinter, IPDPS 2014).
//!
//! Rows are binned by their intermediate-product count into: zero/one
//! (trivial), tiny (heap accumulator), medium (bitonic ESC in scratchpad)
//! and large (iterative global-memory merge with buffer doubling). Binning
//! uses per-row atomics and each bin is its own kernel launch, so small
//! matrices drown in fixed overheads — the paper measures bhSPARSE at
//! ~13x spECK on average with ~4.4x its memory.

use crate::common::{charge_count_kernel, charge_scatter_binning, csr_bytes, RunAccounting};
use crate::{MethodResult, SpgemmMethod};
use speck_simt::{launch_map, CostModel, DeviceConfig, KernelConfig};
use speck_sparse::Csr;
use std::collections::BTreeMap;

/// bhSPARSE-style method.
pub struct BhSparse;

/// Bin boundaries on intermediate products (following the original's 38
/// bins, coarsened to the four strategy classes).
const TINY_MAX: u64 = 32;
const MEDIUM_MAX: u64 = 256;

/// Rows computed by one block: (row id, (columns, values)).
type BlockRows = Vec<(u32, (Vec<u32>, Vec<f64>))>;

fn accumulate_row(a: &Csr<f64>, b: &Csr<f64>, r: usize) -> (Vec<u32>, Vec<f64>) {
    // Sorted-structure accumulation (heap/bitonic analogue).
    let mut map: BTreeMap<u32, f64> = BTreeMap::new();
    let (a_cols, a_vals) = a.row(r);
    for (&k, &av) in a_cols.iter().zip(a_vals) {
        let (bc, bv) = b.row(k as usize);
        for (&c, &v) in bc.iter().zip(bv) {
            *map.entry(c).or_insert(0.0) += av * v;
        }
    }
    (
        map.keys().copied().collect(),
        map.values().copied().collect(),
    )
}

impl SpgemmMethod for BhSparse {
    fn name(&self) -> &'static str {
        "bhsparse"
    }

    fn multiply(
        &self,
        dev: &DeviceConfig,
        cost: &CostModel,
        a: &Csr<f64>,
        b: &Csr<f64>,
    ) -> MethodResult {
        let mut acct = RunAccounting::new(dev);
        let n = a.rows();
        let products: Vec<u64> = crate::common::products_per_row(a, b);
        let total_products: u64 = products.iter().sum();

        // Analysis + atomic binning.
        acct.kernel(&charge_count_kernel(dev, cost, "bh_count", n, a.nnz()));
        acct.kernel(&charge_scatter_binning(dev, cost, "bh_bin", n));
        acct.alloc(n * 8 + 38 * 8);

        // Upper-bound buffers for the large bin (buffer-doubling merges):
        // every large row gets a products-sized scratch region.
        let large_products: u64 = products.iter().filter(|&&p| p > MEDIUM_MAX).sum();
        acct.alloc(large_products as usize * 18); // 1.5x for buffer doubling
                                                  // Medium/tiny staging buffers.
        acct.alloc((total_products - large_products) as usize * 12);
        if let Err(e) = acct.check_memory() {
            return MethodResult::failure(e);
        }

        let mut bins: [Vec<u32>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (r, &p) in products.iter().enumerate() {
            let idx = if p <= TINY_MAX {
                0
            } else if p <= MEDIUM_MAX {
                1
            } else {
                2
            };
            bins[idx].push(r as u32);
        }

        let mut rows_out: Vec<Option<(Vec<u32>, Vec<f64>)>> = vec![None; n];
        for (bin_idx, bin) in bins.iter().enumerate() {
            if bin.is_empty() {
                // The original still launches (and pays for) bin kernels
                // unconditionally; model one no-op launch per empty class.
                acct.fixed(dev.cycles_to_seconds(dev.launch_overhead_cycles));
                continue;
            }
            let (threads, rows_per_block, scratch) = match bin_idx {
                0 => (256usize, 64usize, 8 * 1024usize),
                1 => (256, 8, 32 * 1024),
                _ => (512, 1, 0),
            };
            let grid = bin.len().div_ceil(rows_per_block);
            let (report, outs): (_, Vec<BlockRows>) = launch_map(
                dev,
                cost,
                format!("bh_bin{bin_idx}"),
                grid,
                KernelConfig::new(threads, scratch),
                |ctx| {
                    let start = ctx.block_id() * rows_per_block;
                    let end = (start + rows_per_block).min(bin.len());
                    let mut out = Vec::with_capacity(end - start);
                    for &r in &bin[start..end] {
                        let p = products[r as usize];
                        let (a_cols, _) = a.row(r as usize);
                        let mut tx = 0u64;
                        for &k in a_cols {
                            tx += ctx.stream_tx(32, b.row_nnz(k as usize), 12);
                        }
                        ctx.charge_gmem_tx(tx);
                        ctx.charge_gmem_scatter(2 * a_cols.len() as u64);
                        match bin_idx {
                            0 => {
                                // Heap insertion: log-factor scratch ops.
                                ctx.charge_smem_atomic(p * 6);
                                ctx.charge_rounds(p.div_ceil(32));
                            }
                            1 => {
                                // Bitonic ESC: products are staged in the
                                // global temp buffer (the ESC expand),
                                // sorted with n log^2 n compare-exchanges
                                // (warp-op units like the AC baseline) and
                                // re-read for the compress step.
                                ctx.charge_gmem_store(p as usize, 12);
                                ctx.charge_gmem_stream(threads, p as usize, 12);
                                let logn = (p.max(2) as f64).log2().ceil() as u64;
                                let warps = (threads as u64).div_ceil(32);
                                ctx.charge_sort_steps(
                                    p * logn * logn / threads as u64 * warps + logn,
                                );
                                ctx.charge_smem(2 * p);
                                ctx.charge_rounds(p.div_ceil(threads as u64));
                            }
                            _ => {
                                // Global merge with buffer doubling: every
                                // product is read and written through
                                // global memory on each of the ~log rounds.
                                let logk = (a_cols.len().max(2) as f64).log2().ceil() as u64;
                                ctx.charge_gmem_tx(2 * p * logk * 12 / 32 + logk);
                                ctx.charge_gmem_scatter(p / 2);
                                ctx.charge_rounds(p * logk / threads as u64 + 1);
                            }
                        }
                        let row = accumulate_row(a, b, r as usize);
                        ctx.charge_gmem_store(row.0.len(), 12);
                        out.push((r, row));
                    }
                    ctx.charge_sync();
                    out
                },
            );
            acct.kernel(&report);
            for block in outs {
                for (r, row) in block {
                    rows_out[r as usize] = Some(row);
                }
            }
        }

        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        for slot in rows_out {
            if let Some((c, v)) = slot {
                col_idx.extend_from_slice(&c);
                vals.extend_from_slice(&v);
            }
            row_ptr.push(col_idx.len());
        }
        let c = Csr::from_parts_unchecked(n, b.cols(), row_ptr, col_idx, vals);
        acct.alloc_output(csr_bytes(n, c.nnz()));

        if let Err(e) = acct.check_memory() {
            return MethodResult::failure(e);
        }
        MethodResult {
            c: Some(c),
            sim_time_s: acct.seconds(),
            peak_mem_bytes: acct.mem.peak(),
            sorted_output: true,
            failed: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speck_sparse::gen::{banded, rmat, uniform_random};
    use speck_sparse::reference::spgemm_seq;

    #[test]
    fn correct_across_bins() {
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        for a in [
            banded(500, 1, 1.0, 1),             // tiny bin
            uniform_random(300, 300, 8, 12, 2), // medium bin
            rmat(9, 8, 0.57, 0.19, 0.19, 3),    // mixed, incl. large
        ] {
            let r = BhSparse.multiply(&dev, &cost, &a, &a);
            assert!(r.ok());
            assert!(r.c.unwrap().approx_eq(&spgemm_seq(&a, &a), 1e-10, 1e-12));
        }
    }

    #[test]
    fn memory_is_product_bound() {
        let a = uniform_random(400, 400, 10, 20, 9);
        let dev = DeviceConfig::titan_v();
        let r = BhSparse.multiply(&dev, &CostModel::default(), &a, &a);
        assert!(r.peak_mem_bytes >= a.products(&a) as usize * 12);
    }

    #[test]
    fn empty_rows_survive() {
        let a: Csr<f64> = Csr::empty(10, 10);
        let dev = DeviceConfig::titan_v();
        let r = BhSparse.multiply(&dev, &CostModel::default(), &a, &a);
        assert!(r.ok());
        assert_eq!(r.c.unwrap().nnz(), 0);
    }
}
