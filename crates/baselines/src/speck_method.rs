//! Adapter exposing spECK (`speck-core`) through the comparison trait.

use crate::{MethodResult, SpgemmMethod};
use speck_core::{multiply, SpeckConfig};
use speck_simt::{CostModel, DeviceConfig};
use speck_sparse::Csr;

/// spECK under comparison. Wraps any [`SpeckConfig`], so the ablation
/// benches can also register variants (hash-only, fixed g, ...).
#[derive(Clone, Debug, Default)]
pub struct SpeckMethod {
    /// Configuration used for the run.
    pub config: SpeckConfig,
}

impl SpeckMethod {
    /// spECK with a custom configuration.
    pub fn with_config(config: SpeckConfig) -> Self {
        Self { config }
    }
}

impl SpgemmMethod for SpeckMethod {
    fn name(&self) -> &'static str {
        "speck"
    }

    fn multiply(
        &self,
        dev: &DeviceConfig,
        cost: &CostModel,
        a: &Csr<f64>,
        b: &Csr<f64>,
    ) -> MethodResult {
        let (c, report) = multiply(dev, cost, &self.config, a, b);
        if report.peak_mem_bytes > dev.memory_bytes {
            return MethodResult::failure("out of device memory");
        }
        MethodResult {
            c: Some(c),
            sim_time_s: report.sim_time_s,
            peak_mem_bytes: report.peak_mem_bytes,
            sorted_output: true,
            failed: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speck_sparse::gen::banded;
    use speck_sparse::reference::spgemm_seq;

    #[test]
    fn adapter_matches_direct_call() {
        let a = banded(500, 3, 1.0, 7);
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let r = SpeckMethod::default().multiply(&dev, &cost, &a, &a);
        assert!(r.ok());
        assert!(r.c.unwrap().approx_eq(&spgemm_seq(&a, &a), 1e-10, 1e-12));
    }
}
