//! RMerge-style iterative row merging (Gremse et al., SISC 2015).
//!
//! Each output row is formed by repeatedly merging pairs of sorted lists:
//! level 0 holds the scaled rows of B referenced by the row of A, and each
//! level halves the list count with a pairwise sorted merge. Very fast for
//! thin matrices (one or two levels), but: work grows with
//! `products x log2(nnz_a_row)`, temporary buffers are equally sized per
//! row within a block (bad utilisation when densities vary — paper
//! Table 1 "fixed" load balancing), and memory is two ping-pong buffers of
//! intermediate size.

use crate::common::{csr_bytes, RunAccounting};
use crate::{MethodResult, SpgemmMethod};
use speck_simt::{launch_map, CostModel, DeviceConfig, KernelConfig};
use speck_sparse::Csr;

/// RMerge-style method.
pub struct RMergeLike;

/// Rows per merging block.
const ROWS_PER_BLOCK: usize = 32;

/// Merges two sorted (col, val) lists, summing duplicate columns.
fn merge2(x: &[(u32, f64)], y: &[(u32, f64)]) -> Vec<(u32, f64)> {
    let mut out: Vec<(u32, f64)> = Vec::with_capacity(x.len() + y.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < x.len() || j < y.len() {
        let take_x = j >= y.len() || (i < x.len() && x[i].0 <= y[j].0);
        let (c, v) = if take_x {
            let e = x[i];
            i += 1;
            e
        } else {
            let e = y[j];
            j += 1;
            e
        };
        match out.last_mut() {
            Some(last) if last.0 == c => last.1 += v,
            _ => out.push((c, v)),
        }
    }
    out
}

/// Rows computed by one block: (columns, values) per row.
type RowList = Vec<(Vec<u32>, Vec<f64>)>;

impl SpgemmMethod for RMergeLike {
    fn name(&self) -> &'static str {
        "rmerge"
    }

    fn multiply(
        &self,
        dev: &DeviceConfig,
        cost: &CostModel,
        a: &Csr<f64>,
        b: &Csr<f64>,
    ) -> MethodResult {
        let mut acct = RunAccounting::new(dev);
        let products = a.products(b) as usize;

        // Ping-pong intermediate buffers: generation 0 holds the scaled
        // rows of B (the products), generation 1 the first merge outputs —
        // at most half of generation 0 and shrinking with deduplication
        // (paper Table 3 measures RMerge at ~2.7x spECK's peak).
        let gen0 = products.max(1) * 12;
        acct.alloc(gen0.min(dev.memory_bytes));
        acct.alloc((gen0 / 2).min(dev.memory_bytes / 2));
        if let Err(e) = acct.check_memory() {
            return MethodResult::failure(e);
        }

        let n = a.rows();
        let grid = n.div_ceil(ROWS_PER_BLOCK).max(1);
        let threads = 256;
        let (report, rows_out): (_, Vec<RowList>) = launch_map(
            dev,
            cost,
            "rmerge_levels",
            grid,
            KernelConfig::new(threads, 32 * 1024),
            |ctx| {
                let start = ctx.block_id() * ROWS_PER_BLOCK;
                let end = (start + ROWS_PER_BLOCK).min(n);
                let mut out = Vec::with_capacity(end - start);
                // Equal-sized temporary slots per row: the block pays for
                // its *longest* row at every level (the utilisation flaw).
                let mut level_max: Vec<u64> = Vec::new();
                for r in start..end {
                    let (a_cols, a_vals) = a.row(r);
                    let mut lists: Vec<Vec<(u32, f64)>> = a_cols
                        .iter()
                        .zip(a_vals)
                        .map(|(&k, &av)| {
                            let (bc, bv) = b.row(k as usize);
                            bc.iter().zip(bv).map(|(&c, &v)| (c, av * v)).collect()
                        })
                        .collect();
                    // Level 0 is materialised: read each scaled row of B
                    // and write it into the ping-pong buffer.
                    let mut tx = 0u64;
                    for l in &lists {
                        tx += 2 * ctx.stream_tx(32, l.len(), 12);
                    }
                    ctx.charge_gmem_tx(tx);
                    ctx.charge_gmem_scatter(2 * a_cols.len() as u64);
                    let mut level = 0usize;
                    while lists.len() > 1 {
                        let mut next = Vec::with_capacity(lists.len().div_ceil(2));
                        let mut pair_iter = lists.chunks(2);
                        let mut level_elems = 0u64;
                        for pair in &mut pair_iter {
                            let merged = if pair.len() == 2 {
                                merge2(&pair[0], &pair[1])
                            } else {
                                pair[0].clone()
                            };
                            level_elems += merged.len() as u64;
                            next.push(merged);
                        }
                        if level_max.len() <= level {
                            level_max.resize(level + 1, 0);
                        }
                        level_max[level] = level_max[level].max(level_elems);
                        lists = next;
                        level += 1;
                    }
                    let row = lists.pop().unwrap_or_default();
                    out.push((
                        row.iter().map(|&(c, _)| c).collect::<Vec<u32>>(),
                        row.iter().map(|&(_, v)| v).collect::<Vec<f64>>(),
                    ));
                }
                // Equal-sized arrays: each level costs the block
                // ROWS_PER_BLOCK x (max elems of any row at that level),
                // and the intermediate lists ping-pong through global
                // memory (RMerge materialises each merge generation). A
                // sorted merge step is ~8 instruction bundles per element
                // (binary search + compare + dedup + write), and the fixed
                // warp-per-row mapping costs every row a full warp's issue
                // slots per level no matter how short it is — RMerge's
                // "fixed" load balancing (paper Table 1), the reason it
                // only excels on very thin matrices.
                let rows_here = (end - start) as u64;
                for &mx in &level_max {
                    let padded = (mx * rows_here) as usize;
                    let elem_work = 8 * padded as u64;
                    let row_floor = 2 * 32 * rows_here; // 2 warp-wide bundles per row
                    ctx.charge_rounds((elem_work + row_floor).div_ceil(threads as u64));
                    let tx = ctx.stream_tx(threads, padded, 12);
                    ctx.charge_gmem_tx(2 * tx); // read gen i, write gen i+1
                    ctx.charge_smem(padded as u64);
                    ctx.charge_sync();
                }
                out
            },
        );
        acct.kernel(&report);

        // RMerge is *iterative*: every merge generation is its own kernel
        // launch over the whole matrix (the factor decomposition of A).
        let max_nnz_a = (0..n).map(|r| a.row_nnz(r)).max().unwrap_or(0);
        let levels = (max_nnz_a.max(2) as f64).log2().ceil() as usize;
        acct.fixed(
            levels.saturating_sub(1) as f64 * dev.cycles_to_seconds(dev.launch_overhead_cycles),
        );

        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        for block in rows_out {
            for (c, v) in block {
                col_idx.extend_from_slice(&c);
                vals.extend_from_slice(&v);
                row_ptr.push(col_idx.len());
            }
        }
        let c = Csr::from_parts_unchecked(n, b.cols(), row_ptr, col_idx, vals);
        acct.alloc_output(csr_bytes(n, c.nnz()));

        if let Err(e) = acct.check_memory() {
            return MethodResult::failure(e);
        }
        MethodResult {
            c: Some(c),
            sim_time_s: acct.seconds(),
            peak_mem_bytes: acct.mem.peak(),
            sorted_output: true,
            failed: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speck_sparse::gen::{banded, rmat};
    use speck_sparse::reference::spgemm_seq;

    #[test]
    fn merge2_sums_duplicates() {
        let x = vec![(1u32, 1.0), (3, 2.0)];
        let y = vec![(1u32, 0.5), (2, 1.0), (3, -2.0)];
        assert_eq!(merge2(&x, &y), vec![(1, 1.5), (2, 1.0), (3, 0.0)]);
        assert_eq!(merge2(&[], &y), y);
    }

    #[test]
    fn correct_on_mesh_and_graph() {
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        for a in [banded(700, 2, 1.0, 4), rmat(9, 4, 0.57, 0.19, 0.19, 5)] {
            let r = RMergeLike.multiply(&dev, &cost, &a, &a);
            assert!(r.ok());
            assert!(r.c.unwrap().approx_eq(&spgemm_seq(&a, &a), 1e-10, 1e-12));
        }
    }

    #[test]
    fn thin_matrices_are_its_sweet_spot() {
        // Very thin (2 NZ/row) vs denser (16 NZ/row) at equal product
        // count: RMerge's relative gap to spECK must shrink on the thin one.
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let thin = banded(16_000, 1, 1.0, 6); // ~3/row, 1 merge level
        let dense = banded(3_000, 8, 1.0, 7); // ~17/row, 5 levels
        let speck = crate::speck_method::SpeckMethod::default();
        let ratio = |a: &Csr<f64>| {
            let r = RMergeLike.multiply(&dev, &cost, a, a).sim_time_s;
            let s = speck.multiply(&dev, &cost, a, a).sim_time_s;
            r / s
        };
        assert!(ratio(&thin) < ratio(&dense));
    }
}
