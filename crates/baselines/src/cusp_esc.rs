//! CUSP-style global Expand–Sort–Compress (Bell & Garland).
//!
//! All intermediate products are materialised in global memory (*expand*),
//! radix-sorted by (row, column) (*sort*) and summed (*compress*). No
//! analysis, automatic load balance — but O(products) temporary memory and
//! sorting work proportional to the *intermediate* count, which is why ESC
//! loses badly on high-compaction matrices (paper Table 1).

use crate::common::{csr_bytes, RunAccounting};
use crate::{MethodResult, SpgemmMethod};
use speck_simt::{launch, CostModel, DeviceConfig, KernelConfig};
use speck_sparse::Csr;

/// The CUSP-style ESC method.
pub struct CusparseEsc;

/// Public alias used by the registry (the paper abbreviates it `cu`... for
/// cuSPARSE; CUSP itself is the ESC representative).
pub use CusparseEsc as CuspEsc;

impl SpgemmMethod for CuspEsc {
    fn name(&self) -> &'static str {
        "cusp-esc"
    }

    fn multiply(
        &self,
        dev: &DeviceConfig,
        cost: &CostModel,
        a: &Csr<f64>,
        b: &Csr<f64>,
    ) -> MethodResult {
        let mut acct = RunAccounting::new(dev);
        let products = a.products(b) as usize;

        // Expand buffer: (row|col key, value) per product.
        acct.alloc(products * 16);
        if let Err(e) = acct.check_memory() {
            return MethodResult::failure(e);
        }

        // --- Expand: every product written once, fully coalesced.
        let threads = dev.max_threads_per_block;
        let per_block = threads * 8;
        let grid = products.div_ceil(per_block).max(1);
        let expand = launch(
            dev,
            cost,
            "esc_expand",
            grid,
            KernelConfig::new(threads, 0),
            |ctx| {
                let n = per_block.min(products.saturating_sub(ctx.block_id() * per_block));
                ctx.charge_gmem_stream(threads, n, 12); // read A/B elements
                ctx.charge_gmem_stream(threads, n, 16); // write expanded pairs
            },
        );
        acct.kernel(&expand);

        // Functional expand on the host side.
        let mut pairs: Vec<(u64, f64)> = Vec::with_capacity(products);
        for i in 0..a.rows() {
            let (a_cols, a_vals) = a.row(i);
            for (&k, &av) in a_cols.iter().zip(a_vals) {
                let (b_cols, b_vals) = b.row(k as usize);
                for (&j, &bv) in b_cols.iter().zip(b_vals) {
                    pairs.push((((i as u64) << 32) | j as u64, av * bv));
                }
            }
        }

        // --- Sort: 8-bit-digit radix over 64-bit keys = 8 passes, each a
        // full read + scatter write of every product, plus ping-pong buffer.
        acct.alloc(products * 16);
        let sort = launch(
            dev,
            cost,
            "esc_sort",
            grid,
            KernelConfig::new(threads, 8 * 1024),
            |ctx| {
                let n = per_block.min(products.saturating_sub(ctx.block_id() * per_block));
                for _ in 0..8 {
                    ctx.charge_gmem_stream(threads, n, 16);
                    ctx.charge_smem_atomic(n as u64);
                    ctx.charge_gmem_scatter(n as u64 / 4);
                    ctx.charge_sync();
                }
            },
        );
        acct.kernel(&sort);
        pairs.sort_unstable_by_key(|&(k, _)| k);

        // --- Compress: segmented reduction, one pass.
        let compress = launch(
            dev,
            cost,
            "esc_compress",
            grid,
            KernelConfig::new(threads, 4 * 1024),
            |ctx| {
                let n = per_block.min(products.saturating_sub(ctx.block_id() * per_block));
                ctx.charge_gmem_stream(threads, n, 16);
                ctx.charge_smem(2 * n as u64);
                ctx.charge_gmem_store(n / 4, 12);
            },
        );
        acct.kernel(&compress);

        let mut row_ptr = vec![0usize; a.rows() + 1];
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        let mut i = 0usize;
        while i < pairs.len() {
            let key = pairs[i].0;
            let mut v = pairs[i].1;
            let mut j = i + 1;
            while j < pairs.len() && pairs[j].0 == key {
                v += pairs[j].1;
                j += 1;
            }
            col_idx.push((key & 0xFFFF_FFFF) as u32);
            vals.push(v);
            row_ptr[(key >> 32) as usize + 1] += 1;
            i = j;
        }
        for r in 0..a.rows() {
            row_ptr[r + 1] += row_ptr[r];
        }
        let c = Csr::from_parts_unchecked(a.rows(), b.cols(), row_ptr, col_idx, vals);
        acct.alloc_output(csr_bytes(a.rows(), c.nnz()));

        if let Err(e) = acct.check_memory() {
            return MethodResult::failure(e);
        }
        MethodResult {
            c: Some(c),
            sim_time_s: acct.seconds(),
            peak_mem_bytes: acct.mem.peak(),
            sorted_output: true,
            failed: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speck_sparse::gen::{block_diagonal, uniform_random};
    use speck_sparse::reference::spgemm_seq;

    #[test]
    fn correct_on_random() {
        let a = uniform_random(300, 300, 1, 7, 9);
        let dev = DeviceConfig::titan_v();
        let r = CuspEsc.multiply(&dev, &CostModel::default(), &a, &a);
        assert!(r.ok());
        assert!(r.c.unwrap().approx_eq(&spgemm_seq(&a, &a), 1e-10, 1e-12));
    }

    #[test]
    fn memory_scales_with_products_not_output() {
        // High compaction: ESC still pays for every intermediate product.
        let a = block_diagonal(4, 64, 1.0, 2);
        let dev = DeviceConfig::titan_v();
        let r = CuspEsc.multiply(&dev, &CostModel::default(), &a, &a);
        let products = a.products(&a) as usize;
        assert!(r.peak_mem_bytes >= products * 16);
    }

    #[test]
    fn fails_when_expand_exceeds_device_memory() {
        let a = block_diagonal(8, 96, 1.0, 3);
        let mut dev = DeviceConfig::titan_v();
        dev.memory_bytes = 1 << 20; // 1 MiB device
        let r = CuspEsc.multiply(&dev, &CostModel::default(), &a, &a);
        assert!(!r.ok());
    }
}
