//! cuSPARSE-style SpGEMM (csrgemm): two-phase hashing in *global* memory.
//!
//! A symbolic pass counts row sizes and a numeric pass accumulates, both
//! inserting every product into per-row global hash tables with global
//! atomics — no scratchpad staging. Memory stays low (the paper measures
//! 1.01x spECK: only the tables sized by output rows plus the result), but
//! every product pays global-atomic latency, which is why cuSPARSE sits
//! ~13x behind spECK on average (Table 3).

use crate::common::{csr_bytes, RunAccounting};
use crate::{MethodResult, SpgemmMethod};
use speck_core::hashacc::Accumulator;
use speck_simt::{launch_map, CostModel, DeviceConfig, KernelConfig};
use speck_sparse::Csr;

/// cuSPARSE-style method.
pub struct CusparseLike;

/// Rows per block (fixed work partitioning, 32 threads per row).
const ROWS_PER_BLOCK: usize = 32;

impl SpgemmMethod for CusparseLike {
    fn name(&self) -> &'static str {
        "cusparse"
    }

    fn multiply(
        &self,
        dev: &DeviceConfig,
        cost: &CostModel,
        a: &Csr<f64>,
        b: &Csr<f64>,
    ) -> MethodResult {
        let mut acct = RunAccounting::new(dev);
        let n = a.rows();
        let grid = n.div_ceil(ROWS_PER_BLOCK).max(1);
        let threads = 256;
        let kc = KernelConfig::new(threads, 0);

        // Working buffers: per-row counters now; the global hash tables are
        // allocated after the symbolic pass, sized by the exact output
        // (cuSPARSE's csrgemm2 workspace is output-proportional — the
        // paper measures it at 1.01x spECK's peak).
        acct.alloc(n * 8);
        if let Err(e) = acct.check_memory() {
            return MethodResult::failure(e);
        }

        // Phase 1: symbolic, every product one global atomic insert.
        let run_phase = |name: &'static str, numeric: bool| {
            launch_map(dev, cost, name, grid, kc, |ctx| {
                let start = ctx.block_id() * ROWS_PER_BLOCK;
                let end = (start + ROWS_PER_BLOCK).min(n);
                let mut out: Vec<(Vec<u32>, Vec<f64>)> = Vec::with_capacity(end - start);
                for r in start..end {
                    let (a_cols, a_vals) = a.row(r);
                    // Oversized so collisions stay bounded; still global.
                    let cap =
                        (a_cols.iter().map(|&k| b.row_nnz(k as usize)).sum::<usize>() * 2).max(4);
                    let mut acc: Accumulator<f64> = Accumulator::new(cap);
                    let mut tx = 0u64;
                    let mut p = 0u64;
                    for (&k, &av) in a_cols.iter().zip(a_vals) {
                        let (bc, bv) = b.row(k as usize);
                        tx += ctx.stream_tx(32, bc.len(), if numeric { 12 } else { 4 });
                        for (&c, &v) in bc.iter().zip(bv) {
                            acc.insert(c as u64, if numeric { av * v } else { 0.0 });
                            p += 1;
                        }
                    }
                    ctx.charge_gmem_tx(tx);
                    ctx.charge_gmem_scatter(2 * a_cols.len() as u64);
                    // The defining cost: all accumulation atomics hit
                    // global memory.
                    ctx.charge_gmem_atomic(p + acc.stats.probes);
                    ctx.charge_rounds(p.div_ceil(32));
                    let entries = acc.drain_sorted();
                    if numeric {
                        ctx.charge_gmem_store(entries.len(), 12);
                        out.push((
                            entries.iter().map(|&(k, _)| k as u32).collect(),
                            entries.iter().map(|&(_, v)| v).collect(),
                        ));
                    } else {
                        ctx.charge_gmem_scatter(1);
                        out.push((Vec::new(), Vec::new()));
                    }
                }
                out
            })
        };

        let (sym_report, _) = run_phase("cusparse_symbolic", false);
        acct.kernel(&sym_report);
        acct.alloc((n + 1) * 8);
        // Hash tables for the numeric phase, sized by the counted output.
        let nnz_c_sym = speck_sparse::reference::spgemm_row_nnz(a, b)
            .iter()
            .sum::<usize>();
        acct.alloc(nnz_c_sym * 12 / 2);

        let (num_report, rows) = run_phase("cusparse_numeric", true);
        acct.kernel(&num_report);

        // Per-row sort pass (cuSPARSE returns sorted CSR).
        let nnz_c: usize = rows.iter().flatten().map(|(c, _)| c.len()).sum();
        if let Some(r) = speck_core::sort::radix_sort_pass(dev, cost, nnz_c, 12) {
            acct.kernel(&r);
        }

        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        for block in rows {
            for (c, v) in block {
                col_idx.extend_from_slice(&c);
                vals.extend_from_slice(&v);
                row_ptr.push(col_idx.len());
            }
        }
        let c = Csr::from_parts_unchecked(n, b.cols(), row_ptr, col_idx, vals);
        acct.alloc_output(csr_bytes(n, c.nnz()));

        if let Err(e) = acct.check_memory() {
            return MethodResult::failure(e);
        }
        MethodResult {
            c: Some(c),
            sim_time_s: acct.seconds(),
            peak_mem_bytes: acct.mem.peak(),
            sorted_output: true,
            failed: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speck_sparse::gen::{banded, uniform_random};
    use speck_sparse::reference::spgemm_seq;

    #[test]
    fn correct_on_random() {
        let a = uniform_random(250, 250, 1, 8, 17);
        let dev = DeviceConfig::titan_v();
        let r = CusparseLike.multiply(&dev, &CostModel::default(), &a, &a);
        assert!(r.ok());
        assert!(r.c.unwrap().approx_eq(&spgemm_seq(&a, &a), 1e-10, 1e-12));
    }

    #[test]
    fn much_slower_than_speck_at_scale() {
        let a = banded(8_000, 8, 1.0, 3);
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let cu = CusparseLike.multiply(&dev, &cost, &a, &a).sim_time_s;
        let sp = crate::speck_method::SpeckMethod::default()
            .multiply(&dev, &cost, &a, &a)
            .sim_time_s;
        assert!(cu > 2.0 * sp, "cusparse {cu} vs speck {sp}");
    }

    #[test]
    fn memory_close_to_output_size() {
        // Low-memory method: no product-sized expand buffers beyond the
        // (bounded) hash tables.
        let a = uniform_random(300, 300, 4, 8, 5);
        let dev = DeviceConfig::titan_v();
        let r = CusparseLike.multiply(&dev, &CostModel::default(), &a, &a);
        let esc = crate::cusp_esc::CuspEsc.multiply(&dev, &CostModel::default(), &a, &a);
        assert!(r.peak_mem_bytes < esc.peak_mem_bytes);
    }
}
