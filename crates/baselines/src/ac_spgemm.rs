//! AC-SpGEMM-style adaptive chunked ESC (Winter et al., PPoPP 2019).
//!
//! The NZ of A are split into equal-*work* chunks; each thread block
//! expands its chunk's products into scratchpad, sorts and compresses them
//! locally, and emits partial rows. A merge stage combines the partial
//! results of rows that straddle chunk boundaries. Strengths and
//! weaknesses follow the paper's Table 1: adaptive local balancing and
//! good memory access (fast on thin-to-medium matrices), but temporary
//! memory is heavily over-allocated (the authors "leave exact memory
//! estimates to future work"; allocation *time* is excluded from the
//! paper's measurements and from ours, the bytes are counted).

use crate::common::{csr_bytes, RunAccounting};
use crate::{MethodResult, SpgemmMethod};
use speck_simt::{launch_map, CostModel, DeviceConfig, KernelConfig};
use speck_sparse::Csr;

/// AC-SpGEMM-style method.
pub struct AcSpgemm {
    /// Products per chunk (the scratchpad ESC capacity).
    pub chunk_products: usize,
    /// Temporary-memory over-allocation factor. The paper notes AC "may
    /// over-allocate temporary memory by a factor of 10x" in the worst
    /// case; 3x is the typical factor consistent with the measured 5.6x
    /// peak-memory ratio of paper Table 3.
    pub overalloc: usize,
}

impl Default for AcSpgemm {
    fn default() -> Self {
        Self {
            chunk_products: 4096,
            overalloc: 3,
        }
    }
}

/// One chunk: a contiguous range of (row, a-index) work covering about
/// `chunk_products` products.
struct Chunk {
    /// (row, a_nz_index) pairs, in CSR order.
    work: Vec<(u32, usize)>,
}

/// A chunk's emitted partial rows: (row id, columns, values).
type PartialRows = Vec<(u32, Vec<u32>, Vec<f64>)>;

/// Total elements emitted across all chunks (pre-merge output size).
fn per_row_nnz_estimate(partials: &[PartialRows]) -> usize {
    partials.iter().flatten().map(|(_, c, _)| c.len()).sum()
}

impl SpgemmMethod for AcSpgemm {
    fn name(&self) -> &'static str {
        "ac"
    }

    fn multiply(
        &self,
        dev: &DeviceConfig,
        cost: &CostModel,
        a: &Csr<f64>,
        b: &Csr<f64>,
    ) -> MethodResult {
        let mut acct = RunAccounting::new(dev);
        let products = a.products(b) as usize;

        // Greedy chunking over the NZ of A by product budget (AC's global
        // work distribution; cheap, O(NNZ_A) on the host queue).
        let mut chunks: Vec<Chunk> = Vec::new();
        {
            let mut cur = Chunk { work: Vec::new() };
            let mut budget = 0usize;
            for i in 0..a.rows() {
                let (a_cols, _) = a.row(i);
                for (ai, &k) in a_cols.iter().enumerate() {
                    let len = b.row_nnz(k as usize);
                    if budget + len > self.chunk_products && !cur.work.is_empty() {
                        chunks.push(std::mem::replace(&mut cur, Chunk { work: Vec::new() }));
                        budget = 0;
                    }
                    cur.work.push((i as u32, a.row_range(i).start + ai));
                    budget += len;
                }
            }
            if !cur.work.is_empty() {
                chunks.push(cur);
            }
        }

        // Temporary chunk memory, over-allocated (bytes counted, alloc time
        // excluded per the paper's AC measurement convention).
        acct.alloc_output(products.max(1) * 12 * self.overalloc);
        if let Err(e) = acct.check_memory() {
            return MethodResult::failure(e);
        }

        // ESC each chunk in scratchpad.
        let threads = 256;
        let kc = KernelConfig::new(threads, 48 * 1024);
        let (report, partials): (_, Vec<PartialRows>) =
            launch_map(dev, cost, "ac_chunk_esc", chunks.len(), kc, |ctx| {
                let chunk = &chunks[ctx.block_id()];
                let mut pairs: Vec<(u64, f64)> = Vec::new();
                let mut tx = 0u64;
                for &(row, a_idx) in &chunk.work {
                    let k = a.col_idx()[a_idx] as usize;
                    let av = a.vals()[a_idx];
                    let (b_cols, b_vals) = b.row(k);
                    tx += ctx.stream_tx(threads, b_cols.len(), 12);
                    for (&j, &bv) in b_cols.iter().zip(b_vals) {
                        pairs.push((((row as u64) << 32) | j as u64, av * bv));
                    }
                }
                let n = pairs.len();
                ctx.charge_gmem_tx(tx);
                ctx.charge_gmem_scatter(2 * chunk.work.len() as u64);
                ctx.charge_rounds((n as u64).div_ceil(threads as u64));
                // Local sort: bitonic-style, n log^2 n compare-exchanges
                // shared by the block's lanes, in warp-op units.
                let logn = (n.max(2) as f64).log2().ceil() as u64;
                let warps = (threads as u64).div_ceil(32);
                ctx.charge_sort_steps((n as u64) * logn * logn / threads as u64 * warps + logn);
                pairs.sort_unstable_by_key(|&(k, _)| k);
                ctx.charge_smem(2 * n as u64);
                ctx.charge_sync();
                // Compress + emit partial rows.
                let mut out: PartialRows = Vec::new();
                let mut i = 0usize;
                while i < n {
                    let row = (pairs[i].0 >> 32) as u32;
                    let mut cols = Vec::new();
                    let mut vals = Vec::new();
                    while i < n && (pairs[i].0 >> 32) as u32 == row {
                        let key = pairs[i].0;
                        let mut v = pairs[i].1;
                        let mut j = i + 1;
                        while j < n && pairs[j].0 == key {
                            v += pairs[j].1;
                            j += 1;
                        }
                        cols.push((key & 0xFFFF_FFFF) as u32);
                        vals.push(v);
                        i = j;
                    }
                    out.push((row, cols, vals));
                }
                let emitted: usize = out.iter().map(|(_, c, _)| c.len()).sum();
                // Chunk results live in global temporary memory and are
                // re-read by the assembly stage; the persistent-threads
                // chunk queue costs a couple of global atomics per chunk.
                ctx.charge_gmem_store(emitted, 12);
                ctx.charge_gmem_stream(threads, emitted, 12);
                ctx.charge_gmem_store(emitted, 12);
                ctx.charge_gmem_atomic(3);
                out
            });
        acct.kernel(&report);

        // The real AC pipeline is several kernels beyond the ESC itself:
        // chunk setup, the chunk-pointer prefix scan, and the copy of chunk
        // storage into the final CSR (every output element moves once more
        // through global memory).
        let nnz_out: usize = per_row_nnz_estimate(&partials);
        acct.fixed(3.0 * dev.cycles_to_seconds(dev.launch_overhead_cycles));
        {
            let threads = 256;
            let grid = nnz_out.div_ceil(threads * 8).max(1);
            let copy = speck_simt::launch(
                dev,
                cost,
                "ac_chunks_to_csr",
                grid,
                KernelConfig::new(threads, 0),
                |ctx| {
                    let n = (threads * 8).min(nnz_out.saturating_sub(ctx.block_id() * threads * 8));
                    ctx.charge_gmem_stream(threads, n, 12);
                    ctx.charge_gmem_store(n, 12);
                },
            );
            acct.kernel(&copy);
        }

        // Merge stage: rows split across chunks get their partials merged.
        let n_rows = a.rows();
        let mut per_row: Vec<Vec<(Vec<u32>, Vec<f64>)>> = vec![Vec::new(); n_rows];
        for chunk_out in partials {
            for (row, cols, vals) in chunk_out {
                per_row[row as usize].push((cols, vals));
            }
        }
        let split_elems: usize = per_row
            .iter()
            .filter(|p| p.len() > 1)
            .map(|p| p.iter().map(|(c, _)| c.len()).sum::<usize>())
            .sum();
        if split_elems > 0 {
            let grid = split_elems.div_ceil(threads * 8).max(1);
            let merge = speck_simt::launch(
                dev,
                cost,
                "ac_merge",
                grid,
                KernelConfig::new(threads, 16 * 1024),
                |ctx| {
                    let n = (threads * 8).min(split_elems);
                    ctx.charge_gmem_stream(threads, n, 12);
                    ctx.charge_smem(2 * n as u64);
                    ctx.charge_gmem_store(n, 12);
                },
            );
            acct.kernel(&merge);
        }

        // Assemble.
        let mut row_ptr = Vec::with_capacity(n_rows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        for parts in per_row {
            match parts.len() {
                0 => {}
                1 => {
                    col_idx.extend_from_slice(&parts[0].0);
                    vals.extend_from_slice(&parts[0].1);
                }
                _ => {
                    // k-way merge by sorted column index with duplicate sum.
                    let mut merged: Vec<(u32, f64)> = Vec::new();
                    for (c, v) in &parts {
                        merged.extend(c.iter().copied().zip(v.iter().copied()));
                    }
                    merged.sort_unstable_by_key(|&(c, _)| c);
                    let mut i = 0;
                    while i < merged.len() {
                        let (c, mut v) = merged[i];
                        let mut j = i + 1;
                        while j < merged.len() && merged[j].0 == c {
                            v += merged[j].1;
                            j += 1;
                        }
                        col_idx.push(c);
                        vals.push(v);
                        i = j;
                    }
                }
            }
            row_ptr.push(col_idx.len());
        }
        let c = Csr::from_parts_unchecked(n_rows, b.cols(), row_ptr, col_idx, vals);
        acct.alloc_output(csr_bytes(n_rows, c.nnz()));

        if let Err(e) = acct.check_memory() {
            return MethodResult::failure(e);
        }
        MethodResult {
            c: Some(c),
            sim_time_s: acct.seconds(),
            peak_mem_bytes: acct.mem.peak(),
            sorted_output: true,
            failed: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speck_sparse::gen::{banded, rmat, uniform_random};
    use speck_sparse::reference::spgemm_seq;

    #[test]
    fn correct_across_families() {
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        for a in [
            banded(600, 2, 1.0, 1),
            uniform_random(300, 300, 1, 9, 2),
            rmat(9, 6, 0.57, 0.19, 0.19, 3),
        ] {
            let r = AcSpgemm::default().multiply(&dev, &cost, &a, &a);
            assert!(r.ok());
            assert!(r.c.unwrap().approx_eq(&spgemm_seq(&a, &a), 1e-10, 1e-12));
        }
    }

    #[test]
    fn memory_overallocation_dominates() {
        let a = uniform_random(500, 500, 4, 8, 7);
        let dev = DeviceConfig::titan_v();
        let r = AcSpgemm::default().multiply(&dev, &CostModel::default(), &a, &a);
        let products = a.products(&a) as usize;
        assert!(r.peak_mem_bytes >= 3 * products * 12);
    }

    #[test]
    fn rows_split_across_chunks_are_merged_correctly() {
        // A single long row far larger than one chunk.
        let a = uniform_random(4, 5000, 3000, 3000, 4);
        // Make it square for A*A: pad rows.
        let a = {
            let mut coo = speck_sparse::Coo::<f64>::new(5000, 5000);
            for (i, cols, vals) in a.iter_rows() {
                for (&c, &v) in cols.iter().zip(vals) {
                    coo.push(i as u32, c, v);
                }
            }
            for i in 4..5000u32 {
                coo.push(i, i, 1.0);
            }
            coo.to_csr()
        };
        let dev = DeviceConfig::titan_v();
        let r = AcSpgemm::default().multiply(&dev, &CostModel::default(), &a, &a);
        assert!(r.ok());
        assert!(r.c.unwrap().approx_eq(&spgemm_seq(&a, &a), 1e-10, 1e-12));
    }
}
