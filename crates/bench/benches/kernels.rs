//! Criterion micro-benches of the building blocks: hash accumulator,
//! dense chunk, block merging, row analysis, transpose and the sequential
//! reference. Guards the host-side performance of the substrate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use speck_core::analysis::analyze;
use speck_core::block_merge::block_merge;
use speck_core::denseacc::DenseChunk;
use speck_core::hashacc::{compound_key, Accumulator};
use speck_core::local_lb::select_group_size;
use speck_core::LocalLbMode;
use speck_core::{multiply_partitioned, SpeckConfig};
use speck_simt::{CostModel, DeviceConfig};
use speck_sparse::gen::{banded, uniform_random};
use speck_sparse::reference::spgemm_seq;
use speck_sparse::transpose::transpose;

fn bench_accumulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_accumulator");
    let n = 16_384usize;
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("insert_16k", |b| {
        b.iter(|| {
            let mut acc: Accumulator<f64> = Accumulator::new(24_576);
            for i in 0..n {
                acc.insert(compound_key((i % 32) as u32, (i * 7 % 4096) as u32), 1.0);
            }
            acc.len()
        })
    });
    group.finish();
}

fn bench_dense_chunk(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_chunk");
    let n = 16_384usize;
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("add_extract_16k", |b| {
        b.iter(|| {
            let mut chunk: DenseChunk<f64> = DenseChunk::numeric(0, 8_192);
            for i in 0..n {
                chunk.add((i * 5 % 8_192) as u32, 1.0);
            }
            chunk.extract_sorted().len()
        })
    });
    group.finish();
}

fn bench_block_merge(c: &mut Criterion) {
    let demands: Vec<u64> = (0..100_000u64).map(|i| (i * 37) % 900 + 10).collect();
    let mut group = c.benchmark_group("block_merge");
    group.throughput(Throughput::Elements(demands.len() as u64));
    group.bench_function("merge_100k_rows", |b| {
        b.iter(|| block_merge(&demands, 3_072, true).0.len())
    });
    group.finish();
}

fn bench_local_lb(c: &mut Criterion) {
    c.bench_function("local_lb/select_group_size", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 1..1000u64 {
                acc += select_group_size(LocalLbMode::Dynamic, 256, i, i * 7, i % 40 + 1);
            }
            acc
        })
    });
}

fn bench_analysis_and_reference(c: &mut Criterion) {
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    let a = banded(20_000, 4, 1.0, 5);
    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);
    group.bench_function("row_analysis_180k_nnz", |b| {
        b.iter(|| analyze(&dev, &cost, &a, &a).0.total_products)
    });
    let u = uniform_random(3_000, 3_000, 4, 10, 6);
    group.bench_function("reference_spgemm", |b| b.iter(|| spgemm_seq(&u, &u).nnz()));
    group.bench_function("transpose", |b| b.iter(|| transpose(&u).nnz()));
    group.finish();
}

fn bench_partitioned(c: &mut Criterion) {
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    let cfg = SpeckConfig::default();
    let a = uniform_random(1_000, 1_000, 3, 8, 7);
    let mut group = c.benchmark_group("partitioned_multiply");
    group.sample_size(10);
    group.bench_function("four_bands", |b| {
        let budget = a.size_bytes() * 2;
        b.iter(|| {
            multiply_partitioned(&dev, &cost, &cfg, &a, &a, budget)
                .1
                .bands
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_accumulator,
    bench_dense_chunk,
    bench_block_merge,
    bench_local_lb,
    bench_analysis_and_reference,
    bench_partitioned
);
criterion_main!(benches);
