//! Criterion wall-clock benches of every SpGEMM method on three
//! representative matrices (one per regime: uniform mesh, skewed graph,
//! dense blocks). These measure *host* execution time of the simulator —
//! useful for keeping the reproduction itself fast; the paper-shape
//! numbers come from the simulated times in `src/bin/exp_*`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use speck_baselines::all_methods;
use speck_simt::{CostModel, DeviceConfig};
use speck_sparse::gen::{banded, block_diagonal, rmat};
use speck_sparse::Csr;

fn matrices() -> Vec<(&'static str, Csr<f64>)> {
    vec![
        ("mesh", banded(4_000, 3, 1.0, 1)),
        ("graph", rmat(9, 8, 0.57, 0.19, 0.19, 2)),
        ("blocks", block_diagonal(4, 64, 1.0, 3)),
    ]
}

fn bench_methods(c: &mut Criterion) {
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    let mats = matrices();
    let mut group = c.benchmark_group("spgemm_methods");
    group.sample_size(10);
    for (name, a) in &mats {
        for method in all_methods() {
            group.bench_with_input(BenchmarkId::new(method.name(), name), a, |bench, a| {
                bench.iter(|| method.multiply(&dev, &cost, a, a))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
