//! Experiment harness for the spECK reproduction.
//!
//! One binary per table/figure of the paper (see `src/bin/`), built on:
//!
//! * [`corpus`] — the synthetic benchmark corpus standing in for the
//!   SuiteSparse collection.
//! * [`runner`] — runs every method on a multiplication, validates the
//!   results, and records simulated time and memory.
//! * [`summary`] — the aggregate statistics of paper Table 3.
//! * [`out`] — plain-text table and CSV emission under `bench/out/`.
//! * [`cli`] — the flag-parsing helper shared by the binaries.

#![warn(missing_docs)]

pub mod cli;
pub mod corpus;
pub mod experiments;
pub mod out;
pub mod runner;
pub mod summary;
