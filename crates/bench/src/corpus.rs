//! The benchmark corpus: a SuiteSparse stand-in spanning the structural
//! families and three decades of problem size (≈1e3 … ≈1e7 products).
//!
//! Matrices are described by [`CorpusSpec`]s and built lazily so the whole
//! corpus never resides in memory at once.

use speck_sparse::gen::{
    banded, block_diagonal, common_matrices, poisson_2d, poisson_3d, rectangular_lp, rmat,
    uniform_random,
};
use speck_sparse::transpose::transpose;
use speck_sparse::Csr;

/// A lazily-built benchmark multiplication.
pub struct CorpusSpec {
    /// Unique name.
    pub name: String,
    /// Structural family label.
    pub family: &'static str,
    build: Box<dyn Fn() -> (Csr<f64>, Csr<f64>) + Send + Sync>,
}

impl CorpusSpec {
    fn square(
        name: String,
        family: &'static str,
        f: impl Fn() -> Csr<f64> + Send + Sync + 'static,
    ) -> Self {
        CorpusSpec {
            name,
            family,
            build: Box::new(move || {
                let a = f();
                (a.clone(), a)
            }),
        }
    }

    /// Builds the `(A, B)` pair.
    pub fn build(&self) -> (Csr<f64>, Csr<f64>) {
        (self.build)()
    }
}

/// The full corpus (~130 multiplications).
pub fn full_corpus() -> Vec<CorpusSpec> {
    let mut specs: Vec<CorpusSpec> = Vec::new();
    let mut seed = 1000u64;
    let mut next = || {
        seed += 1;
        seed
    };

    // Banded / mesh-trace family: uniform short rows, strong locality.
    // Sizes reach ~20M products so kernel bodies dominate launch overheads
    // on the large end, like the paper's full-size SuiteSparse matrices.
    for &(n, hb, fill) in &[
        (300usize, 1usize, 1.0f64),
        (2_000, 1, 1.0),
        (16_000, 1, 1.0),
        (80_000, 1, 1.0),
        (300_000, 1, 1.0),
        (1_000, 2, 1.0),
        (8_000, 2, 0.8),
        (40_000, 2, 1.0),
        (160_000, 2, 0.7),
        (4_000, 4, 1.0),
        (30_000, 4, 0.9),
        (100_000, 4, 1.0),
        (8_000, 8, 1.0),
        (40_000, 8, 0.85),
        (90_000, 8, 0.6),
        (15_000, 16, 0.9),
        (40_000, 16, 0.75),
        (8_000, 32, 0.9),
        (20_000, 32, 0.7),
    ] {
        let s = next();
        specs.push(CorpusSpec::square(
            format!("banded_n{n}_b{hb}"),
            "banded",
            move || banded(n, hb, fill, s),
        ));
    }

    // Stencil family.
    for &(nx, ny) in &[(20usize, 20usize), (90, 90), (250, 250), (600, 600)] {
        let s = next();
        specs.push(CorpusSpec::square(
            format!("poisson2d_{nx}x{ny}"),
            "stencil",
            move || poisson_2d(nx, ny, 0.01, s),
        ));
    }
    for &(nx, ny, nz) in &[
        (8usize, 8usize, 8usize),
        (20, 20, 20),
        (40, 40, 40),
        (64, 64, 32),
    ] {
        let s = next();
        specs.push(CorpusSpec::square(
            format!("poisson3d_{nx}x{ny}x{nz}"),
            "stencil",
            move || poisson_3d(nx, ny, nz, 0.01, s),
        ));
    }

    // Uniform random family: no locality.
    for &(n, lo, hi) in &[
        (200usize, 1usize, 4usize),
        (2_000, 1, 4),
        (16_000, 1, 4),
        (100_000, 1, 4),
        (500, 2, 8),
        (6_000, 2, 8),
        (30_000, 2, 8),
        (120_000, 2, 8),
        (4_000, 8, 16),
        (16_000, 8, 16),
        (60_000, 8, 16),
        (3_000, 16, 48),
        (12_000, 16, 48),
        (6_000, 48, 96),
    ] {
        let s = next();
        specs.push(CorpusSpec::square(
            format!("uniform_n{n}_{lo}to{hi}"),
            "uniform",
            move || uniform_random(n, n, lo, hi, s),
        ));
    }

    // Power-law graph family: heavy degree skew.
    for &(scale, ef) in &[
        (7u32, 4usize),
        (9, 4),
        (11, 4),
        (13, 4),
        (14, 4),
        (15, 4),
        (9, 8),
        (11, 8),
        (12, 8),
        (13, 8),
        (14, 8),
        (10, 16),
        (12, 16),
        (13, 16),
        (16, 4),
    ] {
        let s = next();
        specs.push(CorpusSpec::square(
            format!("rmat_s{scale}_e{ef}"),
            "powerlaw",
            move || rmat(scale, ef, 0.57, 0.19, 0.19, s),
        ));
    }

    // Block-diagonal family: dense output rows, huge compaction.
    for &(blocks, size, fill) in &[
        (64usize, 8usize, 1.0f64),
        (512, 16, 1.0),
        (256, 32, 0.9),
        (128, 64, 1.0),
        (64, 96, 0.8),
        (32, 128, 1.0),
        (16, 192, 0.9),
        (8, 256, 1.0),
    ] {
        let s = next();
        specs.push(CorpusSpec::square(
            format!("blockdiag_{blocks}x{size}"),
            "blockdiag",
            move || block_diagonal(blocks, size, fill, s),
        ));
    }

    // Rectangular LP family (A·Aᵀ).
    for &(rows, cols, lo, hi) in &[
        (200usize, 4_000usize, 20usize, 40usize),
        (3_000, 60_000, 40, 80),
        (6_000, 160_000, 80, 120),
        (1_500, 40_000, 10, 20),
    ] {
        let s = next();
        specs.push(CorpusSpec {
            name: format!("lp_{rows}x{cols}"),
            family: "rectangular",
            build: Box::new(move || {
                let a = rectangular_lp(rows, cols, lo, hi, s);
                let at = transpose(&a);
                (a, at)
            }),
        });
    }

    // Tiny matrices: the CPU-wins region (<15k products).
    for &n in &[50usize, 100, 200, 400] {
        specs.push(CorpusSpec::square(
            format!("identity_{n}"),
            "tiny",
            move || Csr::identity(n),
        ));
        let s = next();
        specs.push(CorpusSpec::square(
            format!("tiny_banded_{n}"),
            "tiny",
            move || banded(n, 1, 1.0, s),
        ));
    }

    // The 11 named Table-4 stand-ins.
    specs.extend(common_corpus());

    specs
}

/// Just the 11 named common matrices (paper Table 4 / Figs. 8–11).
pub fn common_corpus() -> Vec<CorpusSpec> {
    common_matrices()
        .into_iter()
        .map(|cm| {
            let name = cm.name.to_string();
            CorpusSpec {
                name,
                family: "common",
                build: Box::new(move || cm.pair()),
            }
        })
        .collect()
}

/// A fast subset for smoke tests and CI (~15 multiplications).
pub fn smoke_corpus() -> Vec<CorpusSpec> {
    full_corpus()
        .into_iter()
        .enumerate()
        .filter(|(i, s)| i % 9 == 0 || s.family == "tiny")
        .map(|(_, s)| s)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_unique_names_and_all_families() {
        let specs = full_corpus();
        assert!(specs.len() >= 70, "corpus too small: {}", specs.len());
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate corpus names");
        for family in [
            "banded",
            "stencil",
            "uniform",
            "powerlaw",
            "blockdiag",
            "rectangular",
            "tiny",
            "common",
        ] {
            assert!(
                specs.iter().any(|s| s.family == family),
                "family {family} missing"
            );
        }
    }

    #[test]
    fn specs_build_valid_compatible_pairs() {
        for spec in smoke_corpus() {
            let (a, b) = spec.build();
            a.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            b.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(a.cols(), b.rows(), "{}", spec.name);
        }
    }

    #[test]
    fn corpus_spans_three_decades_of_products() {
        let mut min_p = u64::MAX;
        let mut max_p = 0u64;
        for spec in smoke_corpus() {
            let (a, b) = spec.build();
            let p = a.products(&b);
            min_p = min_p.min(p.max(1));
            max_p = max_p.max(p);
        }
        assert!(min_p < 15_000, "no CPU-region matrices (min {min_p})");
        assert!(max_p > 1_000_000, "no large matrices (max {max_p})");
    }
}
