//! Minimal shared command-line parsing for the bench binaries.
//!
//! Both `runspeck` and `bench_throughput` take `--flag`, `--flag VALUE`
//! (or `--flag A B` for fixed higher arities) and positional operands;
//! this module replaces their hand-rolled `while let` loops with one
//! declarative helper so new options stay consistent across binaries.

use std::collections::{BTreeMap, BTreeSet};

/// Parsed command line: valued options, boolean flags, and positionals.
#[derive(Debug, Default)]
pub struct ParsedArgs {
    /// Valued options by name; the `Vec` holds the option's operands in
    /// order (length = declared arity). Repeating an option keeps the
    /// last occurrence.
    pub values: BTreeMap<String, Vec<String>>,
    /// Boolean flags that were present.
    pub flags: BTreeSet<String>,
    /// Arguments that matched no declared option.
    pub positional: Vec<String>,
}

impl ParsedArgs {
    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.contains(name)
    }

    /// First operand of a valued option, if present.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values
            .get(name)
            .and_then(|v| v.first())
            .map(|s| s.as_str())
    }

    /// All operands of a valued option, if present.
    pub fn values_of(&self, name: &str) -> Option<&[String]> {
        self.values.get(name).map(|v| v.as_slice())
    }

    /// First operand of a valued option parsed as `T`, or `default` when
    /// the option is absent or unparsable (the bench binaries'
    /// long-standing lenient behaviour).
    pub fn parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.value(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Parses `args` against a declaration of valued options (`(name, arity)`)
/// and boolean flags. Unknown `--options` are an error (a typo'd flag must
/// not be silently swallowed as a positional); anything else is
/// positional. A valued option missing its operands is an error.
pub fn parse_flags(
    args: impl Iterator<Item = String>,
    valued: &[(&str, usize)],
    boolean: &[&str],
) -> Result<ParsedArgs, String> {
    let mut out = ParsedArgs::default();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if let Some(&(name, arity)) = valued.iter().find(|(n, _)| *n == a) {
            let mut vals = Vec::with_capacity(arity);
            for i in 0..arity {
                match args.next() {
                    Some(v) => vals.push(v),
                    None => return Err(format!("{name} expects {arity} value(s), got {i}")),
                }
            }
            out.values.insert(name.to_string(), vals);
        } else if boolean.contains(&a.as_str()) {
            out.flags.insert(a);
        } else if a.starts_with("--") {
            return Err(format!("unknown option {a}"));
        } else {
            out.positional.push(a);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ParsedArgs, String> {
        parse_flags(
            args.iter().map(|s| s.to_string()),
            &[
                ("--iterations", 1),
                ("--synthetic", 2),
                ("--trace-diff", 2),
                ("--audit-out", 1),
                ("--audit-diff", 2),
            ],
            &["--metrics", "--profile"],
        )
    }

    #[test]
    fn mixes_flags_values_and_positionals() {
        let p = parse(&[
            "m.mtx",
            "--iterations",
            "7",
            "--metrics",
            "--synthetic",
            "graph",
            "3",
        ])
        .unwrap();
        assert_eq!(p.positional, vec!["m.mtx"]);
        assert_eq!(p.parsed_or("--iterations", 5usize), 7);
        assert!(p.flag("--metrics"));
        assert!(!p.flag("--profile"));
        assert_eq!(
            p.values_of("--synthetic").unwrap(),
            &["graph".to_string(), "3".to_string()]
        );
        assert_eq!(p.value("--trace-diff"), None);
    }

    #[test]
    fn lenient_numeric_fallback() {
        let p = parse(&["--iterations", "not-a-number"]).unwrap();
        assert_eq!(p.parsed_or("--iterations", 5usize), 5);
    }

    #[test]
    fn missing_operand_is_an_error() {
        assert!(parse(&["--synthetic", "graph"]).is_err());
        assert!(parse(&["--iterations"]).is_err());
    }

    #[test]
    fn unknown_option_is_an_error() {
        assert!(parse(&["--no-such-flag"]).is_err());
    }

    #[test]
    fn repeated_option_keeps_last() {
        let p = parse(&["--iterations", "2", "--iterations", "9"]).unwrap();
        assert_eq!(p.parsed_or("--iterations", 5usize), 9);
    }

    #[test]
    fn audit_flags_parse_like_their_trace_counterparts() {
        let p = parse(&["--audit-out", "audit.json", "--audit-diff", "old", "new"]).unwrap();
        assert_eq!(p.value("--audit-out"), Some("audit.json"));
        assert_eq!(
            p.values_of("--audit-diff").unwrap(),
            &["old".to_string(), "new".to_string()]
        );
        // Arity-2 diff options must not swallow a following option name
        // silently: a missing second operand is an error.
        assert!(parse(&["--audit-diff", "only-one"]).is_err());
        // Operands that look like files never turn into positionals.
        let p = parse(&["--audit-out", "a.json", "m.mtx"]).unwrap();
        assert_eq!(p.positional, vec!["m.mtx"]);
    }
}
