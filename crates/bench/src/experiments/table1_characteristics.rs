//! Paper Table 1: comparison of the SpGEMM approaches. The paper's table
//! is qualitative (accumulation type, analysis cost, memory class, load
//! balancing, best-performance domain); this experiment regenerates the
//! quantitative half from measurements — peak-memory ratio and the
//! structural families where each method runs within 1.5x of the best —
//! next to the static design facts.

use crate::out::{fmt_ratio, render_table};
use speck_baselines::gpu_methods;
use speck_simt::{CostModel, DeviceConfig};
use speck_sparse::gen::{banded, block_diagonal, rmat, uniform_random};
use speck_sparse::Csr;

/// Static design facts from paper Table 1 (plus the two methods the table
/// footnotes): accumulation type and load-balancing style.
fn design_facts(method: &str) -> (&'static str, &'static str) {
    match method {
        "cusparse" => ("Hashing (global)", "fixed"),
        "ac" => ("ESC (chunked)", "adaptive"),
        "nsparse" => ("Hashing", "binning"),
        "rmerge" => ("Merging", "fixed"),
        "bhsparse" => ("Hybrid (heap/ESC/merge)", "binning"),
        "speck" => ("Hybrid (hash/dense/direct)", "adaptive"),
        "kokkos" => ("Hashing (portable)", "fixed"),
        _ => ("?", "?"),
    }
}

/// Representative matrix per structural regime.
fn regimes() -> Vec<(&'static str, Csr<f64>)> {
    vec![
        ("very thin", banded(60_000, 1, 0.85, 71)),
        ("thin mesh", banded(20_000, 4, 0.9, 72)),
        ("medium", uniform_random(10_000, 10_000, 8, 16, 73)),
        ("skewed", rmat(12, 8, 0.57, 0.19, 0.19, 74)),
        ("dense rows", block_diagonal(32, 128, 1.0, 75)),
    ]
}

/// Renders the Table-1 equivalent.
pub fn run(dev: &DeviceConfig, cost: &CostModel) -> String {
    let methods = gpu_methods();
    let mats = regimes();

    // Measure times and memory per (method, regime).
    let mut times: Vec<Vec<f64>> = vec![vec![f64::INFINITY; mats.len()]; methods.len()];
    let mut mem: Vec<Vec<f64>> = vec![vec![f64::NAN; mats.len()]; methods.len()];
    for (j, (_, a)) in mats.iter().enumerate() {
        for (i, m) in methods.iter().enumerate() {
            let r = m.multiply(dev, cost, a, a);
            if r.ok() {
                times[i][j] = r.sim_time_s;
                mem[i][j] = r.peak_mem_bytes as f64;
            }
        }
    }
    let speck_idx = methods.iter().position(|m| m.name() == "speck").unwrap();

    let mut rows = vec![vec![
        "method".to_string(),
        "accumulation".into(),
        "load balancing".into(),
        "mem vs speck".into(),
        "competitive regimes (<=2x best)".into(),
    ]];
    for (i, m) in methods.iter().enumerate() {
        let (acc, lb) = design_facts(m.name());
        let mem_ratio = {
            let ratios: Vec<f64> = (0..mats.len())
                .filter(|&j| mem[i][j].is_finite() && mem[speck_idx][j] > 0.0)
                .map(|j| mem[i][j] / mem[speck_idx][j])
                .collect();
            if ratios.is_empty() {
                f64::NAN
            } else {
                ratios.iter().sum::<f64>() / ratios.len() as f64
            }
        };
        let competitive: Vec<&str> = (0..mats.len())
            .filter(|&j| {
                let best = (0..methods.len())
                    .map(|k| times[k][j])
                    .fold(f64::INFINITY, f64::min);
                times[i][j] <= 2.0 * best
            })
            .map(|j| mats[j].0)
            .collect();
        rows.push(vec![
            m.name().to_string(),
            acc.to_string(),
            lb.to_string(),
            fmt_ratio(mem_ratio),
            if competitive.is_empty() {
                "-".to_string()
            } else {
                competitive.join(", ")
            },
        ]);
    }
    let mut body = render_table(&rows);
    body.push_str(
        "\npaper Table 1 'best performance' column for comparison: CUSP '-', nsparse \
         'med to denser', RMerge 'very thin', AC-SpGEMM 'very thin to med', bhSPARSE '-', \
         spECK 'all'\n",
    );
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speck_is_competitive_everywhere() {
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let body = run(&dev, &cost);
        // The spECK row must list every regime (the paper's "all").
        let speck_line = body.lines().find(|l| l.starts_with("speck")).unwrap();
        for regime in ["very thin", "thin mesh", "medium", "skewed", "dense rows"] {
            assert!(
                speck_line.contains(regime),
                "speck missing '{regime}': {speck_line}"
            );
        }
        // RMerge's competitiveness must include the thin end.
        let rmerge_line = body.lines().find(|l| l.starts_with("rmerge")).unwrap();
        assert!(rmerge_line.contains("very thin"));
    }
}
