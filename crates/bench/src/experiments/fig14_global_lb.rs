//! Paper Fig. 14: permanently enabled/disabled global load balancer versus
//! spECK's automatic decision, over matrices swept by product count.
//! The paper shows "always on" costing ~2x on small matrices and "always
//! off" losing badly on large irregular ones, with the automatic decision
//! within 2 % of the per-matrix best.

use crate::out::{render_csv, render_table};
use speck_baselines::speck_method::SpeckMethod;
use speck_baselines::SpgemmMethod;
use speck_core::{GlobalLbMode, SpeckConfig};
use speck_simt::{CostModel, DeviceConfig};
use speck_sparse::gen::{banded, rmat};
use speck_sparse::Csr;

/// One sweep point.
pub struct Point {
    /// Matrix label.
    pub name: String,
    /// Product count.
    pub products: u64,
    /// Slowdowns vs best of the three: (always off, always on, automatic).
    pub slowdowns: [f64; 3],
}

fn sweep_matrices() -> Vec<(String, Csr<f64>)> {
    let mut v: Vec<(String, Csr<f64>)> = Vec::new();
    // Uniform small-to-large (binning is overhead here).
    for &n in &[200usize, 1_000, 5_000, 20_000, 60_000] {
        v.push((format!("banded_{n}"), banded(n, 2, 1.0, 600 + n as u64)));
    }
    // Skewed small-to-large (binning pays off at scale).
    for &s in &[7u32, 9, 11, 13] {
        v.push((
            format!("rmat_{s}"),
            rmat(s, 8, 0.57, 0.19, 0.19, 700 + s as u64),
        ));
    }
    v
}

/// Runs the sweep.
pub fn sweep(dev: &DeviceConfig, cost: &CostModel) -> Vec<Point> {
    let methods: Vec<SpeckMethod> = [
        GlobalLbMode::AlwaysOff,
        GlobalLbMode::AlwaysOn,
        GlobalLbMode::Auto,
    ]
    .iter()
    .map(|&mode| {
        SpeckMethod::with_config(SpeckConfig {
            global_lb: mode,
            ..SpeckConfig::default()
        })
    })
    .collect();
    let mut points: Vec<Point> = sweep_matrices()
        .into_iter()
        .map(|(name, a)| {
            let times: Vec<f64> = methods
                .iter()
                .map(|m| m.multiply(dev, cost, &a, &a).sim_time_s)
                .collect();
            let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
            Point {
                name,
                products: a.products(&a),
                slowdowns: [times[0] / best, times[1] / best, times[2] / best],
            }
        })
        .collect();
    points.sort_by_key(|p| p.products);
    points
}

/// Renders the Fig. 14 series.
pub fn run(dev: &DeviceConfig, cost: &CostModel) -> (String, String) {
    let points = sweep(dev, cost);
    let mut rows = vec![vec![
        "matrix".to_string(),
        "products".into(),
        "always off".into(),
        "always on".into(),
        "automatic".into(),
    ]];
    let mut auto_sum = 0.0;
    for p in &points {
        rows.push(vec![
            p.name.clone(),
            p.products.to_string(),
            format!("{:.3}", p.slowdowns[0]),
            format!("{:.3}", p.slowdowns[1]),
            format!("{:.3}", p.slowdowns[2]),
        ]);
        auto_sum += p.slowdowns[2];
    }
    let mut table = render_table(&rows);
    table.push_str(&format!(
        "\naverage automatic slowdown vs per-matrix best: {:.1}% (paper: <2%)\n",
        100.0 * (auto_sum / points.len() as f64 - 1.0)
    ));
    (table, render_csv(&rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_tracks_the_best_choice() {
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let points = sweep(&dev, &cost);
        // The automatic decision is near-best everywhere.
        for p in &points {
            assert!(
                p.slowdowns[2] < 1.25,
                "{}: automatic slowdown {}",
                p.name,
                p.slowdowns[2]
            );
        }
        // Always-on must hurt at least one small uniform matrix.
        assert!(
            points.iter().any(|p| p.slowdowns[1] > 1.15),
            "always-on never hurt: {:?}",
            points.iter().map(|p| p.slowdowns[1]).collect::<Vec<_>>()
        );
    }
}
