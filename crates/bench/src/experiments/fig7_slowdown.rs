//! Paper Fig. 7: slowdown to the fastest method per matrix, over all
//! matrices with >15k products. We report each method's slowdown
//! distribution (quantiles) plus the share of matrices beyond 5x — the
//! numbers quoted in §6.1.

use crate::out::{render_csv, render_table};
use crate::runner::MatrixRecord;
use crate::summary::PRODUCTS_CUTOFF;

/// Per-method slowdown distribution.
pub struct SlowdownDist {
    /// Method name.
    pub method: String,
    /// Sorted slowdowns (failures excluded).
    pub slowdowns: Vec<f64>,
    /// Share of matrices slower than 5x (failures count as >5x, like the
    /// paper's treatment of incomplete runs).
    pub share_5x: f64,
}

/// Computes distributions over the >15k-products subset.
pub fn distributions(records: &[MatrixRecord]) -> Vec<SlowdownDist> {
    let subset: Vec<&MatrixRecord> = records
        .iter()
        .filter(|r| r.products > PRODUCTS_CUTOFF)
        .collect();
    let methods: Vec<String> = records
        .first()
        .map(|r| r.runs.iter().map(|m| m.method.clone()).collect())
        .unwrap_or_default();
    methods
        .iter()
        .map(|m| {
            let mut sl = Vec::new();
            let mut over5 = 0usize;
            for r in &subset {
                let best = r.best_time();
                match r.run(m) {
                    Some(x) if x.ok => {
                        let s = x.time_s / best;
                        if s > 5.0 {
                            over5 += 1;
                        }
                        sl.push(s);
                    }
                    _ => {
                        over5 += 1;
                    }
                }
            }
            sl.sort_by(|a, b| a.partial_cmp(b).unwrap());
            SlowdownDist {
                method: m.clone(),
                slowdowns: sl,
                share_5x: if subset.is_empty() {
                    0.0
                } else {
                    over5 as f64 / subset.len() as f64
                },
            }
        })
        .collect()
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Renders Fig. 7 quantiles and the per-matrix CSV.
pub fn run(records: &[MatrixRecord]) -> (String, String) {
    let dists = distributions(records);
    let mut rows = vec![vec![
        "method".to_string(),
        "p50".into(),
        "p75".into(),
        "p90".into(),
        "max".into(),
        "share>5x".into(),
    ]];
    for d in &dists {
        rows.push(vec![
            d.method.clone(),
            format!("{:.2}", quantile(&d.slowdowns, 0.5)),
            format!("{:.2}", quantile(&d.slowdowns, 0.75)),
            format!("{:.2}", quantile(&d.slowdowns, 0.9)),
            format!("{:.2}", quantile(&d.slowdowns, 1.0)),
            format!("{:.1}%", 100.0 * d.share_5x),
        ]);
    }
    let table = render_table(&rows);

    // CSV: per-matrix slowdowns.
    let mut csv_rows = Vec::new();
    let mut header = vec!["matrix".to_string(), "products".into()];
    header.extend(dists.iter().map(|d| d.method.clone()));
    csv_rows.push(header);
    for r in records.iter().filter(|r| r.products > PRODUCTS_CUTOFF) {
        let best = r.best_time();
        let mut row = vec![r.name.clone(), r.products.to_string()];
        for d in &dists {
            row.push(match r.run(&d.method) {
                Some(x) if x.ok => format!("{:.3}", x.time_s / best),
                _ => "inf".into(),
            });
        }
        csv_rows.push(row);
    }
    (table, render_csv(&csv_rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::MethodRun;

    fn rec(name: &str, times: &[(&str, f64)]) -> MatrixRecord {
        MatrixRecord {
            name: name.into(),
            family: "f".into(),
            rows: 1,
            nnz_a: 1,
            products: 100_000,
            nnz_c: 1,
            max_row_c: 1,
            avg_row_c: 1.0,
            runs: times
                .iter()
                .map(|&(m, t)| MethodRun {
                    method: m.into(),
                    time_s: t,
                    mem_bytes: 1,
                    ok: t.is_finite(),
                    sorted: true,
                })
                .collect(),
        }
    }

    #[test]
    fn share_5x_counts_failures() {
        let recs = vec![
            rec("a", &[("x", 1.0), ("y", 10.0)]),
            rec("b", &[("x", 1.0), ("y", f64::INFINITY)]),
        ];
        let d = distributions(&recs);
        let y = d.iter().find(|d| d.method == "y").unwrap();
        assert!((y.share_5x - 1.0).abs() < 1e-12);
        let x = d.iter().find(|d| d.method == "x").unwrap();
        assert_eq!(x.share_5x, 0.0);
        assert_eq!(x.slowdowns, vec![1.0, 1.0]);
    }

    #[test]
    fn quantiles() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.5), 3.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn csv_has_inf_for_failures() {
        let recs = vec![rec("a", &[("x", 1.0), ("y", f64::INFINITY)])];
        let (_, csv) = run(&recs);
        assert!(csv.contains("inf"));
    }
}
