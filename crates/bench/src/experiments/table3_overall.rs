//! Paper Table 3: overall performance statistics over the corpus —
//! #best, #best (>15k), #invalid, average time, memory ratio to spECK,
//! relative time to the per-matrix best, and #(>5x slower).

use crate::out::{fmt_ratio, render_table};
use crate::runner::MatrixRecord;
use crate::summary::{best_share, summarize, top2_share};

/// Renders the Table-3 equivalent from corpus records.
pub fn run(records: &[MatrixRecord]) -> String {
    let sums = summarize(records);
    let order = [
        "cusparse", "ac", "nsparse", "rmerge", "bhsparse", "speck", "kokkos", "mkl",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut header = vec!["metric".to_string()];
    header.extend(order.iter().map(|s| s.to_string()));
    rows.push(header);
    let metric = |label: &str, f: &dyn Fn(&crate::summary::MethodSummary) -> String| {
        let mut r = vec![label.to_string()];
        for name in order {
            r.push(
                sums.iter()
                    .find(|s| s.method == name)
                    .map(f)
                    .unwrap_or_else(|| "-".into()),
            );
        }
        r
    };
    rows.push(metric("#best", &|s| s.n_best.to_string()));
    rows.push(metric("#best*", &|s| s.n_best_large.to_string()));
    rows.push(metric("#inv.", &|s| s.n_invalid.to_string()));
    rows.push(metric("t_avg [ms] (†)", &|s| {
        if s.t_avg_ms.is_nan() {
            "-".into()
        } else {
            format!("{:.2}", s.t_avg_ms)
        }
    }));
    rows.push(metric("m/m_b (†)", &|s| fmt_ratio(s.mem_ratio)));
    rows.push(metric("t/t_b", &|s| fmt_ratio(s.rel_time)));
    rows.push(metric("t/t_b *", &|s| fmt_ratio(s.rel_time_large)));
    rows.push(metric("#5x", &|s| s.n_5x.to_string()));
    rows.push(metric("#5x *", &|s| s.n_5x_large.to_string()));

    let mut body = render_table(&rows);
    body.push_str(&format!(
        "\nrows marked * restrict to >15k products; † = matrices completed by all GPU \
         methods except kokkos, >15k products\n\
         corpus: {} multiplications\n\
         speck best share:       {:>5.1}% (paper: 70.2% all / 79% of >15k)\n\
         speck best share >15k:  {:>5.1}%\n\
         speck top-2 share >15k: {:>5.1}% (paper: best+second = 94%)\n",
        records.len(),
        100.0 * best_share(records, "speck", false),
        100.0 * best_share(records, "speck", true),
        100.0 * top2_share(records, "speck", true),
    ));
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::smoke_corpus;
    use crate::runner::run_corpus;
    use speck_simt::{CostModel, DeviceConfig};

    #[test]
    fn renders_all_metric_rows() {
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let specs = smoke_corpus();
        let records = run_corpus(&dev, &cost, &specs[..4.min(specs.len())], false);
        let body = run(&records);
        for label in ["#best", "#inv.", "t/t_b", "#5x", "speck best share"] {
            assert!(body.contains(label), "missing {label} in:\n{body}");
        }
    }
}
