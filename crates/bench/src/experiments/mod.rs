//! One module per table/figure of the paper's evaluation. Every module
//! exposes a `run(...) -> String` that prints and returns the rendered
//! result; the `exp_*` binaries and `run_all_experiments` are thin
//! wrappers. See DESIGN.md §4 for the experiment index.

pub mod ablations;
pub mod fig10_memory;
pub mod fig11_stages;
pub mod fig12_accumulators;
pub mod fig13_local_lb;
pub mod fig14_global_lb;
pub mod fig6_trend;
pub mod fig7_slowdown;
pub mod fig8_patterns;
pub mod fig9_common_gflops;
pub mod table1_characteristics;
pub mod table2_tuning;
pub mod table3_overall;
pub mod table4_common_stats;

use crate::out::write_out;

/// Prints a section header, the body, writes it to `bench/out/<file>` and
/// returns the body.
pub fn emit(title: &str, file: &str, body: String) -> String {
    println!("\n=== {title} ===\n{body}");
    write_out(file, &body);
    body
}
