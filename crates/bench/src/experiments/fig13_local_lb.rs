//! Paper Fig. 13: dynamic local load balancing (per-block `g`) versus a
//! fixed, uniform 32 threads per row of B (as used by nsparse), over
//! matrices swept by the average output row length. The paper reports up
//! to 8x from the dynamic selection, with the fixed value competitive
//! only near its ~300 NZ/row sweet spot.

use crate::out::{render_csv, render_table};
use speck_baselines::speck_method::SpeckMethod;
use speck_baselines::SpgemmMethod;
use speck_core::SpeckConfig;
use speck_simt::{CostModel, DeviceConfig};
use speck_sparse::gen::uniform_random;
use speck_sparse::reference::spgemm_seq;

/// One sweep point.
pub struct Point {
    /// Average NNZ per row of C.
    pub avg_row_c: f64,
    /// Slowdowns vs the faster of the two: (dynamic, fixed 32).
    pub slowdowns: [f64; 2],
}

/// Runs the sweep over row densities.
pub fn sweep(dev: &DeviceConfig, cost: &CostModel) -> Vec<Point> {
    // (n, k): uniform k-per-row matrices; avg row of C ~ min(n, k^2).
    // k >= 2 keeps rows off the direct path, which would bypass local
    // load balancing entirely.
    // Sizes large enough that kernel bodies dominate launch overheads, as
    // on the paper's full-size SuiteSparse matrices.
    let shapes: &[(usize, usize)] = &[
        (96_000, 2),
        (64_000, 3),
        (32_000, 5),
        (20_000, 8),
        (12_000, 12),
        (10_000, 18),
        (8_000, 26),
        (6_400, 36),
        (5_600, 48),
    ];
    let dynamic = SpeckMethod::default();
    let fixed = SpeckMethod::with_config(SpeckConfig::fixed_local_lb());
    shapes
        .iter()
        .enumerate()
        .map(|(i, &(n, k))| {
            let a = uniform_random(n, n, k, k, 500 + i as u64);
            let c = spgemm_seq(&a, &a);
            let td = dynamic.multiply(dev, cost, &a, &a).sim_time_s;
            let tf = fixed.multiply(dev, cost, &a, &a).sim_time_s;
            let best = td.min(tf);
            Point {
                avg_row_c: c.avg_row_nnz(),
                slowdowns: [td / best, tf / best],
            }
        })
        .collect()
}

/// Renders the Fig. 13 series.
pub fn run(dev: &DeviceConfig, cost: &CostModel) -> (String, String) {
    let points = sweep(dev, cost);
    let mut rows = vec![vec![
        "avg nnz/row of C".to_string(),
        "dynamic".into(),
        "fixed 32".into(),
    ]];
    for p in &points {
        rows.push(vec![
            format!("{:.1}", p.avg_row_c),
            format!("{:.3}", p.slowdowns[0]),
            format!("{:.3}", p.slowdowns[1]),
        ]);
    }
    let mut table = render_table(&rows);
    table.push_str("\nvalues are slowdown vs the faster of the two strategies\n");
    (table, render_csv(&rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_wins_for_short_rows() {
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let points = sweep(&dev, &cost);
        // Shortest-row point: fixed 32 wastes ~all lanes.
        let first = &points[0];
        assert!(first.avg_row_c < 16.0);
        assert!(
            first.slowdowns[1] > 1.25,
            "fixed-32 slowdown {} on avg row {}",
            first.slowdowns[1],
            first.avg_row_c
        );
        // The penalty shrinks toward the ~300 NZ/row sweet spot (paper
        // Fig. 13's shape; the amplitude is attenuated on our simulator —
        // see EXPERIMENTS.md).
        let last = points.last().unwrap();
        assert!(first.slowdowns[1] > last.slowdowns[1] + 0.1);
        // Dynamic is never far from the best anywhere.
        for p in &points {
            assert!(p.slowdowns[0] < 1.3, "dynamic slowdown {}", p.slowdowns[0]);
        }
    }
}
