//! Paper Fig. 8: non-zero patterns of the common matrices — rendered as
//! ASCII "spy" plots of the 11 stand-ins.

use speck_sparse::gen::common_matrices;
use speck_sparse::Csr;

/// Renders a `size x size` density spy plot of a matrix.
pub fn spy(m: &Csr<f64>, size: usize) -> String {
    let size = size.max(1);
    let mut grid = vec![vec![0u32; size]; size];
    let rs = (m.rows().max(1) as f64) / size as f64;
    let cs = (m.cols().max(1) as f64) / size as f64;
    for (r, cols, _) in m.iter_rows() {
        let gr = ((r as f64 / rs) as usize).min(size - 1);
        for &c in cols {
            let gc = ((c as f64 / cs) as usize).min(size - 1);
            grid[gr][gc] += 1;
        }
    }
    let max = grid.iter().flatten().copied().max().unwrap_or(0).max(1);
    let shades = [' ', '.', ':', 'o', '#', '@'];
    let mut out = String::new();
    out.push('+');
    out.push_str(&"-".repeat(size));
    out.push_str("+\n");
    for row in &grid {
        out.push('|');
        for &v in row {
            let idx = if v == 0 {
                0
            } else {
                1 + ((v as f64 / max as f64) * (shades.len() - 2) as f64).round() as usize
            };
            out.push(shades[idx.min(shades.len() - 1)]);
        }
        out.push_str("|\n");
    }
    out.push('+');
    out.push_str(&"-".repeat(size));
    out.push_str("+\n");
    out
}

/// Renders all 11 patterns.
pub fn run(size: usize) -> String {
    let mut out = String::new();
    for cm in common_matrices() {
        out.push_str(&format!(
            "{} ({}x{}, {} nnz) — {}\n",
            cm.name,
            cm.a.rows(),
            cm.a.cols(),
            cm.a.nnz(),
            cm.family
        ));
        out.push_str(&spy(&cm.a, size));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spy_of_identity_is_diagonal() {
        let m: Csr<f64> = Csr::identity(64);
        let s = spy(&m, 8);
        let lines: Vec<&str> = s.lines().collect();
        // 8 grid lines + 2 border lines.
        assert_eq!(lines.len(), 10);
        for (i, line) in lines[1..9].iter().enumerate() {
            let chars: Vec<char> = line.chars().collect();
            // Diagonal cell is dense, off-diagonals empty.
            assert_ne!(chars[1 + i], ' ', "row {i}");
            let off = (i + 4) % 8;
            assert_eq!(chars[1 + off], ' ');
        }
    }

    #[test]
    fn run_renders_all_eleven() {
        let s = run(16);
        for name in ["webbase", "stat96v2", "TSC_OPF", "QCD"] {
            assert!(s.contains(name));
        }
        assert_eq!(s.matches('+').count(), 11 * 4);
    }
}
