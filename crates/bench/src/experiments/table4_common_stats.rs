//! Paper Table 4: statistics of the 11 common matrices — rows, columns,
//! NNZ of A, intermediate products, NNZ of C.

use crate::out::render_table;
use speck_sparse::gen::common_matrices;
use speck_sparse::reference::spgemm_seq;

/// Renders the Table-4 equivalent for the stand-ins.
pub fn run() -> String {
    let mut rows = vec![vec![
        "matrix".to_string(),
        "rows".into(),
        "cols".into(),
        "nnz A".into(),
        "products".into(),
        "nnz C".into(),
        "compaction".into(),
    ]];
    for cm in common_matrices() {
        let (a, b) = cm.pair();
        let c = spgemm_seq(&a, &b);
        let products = a.products(&b);
        rows.push(vec![
            cm.name.to_string(),
            a.rows().to_string(),
            a.cols().to_string(),
            a.nnz().to_string(),
            products.to_string(),
            c.nnz().to_string(),
            format!("{:.1}", products as f64 / c.nnz().max(1) as f64),
        ]);
    }
    let mut body = render_table(&rows);
    body.push_str(
        "\nstand-ins are scaled ~1/30–1/100 of the SuiteSparse originals; \
         paper values are recorded next to these in EXPERIMENTS.md\n",
    );
    body
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_eleven_rows() {
        let body = super::run();
        // Header + separator + 11 matrices + footnote.
        assert_eq!(body.lines().filter(|l| !l.is_empty()).count(), 2 + 11 + 1);
        assert!(body.contains("TSC_OPF"));
    }
}
