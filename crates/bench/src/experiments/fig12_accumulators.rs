//! Paper Fig. 12: hash-only vs. hash+dense vs. hash+dense+direct,
//! over matrices ordered by the longest output row of C. The paper
//! reports >60 % improvement from the dense accumulator in its regime and
//! up to 40x for rows exceeding the largest scratchpad hash map.

use crate::out::{render_csv, render_table};
use speck_baselines::speck_method::SpeckMethod;
use speck_baselines::SpgemmMethod;
use speck_core::SpeckConfig;
use speck_simt::{CostModel, DeviceConfig};
use speck_sparse::gen::with_hub_rows;
use speck_sparse::reference::spgemm_seq;
use speck_sparse::Csr;

/// One sweep point.
pub struct Point {
    /// Longest output row of C.
    pub max_row_c: usize,
    /// Slowdown vs the fastest of the three configs: (hash, +dense, +direct).
    pub slowdowns: [f64; 3],
}

/// Builds the sweep matrices: banded base with hub rows of growing reach,
/// plus single-entry rows so the direct path has something to win.
fn sweep_matrices() -> Vec<Csr<f64>> {
    // refs controls the longest output row (~3x refs).
    [100usize, 250, 400, 800, 1200, 2000, 3500, 6000, 9000]
        .iter()
        .enumerate()
        .map(|(i, &refs)| {
            let n = (refs * 4).max(4000);
            with_hub_rows(n, 1, 8, refs, 400 + i as u64)
        })
        .collect()
}

/// Runs the sweep.
pub fn sweep(dev: &DeviceConfig, cost: &CostModel) -> Vec<Point> {
    let configs = [
        SpeckConfig::hash_only(),
        SpeckConfig::hash_dense(),
        SpeckConfig::default(),
    ];
    sweep_matrices()
        .into_iter()
        .map(|a| {
            let c = spgemm_seq(&a, &a);
            let times: Vec<f64> = configs
                .iter()
                .map(|cfg| {
                    SpeckMethod::with_config(cfg.clone())
                        .multiply(dev, cost, &a, &a)
                        .sim_time_s
                })
                .collect();
            let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
            Point {
                max_row_c: c.max_row_nnz(),
                slowdowns: [times[0] / best, times[1] / best, times[2] / best],
            }
        })
        .collect()
}

/// Renders the Fig. 12 series.
pub fn run(dev: &DeviceConfig, cost: &CostModel) -> (String, String) {
    let points = sweep(dev, cost);
    let mut rows = vec![vec![
        "max nnz/row of C".to_string(),
        "hash".into(),
        "hash+dense".into(),
        "hash+dense+direct".into(),
    ]];
    for p in &points {
        rows.push(vec![
            p.max_row_c.to_string(),
            format!("{:.3}", p.slowdowns[0]),
            format!("{:.3}", p.slowdowns[1]),
            format!("{:.3}", p.slowdowns[2]),
        ]);
    }
    let mut table = render_table(&rows);
    table.push_str("\nvalues are slowdown vs the fastest of the three configurations\n");
    (table, render_csv(&rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_and_direct_help_for_long_rows() {
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let points = sweep(&dev, &cost);
        assert!(points.len() >= 5);
        // For the longest rows, hash-only must be clearly slower than the
        // full configuration (the Fig. 12 divergence).
        let last = points.last().unwrap();
        assert!(
            last.slowdowns[0] > 1.2 * last.slowdowns[2],
            "hash {} vs full {}",
            last.slowdowns[0],
            last.slowdowns[2]
        );
        // The full configuration is never much worse than the best.
        for p in &points {
            assert!(
                p.slowdowns[2] < 1.5,
                "full config slowdown {}",
                p.slowdowns[2]
            );
        }
    }
}
