//! Paper Fig. 6: GFLOPS achieved over all matrices, ordered by the number
//! of products. We bucket matrices into half-decades of product count and
//! report each method's geometric-mean GFLOPS per bucket; failures take
//! the slowest valid timing of the matrix (the paper's convention).

use crate::out::{render_csv, render_table};
use crate::runner::MatrixRecord;

/// Bucketed GFLOPS series per method.
pub struct TrendSeries {
    /// Bucket labels (lower product bound).
    pub buckets: Vec<u64>,
    /// Per-method geometric-mean GFLOPS per bucket.
    pub series: Vec<(String, Vec<f64>)>,
}

/// Computes the trend series.
pub fn trend(records: &[MatrixRecord]) -> TrendSeries {
    let methods: Vec<String> = records
        .first()
        .map(|r| r.runs.iter().map(|m| m.method.clone()).collect())
        .unwrap_or_default();
    // Half-decade buckets from 1e3.
    let bucket_of = |p: u64| -> usize {
        let l = (p.max(1) as f64).log10();
        ((l * 2.0).floor() as usize).saturating_sub(6) // 1e3 -> 0
    };
    let n_buckets = records
        .iter()
        .map(|r| bucket_of(r.products) + 1)
        .max()
        .unwrap_or(0);
    let mut buckets = Vec::with_capacity(n_buckets);
    for i in 0..n_buckets {
        buckets.push(10f64.powf((i as f64 + 6.0) / 2.0) as u64);
    }
    let series = methods
        .iter()
        .map(|m| {
            let mut sums = vec![0f64; n_buckets];
            let mut counts = vec![0usize; n_buckets];
            for r in records {
                let b = bucket_of(r.products);
                // Failures are replaced by the slowest valid timing.
                let slowest = r
                    .runs
                    .iter()
                    .filter(|x| x.ok)
                    .map(|x| x.time_s)
                    .fold(0.0f64, f64::max);
                let t = match r.run(m) {
                    Some(x) if x.ok => x.time_s,
                    _ => slowest,
                };
                if t > 0.0 && t.is_finite() {
                    let g = (2 * r.products) as f64 / t / 1e9;
                    sums[b] += g.max(1e-9).ln();
                    counts[b] += 1;
                }
            }
            let means = sums
                .iter()
                .zip(&counts)
                .map(|(&s, &c)| {
                    if c == 0 {
                        f64::NAN
                    } else {
                        (s / c as f64).exp()
                    }
                })
                .collect();
            (m.clone(), means)
        })
        .collect();
    TrendSeries { buckets, series }
}

/// Renders Fig. 6 as a table plus CSV.
pub fn run(records: &[MatrixRecord]) -> (String, String) {
    let t = trend(records);
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut header = vec!["products>=".to_string()];
    header.extend(t.series.iter().map(|(m, _)| m.clone()));
    rows.push(header);
    for (i, &b) in t.buckets.iter().enumerate() {
        let mut row = vec![format!("{b}")];
        for (_, vals) in &t.series {
            row.push(if vals[i].is_nan() {
                "-".into()
            } else {
                format!("{:.3}", vals[i])
            });
        }
        rows.push(row);
    }
    (render_table(&rows), render_csv(&rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::MethodRun;

    fn rec(products: u64, t_speck: f64, t_other: f64) -> MatrixRecord {
        MatrixRecord {
            name: "x".into(),
            family: "f".into(),
            rows: 1,
            nnz_a: 1,
            products,
            nnz_c: 1,
            max_row_c: 1,
            avg_row_c: 1.0,
            runs: vec![
                MethodRun {
                    method: "speck".into(),
                    time_s: t_speck,
                    mem_bytes: 1,
                    ok: t_speck.is_finite(),
                    sorted: true,
                },
                MethodRun {
                    method: "other".into(),
                    time_s: t_other,
                    mem_bytes: 1,
                    ok: t_other.is_finite(),
                    sorted: true,
                },
            ],
        }
    }

    #[test]
    fn buckets_are_half_decades() {
        let recs = vec![rec(1_000, 1e-3, 2e-3), rec(1_000_000, 1e-3, 2e-3)];
        let t = trend(&recs);
        assert_eq!(t.buckets[0], 1_000);
        assert!(t.buckets.len() >= 7); // 1e3 .. 1e6 in half decades
    }

    #[test]
    fn failed_method_takes_slowest_valid_time() {
        let recs = vec![rec(1_000, 1e-3, f64::INFINITY)];
        let t = trend(&recs);
        let speck = &t.series.iter().find(|(m, _)| m == "speck").unwrap().1;
        let other = &t.series.iter().find(|(m, _)| m == "other").unwrap().1;
        // Other failed -> substituted with speck's (slowest valid) time.
        assert!((speck[0] - other[0]).abs() < 1e-9);
    }

    #[test]
    fn render_produces_table_and_csv() {
        let recs = vec![rec(2_000, 1e-3, 2e-3)];
        let (table, csv) = run(&recs);
        assert!(table.contains("speck"));
        assert!(csv.starts_with("products>=,speck,other"));
    }
}
