//! Paper Fig. 9: GFLOPS achieved by every method on the 11 common
//! matrices.

use crate::out::{render_csv, render_table};
use crate::runner::MatrixRecord;

/// Renders GFLOPS per (matrix, method) from common-corpus records.
pub fn run(records: &[MatrixRecord]) -> (String, String) {
    let methods: Vec<String> = records
        .first()
        .map(|r| r.runs.iter().map(|m| m.method.clone()).collect())
        .unwrap_or_default();
    let mut rows = Vec::new();
    let mut header = vec!["matrix".to_string()];
    header.extend(methods.iter().cloned());
    header.push("winner".into());
    rows.push(header);
    for r in records {
        let mut row = vec![r.name.clone()];
        for m in &methods {
            let g = r.gflops(m);
            row.push(if g > 0.0 {
                format!("{g:.2}")
            } else {
                "-".into()
            });
        }
        let winner = r
            .runs
            .iter()
            .filter(|x| x.ok)
            .min_by(|a, b| a.time_s.partial_cmp(&b.time_s).unwrap())
            .map(|x| x.method.clone())
            .unwrap_or_default();
        row.push(winner);
        rows.push(row);
    }
    (render_table(&rows), render_csv(&rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::MethodRun;

    #[test]
    fn winner_column_names_fastest() {
        let rec = MatrixRecord {
            name: "m".into(),
            family: "common".into(),
            rows: 1,
            nnz_a: 1,
            products: 1000,
            nnz_c: 1,
            max_row_c: 1,
            avg_row_c: 1.0,
            runs: vec![
                MethodRun {
                    method: "slow".into(),
                    time_s: 2.0,
                    mem_bytes: 1,
                    ok: true,
                    sorted: true,
                },
                MethodRun {
                    method: "fast".into(),
                    time_s: 1.0,
                    mem_bytes: 1,
                    ok: true,
                    sorted: true,
                },
            ],
        };
        let (table, csv) = run(&[rec]);
        assert!(table.lines().last().unwrap().ends_with("fast"));
        assert!(csv.contains("winner"));
    }
}
