//! Paper Fig. 11: share of duration for all stages of spECK on the common
//! matrices (analysis, symbolic load balancing, symbolic SpGEMM, numeric
//! load balancing, numeric SpGEMM, sorting).

use crate::out::{render_csv, render_table};
use speck_core::pipeline::stage;
use speck_core::SpeckSpgemm;
use speck_sparse::gen::common_matrices;

/// The six stage names in paper order.
pub const STAGES: [&str; 6] = [
    stage::ANALYSIS,
    stage::SYMBOLIC_LOAD,
    stage::SYMBOLIC,
    stage::NUMERIC_LOAD,
    stage::NUMERIC,
    stage::SORTING,
];

/// Runs spECK on the 11 stand-ins and renders the stage shares.
pub fn run() -> (String, String) {
    let engine = SpeckSpgemm::default();
    let mut rows = Vec::new();
    let mut header = vec!["matrix".to_string()];
    header.extend(STAGES.iter().map(|s| s.to_string()));
    rows.push(header);
    for cm in common_matrices() {
        let (a, b) = cm.pair();
        let (_, report) = engine.multiply(&a, &b);
        let mut row = vec![cm.name.to_string()];
        for s in STAGES {
            row.push(format!("{:.3}", report.timeline.share(s)));
        }
        rows.push(row);
    }
    (render_table(&rows), render_csv(&rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_rendered_for_all_matrices_and_sum_to_one() {
        let (_, csv) = run();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 12);
        for line in &lines[1..] {
            let sum: f64 = line
                .split(',')
                .skip(1)
                .map(|v| v.parse::<f64>().unwrap())
                .sum();
            assert!((sum - 1.0).abs() < 0.01, "{line}: sum {sum}");
        }
    }

    #[test]
    fn numeric_spgemm_dominates_on_most_matrices() {
        // Paper Fig. 11: the numeric kernel is the majority of the time.
        let (_, csv) = run();
        let mut dominant = 0;
        let mut total = 0;
        for line in csv.lines().skip(1) {
            let vals: Vec<f64> = line
                .split(',')
                .skip(1)
                .map(|v| v.parse::<f64>().unwrap())
                .collect();
            let numeric = vals[4] + vals[5]; // num. SpGEMM + sorting
            if numeric > 0.4 {
                dominant += 1;
            }
            total += 1;
        }
        assert!(
            dominant * 2 >= total,
            "numeric+sorting dominant on only {dominant}/{total}"
        );
    }
}
