//! Paper Table 2: auto-tuning the global load-balancer thresholds by line
//! search with inverse 3-fold cross validation (paper §5).

use crate::corpus::CorpusSpec;
use crate::out::render_table;
use speck_core::config::{GlobalLbThresholds, SpeckConfig};
use speck_core::tuning::{cross_validate, measure, CvResult, MatrixMeasurement};
use speck_simt::{CostModel, DeviceConfig};

/// Measures the tuning corpus (4 load-balancing combos per matrix).
pub fn measure_corpus(
    dev: &DeviceConfig,
    cost: &CostModel,
    specs: &[CorpusSpec],
) -> Vec<MatrixMeasurement> {
    let base = SpeckConfig::default();
    specs
        .iter()
        .map(|spec| {
            let (a, b) = spec.build();
            measure(dev, cost, &base, &spec.name, &a, &b)
        })
        .collect()
}

fn thresholds_rows(label: &str, t: &GlobalLbThresholds) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{:.1}", t.symbolic_ratio),
        t.symbolic_min_rows.to_string(),
        format!("{:.1}", t.symbolic_ratio_large),
        t.symbolic_min_rows_large.to_string(),
        format!("{:.1}", t.numeric_ratio),
        t.numeric_min_rows.to_string(),
        format!("{:.1}", t.numeric_ratio_large),
        t.numeric_min_rows_large.to_string(),
    ]
}

/// Runs the tuning experiment and renders the Table-2 equivalent.
pub fn run(dev: &DeviceConfig, cost: &CostModel, specs: &[CorpusSpec]) -> (String, CvResult) {
    let meas = measure_corpus(dev, cost, specs);
    let cv = cross_validate(&meas, 3);
    let mut rows = vec![vec![
        "thresholds".to_string(),
        "sym ratio".into(),
        "sym rows".into(),
        "sym ratio*".into(),
        "sym rows*".into(),
        "num ratio".into(),
        "num rows".into(),
        "num ratio*".into(),
        "num rows*".into(),
    ]];
    rows.push(thresholds_rows("tuned (this repo)", &cv.final_thresholds));
    rows.push(thresholds_rows(
        "paper Table 2",
        &GlobalLbThresholds::paper(),
    ));
    rows.push(thresholds_rows(
        "shipped default",
        &GlobalLbThresholds::scaled_default(),
    ));
    let mut body = render_table(&rows);
    body.push_str(&format!(
        "\ntuning corpus: {} matrices, 4 combos each\n\
         avg slowdown of tuned thresholds vs per-matrix best: {:.2}% (paper: 1.7%)\n\
         per-fold evaluation slowdowns: {}\n\
         fastest combo selected for {:.0}% of matrices (paper: 85%)\n",
        meas.len(),
        100.0 * (cv.final_loss - 1.0),
        cv.fold_eval_loss
            .iter()
            .map(|l| format!("{:.2}%", 100.0 * (l - 1.0)))
            .collect::<Vec<_>>()
            .join(", "),
        100.0 * cv.final_accuracy,
    ));
    (body, cv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::smoke_corpus;

    #[test]
    fn tuning_runs_on_smoke_corpus() {
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let specs: Vec<_> = smoke_corpus().into_iter().take(6).collect();
        let (body, cv) = run(&dev, &cost, &specs);
        assert!(body.contains("paper Table 2"));
        assert!(cv.final_loss >= 1.0);
        assert!(cv.final_loss < 3.0, "tuned loss {}", cv.final_loss);
    }
}
