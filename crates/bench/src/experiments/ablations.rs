//! Ablations beyond the paper's figures (DESIGN.md §6):
//!
//! 1. **Block merging** for the smallest bin on/off — isolates Alg. 2.
//! 2. **Cost-model sensitivity** — re-runs the common-matrix comparison
//!    under perturbed cost constants (compute 2x, memory 2x) and checks
//!    whether spECK's win rate survives; guards the headline conclusions
//!    against a knife-edge calibration.

use crate::out::render_table;
use speck_baselines::speck_method::SpeckMethod;
use speck_baselines::{all_methods, SpgemmMethod};
use speck_core::SpeckConfig;
use speck_simt::{CostModel, DeviceConfig};
use speck_sparse::gen::{common_matrices, uniform_random};

/// Block-merge on/off over short-row matrices (where merging matters).
pub fn block_merge_ablation(dev: &DeviceConfig, cost: &CostModel) -> String {
    let on = SpeckMethod::default();
    let off = SpeckMethod::with_config(SpeckConfig {
        block_merge: false,
        ..SpeckConfig::default()
    });
    let mut rows = vec![vec![
        "matrix".to_string(),
        "merge on [ms]".into(),
        "merge off [ms]".into(),
        "off/on".into(),
    ]];
    for (i, &(n, lo, hi)) in [
        (20_000usize, 1usize, 3usize),
        (40_000, 1, 2),
        (60_000, 2, 4),
    ]
    .iter()
    .enumerate()
    {
        let a = uniform_random(n, n, lo, hi, 800 + i as u64);
        let t_on = on.multiply(dev, cost, &a, &a).sim_time_s;
        let t_off = off.multiply(dev, cost, &a, &a).sim_time_s;
        rows.push(vec![
            format!("uniform_n{n}_{lo}to{hi}"),
            format!("{:.3}", t_on * 1e3),
            format!("{:.3}", t_off * 1e3),
            format!("{:.2}", t_off / t_on),
        ]);
    }
    render_table(&rows)
}

/// Win rate of spECK over the common matrices under a given cost model.
fn win_rate(dev: &DeviceConfig, cost: &CostModel) -> (usize, usize) {
    let methods = all_methods();
    let mut wins = 0;
    let mut total = 0;
    for cm in common_matrices() {
        let (a, b) = cm.pair();
        let mut best = ("", f64::INFINITY);
        for m in &methods {
            if m.name() == "mkl" {
                continue;
            }
            let r = m.multiply(dev, cost, &a, &b);
            if r.ok() && r.sim_time_s < best.1 {
                best = (m.name(), r.sim_time_s);
            }
        }
        if best.0 == "speck" {
            wins += 1;
        }
        total += 1;
    }
    (wins, total)
}

/// Cost-model sensitivity sweep.
pub fn cost_model_sensitivity(dev: &DeviceConfig) -> String {
    let base = CostModel::default();
    let variants: [(&str, CostModel); 4] = [
        ("baseline", base.clone()),
        ("compute x2", base.scaled(2.0, 1.0)),
        ("memory x2", base.scaled(1.0, 2.0)),
        ("compute x0.5", base.scaled(0.5, 1.0)),
    ];
    let mut rows = vec![vec![
        "cost model".to_string(),
        "speck wins".into(),
        "of".into(),
    ]];
    for (name, cm) in &variants {
        let (wins, total) = win_rate(dev, cm);
        rows.push(vec![name.to_string(), wins.to_string(), total.to_string()]);
    }
    let mut body = render_table(&rows);
    body.push_str("\nGPU methods only, over the 11 common stand-ins\n");
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_merge_never_hurts_short_row_matrices() {
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let body = block_merge_ablation(&dev, &cost);
        // Parse the off/on column; merging should be >= 1.0 (off is not
        // faster) for every row.
        for line in body.lines().skip(2) {
            let ratio: f64 = line.split_whitespace().last().unwrap().parse().unwrap();
            assert!(ratio >= 0.95, "merge-off unexpectedly faster: {line}");
        }
    }
}
