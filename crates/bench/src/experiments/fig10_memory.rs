//! Paper Fig. 10: peak memory consumption during computation of the
//! common matrices.

use crate::out::{render_csv, render_table};
use crate::runner::MatrixRecord;

/// Renders peak MiB per (matrix, method) from common-corpus records.
pub fn run(records: &[MatrixRecord]) -> (String, String) {
    let methods: Vec<String> = records
        .first()
        .map(|r| r.runs.iter().map(|m| m.method.clone()).collect())
        .unwrap_or_default();
    let mut rows = Vec::new();
    let mut header = vec!["matrix".to_string()];
    header.extend(methods.iter().cloned());
    rows.push(header);
    for r in records {
        let mut row = vec![r.name.clone()];
        for m in &methods {
            row.push(match r.run(m) {
                Some(x) if x.ok => format!("{:.1}", x.mem_bytes as f64 / (1 << 20) as f64),
                _ => "-".into(),
            });
        }
        rows.push(row);
    }
    let mut table = render_table(&rows);
    table.push_str("\nvalues in MiB; '-' = failed; mkl runs on the host (not comparable)\n");
    (table, render_csv(&rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::MethodRun;

    #[test]
    fn memory_rendered_in_mib() {
        let rec = MatrixRecord {
            name: "m".into(),
            family: "common".into(),
            rows: 1,
            nnz_a: 1,
            products: 1000,
            nnz_c: 1,
            max_row_c: 1,
            avg_row_c: 1.0,
            runs: vec![MethodRun {
                method: "x".into(),
                time_s: 1.0,
                mem_bytes: 2 << 20,
                ok: true,
                sorted: true,
            }],
        };
        let (table, _) = run(&[rec]);
        assert!(table.contains("2.0"));
    }
}
