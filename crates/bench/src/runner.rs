//! Runs the method lineup over corpus entries and records the
//! measurements the experiment binaries aggregate.

use crate::corpus::CorpusSpec;
use speck_baselines::{all_methods, SpgemmMethod};
use speck_simt::{CostModel, DeviceConfig};
use speck_sparse::reference::spgemm_seq;
use speck_sparse::stats::ProductStats;
use speck_sparse::Csr;

/// One method's measurement on one multiplication.
#[derive(Clone, Debug)]
pub struct MethodRun {
    /// Method name.
    pub method: String,
    /// Simulated seconds; `f64::INFINITY` when failed.
    pub time_s: f64,
    /// Peak device bytes; 0 when failed.
    pub mem_bytes: usize,
    /// Did the method complete?
    pub ok: bool,
    /// Does it return sorted CSR?
    pub sorted: bool,
}

/// All measurements for one multiplication.
#[derive(Clone, Debug)]
pub struct MatrixRecord {
    /// Corpus entry name.
    pub name: String,
    /// Structural family.
    pub family: String,
    /// Rows of A.
    pub rows: usize,
    /// NNZ of A.
    pub nnz_a: usize,
    /// Intermediate products.
    pub products: u64,
    /// NNZ of the output C.
    pub nnz_c: usize,
    /// Largest output row.
    pub max_row_c: usize,
    /// Mean output row length.
    pub avg_row_c: f64,
    /// Per-method measurements, in registry order.
    pub runs: Vec<MethodRun>,
}

impl MatrixRecord {
    /// Fastest successful time over all methods.
    pub fn best_time(&self) -> f64 {
        self.runs
            .iter()
            .filter(|r| r.ok)
            .map(|r| r.time_s)
            .fold(f64::INFINITY, f64::min)
    }

    /// Fastest successful time over GPU methods only.
    pub fn best_gpu_time(&self) -> f64 {
        self.runs
            .iter()
            .filter(|r| r.ok && r.method != "mkl")
            .map(|r| r.time_s)
            .fold(f64::INFINITY, f64::min)
    }

    /// The measurement of one method, if present.
    pub fn run(&self, method: &str) -> Option<&MethodRun> {
        self.runs.iter().find(|r| r.method == method)
    }

    /// GFLOPS of one method at the paper's 2-ops-per-product convention.
    pub fn gflops(&self, method: &str) -> f64 {
        match self.run(method) {
            Some(r) if r.ok && r.time_s > 0.0 => (2 * self.products) as f64 / r.time_s / 1e9,
            _ => 0.0,
        }
    }
}

/// Runs every registered method on one corpus entry.
///
/// When `validate` is set, each result is checked element-wise against the
/// sequential reference (unsorted outputs are canonicalised first) and a
/// mismatch panics — benchmarks must never trade correctness for speed.
pub fn run_entry(
    dev: &DeviceConfig,
    cost: &CostModel,
    spec: &CorpusSpec,
    validate: bool,
) -> MatrixRecord {
    let (a, b) = spec.build();
    run_pair(dev, cost, &spec.name, spec.family, &a, &b, validate)
}

/// Runs every registered method on an explicit pair.
pub fn run_pair(
    dev: &DeviceConfig,
    cost: &CostModel,
    name: &str,
    family: &str,
    a: &Csr<f64>,
    b: &Csr<f64>,
    validate: bool,
) -> MatrixRecord {
    let reference = spgemm_seq(a, b);
    let ps = ProductStats::of(a, b, &reference);
    let max_row_c = reference.max_row_nnz();
    let avg_row_c = reference.avg_row_nnz();

    let mut runs = Vec::new();
    for method in all_methods() {
        runs.push(run_method(
            dev,
            cost,
            method.as_ref(),
            a,
            b,
            &reference,
            validate,
        ));
    }
    MatrixRecord {
        name: name.to_string(),
        family: family.to_string(),
        rows: a.rows(),
        nnz_a: a.nnz(),
        products: ps.products,
        nnz_c: reference.nnz(),
        max_row_c,
        avg_row_c,
        runs,
    }
}

/// Runs a single method against a precomputed reference.
pub fn run_method(
    dev: &DeviceConfig,
    cost: &CostModel,
    method: &dyn SpgemmMethod,
    a: &Csr<f64>,
    b: &Csr<f64>,
    reference: &Csr<f64>,
    validate: bool,
) -> MethodRun {
    let r = method.multiply(dev, cost, a, b);
    if validate && r.ok() {
        let mut c = r.c.clone().expect("ok result must carry a matrix");
        if !r.sorted_output {
            c.sort_rows();
        }
        assert!(
            c.approx_eq(reference, 1e-9, 1e-12),
            "{} returned a wrong result",
            method.name()
        );
    }
    MethodRun {
        method: method.name().to_string(),
        time_s: r.sim_time_s,
        mem_bytes: if r.ok() { r.peak_mem_bytes } else { 0 },
        ok: r.ok(),
        sorted: r.sorted_output,
    }
}

/// Runs the whole corpus sequentially (each entry is internally parallel),
/// printing one progress line per entry.
pub fn run_corpus(
    dev: &DeviceConfig,
    cost: &CostModel,
    specs: &[CorpusSpec],
    validate: bool,
) -> Vec<MatrixRecord> {
    let mut records = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let rec = run_entry(dev, cost, spec, validate);
        eprintln!(
            "[{}/{}] {:<24} products={:<10} best={}",
            i + 1,
            specs.len(),
            rec.name,
            rec.products,
            rec.runs
                .iter()
                .filter(|r| r.ok)
                .min_by(|a, b| a.time_s.partial_cmp(&b.time_s).unwrap())
                .map(|r| r.method.as_str())
                .unwrap_or("-"),
        );
        records.push(rec);
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::smoke_corpus;

    #[test]
    fn smoke_corpus_runs_and_validates() {
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let specs = smoke_corpus();
        assert!(!specs.is_empty());
        // Keep runtime bounded: first three entries only.
        for spec in specs.iter().take(3) {
            let rec = run_entry(&dev, &cost, spec, true);
            assert_eq!(rec.runs.len(), 8);
            assert!(rec.best_time().is_finite());
            assert!(rec.best_gpu_time() >= rec.best_time());
            assert!(rec.run("speck").unwrap().ok);
        }
    }

    #[test]
    fn gflops_computation() {
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let spec = &smoke_corpus()[0];
        let rec = run_entry(&dev, &cost, spec, false);
        let g = rec.gflops("speck");
        let r = rec.run("speck").unwrap();
        assert!((g - (2 * rec.products) as f64 / r.time_s / 1e9).abs() < 1e-9);
        assert_eq!(rec.gflops("nonexistent"), 0.0);
    }
}
