//! Regenerates paper Fig. 11: stage shares of spECK.

use speck_bench::experiments::{emit, fig11_stages};
use speck_bench::out::write_out;

fn main() {
    let (table, csv) = fig11_stages::run();
    emit("Fig. 11: spECK stage shares", "fig11.txt", table);
    write_out("fig11.csv", &csv);
}
