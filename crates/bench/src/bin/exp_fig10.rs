//! Regenerates paper Fig. 10: peak memory on the common matrices.

use speck_bench::corpus::common_corpus;
use speck_bench::experiments::{emit, fig10_memory};
use speck_bench::out::write_out;
use speck_bench::runner::run_corpus;
use speck_simt::{CostModel, DeviceConfig};

fn main() {
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    let records = run_corpus(&dev, &cost, &common_corpus(), true);
    let (table, csv) = fig10_memory::run(&records);
    emit(
        "Fig. 10: peak memory on common matrices",
        "fig10.txt",
        table,
    );
    write_out("fig10.csv", &csv);
}
