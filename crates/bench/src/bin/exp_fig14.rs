//! Regenerates paper Fig. 14: global load balancer always-on/off/auto.

use speck_bench::experiments::{emit, fig14_global_lb};
use speck_bench::out::write_out;
use speck_simt::{CostModel, DeviceConfig};

fn main() {
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    let (table, csv) = fig14_global_lb::run(&dev, &cost);
    emit(
        "Fig. 14: global load balancing decision",
        "fig14.txt",
        table,
    );
    write_out("fig14.csv", &csv);
}
