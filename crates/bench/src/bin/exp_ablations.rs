//! Extra ablations beyond the paper (DESIGN.md §6): block merging and
//! cost-model sensitivity.

use speck_bench::experiments::{ablations, emit};
use speck_simt::{CostModel, DeviceConfig};

fn main() {
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    emit(
        "Ablation: block merging (Alg. 2)",
        "ablation_block_merge.txt",
        ablations::block_merge_ablation(&dev, &cost),
    );
    emit(
        "Ablation: cost-model sensitivity",
        "ablation_cost_model.txt",
        ablations::cost_model_sensitivity(&dev),
    );
}
