//! Wall-clock throughput benchmark of the spECK engine.
//!
//! Reuses ONE engine across every multiplication (exercising workspace
//! reuse) and reports host-side throughput in matrices/second, peak RSS,
//! and per-stage wall time. Results go to `BENCH_throughput.json` at the
//! repo root in a machine-readable form.
//!
//! A digest of every simulated time and memory figure is included so that
//! host-side optimisations can be checked for *simulation neutrality*: the
//! digest must be bit-identical before and after any change that only
//! touches host execution (see DESIGN.md §3). The digest rounds run on a
//! cache-disabled engine so every multiply takes the full cold pipeline;
//! plan reuse is measured separately by the reuse and batch rounds, whose
//! *simulated* speedup is reported as `reuse_speedup`.
//!
//! Usage: `cargo run --release --bin bench_throughput [-- ROUNDS [OUT [BASELINE_MPS]]] [--expect-digest HEX]`
//!
//! `BASELINE_MPS` is a reference throughput (matrices/second) measured on
//! the same machine — typically a pre-optimisation build run back-to-back
//! with this one; when given, the report includes the speedup against it.
//! `--expect-digest HEX` makes the run exit non-zero when the cold-path
//! sim digest differs from `HEX` (CI smoke mode).
//!
//! Metrics options (all engines share one `MetricsRegistry`):
//! * `--metrics-out PATH` — write the full `MetricsSnapshot` JSON
//!   (counters + histograms + wall gauges) to `PATH`.
//! * `--metrics-table PATH` — write the human-readable metrics table to
//!   `PATH` (e.g. for a CI job summary).
//! * `--check-metrics BASELINE` — diff the snapshot against a committed
//!   baseline (`BENCH_metrics.json`): sim counters and histograms must
//!   match exactly, `wall/` gauges within the baseline's declared
//!   tolerance. Non-zero exit on drift.
//! * `--wall-tolerance F` — relative tolerance declared in the emitted
//!   snapshot for its `wall/` gauges (default 0.35).
//!
//! Trace options (run on a separate engine with its own registry, so the
//! digest and metrics gates above are untouched):
//! * `--trace-out PATH` — run one cold traced multiply of the largest
//!   corpus entry and write its Chrome Trace Event JSON to `PATH`.
//! * `--profile-table PATH` — also write the folded profile report
//!   (hot rows, per-bin cycles, SM utilization) to `PATH`.
//! * `--audit-out PATH` — audit one cold multiply of every corpus entry
//!   on a dedicated engine and write the aggregate decision statistics
//!   (per matrix + total misprediction rate + Table-2 gate accuracy) as
//!   byte-deterministic JSON — the committed `BENCH_audit.json` baseline.

use speck_bench::cli::parse_flags;
use speck_bench::corpus::{common_corpus, smoke_corpus};
use speck_core::metrics::{compare_snapshots, MetricsRegistry, MetricsSnapshot};
use speck_core::{tuning, SpeckConfig, SpeckSpgemm};
use speck_simt::{CostModel, DeviceConfig};
use speck_sparse::gen::common_matrices;
use speck_sparse::Csr;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// FNV-1a over a byte stream: order-sensitive, bit-exact.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn push_u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// Peak resident set size in bytes, from `/proc/self/status` (VmHWM).
fn peak_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Same pattern as `m`, deterministically perturbed values — what a solver
/// hands the engine when it rebuilds an operator without changing its
/// sparsity.
fn perturb(m: &Csr<f64>, salt: u64) -> Csr<f64> {
    Csr::from_parts_unchecked(
        m.rows(),
        m.cols(),
        m.row_ptr().to_vec(),
        m.col_idx().to_vec(),
        m.vals()
            .iter()
            .enumerate()
            .map(|(i, &v)| v * (1.0 + ((i as u64 + salt) % 13) as f64 * 1e-3))
            .collect(),
    )
}

fn main() {
    let parsed = parse_flags(
        std::env::args().skip(1),
        &[
            ("--expect-digest", 1),
            ("--metrics-out", 1),
            ("--metrics-table", 1),
            ("--check-metrics", 1),
            ("--wall-tolerance", 1),
            ("--trace-out", 1),
            ("--profile-table", 1),
            ("--audit-out", 1),
        ],
        &[],
    )
    .unwrap_or_else(|e| panic!("bench_throughput: {e}"));
    let expect_digest: Option<u64> = parsed
        .value("--expect-digest")
        .map(|hex| u64::from_str_radix(hex, 16).expect("--expect-digest: bad hex value"));
    let metrics_out = parsed.value("--metrics-out").map(String::from);
    let metrics_table = parsed.value("--metrics-table").map(String::from);
    let check_metrics = parsed.value("--check-metrics").map(String::from);
    let wall_tolerance: f64 = parsed.parsed_or("--wall-tolerance", 0.35);
    let trace_out = parsed.value("--trace-out").map(String::from);
    let profile_table = parsed.value("--profile-table").map(String::from);
    let audit_out = parsed.value("--audit-out").map(String::from);
    let mut positional = parsed.positional.iter();
    let rounds: usize = positional.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let out_path = positional
        .next()
        .cloned()
        .unwrap_or_else(|| "BENCH_throughput.json".into());
    let baseline_mps: Option<f64> = positional.next().and_then(|s| s.parse().ok());

    // Corpus: the paper's "common" matrices plus the fast smoke subset —
    // mixes large multiplications with launch-overhead-bound tiny ones.
    let mut specs = common_corpus();
    specs.extend(smoke_corpus());

    let t_build = Instant::now();
    let pairs: Vec<(String, Csr<f64>, Csr<f64>)> = specs
        .iter()
        .map(|s| {
            let (a, b) = s.build();
            (s.name.clone(), a, b)
        })
        .collect();
    let build_s = t_build.elapsed().as_secs_f64();

    // One registry observes the whole bench: the digest engine's cold
    // rounds and the caching engine's reuse/batch rounds all record into
    // it, so the emitted snapshot covers every pipeline path.
    let registry = Arc::new(MetricsRegistry::new());

    // Digest rounds: cache disabled, so every multiply is the full cold
    // pipeline and the digest stays comparable across plan-cache changes.
    let engine = SpeckSpgemm::default()
        .with_plan_cache_capacity(0)
        .with_metrics(Arc::clone(&registry));
    let mut digest = Digest::new();
    let mut total_nnz_c = 0u64;

    // Warm-up round: populate the engine's reusable workspaces and page in
    // the matrices, so the timed rounds measure steady-state throughput.
    for (_, a, b) in &pairs {
        let (c, _) = engine.multiply(a, b);
        total_nnz_c += c.nnz() as u64;
    }

    let t_mult = Instant::now();
    let mut multiplies = 0usize;
    let mut cold_sim = 0.0f64;
    for round in 0..rounds {
        for (_, a, b) in &pairs {
            let (_, report) = engine.multiply(a, b);
            assert!(!report.reused_plan, "digest round must stay cold");
            digest.push_u64(report.sim_time_s.to_bits());
            digest.push_u64(report.peak_mem_bytes as u64);
            if round == 0 {
                cold_sim += report.sim_time_s;
            }
            multiplies += 1;
        }
    }
    let mult_s = t_mult.elapsed().as_secs_f64();
    let matrices_per_sec = multiplies as f64 / mult_s;

    // Reuse round: a caching engine is primed over the corpus, then runs
    // it again with fresh values (same patterns). The reported speedup is
    // cold simulated time (from the cache-disabled round above) over the
    // warm simulated time — the reused calls launch no setup kernels.
    // (Priming calls aren't asserted cold: the corpus itself repeats some
    // patterns, which is exactly what the cache is for.)
    let caching = SpeckSpgemm::default().with_metrics(Arc::clone(&registry));
    let mut warm_sim = 0.0f64;
    for (_, a, b) in &pairs {
        let _ = caching.multiply(a, b);
    }
    let fresh: Vec<(Csr<f64>, Csr<f64>)> = pairs
        .iter()
        .enumerate()
        .map(|(i, (_, a, b))| (perturb(a, i as u64), perturb(b, i as u64 + 1)))
        .collect();
    let t_reuse = Instant::now();
    for (a, b) in &fresh {
        let (_, r) = caching.multiply(a, b);
        assert!(r.reused_plan, "repeated pattern must reuse its plan");
        warm_sim += r.sim_time_s;
    }
    let reuse_s = t_reuse.elapsed().as_secs_f64();
    let reuse_speedup = cold_sim / warm_sim;

    // Batch round: the same warm multiplies dispatched through
    // multiply_batch (host-parallel, shared plan cache + workspaces).
    let batch_pairs: Vec<(&Csr<f64>, &Csr<f64>)> = fresh.iter().map(|(a, b)| (a, b)).collect();
    let t_batch = Instant::now();
    let mut batch_multiplies = 0usize;
    for _ in 0..rounds {
        let outs = caching.multiply_batch(&batch_pairs);
        batch_multiplies += outs.len();
    }
    let batch_s = t_batch.elapsed().as_secs_f64();
    let batch_matrices_per_sec = batch_multiplies as f64 / batch_s;
    let rss = peak_rss_bytes();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"throughput\",");
    let _ = writeln!(json, "  \"corpus_size\": {},", pairs.len());
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"multiplies\": {multiplies},");
    let _ = writeln!(json, "  \"matrices_per_sec\": {matrices_per_sec:.3},");
    if let Some(base) = baseline_mps {
        let _ = writeln!(json, "  \"baseline_matrices_per_sec\": {base:.3},");
        let _ = writeln!(
            json,
            "  \"speedup_vs_baseline\": {:.3},",
            matrices_per_sec / base
        );
    }
    let _ = writeln!(json, "  \"reuse_speedup\": {reuse_speedup:.3},");
    let _ = writeln!(json, "  \"reuse_cold_sim_s\": {cold_sim:.6},");
    let _ = writeln!(json, "  \"reuse_warm_sim_s\": {warm_sim:.6},");
    let _ = writeln!(
        json,
        "  \"batch_matrices_per_sec\": {batch_matrices_per_sec:.3},"
    );
    let _ = writeln!(json, "  \"total_nnz_c_per_round\": {total_nnz_c},");
    let _ = writeln!(json, "  \"peak_rss_bytes\": {rss},");
    let _ = writeln!(json, "  \"stage_wall_s\": {{");
    let _ = writeln!(json, "    \"build_corpus\": {build_s:.3},");
    let _ = writeln!(json, "    \"multiply\": {mult_s:.3},");
    let _ = writeln!(json, "    \"reuse\": {reuse_s:.3},");
    let _ = writeln!(json, "    \"batch\": {batch_s:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"sim_digest\": \"{:016x}\"", digest.0);
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_throughput.json");
    println!("{json}");
    println!(
        "throughput: {matrices_per_sec:.2} matrices/s over {multiplies} multiplies \
         ({mult_s:.2}s); reuse speedup {reuse_speedup:.2}x (simulated); \
         batch {batch_matrices_per_sec:.2} matrices/s; sim digest {:016x}; wrote {out_path}",
        digest.0
    );

    // Metrics snapshot: taken from the caching engine so the plan-cache
    // counters reflect the reuse rounds; sim counters cover both engines
    // through the shared registry.
    let mut snap = caching.metrics_snapshot();
    snap.wall_tolerance = Some(wall_tolerance);
    if let Some(path) = &metrics_out {
        std::fs::write(path, snap.full_json()).expect("write metrics snapshot");
        println!("metrics snapshot written to {path}");
    }
    if let Some(path) = &metrics_table {
        std::fs::write(path, snap.render_table()).expect("write metrics table");
    }

    if trace_out.is_some() || profile_table.is_some() {
        // Traced multiply of the largest corpus entry on a dedicated
        // engine (own registry, cache disabled): the trace covers a full
        // cold pipeline and nothing above — digest, metrics snapshot,
        // wall timings — observes it.
        let (name, a, b) = pairs
            .iter()
            .max_by_key(|(_, a, _)| a.nnz())
            .expect("corpus is not empty");
        let traced = SpeckSpgemm::default()
            .with_plan_cache_capacity(0)
            .with_tracing(true);
        let (_, r) = traced.multiply(a, b);
        let trace = r.trace.expect("tracing engine attaches a trace");
        if let Some(path) = &trace_out {
            std::fs::write(path, trace.chrome_trace_json()).expect("write trace");
            println!(
                "trace of '{name}' ({} records) written to {path}",
                trace.records.len()
            );
        }
        if let Some(path) = &profile_table {
            let profile = speck_core::profile::profile_trace(&trace, 15);
            std::fs::write(path, profile.render_table()).expect("write profile table");
            println!("profile table of '{name}' written to {path}");
        }
    }

    if let Some(path) = &audit_out {
        write_audit_baseline(path, &pairs);
    }

    let mut failed = false;
    if let Some(path) = &check_metrics {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("--check-metrics: cannot read {path}: {e}"));
        let baseline = MetricsSnapshot::parse_json(&text)
            .unwrap_or_else(|e| panic!("--check-metrics: {path}: {e}"));
        let drift = compare_snapshots(&snap, &baseline, 0.10);
        if drift.is_empty() {
            println!(
                "metrics gate: snapshot matches {path} ({} counters, {} histograms exact)",
                baseline.counters.len(),
                baseline.histograms.len()
            );
        } else {
            eprintln!("FAIL: metrics snapshot drifted from {path}:");
            for d in &drift {
                eprintln!("  - {d}");
            }
            failed = true;
        }
    }

    if let Some(expect) = expect_digest {
        if digest.0 != expect {
            eprintln!(
                "FAIL: cold-path sim digest {:016x} != expected {expect:016x} — \
                 a host-side change moved simulated results",
                digest.0
            );
            failed = true;
        } else {
            println!("cold-path sim digest matches expected {expect:016x}");
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Writes a JSON number deterministically: integral values as integers,
/// the rest via shortest-roundtrip `Display` — matching the audit
/// exporter's convention so the baseline stays byte-stable.
fn fnum(out: &mut String, v: f64) {
    if v == v.trunc() && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// The `--audit-out` baseline: one cold audited multiply per corpus entry
/// on a dedicated engine (own registry — the digest and metrics gates
/// above never observe it), aggregated into per-matrix decision
/// statistics, plus the Table-2 gate accuracy of the default thresholds
/// over the named common matrices (`tests/paper_claims.rs` re-derives the
/// same figure and treats this file as its floor). Every field is
/// simulation-derived, so the bytes are deterministic and CI can `cmp`
/// them against the committed `BENCH_audit.json`.
fn write_audit_baseline(path: &str, pairs: &[(String, Csr<f64>, Csr<f64>)]) {
    let audited = SpeckSpgemm::default()
        .with_plan_cache_capacity(0)
        .with_auditing(true);
    let mut json = String::new();
    json.push_str("{\n  \"format\": \"speck-audit-bench-v1\",\n  \"matrices\": [\n");
    let (mut decisions, mut confirmed, mut mispred, mut ties) = (0usize, 0usize, 0usize, 0usize);
    let mut regret = 0.0f64;
    for (i, (name, a, b)) in pairs.iter().enumerate() {
        let (_, r) = audited.multiply(a, b);
        let audit = r.audit.expect("auditing engine attaches a report");
        let t = audit.totals();
        decisions += t.decisions;
        confirmed += t.confirmed;
        mispred += t.mispredictions;
        ties += t.ties;
        regret += t.regret_cycles;
        let _ = write!(
            json,
            "    {{\"name\": \"{name}\", \"decisions\": {}, \"confirmed\": {}, \
             \"mispredictions\": {}, \"ties\": {}, \"regret_cycles\": ",
            t.decisions, t.confirmed, t.mispredictions, t.ties
        );
        fnum(&mut json, t.regret_cycles);
        json.push_str(", \"misprediction_rate\": ");
        fnum(&mut json, audit.misprediction_rate());
        json.push_str(if i + 1 == pairs.len() { "}\n" } else { "},\n" });
    }
    json.push_str("  ],\n");
    let _ = write!(
        json,
        "  \"total\": {{\"decisions\": {decisions}, \"confirmed\": {confirmed}, \
         \"mispredictions\": {mispred}, \"ties\": {ties}, \"regret_cycles\": "
    );
    fnum(&mut json, regret);
    json.push_str("},\n  \"misprediction_rate\": ");
    let rate = if decisions == 0 {
        0.0
    } else {
        mispred as f64 / decisions as f64
    };
    fnum(&mut json, rate);
    json.push_str(",\n");

    // Table-2 gate accuracy: the fraction of the named common matrices
    // where the default thresholds pick the fastest of the four global-LB
    // combinations (the paper's §5 figure, 85% on SuiteSparse).
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    let base = SpeckConfig::default();
    let meas: Vec<_> = common_matrices()
        .into_iter()
        .map(|cm| {
            let (a, b) = cm.pair();
            tuning::measure(&dev, &cost, &base, cm.name, &a, &b)
        })
        .collect();
    let acc = tuning::accuracy(&base.thresholds, &meas);
    json.push_str("  \"gate_accuracy\": ");
    fnum(&mut json, acc);
    json.push_str("\n}\n");
    std::fs::write(path, &json).expect("write audit baseline");
    println!(
        "audit baseline: {decisions} decisions over {} matrices, misprediction rate {:.1}%, \
         gate accuracy {:.1}% -> {path}",
        pairs.len(),
        100.0 * rate,
        100.0 * acc
    );
}
