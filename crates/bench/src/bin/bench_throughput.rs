//! Wall-clock throughput benchmark of the spECK engine.
//!
//! Reuses ONE engine across every multiplication (exercising workspace
//! reuse) and reports host-side throughput in matrices/second, peak RSS,
//! and per-stage wall time. Results go to `BENCH_throughput.json` at the
//! repo root in a machine-readable form.
//!
//! A digest of every simulated time and memory figure is included so that
//! host-side optimisations can be checked for *simulation neutrality*: the
//! digest must be bit-identical before and after any change that only
//! touches host execution (see DESIGN.md §3).
//!
//! Usage: `cargo run --release --bin bench_throughput [-- ROUNDS [OUT [BASELINE_MPS]]]`
//!
//! `BASELINE_MPS` is a reference throughput (matrices/second) measured on
//! the same machine — typically a pre-optimisation build run back-to-back
//! with this one; when given, the report includes the speedup against it.

use speck_bench::corpus::{common_corpus, smoke_corpus};
use speck_core::SpeckSpgemm;
use speck_sparse::Csr;
use std::fmt::Write as _;
use std::time::Instant;

/// FNV-1a over a byte stream: order-sensitive, bit-exact.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn push_u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// Peak resident set size in bytes, from `/proc/self/status` (VmHWM).
fn peak_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn main() {
    let mut args = std::env::args().skip(1);
    let rounds: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_throughput.json".into());
    let baseline_mps: Option<f64> = args.next().and_then(|s| s.parse().ok());

    // Corpus: the paper's "common" matrices plus the fast smoke subset —
    // mixes large multiplications with launch-overhead-bound tiny ones.
    let mut specs = common_corpus();
    specs.extend(smoke_corpus());

    let t_build = Instant::now();
    let pairs: Vec<(String, Csr<f64>, Csr<f64>)> = specs
        .iter()
        .map(|s| {
            let (a, b) = s.build();
            (s.name.clone(), a, b)
        })
        .collect();
    let build_s = t_build.elapsed().as_secs_f64();

    let engine = SpeckSpgemm::default();
    let mut digest = Digest::new();
    let mut total_nnz_c = 0u64;

    // Warm-up round: populate the engine's reusable workspaces and page in
    // the matrices, so the timed rounds measure steady-state throughput.
    for (_, a, b) in &pairs {
        let (c, _) = engine.multiply(a, b);
        total_nnz_c += c.nnz() as u64;
    }

    let t_mult = Instant::now();
    let mut multiplies = 0usize;
    for _ in 0..rounds {
        for (_, a, b) in &pairs {
            let (_, report) = engine.multiply(a, b);
            digest.push_u64(report.sim_time_s.to_bits());
            digest.push_u64(report.peak_mem_bytes as u64);
            multiplies += 1;
        }
    }
    let mult_s = t_mult.elapsed().as_secs_f64();
    let matrices_per_sec = multiplies as f64 / mult_s;
    let rss = peak_rss_bytes();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"throughput\",");
    let _ = writeln!(json, "  \"corpus_size\": {},", pairs.len());
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"multiplies\": {multiplies},");
    let _ = writeln!(json, "  \"matrices_per_sec\": {matrices_per_sec:.3},");
    if let Some(base) = baseline_mps {
        let _ = writeln!(json, "  \"baseline_matrices_per_sec\": {base:.3},");
        let _ = writeln!(
            json,
            "  \"speedup_vs_baseline\": {:.3},",
            matrices_per_sec / base
        );
    }
    let _ = writeln!(json, "  \"total_nnz_c_per_round\": {total_nnz_c},");
    let _ = writeln!(json, "  \"peak_rss_bytes\": {rss},");
    let _ = writeln!(json, "  \"stage_wall_s\": {{");
    let _ = writeln!(json, "    \"build_corpus\": {build_s:.3},");
    let _ = writeln!(json, "    \"multiply\": {mult_s:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"sim_digest\": \"{:016x}\"", digest.0);
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_throughput.json");
    println!("{json}");
    println!(
        "throughput: {matrices_per_sec:.2} matrices/s over {multiplies} multiplies \
         ({mult_s:.2}s); sim digest {:016x}; wrote {out_path}",
        digest.0
    );
}
