//! Regenerates paper Table 4: statistics of the common matrices.

use speck_bench::experiments::{emit, table4_common_stats};

fn main() {
    emit(
        "Table 4: common matrices",
        "table4.txt",
        table4_common_stats::run(),
    );
}
