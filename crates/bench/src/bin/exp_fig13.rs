//! Regenerates paper Fig. 13: dynamic vs fixed-32 local load balancing.

use speck_bench::experiments::{emit, fig13_local_lb};
use speck_bench::out::write_out;
use speck_simt::{CostModel, DeviceConfig};

fn main() {
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    let (table, csv) = fig13_local_lb::run(&dev, &cost);
    emit("Fig. 13: local load balancing", "fig13.txt", table);
    write_out("fig13.csv", &csv);
}
