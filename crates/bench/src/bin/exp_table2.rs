//! Regenerates paper Table 2: auto-tuned global-LB thresholds.

use speck_bench::corpus::full_corpus;
use speck_bench::experiments::{emit, table2_tuning};
use speck_simt::{CostModel, DeviceConfig};

fn main() {
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    // Tuning corpus: every third matrix (the paper tunes on one third).
    let specs: Vec<_> = full_corpus()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % 3 == 0)
        .map(|(_, s)| s)
        .collect();
    let (body, _) = table2_tuning::run(&dev, &cost, &specs);
    emit("Table 2: auto-tuned thresholds", "table2.txt", body);
}
