//! Regenerates paper Fig. 12: accumulator ablation (hash / +dense / +direct).

use speck_bench::experiments::{emit, fig12_accumulators};
use speck_bench::out::write_out;
use speck_simt::{CostModel, DeviceConfig};

fn main() {
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    let (table, csv) = fig12_accumulators::run(&dev, &cost);
    emit("Fig. 12: accumulator ablation", "fig12.txt", table);
    write_out("fig12.csv", &csv);
}
