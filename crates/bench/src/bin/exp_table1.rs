//! Regenerates paper Table 1: method characteristics, quantified.

use speck_bench::experiments::{emit, table1_characteristics};
use speck_simt::{CostModel, DeviceConfig};

fn main() {
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    emit(
        "Table 1: method characteristics",
        "table1.txt",
        table1_characteristics::run(&dev, &cost),
    );
}
