//! Regenerates paper Table 3: overall performance statistics.

use speck_bench::corpus::full_corpus;
use speck_bench::experiments::{emit, table3_overall};
use speck_bench::runner::run_corpus;
use speck_simt::{CostModel, DeviceConfig};

fn main() {
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    let records = run_corpus(&dev, &cost, &full_corpus(), true);
    emit(
        "Table 3: overall statistics",
        "table3.txt",
        table3_overall::run(&records),
    );
}
