//! Regenerates paper Fig. 9: GFLOPS on the common matrices.

use speck_bench::corpus::common_corpus;
use speck_bench::experiments::{emit, fig9_common_gflops};
use speck_bench::out::write_out;
use speck_bench::runner::run_corpus;
use speck_simt::{CostModel, DeviceConfig};

fn main() {
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    let records = run_corpus(&dev, &cost, &common_corpus(), true);
    let (table, csv) = fig9_common_gflops::run(&records);
    emit("Fig. 9: GFLOPS on common matrices", "fig9.txt", table);
    write_out("fig9.csv", &csv);
}
