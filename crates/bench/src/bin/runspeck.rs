//! `runspeck` — command-line driver mirroring the original artifact's
//! `runspECK` executable (paper Appendix A): load a MatrixMarket file
//! (with a binary cache for fast re-runs), multiply with spECK, optionally
//! compare the result structure against another method, and print timings.
//!
//! ```sh
//! cargo run --release -p speck-bench --bin runspeck -- <matrix.mtx> [options]
//!
//! options:
//!   --iterations N        execution iterations to average (default 5)
//!   --warmup N            warm-up iterations (default 1)
//!   --individual-times    print the per-stage breakdown of each run
//!   --compare             validate column indices against cuSPARSE-style
//!                         baseline (the artifact's CompareResult option)
//!   --no-cache            skip reading/writing the binary cache
//!   --synthetic FAMILY N  run on a generated matrix instead of a file
//!   --metrics             print the engine's metrics table after the run
//!                         (per-stage sim counters, spans, cache stats)
//!   --metrics-table PATH  write the metrics table to PATH
//!   --metrics-out PATH    write the full metrics snapshot JSON to PATH
//!   --trace-out PATH      run one cold traced multiply and write its
//!                         Chrome Trace Event JSON to PATH (open in
//!                         Perfetto or chrome://tracing)
//!   --profile             fold the trace into a profile report (hottest
//!                         rows/blocks, per-bin cycles, SM utilization)
//!                         and print it
//!   --profile-from PATH   profile a previously exported trace file and
//!                         exit (no multiply)
//!   --trace-diff OLD NEW  diff two exported traces (e.g. cold vs warm
//!                         plan) and exit
//!   --audit-out PATH      run one cold audited multiply and write its
//!                         decision-provenance report (canonical JSON)
//!   --audit-table PATH    write the audit summary table to PATH
//!                         ("-" prints it instead)
//!   --audit-diff OLD NEW  diff two exported audit reports and exit
//! ```

use speck_baselines::{cusparse_like::CusparseLike, SpgemmMethod};
use speck_bench::cli::parse_flags;
use speck_core::pipeline::stage;
use speck_core::profile::{diff_traces, profile_trace};
use speck_core::trace::ExecutionTrace;
use speck_core::{diff_reports, DecisionReport, SpeckSpgemm};
use speck_simt::{CostModel, DeviceConfig};
use speck_sparse::gen::{banded, poisson_3d, rmat};
use speck_sparse::io::{bin, mm};
use speck_sparse::transpose::transpose;
use speck_sparse::Csr;
use std::path::PathBuf;

/// Hot rows/blocks shown by `--profile`.
const PROFILE_TOP_K: usize = 15;

struct Options {
    input: Option<PathBuf>,
    synthetic: Option<(String, usize)>,
    iterations: usize,
    warmup: usize,
    individual: bool,
    compare: bool,
    cache: bool,
    metrics: bool,
    metrics_table: Option<String>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    profile: bool,
    audit_out: Option<String>,
    audit_table: Option<String>,
}

fn parse_args() -> Options {
    let parsed = parse_flags(
        std::env::args().skip(1),
        &[
            ("--iterations", 1),
            ("--warmup", 1),
            ("--synthetic", 2),
            ("--metrics-table", 1),
            ("--metrics-out", 1),
            ("--trace-out", 1),
            ("--profile-from", 1),
            ("--trace-diff", 2),
            ("--audit-out", 1),
            ("--audit-table", 1),
            ("--audit-diff", 2),
        ],
        &[
            "--individual-times",
            "--compare",
            "--no-cache",
            "--metrics",
            "--profile",
        ],
    )
    .unwrap_or_else(|e| panic!("runspeck: {e}"));

    // Standalone trace-tool modes: no matrix load, no multiply.
    if let Some(path) = parsed.value("--profile-from") {
        let trace = read_trace(path);
        print!("{}", profile_trace(&trace, PROFILE_TOP_K).render_table());
        std::process::exit(0);
    }
    if let Some(paths) = parsed.values_of("--trace-diff") {
        let old = read_trace(&paths[0]);
        let new = read_trace(&paths[1]);
        print!("{}", diff_traces(&old, &new).render_table());
        std::process::exit(0);
    }
    if let Some(paths) = parsed.values_of("--audit-diff") {
        let old = read_audit(&paths[0]);
        let new = read_audit(&paths[1]);
        print!("{}", diff_reports(&old, &new).render_table());
        std::process::exit(0);
    }

    Options {
        input: parsed.positional.first().map(PathBuf::from),
        synthetic: parsed
            .values_of("--synthetic")
            .map(|v| (v[0].clone(), v[1].parse().unwrap_or(2))),
        iterations: parsed.parsed_or("--iterations", 5),
        warmup: parsed.parsed_or("--warmup", 1),
        individual: parsed.flag("--individual-times"),
        compare: parsed.flag("--compare"),
        cache: !parsed.flag("--no-cache"),
        metrics: parsed.flag("--metrics"),
        metrics_table: parsed.value("--metrics-table").map(String::from),
        metrics_out: parsed.value("--metrics-out").map(String::from),
        trace_out: parsed.value("--trace-out").map(String::from),
        profile: parsed.flag("--profile"),
        audit_out: parsed.value("--audit-out").map(String::from),
        audit_table: parsed.value("--audit-table").map(String::from),
    }
}

fn read_trace(path: &str) -> ExecutionTrace {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read trace {path}: {e}"));
    ExecutionTrace::from_chrome_trace(&text)
        .unwrap_or_else(|e| panic!("cannot parse trace {path}: {e}"))
}

fn read_audit(path: &str) -> DecisionReport {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read audit {path}: {e}"));
    DecisionReport::from_json(&text).unwrap_or_else(|e| panic!("cannot parse audit {path}: {e}"))
}

fn load(o: &Options) -> (Csr<f64>, String) {
    if let Some((fam, n)) = &o.synthetic {
        let m = match fam.as_str() {
            "banded" => banded(8_000 * n, 2, 1.0, 1),
            "mesh3d" => poisson_3d(12 * n, 12 * n, 12, 0.01, 2),
            "graph" => rmat(9 + *n as u32, 8, 0.57, 0.19, 0.19, 3),
            other => panic!("unknown synthetic family '{other}'"),
        };
        return (m, format!("synthetic {fam} x{n}"));
    }
    let path = o
        .input
        .as_ref()
        .expect("usage: runspeck <matrix.mtx> [options] (or --synthetic FAMILY N)");
    // Binary cache next to the .mtx, like the artifact's ".hicsr" files.
    let cache_path = path.with_extension("hicsr");
    if o.cache && cache_path.exists() {
        if let Ok(m) = bin::read_bin_csr_file::<f64>(&cache_path) {
            return (m, format!("{} (cached)", path.display()));
        }
    }
    let m = mm::read_matrix_market_file::<f64>(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    if o.cache {
        let _ = bin::write_bin_csr_file(&m, &cache_path);
    }
    (m, path.display().to_string())
}

fn main() {
    let o = parse_args();
    let (a, label) = load(&o);
    println!("matrix: {label}");
    println!("  {} x {} with {} non-zeros", a.rows(), a.cols(), a.nnz());

    // Square matrices: C = A*A; rectangular: C = A*A^T (paper §6).
    let (a, b) = if a.rows() == a.cols() {
        let b = a.clone();
        (a, b)
    } else {
        println!("  rectangular: computing C = A*A^T");
        let t = transpose(&a);
        (a, t)
    };
    let products = a.products(&b);
    println!("  {products} intermediate products\n");

    // Plan once (analysis + symbolic), then time executions — the
    // artifact's iteration loop re-runs the full pipeline, but on a
    // repeated pattern the plan-reuse API is the hot-loop idiom.
    let engine = SpeckSpgemm::default();
    let plan = engine.plan(&a, &b);
    println!(
        "plan: {:.3} ms simulated setup (analysis + symbolic), amortised across iterations",
        plan.setup_sim_time_s() * 1e3
    );
    for _ in 0..o.warmup {
        let _ = engine.execute_plan(&plan, &a, &b);
    }
    let mut total = 0.0;
    let mut last = None;
    for i in 0..o.iterations.max(1) {
        let (c, report) = engine.execute_plan(&plan, &a, &b);
        total += report.sim_time_s;
        if o.individual {
            println!("iteration {i}: {:.3} ms", report.sim_time_s * 1e3);
            for (name, st) in report.timeline.stages() {
                println!(
                    "    {name:<14} {:>9.1} us  ({:>4.1}%)",
                    st.seconds * 1e6,
                    100.0 * report.timeline.share(name)
                );
            }
        }
        last = Some((c, report));
    }
    let (c, report) = last.expect("at least one iteration");
    let avg = total / o.iterations.max(1) as f64;
    let cold = plan.setup_sim_time_s() + avg;
    println!(
        "spECK: {} output non-zeros, avg {:.3} ms simulated per execution \
         ({:.3} ms cold incl. setup), {:.2} GFLOPS",
        c.nnz(),
        avg * 1e3,
        cold * 1e3,
        2.0 * products as f64 / cold / 1e9
    );
    let (h, d, r) = report.numeric_methods;
    println!(
        "  numeric blocks: {h} hash / {d} dense / {r} direct; global LB: symbolic={} numeric={}",
        report.symbolic_used_lb, report.numeric_used_lb
    );
    println!(
        "  sorting share: {:.1}%  (peak device memory {:.1} MiB)",
        100.0 * report.timeline.share(stage::SORTING),
        report.peak_mem_bytes as f64 / (1 << 20) as f64
    );

    if o.metrics {
        println!("\nmetrics after {} executions:", o.iterations.max(1));
        print!("{}", engine.metrics_snapshot().render_table());
    }
    if let Some(path) = &o.metrics_table {
        std::fs::write(path, engine.metrics_snapshot().render_table())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("metrics table written to {path}");
    }
    if let Some(path) = &o.metrics_out {
        std::fs::write(path, engine.metrics_snapshot().full_json())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("metrics snapshot written to {path}");
    }

    if o.trace_out.is_some() || o.profile {
        // One cold traced multiply on a dedicated engine: the trace covers
        // the whole pipeline (setup + execution), and the timing loop
        // above stays untouched by capture.
        let traced = SpeckSpgemm::default()
            .with_plan_cache_capacity(0)
            .with_tracing(true);
        let (_, tr_report) = traced.multiply(&a, &b);
        let trace = tr_report.trace.expect("tracing engine attaches a trace");
        if let Some(path) = &o.trace_out {
            std::fs::write(path, trace.chrome_trace_json())
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!(
                "\ntrace: {} records written to {path} (open in Perfetto or chrome://tracing)",
                trace.records.len()
            );
        }
        if o.profile {
            println!("\nprofile (one cold multiply):");
            print!("{}", profile_trace(&trace, PROFILE_TOP_K).render_table());
        }
    }

    if o.audit_out.is_some() || o.audit_table.is_some() {
        // One cold audited multiply on a dedicated engine, mirroring the
        // trace section: the decision report covers the whole pipeline and
        // the timing loop above stays free of capture overhead.
        let audited = SpeckSpgemm::default()
            .with_plan_cache_capacity(0)
            .with_auditing(true);
        let (_, au_report) = audited.multiply(&a, &b);
        let audit = au_report.audit.expect("auditing engine attaches a report");
        if let Some(path) = &o.audit_out {
            std::fs::write(path, audit.canonical_json())
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!(
                "\naudit: {} decisions written to {path}",
                audit.records.len()
            );
        }
        if let Some(path) = &o.audit_table {
            if path == "-" {
                println!("\naudit (one cold multiply):");
                print!("{}", audit.render_table());
            } else {
                std::fs::write(path, audit.render_table())
                    .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
                println!("audit table written to {path}");
            }
        }
    }

    if o.compare {
        // The artifact's CompareResult: check column structure against the
        // cuSPARSE-style baseline and report mismatches.
        let dev = DeviceConfig::titan_v();
        let cost = CostModel::default();
        let other = CusparseLike.multiply(&dev, &cost, &a, &b);
        match other.c {
            Some(reference) if c.pattern_eq(&reference) => {
                println!("compare: column indices match the cuSPARSE-style baseline ✓")
            }
            Some(_) => println!("compare: ERROR — column indices do not match!"),
            None => println!("compare: baseline failed ({:?})", other.failed),
        }
    }
}
