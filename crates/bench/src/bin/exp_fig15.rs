//! Regenerates paper Fig. 15 (appendix): per-matrix GFLOPS over the full
//! corpus, as CSV.

use speck_bench::corpus::full_corpus;
use speck_bench::out::{render_csv, write_out};
use speck_bench::runner::run_corpus;
use speck_simt::{CostModel, DeviceConfig};

fn main() {
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    let records = run_corpus(&dev, &cost, &full_corpus(), true);
    let methods: Vec<String> = records[0].runs.iter().map(|m| m.method.clone()).collect();
    let mut rows = Vec::new();
    let mut header = vec!["matrix".to_string(), "family".into(), "products".into()];
    header.extend(methods.iter().cloned());
    rows.push(header);
    for r in &records {
        let mut row = vec![r.name.clone(), r.family.clone(), r.products.to_string()];
        for m in &methods {
            row.push(format!("{:.4}", r.gflops(m)));
        }
        rows.push(row);
    }
    write_out("fig15.csv", &render_csv(&rows));
    println!(
        "Fig. 15 written: {} matrices x {} methods",
        records.len(),
        methods.len()
    );
}
