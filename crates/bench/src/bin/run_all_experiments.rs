//! Runs the complete experiment suite — every table and figure of the
//! paper — sharing one corpus sweep across the experiments that need it,
//! and writes all outputs under `crates/bench/out/`.
//!
//! ```sh
//! cargo run --release -p speck-bench --bin run_all_experiments
//! ```

use speck_bench::corpus::{common_corpus, full_corpus};
use speck_bench::experiments::*;
use speck_bench::out::{render_csv, write_out};
use speck_bench::runner::run_corpus;
use speck_simt::{CostModel, DeviceConfig};

fn main() {
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    let t0 = std::time::Instant::now();

    // Static experiments (no method runs needed).
    emit(
        "Fig. 8: non-zero patterns",
        "fig8.txt",
        fig8_patterns::run(48),
    );
    emit(
        "Table 4: common matrices",
        "table4.txt",
        table4_common_stats::run(),
    );
    emit(
        "Table 1: method characteristics",
        "table1.txt",
        table1_characteristics::run(&dev, &cost),
    );

    // The full-corpus sweep feeds Table 3, Fig. 6, Fig. 7 and Fig. 15.
    eprintln!("[corpus sweep: all methods x full corpus]");
    let records = run_corpus(&dev, &cost, &full_corpus(), true);
    emit(
        "Table 3: overall statistics",
        "table3.txt",
        table3_overall::run(&records),
    );
    let (t, csv) = fig6_trend::run(&records);
    emit("Fig. 6: GFLOPS over products", "fig6.txt", t);
    write_out("fig6.csv", &csv);
    let (t, csv) = fig7_slowdown::run(&records);
    emit("Fig. 7: slowdown to fastest", "fig7.txt", t);
    write_out("fig7.csv", &csv);
    {
        let methods: Vec<String> = records[0].runs.iter().map(|m| m.method.clone()).collect();
        let mut rows = Vec::new();
        let mut header = vec!["matrix".to_string(), "family".into(), "products".into()];
        header.extend(methods.iter().cloned());
        rows.push(header);
        for r in &records {
            let mut row = vec![r.name.clone(), r.family.clone(), r.products.to_string()];
            for m in &methods {
                row.push(format!("{:.4}", r.gflops(m)));
            }
            rows.push(row);
        }
        write_out("fig15.csv", &render_csv(&rows));
    }

    // Common-matrix experiments (Figs. 9-11).
    eprintln!("[common matrices]");
    let common = run_corpus(&dev, &cost, &common_corpus(), true);
    let (t, csv) = fig9_common_gflops::run(&common);
    emit("Fig. 9: GFLOPS on common matrices", "fig9.txt", t);
    write_out("fig9.csv", &csv);
    let (t, csv) = fig10_memory::run(&common);
    emit("Fig. 10: peak memory", "fig10.txt", t);
    write_out("fig10.csv", &csv);
    let (t, csv) = fig11_stages::run();
    emit("Fig. 11: stage shares", "fig11.txt", t);
    write_out("fig11.csv", &csv);

    // Ablation sweeps (Figs. 12-14).
    eprintln!("[ablation sweeps]");
    let (t, csv) = fig12_accumulators::run(&dev, &cost);
    emit("Fig. 12: accumulator ablation", "fig12.txt", t);
    write_out("fig12.csv", &csv);
    let (t, csv) = fig13_local_lb::run(&dev, &cost);
    emit("Fig. 13: local load balancing", "fig13.txt", t);
    write_out("fig13.csv", &csv);
    let (t, csv) = fig14_global_lb::run(&dev, &cost);
    emit("Fig. 14: global load balancing", "fig14.txt", t);
    write_out("fig14.csv", &csv);

    // Auto-tuning (Table 2): tune on one third of the corpus.
    eprintln!("[auto-tuning]");
    let tuning_specs: Vec<_> = full_corpus()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % 3 == 0)
        .map(|(_, s)| s)
        .collect();
    let (t, _) = table2_tuning::run(&dev, &cost, &tuning_specs);
    emit("Table 2: auto-tuned thresholds", "table2.txt", t);

    // Extra ablations.
    emit(
        "Ablation: block merging",
        "ablation_block_merge.txt",
        ablations::block_merge_ablation(&dev, &cost),
    );
    emit(
        "Ablation: cost-model sensitivity",
        "ablation_cost_model.txt",
        ablations::cost_model_sensitivity(&dev),
    );

    eprintln!(
        "\nall experiments done in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
