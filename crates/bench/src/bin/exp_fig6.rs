//! Regenerates paper Fig. 6: GFLOPS trend over product counts.

use speck_bench::corpus::full_corpus;
use speck_bench::experiments::{emit, fig6_trend};
use speck_bench::out::write_out;
use speck_bench::runner::run_corpus;
use speck_simt::{CostModel, DeviceConfig};

fn main() {
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    let records = run_corpus(&dev, &cost, &full_corpus(), true);
    let (table, csv) = fig6_trend::run(&records);
    emit("Fig. 6: GFLOPS over products", "fig6.txt", table);
    write_out("fig6.csv", &csv);
}
