//! Regenerates paper Fig. 8: non-zero patterns of the common matrices.

use speck_bench::experiments::{emit, fig8_patterns};

fn main() {
    emit(
        "Fig. 8: non-zero patterns",
        "fig8.txt",
        fig8_patterns::run(48),
    );
}
