//! Regenerates paper Fig. 7: slowdown-to-fastest distribution.

use speck_bench::corpus::full_corpus;
use speck_bench::experiments::{emit, fig7_slowdown};
use speck_bench::out::write_out;
use speck_bench::runner::run_corpus;
use speck_simt::{CostModel, DeviceConfig};

fn main() {
    let dev = DeviceConfig::titan_v();
    let cost = CostModel::default();
    let records = run_corpus(&dev, &cost, &full_corpus(), true);
    let (table, csv) = fig7_slowdown::run(&records);
    emit(
        "Fig. 7: slowdown to fastest (>15k products)",
        "fig7.txt",
        table,
    );
    write_out("fig7.csv", &csv);
}
