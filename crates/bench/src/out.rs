//! Plain-text tables and CSV emission for the experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Directory experiment outputs are written to.
pub fn out_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("out");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Writes `content` to `bench/out/<name>` and reports where.
pub fn write_out(name: &str, content: &str) {
    let path = out_dir().join(name);
    match fs::write(&path, content) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("[failed to write {}: {e}]", path.display()),
    }
}

/// Renders an aligned text table; `rows` include the header as row 0.
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap();
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            // Left-align first column, right-align the rest.
            if i == 0 {
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            } else {
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
        }
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Renders rows as CSV (naive quoting: fields must not contain commas).
pub fn render_csv(rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Formats seconds as engineering-friendly milliseconds.
pub fn fmt_ms(seconds: f64) -> String {
    if !seconds.is_finite() {
        return "fail".to_string();
    }
    format!("{:.3}", seconds * 1e3)
}

/// Formats a ratio with two decimals, or `-` for NaN.
pub fn fmt_ratio(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(&[
            vec!["name".into(), "v".into()],
            vec!["a".into(), "1".into()],
            vec!["long-name".into(), "22".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    fn csv_rendering() {
        let c = render_csv(&[vec!["a".into(), "b".into()], vec!["1".into(), "2".into()]]);
        assert_eq!(c, "a,b\n1,2\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(0.001234), "1.234");
        assert_eq!(fmt_ms(f64::INFINITY), "fail");
        assert_eq!(fmt_ratio(f64::NAN), "-");
        assert_eq!(fmt_ratio(1.5), "1.50");
    }
}
