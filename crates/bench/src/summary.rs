//! Aggregate statistics over a set of [`MatrixRecord`]s — the rows of
//! paper Table 3.

use crate::runner::MatrixRecord;

/// Product-count threshold separating the CPU-favoured region (paper §6:
/// ">15k products" defines the starred rows of Table 3).
pub const PRODUCTS_CUTOFF: u64 = 15_000;

/// Table-3 statistics for one method.
#[derive(Clone, Debug)]
pub struct MethodSummary {
    /// Method name.
    pub method: String,
    /// Matrices where this method was the fastest overall.
    pub n_best: usize,
    /// Same, restricted to >15k products.
    pub n_best_large: usize,
    /// Matrices the method failed to compute.
    pub n_invalid: usize,
    /// Mean time in ms over the common-completion subset.
    pub t_avg_ms: f64,
    /// Mean peak memory relative to spECK over the common subset.
    pub mem_ratio: f64,
    /// Mean relative time versus the per-matrix best (all matrices).
    pub rel_time: f64,
    /// Same, restricted to >15k products.
    pub rel_time_large: f64,
    /// Matrices where this method is >5x slower than the best.
    pub n_5x: usize,
    /// Same, restricted to >15k products.
    pub n_5x_large: usize,
}

/// Computes Table-3 statistics for every method present in the records.
///
/// `t_avg` and `mem_ratio` follow the paper's convention: they are taken
/// over the matrices **completed by all GPU methods except KokkosKernels**
/// with >15k products (the paper's "†" subset).
pub fn summarize(records: &[MatrixRecord]) -> Vec<MethodSummary> {
    let methods: Vec<String> = records
        .first()
        .map(|r| r.runs.iter().map(|m| m.method.clone()).collect())
        .unwrap_or_default();

    // The † subset.
    let common_subset: Vec<&MatrixRecord> = records
        .iter()
        .filter(|r| {
            r.products > PRODUCTS_CUTOFF
                && r.runs
                    .iter()
                    .filter(|m| m.method != "kokkos" && m.method != "mkl")
                    .all(|m| m.ok)
        })
        .collect();

    methods
        .iter()
        .map(|name| {
            let mut n_best = 0;
            let mut n_best_large = 0;
            let mut n_invalid = 0;
            let mut rel = Vec::new();
            let mut rel_large = Vec::new();
            let mut n_5x = 0;
            let mut n_5x_large = 0;
            for r in records {
                let best = r.best_time();
                let run = r.run(name).unwrap();
                if !run.ok {
                    n_invalid += 1;
                }
                let is_best = run.ok && run.time_s <= best * (1.0 + 1e-12);
                let ratio = if run.ok { run.time_s / best } else { f64::NAN };
                if is_best {
                    n_best += 1;
                }
                if run.ok && ratio > 5.0 {
                    n_5x += 1;
                }
                if run.ok {
                    rel.push(ratio);
                }
                if r.products > PRODUCTS_CUTOFF {
                    if is_best {
                        n_best_large += 1;
                    }
                    if run.ok {
                        rel_large.push(ratio);
                        if ratio > 5.0 {
                            n_5x_large += 1;
                        }
                    }
                }
            }
            let mean = |v: &[f64]| {
                if v.is_empty() {
                    f64::NAN
                } else {
                    v.iter().sum::<f64>() / v.len() as f64
                }
            };
            let t_avg_ms = mean(
                &common_subset
                    .iter()
                    .filter_map(|r| {
                        let run = r.run(name)?;
                        run.ok.then_some(run.time_s * 1e3)
                    })
                    .collect::<Vec<_>>(),
            );
            let mem_ratio = mean(
                &common_subset
                    .iter()
                    .filter_map(|r| {
                        let run = r.run(name)?;
                        let speck = r.run("speck")?;
                        (run.ok && speck.ok && speck.mem_bytes > 0)
                            .then(|| run.mem_bytes as f64 / speck.mem_bytes as f64)
                    })
                    .collect::<Vec<_>>(),
            );
            MethodSummary {
                method: name.clone(),
                n_best,
                n_best_large,
                n_invalid,
                t_avg_ms,
                mem_ratio,
                rel_time: mean(&rel),
                rel_time_large: mean(&rel_large),
                n_5x,
                n_5x_large,
            }
        })
        .collect()
}

/// Fraction of records where `method` is fastest (the headline "79 %").
pub fn best_share(records: &[MatrixRecord], method: &str, large_only: bool) -> f64 {
    let filtered: Vec<&MatrixRecord> = records
        .iter()
        .filter(|r| !large_only || r.products > PRODUCTS_CUTOFF)
        .collect();
    if filtered.is_empty() {
        return 0.0;
    }
    let wins = filtered
        .iter()
        .filter(|r| {
            let best = r.best_time();
            r.run(method)
                .map(|m| m.ok && m.time_s <= best * (1.0 + 1e-12))
                .unwrap_or(false)
        })
        .count();
    wins as f64 / filtered.len() as f64
}

/// Fraction of records where `method` is fastest or second fastest.
pub fn top2_share(records: &[MatrixRecord], method: &str, large_only: bool) -> f64 {
    let filtered: Vec<&MatrixRecord> = records
        .iter()
        .filter(|r| !large_only || r.products > PRODUCTS_CUTOFF)
        .collect();
    if filtered.is_empty() {
        return 0.0;
    }
    let hits = filtered
        .iter()
        .filter(|r| {
            let mut times: Vec<f64> = r.runs.iter().filter(|m| m.ok).map(|m| m.time_s).collect();
            times.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let second = times.get(1).copied().unwrap_or(f64::INFINITY);
            r.run(method)
                .map(|m| m.ok && m.time_s <= second * (1.0 + 1e-12))
                .unwrap_or(false)
        })
        .count();
    hits as f64 / filtered.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::MethodRun;

    fn record(name: &str, products: u64, times: &[(&str, f64)]) -> MatrixRecord {
        MatrixRecord {
            name: name.into(),
            family: "test".into(),
            rows: 10,
            nnz_a: 10,
            products,
            nnz_c: 10,
            max_row_c: 3,
            avg_row_c: 1.0,
            runs: times
                .iter()
                .map(|&(m, t)| MethodRun {
                    method: m.into(),
                    time_s: t,
                    mem_bytes: 100,
                    ok: t.is_finite(),
                    sorted: true,
                })
                .collect(),
        }
    }

    #[test]
    fn best_counts_and_rel_time() {
        let recs = vec![
            record("a", 20_000, &[("speck", 1.0), ("nsparse", 2.0)]),
            record("b", 20_000, &[("speck", 3.0), ("nsparse", 1.0)]),
            record("c", 1_000, &[("speck", 1.0), ("nsparse", 10.0)]),
        ];
        let s = summarize(&recs);
        let speck = s.iter().find(|m| m.method == "speck").unwrap();
        assert_eq!(speck.n_best, 2);
        assert_eq!(speck.n_best_large, 1);
        let nsp = s.iter().find(|m| m.method == "nsparse").unwrap();
        assert_eq!(nsp.n_best, 1);
        assert_eq!(nsp.n_5x, 1);
        // speck rel: (1 + 3 + 1)/3
        assert!((speck.rel_time - 5.0 / 3.0).abs() < 1e-12);
        assert!((best_share(&recs, "speck", false) - 2.0 / 3.0).abs() < 1e-12);
        assert!((top2_share(&recs, "speck", false) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn failures_count_as_invalid() {
        let recs = vec![record(
            "a",
            20_000,
            &[("speck", 1.0), ("kokkos", f64::INFINITY)],
        )];
        let s = summarize(&recs);
        let kk = s.iter().find(|m| m.method == "kokkos").unwrap();
        assert_eq!(kk.n_invalid, 1);
        assert_eq!(kk.n_best, 0);
    }
}
