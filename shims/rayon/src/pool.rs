//! A persistent worker pool dispatching chunk-indexed jobs.
//!
//! Spawning OS threads per parallel call costs tens of microseconds — real
//! rayon amortizes that with a lazily-started global pool, and so do we.
//! Workers park on a condvar; a dispatch publishes a job (an erased
//! `&dyn Fn(usize)` plus an atomic chunk cursor), wakes everyone, and the
//! caller participates too. The caller only returns once every chunk has
//! finished, which is what makes lending the non-`'static` closure sound.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

type Job = dyn Fn(usize) + Sync;

struct Task {
    /// Erased pointer to the caller's closure. Valid for the lifetime of
    /// the dispatch: the caller blocks until `completed == n_chunks`, so no
    /// worker can observe a dangling pointer through this field (a late
    /// waker finds the cursor exhausted and never dereferences it).
    job: *const Job,
    n_chunks: usize,
    cursor: AtomicUsize,
    completed: AtomicUsize,
}

unsafe impl Send for Task {}
unsafe impl Sync for Task {}

struct Shared {
    /// Monotonic dispatch generation and the current task, if any.
    slot: Mutex<(u64, Option<std::sync::Arc<Task>>)>,
    work_ready: Condvar,
    task_done: Condvar,
}

struct Pool {
    shared: std::sync::Arc<Shared>,
    workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// True on pool worker threads — nested dispatches run inline.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let workers = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let shared = std::sync::Arc::new(Shared {
            slot: Mutex::new((0, None)),
            work_ready: Condvar::new(),
            task_done: Condvar::new(),
        });
        // The caller participates in every dispatch, so spawn one fewer.
        for _ in 1..workers {
            let shared = std::sync::Arc::clone(&shared);
            std::thread::Builder::new()
                .name("shim-rayon-worker".into())
                .spawn(move || worker_loop(&shared))
                .expect("failed to spawn pool worker");
        }
        Pool { shared, workers }
    })
}

/// Worker threads in the pool (including the calling thread).
pub fn num_threads() -> usize {
    pool().workers
}

fn worker_loop(shared: &Shared) {
    IN_WORKER.with(|w| w.set(true));
    let mut seen = 0u64;
    loop {
        let task = {
            let mut slot = shared.slot.lock().unwrap();
            loop {
                if slot.0 > seen {
                    seen = slot.0;
                    if let Some(t) = slot.1.clone() {
                        break t;
                    }
                }
                slot = shared.work_ready.wait(slot).unwrap();
            }
        };
        run_chunks(shared, &task);
    }
}

fn run_chunks(shared: &Shared, task: &Task) {
    loop {
        let ci = task.cursor.fetch_add(1, Ordering::Relaxed);
        if ci >= task.n_chunks {
            return;
        }
        // SAFETY: the dispatching caller keeps the closure alive until
        // `completed` reaches `n_chunks`, and this chunk is counted below.
        unsafe { (*task.job)(ci) };
        if task.completed.fetch_add(1, Ordering::AcqRel) + 1 == task.n_chunks {
            let _guard = shared.slot.lock().unwrap();
            shared.task_done.notify_all();
        }
    }
}

/// Runs `job(chunk_index)` for every index in `0..n_chunks` across the pool.
/// Blocks until all chunks are done. Nested calls run inline.
pub fn parallel_chunks(n_chunks: usize, job: &(dyn Fn(usize) + Sync)) {
    if n_chunks == 0 {
        return;
    }
    if IN_WORKER.with(|w| w.get()) || pool().workers <= 1 || n_chunks == 1 {
        for ci in 0..n_chunks {
            job(ci);
        }
        return;
    }
    let shared = &pool().shared;
    // SAFETY: transmute only erases the trait object's lifetime bound
    // (same fat-pointer layout); see `Task::job` for why no worker can
    // dereference it after this function returns.
    let erased: *const Job =
        unsafe { std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), *const Job>(job) };
    let task = std::sync::Arc::new(Task {
        job: erased,
        n_chunks,
        cursor: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
    });
    {
        let mut slot = shared.slot.lock().unwrap();
        slot.0 += 1;
        slot.1 = Some(std::sync::Arc::clone(&task));
        shared.work_ready.notify_all();
    }
    // The caller works too.
    run_chunks(shared, &task);
    // Wait for stragglers still inside their last chunk.
    let mut slot = shared.slot.lock().unwrap();
    while task.completed.load(Ordering::Acquire) < n_chunks {
        slot = shared.task_done.wait(slot).unwrap();
    }
    // Retire the task so late-waking workers drop their handle promptly.
    if let Some(current) = &slot.1 {
        if std::sync::Arc::ptr_eq(current, &task) {
            slot.1 = None;
        }
    }
}
