//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no registry access, so this crate provides the
//! subset of rayon's API the workspace uses — `into_par_iter` on ranges,
//! `par_iter` on slices, `map`, `map_init`, `collect`, `reduce`, `sum` — on
//! top of a persistent `std::thread` worker pool.
//!
//! Guarantees the workspace relies on:
//! - **Order preservation**: `collect()` returns items in iteration order.
//! - **Determinism**: `reduce()` combines per-chunk partial results in chunk
//!   order, so the combination tree is fixed regardless of thread timing.
//! - **Re-entrancy**: nested parallel calls from inside a worker run inline
//!   (serially) instead of deadlocking the pool.

mod pool;

use pool::parallel_chunks;

/// The rayon prelude: import the traits.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

/// Number of worker threads the global pool uses (including the caller).
pub fn current_num_threads() -> usize {
    pool::num_threads()
}

// ---------------------------------------------------------------------------
// Producer model: every parallel iterator is an indexed source. `State` is
// per-worker scratch (used by `map_init`); producing item `i` only needs a
// shared `&self` plus that worker-local state, which makes work distribution
// by index both simple and deterministic.
// ---------------------------------------------------------------------------

/// An indexed parallel source of `len()` items.
pub trait Producer: Sync {
    /// Item produced for each index.
    type Item: Send;
    /// Per-worker scratch state.
    type State;
    /// Total number of items.
    fn len(&self) -> usize;
    /// Whether the source has no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Fresh per-worker state.
    fn init(&self) -> Self::State;
    /// Produces the item at `idx`.
    fn produce(&self, state: &mut Self::State, idx: usize) -> Self::Item;
}

/// A parallel iterator over a [`Producer`].
pub struct ParIter<P>(P);

/// Conversion into a parallel iterator (rayon's entry-point trait).
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// Resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Parallel iterator over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

/// `par_iter_mut()` on borrowed collections (disjoint chunk handout).
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type (a mutable reference).
    type Item: Send;
    /// Resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Parallel iterator over `&mut self`.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

/// Producer for `Range<usize>`.
pub struct RangeProducer {
    start: usize,
    len: usize,
}

impl Producer for RangeProducer {
    type Item = usize;
    type State = ();
    fn len(&self) -> usize {
        self.len
    }
    fn init(&self) {}
    fn produce(&self, _: &mut (), idx: usize) -> usize {
        self.start + idx
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParIter<RangeProducer>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter(RangeProducer {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        })
    }
}

/// Producer for slices.
pub struct SliceProducer<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    type State = ();
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn init(&self) {}
    fn produce(&self, _: &mut (), idx: usize) -> &'a T {
        &self.slice[idx]
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<SliceProducer<'a, T>>;
    fn par_iter(&'a self) -> Self::Iter {
        ParIter(SliceProducer { slice: self })
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<SliceProducer<'a, T>>;
    fn par_iter(&'a self) -> Self::Iter {
        ParIter(SliceProducer { slice: self })
    }
}

/// Producer for [`ParallelIterator::map`].
pub struct MapProducer<P, F> {
    inner: P,
    f: F,
}

impl<P, F, R> Producer for MapProducer<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> R + Sync,
    R: Send,
{
    type Item = R;
    type State = P::State;
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn init(&self) -> P::State {
        self.inner.init()
    }
    fn produce(&self, state: &mut P::State, idx: usize) -> R {
        (self.f)(self.inner.produce(state, idx))
    }
}

/// Producer for [`ParallelIterator::map_init`].
pub struct MapInitProducer<P, I, F> {
    inner: P,
    init: I,
    f: F,
}

impl<P, I, T, F, R> Producer for MapInitProducer<P, I, F>
where
    P: Producer,
    I: Fn() -> T + Sync,
    F: Fn(&mut T, P::Item) -> R + Sync,
    R: Send,
{
    type Item = R;
    type State = (P::State, T);
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn init(&self) -> (P::State, T) {
        (self.inner.init(), (self.init)())
    }
    fn produce(&self, state: &mut (P::State, T), idx: usize) -> R {
        let item = self.inner.produce(&mut state.0, idx);
        (self.f)(&mut state.1, item)
    }
}

/// The subset of rayon's `ParallelIterator` the workspace uses.
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item: Send;
    /// Underlying producer type.
    type Producer: Producer<Item = Self::Item>;

    /// Unwraps the producer.
    fn into_producer(self) -> Self::Producer;

    /// Maps each item through `f` in parallel.
    fn map<F, R>(self, f: F) -> ParIter<MapProducer<Self::Producer, F>>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        ParIter(MapProducer {
            inner: self.into_producer(),
            f,
        })
    }

    /// Maps with per-worker state created by `init` (rayon's `map_init`).
    fn map_init<I, T, F, R>(self, init: I, f: F) -> ParIter<MapInitProducer<Self::Producer, I, F>>
    where
        I: Fn() -> T + Sync,
        F: Fn(&mut T, Self::Item) -> R + Sync,
        R: Send,
    {
        ParIter(MapInitProducer {
            inner: self.into_producer(),
            init,
            f,
        })
    }

    /// Collects all items, preserving iteration order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Reduces all items with `op`, seeding each chunk with `identity()`.
    /// Chunk partials are combined in chunk order (deterministic tree).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let producer = self.into_producer();
        let partials = run_chunked(&producer, |state, range, out: &mut Vec<Self::Item>| {
            let mut acc = identity();
            for i in range {
                acc = op(acc, producer.produce(state, i));
            }
            out.push(acc);
        });
        partials.into_iter().fold(identity(), &op)
    }

    /// Sums all items (deterministic chunk-ordered combination).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let producer = self.into_producer();
        let partials = run_chunked(&producer, |state, range, out: &mut Vec<S>| {
            out.push(range.map(|i| producer.produce(state, i)).sum());
        });
        partials.into_iter().sum()
    }
}

impl<P: Producer> ParallelIterator for ParIter<P> {
    type Item = P::Item;
    type Producer = P;
    fn into_producer(self) -> P {
        self.0
    }
}

/// Parallel-ordered `collect` target (rayon's `FromParallelIterator`).
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection from a parallel iterator.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let producer = iter.into_producer();
        run_chunked(&producer, |state, range, out: &mut Vec<T>| {
            for i in range {
                out.push(producer.produce(state, i));
            }
        })
    }
}

/// Runs `work(state, index_range, &mut sink)` over `producer`'s index space
/// split into contiguous chunks, dynamically dealt to the pool's workers.
/// Returns the concatenation of every chunk's sink **in chunk order**, so
/// callers observe a deterministic, order-preserving result.
fn run_chunked<P, T, W>(producer: &P, work: W) -> Vec<T>
where
    P: Producer,
    T: Send,
    W: Fn(&mut P::State, std::ops::Range<usize>, &mut Vec<T>) + Sync,
{
    let len = producer.len();
    if len == 0 {
        return Vec::new();
    }
    let workers = pool::num_threads();
    // Small inputs or a serial pool: run inline.
    if workers <= 1 || len <= 1 {
        let mut state = producer.init();
        let mut out = Vec::new();
        work(&mut state, 0..len, &mut out);
        return out;
    }
    // ~4 chunks per worker bounds both scheduling overhead and tail
    // imbalance without requiring work stealing.
    let chunk = len.div_ceil(workers * 4).max(1);
    let n_chunks = len.div_ceil(chunk);
    let slots: Vec<std::sync::Mutex<Option<Vec<T>>>> =
        (0..n_chunks).map(|_| std::sync::Mutex::new(None)).collect();
    parallel_chunks(n_chunks, &|ci| {
        let mut state = producer.init();
        let start = ci * chunk;
        let end = (start + chunk).min(len);
        let mut out = Vec::new();
        work(&mut state, start..end, &mut out);
        *slots[ci].lock().unwrap() = Some(out);
    });
    let mut merged = Vec::new();
    for slot in slots {
        merged.extend(slot.into_inner().unwrap().expect("chunk not executed"));
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 10_000);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 2);
        }
    }

    #[test]
    fn slice_par_iter_works() {
        let data: Vec<u64> = (0..5_000).collect();
        let doubled: Vec<u64> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(doubled[4_999], 5_000);
    }

    #[test]
    fn reduce_is_deterministic() {
        let run = || {
            (0..100_000usize)
                .into_par_iter()
                .map(|i| i as f64 * 0.1)
                .reduce(|| 0.0, |a, b| a + b)
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }

    #[test]
    fn map_init_reuses_worker_state() {
        let v: Vec<usize> = (0..1_000)
            .into_par_iter()
            .map_init(Vec::<usize>::new, |scratch, i| {
                scratch.push(i);
                scratch.len()
            })
            .collect();
        assert_eq!(v.len(), 1_000);
        // Each worker's scratch grows monotonically; first item is >= 1.
        assert!(v.iter().all(|&n| n >= 1));
    }

    #[test]
    fn sum_matches_serial() {
        let par: u64 = (0..10_000usize).into_par_iter().map(|i| i as u64).sum();
        let ser: u64 = (0..10_000u64).sum();
        assert_eq!(par, ser);
    }

    #[test]
    fn empty_range_collects_empty() {
        let v: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn nested_parallelism_runs_inline() {
        let v: Vec<usize> = (0..64)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<usize> = (0..8).into_par_iter().map(|j| i + j).collect();
                inner.into_iter().sum()
            })
            .collect();
        assert_eq!(v[0], (0..8).sum::<usize>());
    }
}
