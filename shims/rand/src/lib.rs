//! Offline stand-in for [rand](https://crates.io/crates/rand) 0.8.
//!
//! Provides the API subset the workspace uses: `StdRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, and `distributions::Uniform` over
//! `f64`. The generator is xoshiro256++ seeded through SplitMix64 — fully
//! deterministic for a given seed, which is all the synthetic-matrix
//! generators require (the bit stream differs from the real `rand` crate;
//! every consumer in this workspace only needs self-consistency).

/// Core of every generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (rand's `SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Samples one value from the standard distribution of the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges `Rng::gen_range` accepts (rand's `SampleRange` subset).
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u32, u64);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_signed_range!(i32, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

/// Uniform value in `[0, bound)` by widening multiply (Lemire's method,
/// without the rejection step — bias is < 2^-32 for every bound used here).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

/// The user-facing generator trait (rand's `Rng` subset).
pub trait Rng: RngCore {
    /// Samples a standard-distribution value.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's StdRng).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions (rand's `distributions` subset).
pub mod distributions {
    use super::RngCore;

    /// A distribution sampling values of type `T`.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl Uniform<f64> {
        /// Uniform over `[low, high)`.
        pub fn new(low: f64, high: f64) -> Self {
            assert!(low < high, "Uniform::new: low must be < high");
            Self { low, high }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            self.low + (self.high - self.low) * <f64 as super::Standard>::sample_standard(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = r.gen_range(5u32..=5);
            assert_eq!(y, 5);
            let z = r.gen_range(-4i32..4);
            assert!((-4..4).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_distribution_samples_in_range() {
        use super::distributions::{Distribution, Uniform};
        let u = Uniform::new(-1.0f64, 1.0);
        let mut r = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let v = u.sample(&mut r);
            assert!((-1.0..1.0).contains(&v));
        }
    }
}
