//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `criterion_group!`, `criterion_main!`, `black_box` — as a
//! small wall-clock harness: each bench warms up, then reports the median
//! of a handful of timed samples. No statistics engine, no HTML reports.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Throughput annotation (printed alongside the timing).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Two-part bench identifier.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            name: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by `iter`.
    median_ns: f64,
}

impl Bencher {
    /// Times `f`, storing the median over several samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and calibration: run until ~10ms or 3 iterations.
        let cal = Instant::now();
        let mut warm_iters = 0u64;
        while cal.elapsed().as_millis() < 10 || warm_iters < 3 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1000 {
                break;
            }
        }
        let per_iter = cal.elapsed().as_nanos() as f64 / warm_iters as f64;
        // Aim each sample at ~20ms of work, 5 samples.
        let iters_per_sample = ((20e6 / per_iter.max(1.0)) as u64).clamp(1, 100_000);
        let mut samples = Vec::with_capacity(5);
        for _ in 0..5 {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }
}

/// Top-level harness.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` as a standalone bench.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, None, f);
        self
    }

    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benches.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the per-iteration throughput annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the sample count (accepted for API compatibility; the shim
    /// always takes a fixed number of samples).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.throughput, f);
        self
    }

    /// Runs `f` with an input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher { median_ns: 0.0 };
    f(&mut b);
    let extra = match throughput {
        Some(Throughput::Elements(n)) if b.median_ns > 0.0 => {
            format!("  {:.1} Melem/s", n as f64 / b.median_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) if b.median_ns > 0.0 => {
            format!("  {:.1} MiB/s", n as f64 / b.median_ns * 1e3 / 1.048_576)
        }
        _ => String::new(),
    };
    if b.median_ns >= 1e6 {
        println!("{label:<50} {:>12.3} ms/iter{extra}", b.median_ns / 1e6);
    } else if b.median_ns >= 1e3 {
        println!("{label:<50} {:>12.3} us/iter{extra}", b.median_ns / 1e3);
    } else {
        println!("{label:<50} {:>12.1} ns/iter{extra}", b.median_ns);
    }
}

/// Declares a bench group function (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.sample_size(10);
        g.bench_function("f", |b| b.iter(|| black_box(2) * 2));
        g.bench_with_input(BenchmarkId::new("id", 3), &3, |b, &x| b.iter(|| x + 1));
        g.finish();
    }
}
