//! # speck-repro
//!
//! Facade crate re-exporting the whole spECK reproduction workspace:
//!
//! * [`sparse`] — matrix formats, I/O, generators, reference SpGEMM.
//! * [`simt`] — the deterministic SIMT execution simulator.
//! * [`speck`] — the paper's contribution: adaptive SpGEMM.
//! * [`baselines`] — the comparator SpGEMM methods.
//!
//! See `README.md` for a guided tour and `examples/` for runnable demos.

pub use speck_baselines as baselines;
pub use speck_core as speck;
pub use speck_simt as simt;
pub use speck_sparse as sparse;
