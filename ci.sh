#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 test suite.
#
#   ./ci.sh           # fmt + clippy + tests
#   ./ci.sh --bench   # ... plus the wall-clock throughput benchmark
set -euo pipefail
cd "$(dirname "$0")"

run_bench=0
for arg in "$@"; do
    case "$arg" in
        --bench) run_bench=1 ;;
        *) echo "unknown option: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (workspace, release)"
cargo test --workspace --release

if [ "$run_bench" -eq 1 ]; then
    echo "==> throughput benchmark"
    cargo run --release -p speck-bench --bin bench_throughput -- 3 BENCH_throughput.json
fi

echo "CI OK"
