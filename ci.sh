#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 test suite.
#
#   ./ci.sh             # fmt + clippy + tests
#   ./ci.sh --bench     # ... plus the wall-clock throughput benchmark
#                       #     (rewrites BENCH_throughput.json)
#   ./ci.sh --smoke     # ... plus a simulation-neutrality check: fails if
#                       #     the cold-path sim digest moved
#   ./ci.sh --metrics   # ... plus a metrics gate: fails if the emitted
#                       #     MetricsSnapshot drifts from BENCH_metrics.json
#                       #     (sim counters exact, wall gauges within the
#                       #     baseline's declared tolerance)
#   ./ci.sh --trace     # ... plus a tracing smoke gate: exports a Chrome
#                       #     trace twice (must be byte-identical), round-
#                       #     trips it through --profile-from, and diffs a
#                       #     trace against itself (all deltas zero)
#   ./ci.sh --audit     # ... plus a decision-audit gate: exports an audit
#                       #     report twice (must be byte-identical), diffs
#                       #     it against itself (zero regret delta), and
#                       #     checks the corpus decision statistics +
#                       #     gate accuracy against BENCH_audit.json
#
# The flags compose into ONE bench_throughput invocation (a full run takes
# minutes), so `--smoke --metrics` checks both gates against the same run.
# The metrics table is always written to target/ci/metrics_table.txt for
# CI job summaries.
set -euo pipefail
cd "$(dirname "$0")"

# Cold-path simulation digest pinned by the last simulation-affecting
# change. Host-side work (pooling, plan caching, batching, metrics
# collection) must keep it; intentional simulator/algorithm changes update
# it alongside BENCH_throughput.json and BENCH_metrics.json.
EXPECTED_SIM_DIGEST=6d086aa6157bb570
BENCH_ROUNDS=3

run_bench=0
run_smoke=0
run_metrics=0
run_trace=0
run_audit=0
for arg in "$@"; do
    case "$arg" in
        --bench) run_bench=1 ;;
        --smoke) run_smoke=1 ;;
        --metrics) run_metrics=1 ;;
        --trace) run_trace=1 ;;
        --audit) run_audit=1 ;;
        *) echo "unknown option: $arg" >&2; exit 2 ;;
    esac
done

# Toolchain versions first: when a CI run fails, the log alone must answer
# "which compiler was this?".
echo "==> toolchain"
rustc -V
cargo -V

echo "==> cargo fmt --check"
if ! cargo fmt --version >/dev/null 2>&1; then
    echo "ERROR: 'cargo fmt' is unavailable — install the rustfmt component" >&2
    echo "       (rustup component add rustfmt)" >&2
    exit 3
fi
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
if ! cargo clippy --version >/dev/null 2>&1; then
    echo "ERROR: 'cargo clippy' is unavailable — install the clippy component" >&2
    echo "       (rustup component add clippy)" >&2
    exit 3
fi
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (workspace, release)"
cargo test --workspace --release

if [ "$run_bench" -eq 1 ] || [ "$run_smoke" -eq 1 ] || [ "$run_metrics" -eq 1 ] \
    || [ "$run_audit" -eq 1 ]; then
    # One bench run serves every enabled gate.
    if [ "$run_bench" -eq 1 ]; then
        out=BENCH_throughput.json
    else
        out=/tmp/BENCH_ci.json
    fi
    mkdir -p target/ci
    bench_args=("$BENCH_ROUNDS" "$out"
        --metrics-table target/ci/metrics_table.txt)
    desc="throughput benchmark -> $out"
    if [ "$run_smoke" -eq 1 ]; then
        bench_args+=(--expect-digest "$EXPECTED_SIM_DIGEST")
        desc="$desc + sim digest $EXPECTED_SIM_DIGEST"
    fi
    if [ "$run_metrics" -eq 1 ]; then
        bench_args+=(--metrics-out /tmp/BENCH_metrics_new.json
            --check-metrics BENCH_metrics.json)
        desc="$desc + metrics vs BENCH_metrics.json"
    fi
    if [ "$run_audit" -eq 1 ]; then
        # --bench regenerates the committed audit baseline alongside the
        # throughput numbers; otherwise the fresh export is checked below.
        if [ "$run_bench" -eq 1 ]; then
            audit_new=BENCH_audit.json
        else
            audit_new=/tmp/BENCH_audit_new.json
        fi
        bench_args+=(--audit-out "$audit_new")
        desc="$desc + audit -> $audit_new"
    fi
    echo "==> $desc"
    cargo run --release -p speck-bench --bin bench_throughput -- "${bench_args[@]}"
    echo "metrics table: target/ci/metrics_table.txt"
    if [ "$run_audit" -eq 1 ] && [ "$run_bench" -eq 0 ]; then
        cmp "$audit_new" BENCH_audit.json \
            || { echo "FAIL: corpus decision statistics drifted from BENCH_audit.json" \
                 "(regenerate with ./ci.sh --bench --audit if intended)" >&2; exit 1; }
        echo "audit gate: corpus decision statistics match BENCH_audit.json"
    fi
fi

if [ "$run_trace" -eq 1 ]; then
    echo "==> tracing smoke gate (export determinism + profile round trip)"
    mkdir -p target/ci
    runspeck=(cargo run --release -p speck-bench --bin runspeck --)
    # Two exports of the same workload must be byte-identical.
    "${runspeck[@]}" --synthetic mesh3d 2 --iterations 1 --warmup 0 \
        --trace-out target/ci/trace.json --profile \
        >target/ci/trace_profile.txt
    "${runspeck[@]}" --synthetic mesh3d 2 --iterations 1 --warmup 0 \
        --trace-out /tmp/trace_repeat.json >/dev/null
    cmp target/ci/trace.json /tmp/trace_repeat.json \
        || { echo "FAIL: trace export is not deterministic" >&2; exit 1; }
    # Parse -> profile round trip on the exported file.
    "${runspeck[@]}" --profile-from target/ci/trace.json \
        >target/ci/trace_profile_from.txt
    # A trace diffed against itself must show a zero total delta.
    "${runspeck[@]}" --trace-diff target/ci/trace.json target/ci/trace.json \
        | tee /tmp/trace_selfdiff.txt
    grep -q "total delta: +0.000 us" /tmp/trace_selfdiff.txt \
        || { echo "FAIL: self-diff total delta is not zero" >&2; exit 1; }
    echo "trace artifacts: target/ci/trace.json, target/ci/trace_profile.txt"
fi

if [ "$run_audit" -eq 1 ]; then
    echo "==> decision-audit smoke gate (export determinism + self-diff)"
    mkdir -p target/ci
    runspeck=(cargo run --release -p speck-bench --bin runspeck --)
    # Two exports of the same workload must be byte-identical.
    "${runspeck[@]}" --synthetic mesh3d 2 --iterations 1 --warmup 0 \
        --audit-out target/ci/audit.json \
        --audit-table target/ci/audit_table.txt >/dev/null
    "${runspeck[@]}" --synthetic mesh3d 2 --iterations 1 --warmup 0 \
        --audit-out /tmp/audit_repeat.json >/dev/null
    cmp target/ci/audit.json /tmp/audit_repeat.json \
        || { echo "FAIL: audit export is not deterministic" >&2; exit 1; }
    # A report diffed against itself must show a zero regret delta.
    "${runspeck[@]}" --audit-diff target/ci/audit.json target/ci/audit.json \
        | tee /tmp/audit_selfdiff.txt
    grep -q "regret delta: +0.000 cycles" /tmp/audit_selfdiff.txt \
        || { echo "FAIL: self-diff regret delta is not zero" >&2; exit 1; }
    echo "audit artifacts: target/ci/audit.json, target/ci/audit_table.txt"
fi

echo "CI OK"
