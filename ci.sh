#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 test suite.
#
#   ./ci.sh           # fmt + clippy + tests
#   ./ci.sh --bench   # ... plus the wall-clock throughput benchmark
#   ./ci.sh --smoke   # ... plus a simulation-neutrality check: fails if
#                     #     the cold-path sim digest moved
set -euo pipefail
cd "$(dirname "$0")"

# Cold-path simulation digest pinned by the last simulation-affecting
# change. Host-side work (pooling, plan caching, batching) must keep it;
# intentional simulator/algorithm changes update it alongside
# BENCH_throughput.json.
EXPECTED_SIM_DIGEST=6d086aa6157bb570

run_bench=0
run_smoke=0
for arg in "$@"; do
    case "$arg" in
        --bench) run_bench=1 ;;
        --smoke) run_smoke=1 ;;
        *) echo "unknown option: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (workspace, release)"
cargo test --workspace --release

if [ "$run_bench" -eq 1 ]; then
    echo "==> throughput benchmark"
    cargo run --release -p speck-bench --bin bench_throughput -- 3 BENCH_throughput.json
fi

if [ "$run_smoke" -eq 1 ]; then
    echo "==> simulation-neutrality smoke (expect digest $EXPECTED_SIM_DIGEST)"
    cargo run --release -p speck-bench --bin bench_throughput -- \
        3 /tmp/BENCH_smoke.json --expect-digest "$EXPECTED_SIM_DIGEST"
fi

echo "CI OK"
